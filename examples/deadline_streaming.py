#!/usr/bin/env python3
"""Deadline-constrained streaming on a line (Section 5.4).

A video-style workload: periodic frames from several sources must reach a
sink within a fixed latency budget.  The deterministic algorithm handles
deadlines natively (per-request sinks in the sketch graph); the example
sweeps the latency budget and shows the paper's invariant -- a packet that
is not preempted always arrives *on time* (zero late deliveries).

Run:  python examples/deadline_streaming.py
"""

from repro import DeterministicRouter, LineNetwork, Request, execute_plan

N = 48
HORIZON = 6 * N


def streaming_workload(slack: int) -> list:
    """Three periodic flows with per-packet deadlines."""
    flows = [
        (2, 40, 0, 4),   # source, dest, phase, period
        (10, 44, 1, 4),
        (5, 30, 2, 2),
    ]
    out = []
    rid = 0
    for src, dst, phase, period in flows:
        for t in range(phase, N, period):
            out.append(
                Request.line(src, dst, t,
                             deadline=t + (dst - src) + slack, rid=rid)
            )
            rid += 1
    return out


def main() -> None:
    net = LineNetwork(N, buffer_size=3, capacity=3)
    print(f"streaming over {net}; horizon {HORIZON}\n")
    print(f"{'slack':>6} {'offered':>8} {'on-time':>8} {'late':>5} {'dropped':>8}")
    for slack in (0, 2, 6, 16, 48):
        reqs = streaming_workload(slack)
        router = DeterministicRouter(net, HORIZON)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, HORIZON)
        assert plan.consistent_with_simulation(result)
        stats = result.stats
        dropped = stats.rejected + stats.preempted
        print(f"{slack:>6} {len(reqs):>8} {stats.delivered:>8} "
              f"{stats.late:>5} {dropped:>8}")
        # Section 5.4's invariant: admitted packets are never late
        assert stats.late == 0

    print(
        "\nno admitted packet ever missed its deadline (Section 5.4): the\n"
        "per-request sinks only expose tiles whose destination copies lie\n"
        "inside the deadline window, and detailed routing cannot overshoot\n"
        "them (Figure 7).\n\n"
        "note the counter-intuitive slack trend: tight deadlines force\n"
        "conflict-light pure diagonals, while large windows let the path\n"
        "packer choose detoured routes whose extra bends are\n"
        "preemption-prone -- a measured cost of the algorithm's\n"
        "conservative track reservation, not a missed deadline."
    )


if __name__ == "__main__":
    main()
