#!/usr/bin/env python3
"""The paper's figures, regenerated from live objects as ASCII art.

* Figure 2/3 -- the untilted space-time graph of a line, a detailed path,
  and the tiling (drawn from a real routed plan, not hand-placed);
* Figure 5  -- a sketch path's three detailed-routing parts;
* Figure 8/9 -- tile quadrants and their routing roles;
* Figure 3e -- the sketch graph with live IPP loads.

Run:  python examples/paper_figures.py
"""

from repro import DeterministicRouter, LineNetwork, Request
from repro.analysis.viz import (
    render_sketch_loads,
    render_spacetime,
    render_tile_quadrants,
)
from repro.core.randomized import RandomizedParams


def main() -> None:
    net = LineNetwork(16, buffer_size=3, capacity=3)
    router = DeterministicRouter(net, horizon=48, k=6)
    reqs = [
        Request.line(1, 13, 0, rid=0),
        Request.line(2, 10, 3, rid=1),
        Request.line(0, 6, 8, rid=2),
    ]
    plan = router.route(reqs)

    print("=" * 72)
    print("Figures 2-3 & 5: untilted space-time graph, tiles (side k=6),")
    print("and the detailed paths the deterministic algorithm reserved:\n")
    print(
        render_spacetime(
            router.graph,
            [plan.paths[r] for r in sorted(plan.paths)],
            tiling=router.tiling,
            col_lo=-8,
            col_hi=30,
        )
    )
    print(
        "\nreading: each glyph climbs north (transmit) and steps east\n"
        "(buffer); bends happen inside bend tiles, the final climb is the\n"
        "last-tile routing of Section 5.2.4."
    )

    print("\n" + "=" * 72)
    print("Figure 3e: the sketch graph with the IPP loads of this run:\n")
    print(render_sketch_loads(router.sketch, router.ipp.flow))

    print("\n" + "=" * 72)
    print("Figures 8-9: quadrants of a randomized-algorithm tile")
    params = RandomizedParams.for_network(
        LineNetwork(64, buffer_size=1, capacity=1)
    )
    print(f"(Definition 15 gives Q = {params.Q}, tau = {params.tau} "
          f"at n = 64, B = c = 1):\n")
    print(render_tile_quadrants(params.Q, params.tau))


if __name__ == "__main__":
    main()
