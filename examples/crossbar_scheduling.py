#!/usr/bin/env python3
"""Crossbar scheduling on a 2-d uni-directional grid.

The paper's introduction notes that 2-dimensional grids "serve as crossbars
in networks" ([ARSU02, AKRR03, Tur09]): inputs on one side, outputs on the
other, and the switching fabric must decide which cells to drop when ports
contend.  This example drives the deterministic grid algorithm (Theorem 10)
with permutation traffic -- each input port sends a cell to a distinct
output port every round -- plus a burst of adversarial crossfire, and
compares against nearest-to-go with 1-bend routing ([AKK09]'s policy).

Run:  python examples/crossbar_scheduling.py
"""

from repro import DeterministicRouter, GridNetwork, execute_plan, offline_bound
from repro.baselines import run_nearest_to_go
from repro.workloads import grid_crossfire_instance, permutation_requests

SIDE = 8
SEED = 7


def main() -> None:
    net = GridNetwork((SIDE, SIDE), buffer_size=3, capacity=3)
    horizon = 12 * SIDE

    traffic = permutation_requests(net, rng=SEED, window=4, rounds=6)
    traffic += grid_crossfire_instance(net, width=SIDE // 2)
    traffic.sort(key=lambda r: (r.arrival, r.rid))
    print(f"crossbar: {net}")
    print(f"cells to switch: {len(traffic)}\n")

    router = DeterministicRouter(net, horizon)
    plan = router.route(traffic)
    result = execute_plan(net, plan.all_executable_paths(), traffic, horizon)
    assert plan.consistent_with_simulation(result)

    ntg = run_nearest_to_go(net, traffic, horizon)
    bound = offline_bound(net, traffic, horizon)

    print("deterministic algorithm (Theorem 10):")
    print(f"  delivered      : {plan.throughput}")
    print(f"  rejected (ipp) : {plan.meta['framework']['ipp_rejected']}")
    print(f"  preempted      : {len(plan.truncated)}")
    print(f"  tile side k    : {plan.meta['k']}")
    print("nearest-to-go (1-bend):")
    print(f"  delivered      : {ntg.throughput}")
    print(f"offline bound    : {bound:.0f}")
    print(f"\nratios -- det: {bound / max(1, plan.throughput):.2f}, "
          f"ntg: {bound / max(1, ntg.throughput):.2f}")
    print("\n(on friendly permutation traffic NTG wins on constants; the "
          "deterministic algorithm's value is its worst-case guarantee -- "
          "see benchmarks/bench_det_line.py for the adversarial flip)")


if __name__ == "__main__":
    main()
