#!/usr/bin/env python3
"""Adversarial showdown: admission control vs work conservation.

Reproduces the qualitative story behind Table 1 on the clogging instance
([AKOR03]'s greedy killer): a stream of maximum-distance packets saturates
every link while each intermediate node offers easy one-hop packets.

* greedy keeps forwarding the long packets -- its ratio grows ~ sqrt(n);
* nearest-to-go lets the short packets win -- near-optimal here;
* the deterministic algorithm pays its polylog *constants* but its ratio
  grows slower than greedy's (the Theorem 4 shape).

Run:  python examples/adversarial_showdown.py
"""

from repro import DeterministicRouter, LineNetwork, offline_bound
from repro.baselines import run_greedy, run_nearest_to_go
from repro.workloads import clogging_instance


def main() -> None:
    print(f"{'n':>4} {'bound':>8} {'greedy':>9} {'ntg':>9} {'det(Thm 4)':>11}"
          f"   (competitive ratios)")
    prev = {}
    for n in (16, 32, 64):
        net = LineNetwork(n, buffer_size=3, capacity=3)
        horizon = 5 * n
        reqs = clogging_instance(net, duration=n // 2, shorts_per_node=3)
        bound = offline_bound(net, reqs, horizon)

        ratios = {}
        ratios["greedy"] = bound / max(1, run_greedy(
            net, reqs, horizon, priority="longest").throughput)
        ratios["ntg"] = bound / max(1, run_nearest_to_go(
            net, reqs, horizon).throughput)
        det = DeterministicRouter(net, horizon).route(reqs)
        ratios["det"] = bound / max(1, det.throughput)

        growth = ""
        if prev:
            growth = "   growth: " + ", ".join(
                f"{k} x{ratios[k] / prev[k]:.2f}" for k in ("greedy", "det")
            )
        print(f"{n:>4} {bound:>8.0f} {ratios['greedy']:>9.2f} "
              f"{ratios['ntg']:>9.2f} {ratios['det']:>11.2f}{growth}")
        prev = ratios

    print(
        "\nreading: greedy's ratio multiplies by ~sqrt(2) per doubling of n\n"
        "(the Omega(sqrt n) lower bound of [AKOR03]); the deterministic\n"
        "algorithm's multiplier is smaller -- polylog growth -- though its\n"
        "absolute constants (tile side k ~ log n to the fifth) dominate at\n"
        "laptop sizes.  NTG is near-optimal on this particular instance."
    )


if __name__ == "__main__":
    main()
