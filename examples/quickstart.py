#!/usr/bin/env python3
"""Quickstart: route packets on a uni-directional line.

Builds a 64-node line with unit buffers and unit link capacities (the
hardest classical setting, B = c = 1), generates random traffic, and runs:

* the paper's randomized O(log n) algorithm (Section 7),
* the greedy and nearest-to-go baselines,
* the offline max-flow upper bound,

then prints a small scoreboard.  Everything flows through the declarative
``repro.api`` Scenario layer: each run is a frozen spec (network x
workload x algorithm x horizon x seed) that serializes to JSON, executes
deterministically, and fans out over a process pool -- the same objects
``python -m repro route --spec file.json`` and the bench suite consume.

Run:  python examples/quickstart.py
"""

from repro.api import (
    AlgorithmSpec,
    NetworkSpec,
    Scenario,
    WorkloadSpec,
    run,
    run_batch,
)

N = 64
HORIZON = 4 * N
SEED = 2011  # SPAA 2011


def main() -> None:
    network = NetworkSpec("line", (N,), buffer_size=1, capacity=1)
    workload = WorkloadSpec("uniform", {"num": 3 * N, "horizon": N})

    # --- declare the experiment: one Scenario per algorithm --------------
    # lam=0.5 uses a practical sparsification constant; omit it to get the
    # paper-exact lambda = 1/(200 k) (which rejects almost everything at
    # this scale -- see EXPERIMENTS.md E6).
    algorithms = [
        AlgorithmSpec("rand", {"lam": 0.5}),
        AlgorithmSpec("greedy"),
        AlgorithmSpec("ntg"),
    ]
    scenarios = [
        Scenario(network, workload, algo, horizon=HORIZON, seed=SEED)
        for algo in algorithms
    ]
    print(f"network:  {network}")
    print(f"workload: {workload} over horizon {HORIZON}")
    print(f"running {len(scenarios)} scenarios (same instance for all, "
          "by the seeding contract)\n")

    # --- run them (run_batch shards over a process pool when asked;
    # results are bit-identical to this serial run for any worker count)
    reports = run_batch(scenarios)

    print("scoreboard (delivered packets; bound is an offline relaxation):")
    rows = [("offline bound", reports[0].bound)] + [
        (str(r.scenario.algorithm), r.throughput) for r in reports
    ]
    for name, value in rows:
        print(f"  {name:22s} {value:8.1f}")

    best = max(reports, key=lambda r: r.throughput)
    print(f"\nlatency of {best.scenario.algorithm.name}: "
          f"mean {best.latency_mean:.1f} steps, worst {best.latency_max:.0f} "
          f"(engine: {best.engine})")

    # --- scenarios are data: JSON out, JSON in, identical results --------
    text = scenarios[0].to_json()
    replayed = run(Scenario.from_json(text))
    assert replayed == reports[0]  # bit-identical (wall time excluded)
    print(f"\nJSON round-trip of the {scenarios[0].algorithm.name!r} "
          f"scenario reproduced throughput {replayed.throughput} exactly;")
    print("save the spec below and rerun it with "
          "`python -m repro route --spec <file>`:\n")
    print(text)


if __name__ == "__main__":
    main()
