#!/usr/bin/env python3
"""Quickstart: route packets on a uni-directional line.

Builds a 64-node line with unit buffers and unit link capacities (the
hardest classical setting, B = c = 1), generates random traffic, and runs:

* the paper's randomized O(log n) algorithm (Section 7),
* the greedy and nearest-to-go baselines,
* the offline max-flow upper bound,

then prints a small scoreboard.  Everything is seeded and reproducible.

Run:  python examples/quickstart.py
"""

from repro import (
    LineNetwork,
    RandomizedLineRouter,
    execute_plan,
    offline_bound,
    run_greedy,
    run_nearest_to_go,
)
from repro.workloads import uniform_requests

N = 64
HORIZON = 4 * N
SEED = 2011  # SPAA 2011


def main() -> None:
    net = LineNetwork(N, buffer_size=1, capacity=1)
    requests = uniform_requests(net, num=3 * N, horizon=N, rng=SEED)
    print(f"network: {net}")
    print(f"requests: {len(requests)} over horizon {HORIZON}\n")

    # --- the paper's randomized algorithm -------------------------------
    # lam=0.5 uses a practical sparsification constant; omit it to get the
    # paper-exact lambda = 1/(200 k) (which rejects almost everything at
    # this scale -- see EXPERIMENTS.md E6).
    router = RandomizedLineRouter(net, HORIZON, rng=SEED, lam=0.5)
    plan = router.route(requests)
    print(f"randomized router served class {plan.meta['class']!r} "
          f"with phases {plan.meta['phases']}")

    # plans are space-time paths; replay them through the synchronous
    # simulator to double-check feasibility and delivery times
    result = execute_plan(net, plan.all_executable_paths(), requests, HORIZON)
    assert plan.consistent_with_simulation(result)

    # --- baselines -------------------------------------------------------
    greedy = run_greedy(net, requests, HORIZON)
    ntg = run_nearest_to_go(net, requests, HORIZON)
    bound = offline_bound(net, requests, HORIZON)

    print("\nscoreboard (delivered packets; bound is an offline relaxation):")
    rows = [
        ("offline bound", bound),
        ("randomized (Thm 29)", plan.throughput),
        ("greedy", greedy.throughput),
        ("nearest-to-go", ntg.throughput),
    ]
    for name, value in rows:
        print(f"  {name:22s} {value:8.1f}")

    some_delivery = next(iter(result.stats.delivery_times.items()), None)
    if some_delivery:
        rid, t = some_delivery
        print(f"\nexample delivery: request {rid} arrived at t = {t}")


if __name__ == "__main__":
    main()
