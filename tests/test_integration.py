"""Cross-module integration tests: every router's plan must replay exactly
in the synchronous simulator, and measured ratios must be sane."""

import pytest

from repro import (
    BufferlessLineRouter,
    DeterministicRouter,
    LargeCapacityRouter,
    LineNetwork,
    GridNetwork,
    RandomizedLineRouter,
    execute_plan,
    offline_bound,
    run_greedy,
    run_nearest_to_go,
)
from repro.analysis.metrics import evaluate_plan
from repro.workloads import (
    bursty_requests,
    deadline_requests,
    poisson_requests,
    uniform_requests,
)


def assert_replay(net, router, reqs, horizon):
    plan = router.route(reqs)
    result = execute_plan(net, plan.all_executable_paths(), reqs, horizon)
    assert plan.consistent_with_simulation(result)
    return plan


class TestAllRoutersReplay:
    """The numpy-ledger planners and the step simulator must agree."""

    def test_deterministic_uniform(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 60, 32, rng=0)
        assert_replay(net, DeterministicRouter(net, 128), reqs, 128)

    def test_deterministic_poisson(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = poisson_requests(net, 1.5, 40, rng=1, max_requests=80)
        assert_replay(net, DeterministicRouter(net, 160), reqs, 160)

    def test_deterministic_bursty(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = bursty_requests(net, 4, 10, 32, rng=2)
        assert_replay(net, DeterministicRouter(net, 128), reqs, 128)

    def test_deterministic_deadlines(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = deadline_requests(net, 40, 32, slack=10, rng=3, jitter=6)
        plan = assert_replay(net, DeterministicRouter(net, 128), reqs, 128)
        # every delivered packet arrived before its deadline
        for rid, path in plan.paths.items():
            r = next(x for x in reqs if x.rid == rid)
            if r.deadline is not None:
                assert path.arrival_time(1) <= r.deadline

    def test_deterministic_grid(self):
        net = GridNetwork((6, 6), buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 40, 20, rng=4)
        assert_replay(net, DeterministicRouter(net, 80), reqs, 80)

    def test_randomized_both_classes(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 80, 64, rng=5)
        for cls in ("far", "near"):
            router = RandomizedLineRouter(net, 256, rng=0, lam=0.5, force_class=cls)
            assert_replay(net, router, reqs, 256)

    def test_bufferless(self):
        net = LineNetwork(16, buffer_size=0, capacity=2)
        reqs = uniform_requests(net, 40, 16, rng=6)
        assert_replay(net, BufferlessLineRouter(net, 64), reqs, 64)

    def test_large_capacity(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        reqs = uniform_requests(net, 80, 32, rng=7)
        assert_replay(net, LargeCapacityRouter(net, 96), reqs, 96)


class TestRatiosSane:
    def test_deterministic_ratio_reasonable_light_load(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 25, 48, rng=8)
        plan = DeterministicRouter(net, 160).route(reqs)
        ev = evaluate_plan(net, plan, reqs, 160)
        assert 1.0 <= ev.ratio < 8.0

    def test_online_below_bound_everywhere(self):
        net = LineNetwork(16, buffer_size=2, capacity=1)
        reqs = uniform_requests(net, 50, 16, rng=9)
        bound = offline_bound(net, reqs, 80)
        assert run_greedy(net, reqs, 80).throughput <= bound
        assert run_nearest_to_go(net, reqs, 80).throughput <= bound

    def test_deterministic_beats_nothing_delivered_never(self):
        # sanity: with ample capacity the algorithm delivers something
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 10, 16, rng=10)
        plan = DeterministicRouter(net, 128).route(reqs)
        assert plan.throughput >= 5


class TestStatusAccounting:
    def test_statuses_partition_requests(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 70, 24, rng=11)
        plan = DeterministicRouter(net, 128).route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 128)
        st = result.stats
        assert st.delivered + st.late + st.rejected + st.preempted == len(reqs)

    def test_plan_outcome_matches_sim_statuses(self):
        from repro.core.base import RouteOutcome
        from repro.network.packet import DeliveryStatus

        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 50, 24, rng=12)
        plan = DeterministicRouter(net, 128).route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 128)
        for r in reqs:
            if plan.outcome[r.rid] == RouteOutcome.DELIVERED:
                assert result.status[r.rid] == DeliveryStatus.DELIVERED
            else:
                assert result.status[r.rid] != DeliveryStatus.DELIVERED
