"""Tests for the Dinic solver and the throughput upper bound."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.packet import Request
from repro.network.topology import LineNetwork
from repro.packing.exact import exact_opt_small
from repro.packing.maxflow import Dinic, throughput_upper_bound
from repro.util.errors import ValidationError
from repro.util.rng import as_generator
from repro.workloads.uniform import uniform_requests


class TestDinic:
    def test_simple_path(self):
        d = Dinic(3)
        d.add_edge(0, 1, 5)
        d.add_edge(1, 2, 3)
        assert d.max_flow(0, 2) == 3

    def test_parallel_paths(self):
        d = Dinic(4)
        d.add_edge(0, 1, 2)
        d.add_edge(0, 2, 2)
        d.add_edge(1, 3, 2)
        d.add_edge(2, 3, 2)
        assert d.max_flow(0, 3) == 4

    def test_bottleneck(self):
        d = Dinic(4)
        d.add_edge(0, 1, 10)
        d.add_edge(1, 2, 1)
        d.add_edge(2, 3, 10)
        assert d.max_flow(0, 3) == 1

    def test_disconnected(self):
        d = Dinic(4)
        d.add_edge(0, 1, 5)
        d.add_edge(2, 3, 5)
        assert d.max_flow(0, 3) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValidationError):
            Dinic(2).add_edge(0, 1, -1)

    def test_rejects_s_equals_t(self):
        with pytest.raises(ValidationError):
            Dinic(2).max_flow(0, 0)

    def test_long_path_no_recursion_blowup(self):
        n = 5000
        d = Dinic(n)
        for i in range(n - 1):
            d.add_edge(i, i + 1, 1)
        assert d.max_flow(0, n - 1) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_networkx_on_random_dags(self, seed):
        rng = as_generator(seed)
        n = int(rng.integers(4, 10))
        g = nx.DiGraph()
        d = Dinic(n)
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.5:
                    cap = int(rng.integers(1, 6))
                    g.add_edge(u, v, capacity=cap)
                    d.add_edge(u, v, cap)
        expected = nx.maximum_flow_value(g, 0, n - 1) if g.has_node(0) and g.has_node(n - 1) and nx.has_path(g, 0, n - 1) else 0
        assert d.max_flow(0, n - 1) == expected


class TestThroughputUpperBound:
    def test_single_request(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 4, 0)]
        assert throughput_upper_bound(net, reqs, 10) == 1

    def test_contention_on_unit_link(self):
        net = LineNetwork(3, buffer_size=0, capacity=1)
        # two packets must cross edge (0, 1) at the same step: only one fits
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        assert throughput_upper_bound(net, reqs, 2) == 1

    def test_buffering_allows_second(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        assert throughput_upper_bound(net, reqs, 10) == 2

    def test_deadline_restricts(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        reqs = [
            Request.line(0, 2, 0, deadline=2, rid=0),
            Request.line(0, 2, 0, deadline=2, rid=1),
        ]
        assert throughput_upper_bound(net, reqs, 10) == 1

    def test_requests_after_horizon_ignored(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, 100)]
        assert throughput_upper_bound(net, reqs, 10) == 0

    def test_empty(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        assert throughput_upper_bound(net, [], 10) == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_upper_bounds_exact(self, seed):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 5, 4, rng=seed)
        bound = throughput_upper_bound(net, reqs, 9)
        exact, _ = exact_opt_small(net, reqs, 9)
        assert bound >= exact
