"""Tests for sketch graphs (Sections 3.4, 5.1, 5.4)."""

import math

import pytest

from repro.network.packet import Request
from repro.network.topology import GridNetwork, LineNetwork
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph, SplitSketchGraph
from repro.spacetime.tiling import Tiling


@pytest.fixture
def setup_line():
    net = LineNetwork(8, buffer_size=2, capacity=3)
    graph = SpaceTimeGraph(net, horizon=16)
    tiling = Tiling((4, 4))
    return net, graph, tiling


class TestPlainSketch:
    def test_boundary_capacities(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        # vertical (space axis): c * tau = 3 * 4; horizontal: B * Q = 2 * 4
        assert sk.boundary_capacity(0) == 12
        assert sk.boundary_capacity(1) == 8

    def test_rect_tiles_capacities(self):
        net = LineNetwork(8, buffer_size=2, capacity=3)
        graph = SpaceTimeGraph(net, horizon=16)
        sk = PlainSketchGraph(graph, Tiling((6, 4)))  # Q = 6, tau = 4
        assert sk.boundary_capacity(0) == 3 * 4  # c * tau
        assert sk.boundary_capacity(1) == 2 * 6  # B * Q

    def test_node_capacity_formula(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        # d=1: 2 k^2 (B + c) with k = 4
        assert sk.node_capacity((0, 0)) == 2 * 16 * (2 + 3)

    def test_out_edges_structure(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        edges = dict(sk.out_edges(("t", (0, 0))))
        assert ("e", (0, 0), 0) in edges and edges[("e", (0, 0), 0)] == ("t", (1, 0))
        assert ("e", (0, 0), 1) in edges and edges[("e", (0, 0), 1)] == ("t", (0, 1))

    def test_source_node(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        r = Request.line(2, 6, 1)
        assert sk.source_node(r) == ("t", (0, -1 // 4 if -1 % 4 else 0))
        # explicit: source vertex (2, -1) -> tile (0, -1)
        assert sk.source_node(r) == ("t", (0, (1 - 2 - 0) // 4))

    def test_sink_registration(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        node = sk.register_sink("s1", (6,), 0, 16)
        assert node == ("sink", "s1")
        tiles = sk.sink_tiles("s1")
        assert tiles and all(t[0] == 1 for t in tiles)  # node 6 in band 1
        # sink edges appear on those tiles
        heads = [h for _, h in sk.out_edges(("t", tiles[0]))]
        assert ("sink", "s1") in heads

    def test_sink_idempotent(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        a = sk.register_sink("s1", (6,), 0, 16)
        b = sk.register_sink("s1", (6,), 0, 16)
        assert a == b
        tile = sk.sink_tiles("s1")[0]
        sink_edges = [e for e, h in sk.out_edges(("t", tile)) if h == ("sink", "s1")]
        assert len(sink_edges) == 1

    def test_sink_empty_window(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        assert sk.register_sink("s2", (6,), 100, 200) is None

    def test_sink_capacity_infinite(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        sk.register_sink("s1", (6,), 0, 16)
        tile = sk.sink_tiles("s1")[0]
        assert math.isinf(sk.capacity(("k", tile, "s1")))

    def test_is_sink(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        assert sk.is_sink(("sink", "x"))
        assert not sk.is_sink(("t", (0, 0)))

    def test_min_capacity(self, setup_line):
        net, graph, tiling = setup_line
        sk = PlainSketchGraph(graph, tiling)
        assert sk.min_capacity() == 8


class TestSplitSketch:
    def test_interior_capacity_d1(self, setup_line):
        net, graph, tiling = setup_line
        sk = SplitSketchGraph(graph, tiling)
        assert sk.interior_capacity() == 2
        assert sk.capacity(("i", (0, 0))) == 2

    def test_interior_capacity_d2(self):
        net = GridNetwork((4, 4), buffer_size=3, capacity=3)
        graph = SpaceTimeGraph(net, horizon=12)
        sk = SplitSketchGraph(graph, Tiling.cubes(2, 4))
        assert sk.interior_capacity() == 3

    def test_boundary_capacity_is_one(self, setup_line):
        net, graph, tiling = setup_line
        sk = SplitSketchGraph(graph, tiling)
        assert sk.capacity(("e", (0, 0), 0)) == 1.0

    def test_in_out_wiring(self, setup_line):
        net, graph, tiling = setup_line
        sk = SplitSketchGraph(graph, tiling)
        in_edges = list(sk.out_edges(("in", (0, 0))))
        assert in_edges == [(("i", (0, 0)), ("out", (0, 0)))]
        out_heads = [h for _, h in sk.out_edges(("out", (0, 0)))]
        assert ("in", (1, 0)) in out_heads and ("in", (0, 1)) in out_heads

    def test_sink_edges_leave_out_half(self, setup_line):
        # Prop. 9 counts sink paths through the interior edge, so sinks
        # must hang off s_out
        net, graph, tiling = setup_line
        sk = SplitSketchGraph(graph, tiling)
        sk.register_sink("r1", (6,), 0, 16)
        tile = sk.sink_tiles("r1")[0]
        assert ("sink", "r1") in [h for _, h in sk.out_edges(("out", tile))]
        assert ("sink", "r1") not in [h for _, h in sk.out_edges(("in", tile))]

    def test_source_node_is_in_half(self, setup_line):
        net, graph, tiling = setup_line
        sk = SplitSketchGraph(graph, tiling)
        r = Request.line(2, 6, 1)
        node = sk.source_node(r)
        assert node[0] == "in"


class TestBufferlessSketch:
    def test_no_column_edges_when_b0(self):
        net = LineNetwork(8, buffer_size=0, capacity=3)
        graph = SpaceTimeGraph(net, horizon=16)
        sk = PlainSketchGraph(graph, Tiling((4, 4)))
        axes = {e[2] for e, _ in sk.out_edges(("t", (0, 0))) if e[0] == "e"}
        assert axes == {0}  # only space-axis sketch edges survive
