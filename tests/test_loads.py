"""Tests for the load-profiling analysis."""

import numpy as np
import pytest

from repro.analysis.loads import profile_plan, time_profile
from repro.core.base import Plan, RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.network.topology import LineNetwork
from repro.spacetime.graph import STPath
from repro.util.errors import CapacityError
from repro.workloads.uniform import uniform_requests


def plan_of(paths):
    plan = Plan()
    for p in paths:
        plan.record(p.rid, RouteOutcome.DELIVERED, p)
    return plan


class TestProfile:
    def test_single_path(self):
        net = LineNetwork(6, buffer_size=2, capacity=2)
        plan = plan_of([STPath((0, 0), (0, 1, 0), rid=0)])
        prof = profile_plan(net, plan, 10)
        assert prof.link_peak == 1 and prof.buffer_peak == 1
        assert prof.hops_total == 2 and prof.stores_total == 1

    def test_shared_link(self):
        net = LineNetwork(4, buffer_size=2, capacity=2)
        plan = plan_of([
            STPath((0, 0), (0, 0), rid=0),
            STPath((0, 0), (1, 0, 0), rid=1),
        ])
        prof = profile_plan(net, plan, 10)
        assert prof.link_peak == 1  # shifted in time, never co-resident

    def test_peak_two_on_capacity_two(self):
        net = LineNetwork(4, buffer_size=2, capacity=2)
        plan = plan_of([
            STPath((0, 0), (0, 0), rid=0),
            STPath((0, 0), (0, 0), rid=1),
        ])
        prof = profile_plan(net, plan, 10)
        assert prof.link_peak == 2
        assert prof.busiest_link_time[1] in (0, 1)

    def test_overload_raises(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        plan = plan_of([
            STPath((0, 0), (0, 0), rid=0),
            STPath((0, 0), (0, 0), rid=1),
        ])
        with pytest.raises(CapacityError):
            profile_plan(net, plan, 10)

    def test_real_plan_profile(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 60, 32, rng=0)
        plan = DeterministicRouter(net, 128).route(reqs)
        prof = profile_plan(net, plan, 128)
        assert prof.link_peak <= 3 and prof.buffer_peak <= 3
        assert 0 < prof.link_utilization <= 1
        assert prof.hops_total > 0
        assert "links" in prof.summary()

    def test_empty_plan(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        prof = profile_plan(net, Plan(), 10)
        assert prof.link_peak == 0 and prof.hops_total == 0


class TestTimeProfile:
    def test_shape_and_mass(self):
        net = LineNetwork(6, buffer_size=2, capacity=2)
        plan = plan_of([STPath((0, 0), (0, 1, 0), rid=0)])
        occ = time_profile(net, plan, 10)
        assert occ.shape == (11,)
        assert occ.sum() == 3  # one edge per move
        assert list(occ[:3]) == [1, 1, 1]

    def test_respects_horizon_clip(self):
        net = LineNetwork(6, buffer_size=2, capacity=2)
        plan = plan_of([STPath((0, 8), (1, 1, 1), rid=0)])
        occ = time_profile(net, plan, 9)
        assert occ.sum() == 2  # moves at t = 8, 9 counted; t = 10 clipped

    def test_deterministic_plan_occupancy_bounded(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 40, 16, rng=1)
        plan = DeterministicRouter(net, 96).route(reqs)
        occ = time_profile(net, plan, 96)
        # occupancy can never exceed network capacity: n-1 links * c + n * B
        assert occ.max() <= (net.n - 1) * 3 + net.n * 3
        assert int(occ.sum()) == sum(
            len(p.moves) for p in plan.all_executable_paths().values()
        )
