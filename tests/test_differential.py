"""Cross-engine / cross-worker differential fuzz (hypothesis-driven).

The result cache and the scenario digests rest on one invariant: a
``Scenario`` determines its ``RunReport`` bit-identically, no matter
which engine executes it (``engine`` is excluded from the digest) and no
matter how ``run_batch`` shards it over workers.  PR 1/PR 2 spot-checked
this on hand-picked instances; here hypothesis hunts for counterexamples
over random small scenarios spanning both topologies, every registered
stochastic workload, and the greedy/NTG/planner algorithm families --
plus (PR 4) the Model 2 node semantics (``ntg-model2`` on the vectorized
two-phase engine) and the custom-policy paths of the decision ABI
(``edd`` natively, and ``edd(adapter=true)`` through the scalar
batched-adapter lift), plus (PR 6) the stacked batch engine:
heterogeneous ``engine="batch"`` batches -- mixed sizes, horizons,
policies, duplicates -- must match the serial per-scenario reference
runs, with identical cache accounting, plus (PR 8) the step-kernel
dimension: reference == fast == batch under every available kernel
backend (``numpy`` always, ``numba`` when installed), with the selected
backend actually recorded in ``meta["kernel"]`` -- the no-silent-fallback
assert, mirroring the PR-4 adapter check, plus (PR 9) the topology
family: ring/torus/uniline networks and per-edge ``link_caps`` hotspot
instances enter every strategy, so the bit-identity net now covers
wraparound movement and per-edge capacity enforcement.

A failure here means the cache would serve wrong results -- fix the
engine divergence before touching the cache.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import (
    NetworkSpec,
    Scenario,
    WorkloadSpec,
    run,
    run_batch,
    unavailable_reason,
)
from repro.api.run import _batch_reason
from repro.network import kernel

#: measured RunReport fields that must agree bit-for-bit
MEASURES = ("requests", "throughput", "bound", "late", "rejected",
            "preempted", "latency_mean", "latency_max", "steps")

#: the step-kernel backends this process can actually run
KERNEL_MODES = ("numpy", "numba") if kernel.numba_available() \
    else ("numpy",)


def _same(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float) \
            and math.isnan(a) and math.isnan(b):
        return True
    return a == b


def assert_reports_identical(a, b, context: str) -> None:
    for field in MEASURES:
        assert _same(getattr(a, field), getattr(b, field)), (
            f"{context}: {field} diverged: {getattr(a, field)!r} != "
            f"{getattr(b, field)!r} for {a.scenario}"
        )
    assert a.meta == b.meta, f"{context}: meta diverged for {a.scenario}"


@st.composite
def networks(draw):
    kind = draw(st.sampled_from(("line", "grid", "ring", "uniline", "torus")))
    if kind == "grid" or kind == "torus":
        side = draw(st.integers(3, 5))
        dims = (side, side)
    else:
        n = draw(st.integers(4, 12))
        dims = (n,)
    B = draw(st.sampled_from((0, 1, 2, 3)))
    c = draw(st.integers(1, 3))
    link_caps = ()
    if draw(st.booleans()):
        # a hotspot override on the middle axis-0 edge (always present on
        # every registered topology for these sizes)
        tail = ((dims[0] - 1) // 2,) + (0,) * (len(dims) - 1)
        link_caps = ((tail, 0, draw(st.integers(1, 3))),)
    return NetworkSpec(kind, dims, buffer_size=B, capacity=c,
                       link_caps=link_caps)


@st.composite
def workloads(draw, horizon: int):
    name = draw(st.sampled_from(
        ("uniform", "poisson", "bursty", "permutation", "deadline",
         "hotspot")))
    if name == "uniform":
        params = {"num": draw(st.integers(1, 30)), "horizon": horizon}
    elif name == "hotspot":
        params = {"num": draw(st.integers(1, 20)), "horizon": horizon,
                  "span": draw(st.integers(0, 2))}
    elif name == "poisson":
        params = {"rate": draw(st.sampled_from((0.3, 1.0, 2.5))),
                  "horizon": horizon}
    elif name == "bursty":
        params = {"bursts": draw(st.integers(1, 4)),
                  "burst_size": draw(st.integers(1, 6)),
                  "horizon": horizon,
                  "spread": draw(st.integers(0, 2))}
    elif name == "permutation":
        params = {"rounds": draw(st.integers(1, 3)),
                  "window": draw(st.integers(1, 4))}
    else:  # deadline
        params = {"num": draw(st.integers(1, 20)), "horizon": horizon,
                  "slack": draw(st.integers(0, 8)),
                  "jitter": draw(st.integers(0, 3))}
    return WorkloadSpec(name, params)


@st.composite
def algorithms(draw):
    name = draw(st.sampled_from(
        ("greedy", "ntg", "det", "det2", "bufferless", "ntg-model2", "edd")))
    if name == "greedy":
        priority = draw(st.sampled_from(("fifo", "lifo", "longest")))
        return {"name": "greedy", "params": {"priority": priority}}
    if name == "ntg-model2":
        # Model 2 node semantics on the vectorized two-phase engine
        priority = draw(st.sampled_from(("ntg", "fifo", "lifo", "longest")))
        return {"name": "ntg-model2", "params": {"priority": priority}}
    if name == "edd":
        # the custom vector-ABI policy; adapter=True forces the
        # scalar-to-vector batched adapter path on the fast engine
        return {"name": "edd", "params": {"adapter": draw(st.booleans())}}
    return name


@st.composite
def scenarios(draw):
    network = draw(networks())
    span = sum(network.dims)
    horizon = draw(st.integers(span, 4 * span))
    return Scenario(
        network=network,
        workload=draw(workloads(horizon=max(1, horizon // 2))),
        algorithm=draw(algorithms()),
        horizon=horizon,
        seed=draw(st.integers(0, 2**32 - 1)),
    )


def runnable(scenario) -> bool:
    return unavailable_reason(scenario) is None


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scenarios())
def test_engines_bit_identical(scenario):
    """run(s) is identical under engine=reference and engine=fast."""
    hypothesis.assume(runnable(scenario))
    ref = run(scenario.replace(engine="reference"))
    fast = run(scenario.replace(engine="fast"))
    assert_reports_identical(ref, fast, "reference vs fast")
    # and both agree with the digest contract: engine never enters it
    assert scenario.replace(engine="reference").digest() \
        == scenario.replace(engine="fast").digest()


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(st.lists(scenarios(), min_size=3, max_size=8))
def test_workers_bit_identical(batch):
    """run_batch(workers=1) == run_batch(workers=4), element-wise."""
    batch = [s for s in batch if runnable(s)]
    hypothesis.assume(len(batch) >= 2)
    serial = run_batch(batch, workers=1)
    pooled = run_batch(batch, workers=4)
    for one, many in zip(serial, pooled):
        assert_reports_identical(one, many, "serial vs pooled")


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scenarios(), st.sampled_from(KERNEL_MODES))
def test_kernel_dimension_bit_identical(scenario, mode):
    """reference == fast == batch under the drawn step-kernel backend,
    and the drawn backend is what actually ran (``meta["kernel"]``) --
    no silent fallback, mirroring the PR-4 adapter check."""
    hypothesis.assume(runnable(scenario))
    stackable = _batch_reason(scenario) is None
    with kernel.using(mode):
        ref = run(scenario.replace(engine="reference"))
        fast = run(scenario.replace(engine="fast"))
        # an explicit all-ineligible batch is the clean-error path
        # (pinned in tests/test_fast_batch_engine.py), so only stack
        # scenarios the batch program can express
        stacked = run_batch([scenario.replace(engine="batch")])[0] \
            if stackable else None
    assert ref.meta["kernel"] == mode
    assert fast.meta["kernel"] == mode
    assert_reports_identical(ref, fast, f"reference vs fast [{mode}]")
    if stackable:
        assert stacked.meta["kernel"] == mode
        assert_reports_identical(ref, stacked,
                                 f"reference vs batch [{mode}]")


@pytest.mark.skipif(
    len(KERNEL_MODES) == 1,
    reason="numba is not installed: the numba<->numpy kernel cross-check "
           "cannot run here (CI's main leg installs numba)")
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scenarios())
def test_kernels_bit_identical(scenario):
    """The same fast-engine run under the numba and numpy backends
    differs in nothing but the recorded kernel name."""
    hypothesis.assume(runnable(scenario))
    with kernel.using("numpy"):
        base = run(scenario.replace(engine="fast"))
    with kernel.using("numba"):
        jit = run(scenario.replace(engine="fast"))
    for field in MEASURES:
        assert _same(getattr(base, field), getattr(jit, field)), (
            f"kernel backends diverged on {field} for {scenario}")
    assert base.meta["kernel"] == "numpy"
    assert jit.meta["kernel"] == "numba"
    strip = lambda meta: {k: v for k, v in meta.items() if k != "kernel"}
    assert strip(base.meta) == strip(jit.meta)


@st.composite
def model2_and_abi_scenarios(draw):
    """Scenarios dense in the PR-4 fast paths: Model 2 node semantics and
    the custom vector-ABI / batched-adapter policies, on the line c = 1
    networks Model 2 is defined for."""
    n = draw(st.integers(3, 12))
    B = draw(st.sampled_from((0, 1, 2, 3)))
    network = NetworkSpec("line", (n,), buffer_size=B, capacity=1)
    algorithm = draw(st.one_of(
        st.fixed_dictionaries({
            "name": st.just("ntg-model2"),
            "params": st.fixed_dictionaries(
                {"priority": st.sampled_from(("ntg", "fifo", "lifo",
                                              "longest"))}),
        }),
        st.fixed_dictionaries({
            "name": st.just("edd"),
            "params": st.fixed_dictionaries({"adapter": st.booleans()}),
        }),
    ))
    horizon = draw(st.integers(n, 4 * n))
    return Scenario(
        network=network,
        workload=draw(workloads(horizon=max(1, horizon // 2))),
        algorithm=algorithm,
        horizon=horizon,
        seed=draw(st.integers(0, 2**32 - 1)),
    )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(model2_and_abi_scenarios())
def test_model2_and_abi_policies_bit_identical(scenario):
    """The PR-4 paths select the fast engine (no reference fallback) and
    stay bit-identical to the reference engine."""
    hypothesis.assume(runnable(scenario))
    ref = run(scenario.replace(engine="reference"))
    fast = run(scenario.replace(engine="fast"))
    assert ref.engine == "reference"
    assert fast.engine == "fast"  # the whole point: no silent fallback
    assert_reports_identical(ref, fast, "reference vs fast (model2/ABI)")


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(st.lists(model2_and_abi_scenarios(), min_size=3, max_size=6))
def test_model2_and_abi_workers_bit_identical(batch):
    """Pooled run_batch of the new paths matches the serial run."""
    batch = [s for s in batch if runnable(s)]
    hypothesis.assume(len(batch) >= 2)
    serial = run_batch(batch, workers=1)
    pooled = run_batch(batch, workers=4)
    for one, many in zip(serial, pooled):
        assert_reports_identical(one, many, "serial vs pooled (model2/ABI)")


@st.composite
def batch_heterogeneous(draw):
    """Batches dense in the stacked-engine seams (PR 6): mixed grid sizes
    and horizons, batch-eligible policies (greedy priorities, ntg, native
    edd) interleaved with ineligible ones (planners, the edd adapter
    path), every scenario requesting ``engine="batch"``, plus injected
    duplicates -- so one batch exercises stacking, per-scenario fallback,
    and duplicate collapse together.  At least one scenario is guaranteed
    batch-eligible (an all-ineligible explicit batch is the clean-error
    path, pinned separately in ``tests/test_fast_batch_engine.py``)."""
    batch = draw(st.lists(scenarios(), min_size=1, max_size=5))
    anchor = draw(scenarios())
    anchor = anchor.replace(algorithm=draw(st.sampled_from((
        {"name": "greedy", "params": {"priority": "fifo"}},
        {"name": "ntg", "params": {}},
        {"name": "edd", "params": {"adapter": False}},
    ))))
    batch.insert(draw(st.integers(0, len(batch))), anchor)
    batch = [s.replace(engine="batch") for s in batch]
    extra = draw(st.lists(st.integers(0, len(batch) - 1), max_size=2))
    batch += [batch[i] for i in extra]
    return batch


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(batch_heterogeneous())
def test_batch_engine_bit_identical(batch):
    """run_batch of an engine="batch" batch -- stacked eligible subset,
    per-scenario fallback for the rest -- matches the serial per-scenario
    reference runs bit-for-bit, including meta."""
    batch = [s for s in batch if runnable(s)]
    hypothesis.assume(len(batch) >= 2)
    hypothesis.assume(any(_batch_reason(s) is None for s in batch))
    stacked = run_batch(batch, workers=1)
    for scenario, report in zip(batch, stacked):
        solo = run(scenario.replace(engine="reference"))
        assert_reports_identical(solo, report, "serial reference vs batch")


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(batch=batch_heterogeneous())
def test_batch_engine_cache_stats_identical(batch, tmp_path_factory):
    """With the cache on, a batch-engine run and a plain run produce the
    same accounting: one lookup per position, one store per unique
    scenario -- stacking must not change what is cached or counted."""
    batch = [s for s in batch if runnable(s)]
    hypothesis.assume(len(batch) >= 2)
    hypothesis.assume(any(_batch_reason(s) is None for s in batch))
    plain = [s.replace(engine=None) for s in batch]
    d1 = tmp_path_factory.mktemp("batch-cache")
    d2 = tmp_path_factory.mktemp("plain-cache")
    stacked = run_batch(batch, cache="readwrite", cache_dir=d1)
    serial = run_batch(plain, cache="readwrite", cache_dir=d2)
    assert vars(stacked.cache_stats) == vars(serial.cache_stats)
    # and the stacked run's entries replay for the *other* engine choice
    # (digests exclude the engine): a warmed cache is warmed for everyone
    replay = run_batch(plain, cache="read", cache_dir=d1)
    assert replay.cache_stats.hits == len(batch)
    for a, b in zip(replay, serial):
        assert_reports_identical(a, b, "cross-engine cache replay")


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scenarios())
def test_cd_bound_valid_and_no_looser_than_maxflow(scenario):
    """The C+D bound is a true offline bound on every fuzz draw
    (``cd >= throughput`` -- no online algorithm may beat it) and by
    construction never looser than the max-flow relaxation."""
    hypothesis.assume(runnable(scenario))
    report = run(scenario, bound_method="cd")
    assert report.meta["bound_method"] == "cd"
    assert report.bound >= report.throughput, (
        f"cd bound {report.bound} below achieved throughput "
        f"{report.throughput} for {scenario}")
    from repro.baselines.offline import offline_bound

    network = scenario.network.build()
    _, requests = scenario.build_instance(network)
    maxflow = offline_bound(network, requests, scenario.horizon,
                            method="maxflow")
    assert report.bound <= maxflow, (
        f"cd bound {report.bound} looser than maxflow {maxflow} "
        f"for {scenario}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(scenarios())
def test_serialization_round_trip_identical(scenario):
    """A scenario that survived JSON still produces the same report --
    the cache stores scenarios as JSON, so this is load-bearing."""
    hypothesis.assume(runnable(scenario))
    clone = Scenario.from_json(scenario.to_json())
    assert clone.digest() == scenario.digest()
    assert_reports_identical(run(scenario), run(clone), "json round-trip")
