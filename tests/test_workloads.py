"""Tests for the workload generators."""

import pytest

from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError
from repro.workloads import (
    bursty_requests,
    clogging_instance,
    deadline_requests,
    dense_area_instance,
    distance_cascade_instance,
    grid_crossfire_instance,
    permutation_requests,
    poisson_requests,
    uniform_requests,
    with_deadlines,
)


class TestUniform:
    def test_count_and_validity(self):
        net = GridNetwork((4, 4), buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 30, 10, rng=0)
        assert len(reqs) == 30
        for r in reqs:
            net.check_request(r)
            assert r.distance >= 1
            assert 0 <= r.arrival <= 10

    def test_reproducible(self):
        net = LineNetwork(8)
        a = uniform_requests(net, 10, 5, rng=42)
        b = uniform_requests(net, 10, 5, rng=42)
        assert [(r.source, r.dest, r.arrival) for r in a] == [
            (r.source, r.dest, r.arrival) for r in b
        ]

    def test_min_distance(self):
        net = LineNetwork(16)
        reqs = uniform_requests(net, 20, 5, rng=1, min_distance=4)
        assert all(r.distance >= 4 for r in reqs)


class TestPoisson:
    def test_rate_scales_count(self):
        net = LineNetwork(8)
        low = poisson_requests(net, 0.5, 50, rng=0)
        high = poisson_requests(net, 4.0, 50, rng=0)
        assert len(high) > len(low)

    def test_max_requests_cap(self):
        net = LineNetwork(8)
        reqs = poisson_requests(net, 5.0, 100, rng=0, max_requests=17)
        assert len(reqs) == 17

    def test_validity(self):
        net = GridNetwork((3, 3))
        for r in poisson_requests(net, 2.0, 20, rng=3):
            net.check_request(r)


class TestBursty:
    def test_burst_structure(self):
        net = LineNetwork(16)
        reqs = bursty_requests(net, bursts=3, burst_size=5, horizon=20, rng=0)
        times = {r.arrival for r in reqs}
        assert len(times) <= 3
        for r in reqs:
            net.check_request(r)

    def test_spread(self):
        net = LineNetwork(16)
        reqs = bursty_requests(net, 1, 20, 10, rng=1, spread=2)
        sources = {r.source[0] for r in reqs}
        assert max(sources) - min(sources) <= 4


class TestPermutation:
    def test_halves(self):
        net = LineNetwork(8)
        reqs = permutation_requests(net, rng=0)
        for r in reqs:
            assert r.source[0] < 4 <= r.dest[0]

    def test_rounds(self):
        net = LineNetwork(8)
        one = permutation_requests(net, rng=0, rounds=1)
        three = permutation_requests(net, rng=0, rounds=3, window=4)
        assert len(three) == 3 * len(one)

    def test_grid(self):
        net = GridNetwork((4, 4))
        reqs = permutation_requests(net, rng=1)
        assert reqs and all(net.contains(r.dest) for r in reqs)


class TestDeadlines:
    def test_slack_zero_forces_shortest(self):
        net = LineNetwork(8)
        reqs = deadline_requests(net, 10, 5, slack=0, rng=0)
        for r in reqs:
            assert r.deadline == r.arrival + r.distance

    def test_with_deadlines_preserves_ids(self):
        net = LineNetwork(8)
        base = uniform_requests(net, 5, 5, rng=0)
        dl = with_deadlines(base, slack=3)
        assert [r.rid for r in dl] == [r.rid for r in base]
        assert all(r.deadline == r.arrival + r.distance + 3 for r in dl)

    def test_jitter_bounds(self):
        net = LineNetwork(8)
        reqs = deadline_requests(net, 20, 5, slack=2, rng=1, jitter=3)
        for r in reqs:
            assert 2 <= r.deadline - r.arrival - r.distance <= 5


class TestAdversarial:
    def test_clogging_shape(self):
        net = LineNetwork(8, buffer_size=2, capacity=1)
        reqs = clogging_instance(net, duration=4, shorts_per_node=1)
        longs = [r for r in reqs if r.distance == 7]
        shorts = [r for r in reqs if r.distance == 1]
        assert len(longs) == 4 and len(shorts) == 6 * 4

    def test_clogging_needs_four_nodes(self):
        with pytest.raises(ValidationError):
            clogging_instance(LineNetwork(3))

    def test_cascade_classes(self):
        net = LineNetwork(16, buffer_size=1, capacity=1)
        reqs = distance_cascade_instance(net, rng=0)
        distances = {r.distance for r in reqs}
        assert distances == {1, 2, 4, 8}

    def test_dense_area(self):
        net = GridNetwork((6, 6))
        reqs = dense_area_instance(net, area_side=2, per_node=3)
        assert len(reqs) == 4 * 3
        assert all(r.dest == (5, 5) for r in reqs)

    def test_dense_area_too_big(self):
        with pytest.raises(ValidationError):
            dense_area_instance(GridNetwork((4, 4)), area_side=5, per_node=1)

    def test_crossfire_shape(self):
        net = GridNetwork((8, 8))
        reqs = grid_crossfire_instance(net, width=2)
        rows = [r for r in reqs if r.source[0] == 0]
        cols = [r for r in reqs if r.source[1] == 0]
        assert len(rows) == 4 and len(cols) == 4

    def test_crossfire_needs_2d(self):
        with pytest.raises(ValidationError):
            grid_crossfire_instance(LineNetwork(8))
