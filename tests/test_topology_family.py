"""Topology-family tests: wraparound geometry against a BFS oracle,
per-edge capacities, and the spec-layer validation that guards them."""

import json
from collections import deque

import pytest

from repro.api import ALGORITHMS, NetworkSpec
from repro.network.packet import Request
from repro.network.topology import (
    GridNetwork,
    LineNetwork,
    Network,
    RingNetwork,
    TorusNetwork,
    grid_geometry_reason,
)
from repro.util.errors import ValidationError
from repro.workloads import hotspot_requests
from repro.workloads.hotspot import hot_edge


def bfs_dist(network: Network, src: tuple) -> dict:
    """Directed BFS distances from ``src`` using only ``out_neighbors``."""
    dist = {src: 0}
    dq = deque([src])
    while dq:
        u = dq.popleft()
        for _axis, v in network.out_neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                dq.append(v)
    return dist


ORACLE_NETWORKS = [
    TorusNetwork((3, 4), 1, 1),
    TorusNetwork((4, 4), 2, 2),
    RingNetwork(5, 1, 1),
    RingNetwork(6, 2, 1),
    LineNetwork(5, 1, 1),
    GridNetwork((3, 3), 1, 1),
]


class TestBFSOracle:
    @pytest.mark.parametrize("network", ORACLE_NETWORKS, ids=repr)
    def test_dist_matches_bfs(self, network):
        for src in network.nodes():
            oracle = bfs_dist(network, src)
            for dst in network.nodes():
                if dst in oracle:
                    assert network.dist(src, dst) == oracle[dst], (src, dst)
                else:
                    with pytest.raises(ValidationError):
                        network.dist(src, dst)

    @pytest.mark.parametrize("network", ORACLE_NETWORKS, ids=repr)
    def test_out_neighbors_match_edges(self, network):
        from_edges = {}
        for e in network.edges():
            from_edges.setdefault(e.tail, []).append((e.axis, e.head))
        for node in network.nodes():
            assert sorted(network.out_neighbors(node)) == sorted(
                from_edges.get(node, [])), node

    @pytest.mark.parametrize("network", ORACLE_NETWORKS, ids=repr)
    def test_num_edges_matches_enumeration(self, network):
        assert network.num_edges() == len(list(network.edges()))

    def test_ring_wraps_odd_and_even(self):
        assert RingNetwork(5, 1, 1).dist((4,), (0,)) == 1
        assert RingNetwork(5, 1, 1).dist((1,), (0,)) == 4
        assert RingNetwork(6, 1, 1).dist((3,), (2,)) == 5

    def test_torus_seam_distance(self):
        net = TorusNetwork((3, 4), 1, 1)
        assert net.dist((2, 3), (0, 0)) == 2  # one seam hop per axis

    def test_uniline_is_a_line(self):
        line = LineNetwork(5, 1, 1)
        assert not line.any_wrap
        with pytest.raises(ValidationError):
            line.dist((3,), (1,))


class TestPerEdgeCapacity:
    def test_capacity_of_defaults_to_scalar(self):
        net = GridNetwork((3, 3), 1, 2)
        assert net.capacity_of((0, 0), 1) == 2
        assert net.min_capacity == 2
        assert net.capacity_array() is None

    def test_link_caps_override_and_min(self):
        net = RingNetwork(6, 1, 3, link_caps={((2,), 0): 1})
        assert net.capacity_of((2,), 0) == 1
        assert net.capacity_of((3,), 0) == 3
        assert net.min_capacity == 1
        flat = net.capacity_array()
        assert flat is not None and flat[2] == 1 and flat[3] == 3

    def test_min_capacity_when_overrides_cover_all_edges(self):
        # every edge overridden above the scalar: the scalar no longer binds
        net = RingNetwork(3, 1, 1,
                          link_caps={((i,), 0): 2 for i in range(3)})
        assert net.min_capacity == 2

    def test_rejects_cap_on_missing_edge(self):
        with pytest.raises(ValidationError):
            LineNetwork(4, 1, 1, link_caps={((3,), 0): 2})  # no edge 3 -> 4

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValidationError):
            LineNetwork(4, 1, 1, link_caps={((0,), 0): 0})

    def test_rejects_bad_axis(self):
        with pytest.raises(ValidationError):
            LineNetwork(4, 1, 1, link_caps={((0,), 1): 2})

    def test_unavailable_reports_min_edge_capacity(self):
        # B, c satisfy det's floor, but one weak link drops min_capacity
        net = GridNetwork((4, 4), 3, 3, link_caps={((0, 0), 0): 1})
        entry = ALGORITHMS.get("det")
        reason = entry.unavailable(net, 64)
        assert reason is not None and "B, c >= 3" in reason
        uniform = GridNetwork((4, 4), 3, 3)
        assert entry.unavailable(uniform, 64) is None

    def test_grid_only_algorithms_unavailable_on_wrap(self):
        net = RingNetwork(8, 3, 3)
        for name in ("det", "bufferless", "theorem13", "rand"):
            reason = ALGORITHMS.get(name).unavailable(net, 64)
            assert reason is not None and "wraparound" in reason, name
        assert grid_geometry_reason(net) is not None
        assert grid_geometry_reason(LineNetwork(8, 3, 3)) is None


class TestSpecValidation:
    @pytest.mark.parametrize("dims", ["", "8x", "x8", "0x8", " 8", "8 x8",
                                      "-4", "4x-4", "a", "3.5"])
    def test_malformed_dims_raise_cleanly(self, dims):
        with pytest.raises(ValidationError) as exc:
            NetworkSpec.parse(dims)
        assert repr(dims) in str(exc.value) or str(dims) in str(exc.value)

    @pytest.mark.parametrize("field, value", [
        ("buffer_size", "3"), ("buffer_size", 1.5), ("buffer_size", True),
        ("buffer_size", -1), ("capacity", "2"), ("capacity", 0),
        ("capacity", None), ("capacity", False),
    ])
    def test_wrong_typed_scalars_raise(self, field, value):
        payload = {"kind": "line", "dims": [8],
                   "buffer_size": 1, "capacity": 1}
        payload[field] = value
        with pytest.raises(ValidationError) as exc:
            NetworkSpec.from_dict(payload)
        assert field in str(exc.value)

    def test_parse_kind_override(self):
        spec = NetworkSpec.parse("8", 2, 2, kind="ring")
        assert spec.kind == "ring"
        assert spec.build().any_wrap

    def test_default_kinds(self):
        assert NetworkSpec.parse("8").kind == "line"
        assert NetworkSpec.parse("4x4").kind == "grid"

    def test_torus_spec_round_trips(self):
        spec = NetworkSpec("torus", (4, 4), 2, 2,
                           link_caps=(((1, 0), 0, 1),))
        data = json.loads(json.dumps(spec.to_dict()))
        again = NetworkSpec.from_dict(data)
        assert again == spec
        net = again.build()
        assert net.capacity_of((1, 0), 0) == 1 and net.any_wrap

    def test_link_caps_absent_from_plain_spec_dict(self):
        # digest stability: pre-existing specs keep their serialised form
        d = NetworkSpec("grid", (4, 4), 1, 1).to_dict()
        assert "link_caps" not in d
        k = NetworkSpec("grid", (4, 4), 1, 1).key()
        assert "link_caps" not in str(k)

    def test_link_caps_rejects_duplicates_and_junk(self):
        with pytest.raises(ValidationError):
            NetworkSpec("line", (8,), 1, 1,
                        link_caps=(((0,), 0, 2), ((0,), 0, 3)))
        with pytest.raises(ValidationError):
            NetworkSpec("line", (8,), 1, 1, link_caps="nope")


class TestHotspotWorkload:
    def test_all_requests_cross_the_hot_edge(self):
        for net in (LineNetwork(9, 1, 1), RingNetwork(8, 1, 1),
                    TorusNetwork((5, 4), 1, 1)):
            (tail, axis) = hot_edge(net)
            m = tail[0]
            reqs = hotspot_requests(net, 50, 32, rng=7, span=2)
            assert len(reqs) == 50
            for r in reqs:
                net.check_request(r)
                # walking axis 0 from the source passes the hot tail
                l = net.dims[0]
                steps = ((r.dest[0] - r.source[0]) % l if net.wrap[0]
                         else r.dest[0] - r.source[0])
                passed = {(r.source[0] + k) % l for k in range(steps)}
                assert m in passed, r

    def test_span_zero_pins_endpoints(self):
        net = LineNetwork(9, 1, 1)
        reqs = hotspot_requests(net, 10, 16, rng=0, span=0)
        assert {(r.source[0], r.dest[0]) for r in reqs} == {(4, 5)}

    def test_rejects_tiny_axis(self):
        with pytest.raises(ValidationError):
            hotspot_requests(LineNetwork(1, 1, 1), 4, 8, rng=0)
