"""Stacked batch engine: parity, eligibility, and run_batch integration.

:class:`~repro.network.fast_batch_engine.FastBatchEngine` runs a whole
group of scenarios as one fused array program.  Its contract is the same
as the fast engine's, lifted to batches: for every job in the stack, the
result must be bit-identical to running that job alone through
:class:`~repro.network.fast_engine.FastEngine` -- across heterogeneous
grid shapes, buffer/capacity settings, policy families, and horizons,
and regardless of which other jobs share the stack.

The run-level tests pin the integration seams: eligibility partitioning
in ``run_batch``, the clean capability error for explicitly
``engine="batch"`` batches with nothing to stack, the warmed-cache
short-circuit (no stacked execution at all), and the on-disk
offline-bound tier shared across algorithms.
"""

import sys

import pytest

from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.api.registry import ALGORITHMS
from repro.api.run import ScenarioError, _batch_reason
from repro.baselines.edd import EarliestDeadlinePolicy
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.nearest_to_go import NearestToGoPolicy
from repro.core.deterministic import DeterministicRouter
from repro.network.engine import StepView, VectorDecision
from repro.network.fast_batch_engine import FastBatchEngine
from repro.network.fast_engine import FastEngine
from repro.network.simulator import Decision, PlanPolicy, Policy
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError
from repro.workloads import (
    deadline_requests,
    poisson_requests,
    uniform_requests,
)

STAT_FIELDS = (
    "delivered", "late", "rejected", "preempted", "forwards", "stores",
    "max_link_load", "max_buffer_load", "steps",
)

run_module = sys.modules["repro.api.run"]


def assert_results_identical(batch_result, solo_result, context):
    for name in STAT_FIELDS:
        assert getattr(batch_result.stats, name) \
            == getattr(solo_result.stats, name), (context, name)
    assert batch_result.status == solo_result.status, context
    assert batch_result.stats.delivery_times \
        == solo_result.stats.delivery_times, context
    assert batch_result.engine == "batch", context


class TestStackedParity:
    def _jobs(self):
        """A deliberately heterogeneous stack: 1-D and 2-D networks of
        different sizes, mixed B/c, every policy family, one empty job."""
        line8 = LineNetwork(8, buffer_size=2, capacity=1)
        grid45 = GridNetwork((4, 5), buffer_size=1, capacity=2)
        grid33 = GridNetwork((3, 3), buffer_size=0, capacity=1)
        line12 = LineNetwork(12, buffer_size=3, capacity=2)
        grid55 = GridNetwork((5, 5), buffer_size=2, capacity=1)
        line6 = LineNetwork(6, buffer_size=1, capacity=1)
        return [
            (line8, GreedyPolicy("fifo"),
             uniform_requests(line8, 25, 10, rng=0), 40),
            (grid45, GreedyPolicy("lifo"),
             uniform_requests(grid45, 30, 12, rng=1), 48),
            (grid33, NearestToGoPolicy(),
             poisson_requests(grid33, 1.0, 10, rng=2), 30),
            (line12, EarliestDeadlinePolicy(),
             deadline_requests(line12, 20, 10, slack=4, rng=3), 44),
            (grid55, GreedyPolicy("longest"),
             uniform_requests(grid55, 40, 15, rng=4), 60),
            (line6, GreedyPolicy("fifo"), [], 20),
        ]

    def test_heterogeneous_stack_matches_fast_engine(self):
        jobs = self._jobs()
        stacked = FastBatchEngine(jobs).run_many()
        assert len(stacked) == len(jobs)
        # request ids are globally unique, so the solo reruns reuse the
        # exact job tuples (engines never mutate requests)
        for i, (net, policy, reqs, horizon) in enumerate(jobs):
            solo = FastEngine(net, policy).run(reqs, horizon)
            assert_results_identical(stacked[i], solo, f"job {i}")

    def test_stack_order_does_not_matter(self):
        jobs = self._jobs()
        forward = FastBatchEngine(jobs).run_many()
        backward = FastBatchEngine(jobs[::-1]).run_many()[::-1]
        for i, (f, b) in enumerate(zip(forward, backward)):
            for name in STAT_FIELDS:
                assert getattr(f.stats, name) == getattr(b.stats, name), \
                    (i, name)
            assert f.status == b.status, i

    def test_plan_replay_stacks_with_online_policies(self):
        """Compiled plan programs from different planner instances merge
        into one stacked program alongside greedy jobs."""
        jobs = []
        for n, seed in ((8, 0), (10, 1)):
            net = LineNetwork(n, buffer_size=3, capacity=3)
            reqs = uniform_requests(net, 12, 8, rng=seed)
            plan = DeterministicRouter(net, 40).route(reqs)
            jobs.append((net, PlanPolicy(net, plan.all_executable_paths()),
                         reqs, 40))
        grid = GridNetwork((4, 4), buffer_size=1, capacity=1)
        jobs.append((grid, GreedyPolicy("fifo"),
                     uniform_requests(grid, 20, 10, rng=2), 32))
        stacked = FastBatchEngine(jobs).run_many()
        for i, (net, policy, reqs, horizon) in enumerate(jobs):
            solo = FastEngine(net, policy).run(reqs, horizon)
            assert_results_identical(stacked[i], solo, f"plan job {i}")

    def test_empty_batch(self):
        assert FastBatchEngine([]).run_many() == []

    def test_single_job_stack(self):
        net = LineNetwork(7, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 15, 8, rng=5)
        stacked = FastBatchEngine(
            [(net, NearestToGoPolicy(), reqs, 30)]).run_many()
        solo = FastEngine(net, NearestToGoPolicy()).run(reqs, 30)
        assert_results_identical(stacked[0], solo, "single job")


class _ScalarOnlyPolicy(Policy):
    def decide(self, node, t, candidates, network) -> Decision:
        return Decision()


class _StatefulVectorPolicy(Policy):
    batch_program = "stateful"

    def on_step_begin(self, t: int) -> None:
        self.t = t

    def decide_vector(self, view: StepView) -> VectorDecision:
        raise NotImplementedError

    def decide(self, node, t, candidates, network) -> Decision:
        return Decision()


class _UnlabelledVectorPolicy(Policy):
    def decide_vector(self, view: StepView) -> VectorDecision:
        raise NotImplementedError

    def decide(self, node, t, candidates, network) -> Decision:
        return Decision()


class TestEligibility:
    def test_supported_policies(self):
        for policy in (GreedyPolicy("fifo"), GreedyPolicy("longest"),
                       NearestToGoPolicy(), EarliestDeadlinePolicy()):
            assert FastBatchEngine.supports(policy), \
                FastBatchEngine.unsupported_reason(policy)

    def test_scalar_policy_rejected(self):
        reason = FastBatchEngine.unsupported_reason(_ScalarOnlyPolicy())
        assert reason is not None and "batch program" in reason

    def test_stateful_vector_policy_rejected(self):
        assert FastBatchEngine.unsupported_reason(
            _StatefulVectorPolicy()) is not None

    def test_unlabelled_vector_policy_rejected(self):
        """decide_vector alone is not enough: the policy must opt in with
        batch_program (the group-locality promise)."""
        assert FastBatchEngine.unsupported_reason(
            _UnlabelledVectorPolicy()) is not None

    def test_constructor_rejects_ineligible_job(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        with pytest.raises(ValidationError, match="cannot join"):
            FastBatchEngine([(net, _ScalarOnlyPolicy(), [], 10)])

    def test_batch_reason_consults_registry(self):
        def scen(alg, params):
            return Scenario(
                network=NetworkSpec("grid", (4, 4), 3, 3),
                workload=WorkloadSpec("uniform", {"num": 5, "horizon": 8}),
                algorithm={"name": alg, "params": params},
                horizon=16, seed=0)

        assert _batch_reason(scen("greedy", {"priority": "lifo"})) is None
        assert _batch_reason(scen("ntg", {})) is None
        assert _batch_reason(scen("edd", {})) is None
        assert _batch_reason(scen("edd", {"adapter": True})) is not None
        assert _batch_reason(scen("det", {})) is not None


def _sweep_scenarios(engine=None):
    out = []
    for seed in range(2):
        for alg in ({"name": "greedy", "params": {"priority": "fifo"}},
                    "ntg",
                    {"name": "edd", "params": {}}):
            out.append(Scenario(
                network=NetworkSpec("grid", (5, 5), 2, 2),
                workload=WorkloadSpec("uniform",
                                      {"num": 20, "horizon": 12}),
                algorithm=alg, horizon=24, seed=seed, engine=engine))
    return out


class TestRunBatchIntegration:
    def test_stacked_reports_match_serial(self):
        serial = run_batch(_sweep_scenarios(), workers=1)
        stacked = run_batch(_sweep_scenarios(engine="batch"), workers=1)
        for one, many in zip(serial, stacked):
            assert many.engine == "batch"
            for field in ("requests", "throughput", "bound", "late",
                          "rejected", "preempted", "latency_mean",
                          "latency_max", "steps", "meta"):
                a, b = getattr(one, field), getattr(many, field)
                assert a == b or (a != a and b != b), field

    def test_warmed_cache_spawns_no_stacked_execution(self, tmp_path,
                                                      monkeypatch):
        batch = _sweep_scenarios(engine="batch")
        warm = run_batch(batch, cache="readwrite", cache_dir=tmp_path)
        assert warm.cache_stats.stores == len(batch)

        def boom(self):
            raise AssertionError("stacked execution ran on a warmed cache")

        monkeypatch.setattr(FastBatchEngine, "run_many", boom)
        replay = run_batch(batch, cache="readwrite", cache_dir=tmp_path)
        assert replay.cache_stats.hits == len(batch)
        assert list(replay) == list(warm)

    def test_explicit_batch_all_ineligible_raises(self):
        det = Scenario(
            network=NetworkSpec("grid", (5, 5), 3, 3),
            workload=WorkloadSpec("uniform", {"num": 10, "horizon": 8}),
            algorithm="det", horizon=20, seed=0, engine="batch")
        with pytest.raises(ScenarioError, match="no scenario in this batch"):
            run_batch([det])

    def test_explicit_batch_mixed_batch_falls_back(self):
        det = Scenario(
            network=NetworkSpec("grid", (5, 5), 3, 3),
            workload=WorkloadSpec("uniform", {"num": 10, "horizon": 8}),
            algorithm="det", horizon=20, seed=0, engine="batch")
        ntg = det.replace(algorithm="ntg")
        reports = run_batch([det, ntg])
        assert reports[0].engine in ("reference", "fast")
        assert reports[1].engine == "batch"

    def test_env_batch_selection_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        det = Scenario(
            network=NetworkSpec("grid", (5, 5), 3, 3),
            workload=WorkloadSpec("uniform", {"num": 10, "horizon": 8}),
            algorithm="det", horizon=20, seed=0)
        reports = run_batch([det])  # ineligible, but not explicit: no error
        assert reports[0].engine == "fast"

    def test_duplicates_collapse_into_one_stacked_slot(self, monkeypatch):
        batch = _sweep_scenarios(engine="batch")
        batch = [batch[0], batch[0], batch[1], batch[0]]
        calls = []
        original = FastBatchEngine.run_many

        def counting(self):
            calls.append(len(self.jobs))
            return original(self)

        monkeypatch.setattr(FastBatchEngine, "run_many", counting)
        reports = run_batch(batch)
        assert calls == [2]  # 4 positions, 2 unique scenarios, 1 stack
        assert reports[0] == reports[1] == reports[3]


class TestBoundDiskCache:
    def test_bound_computed_once_per_instance_across_algorithms(
            self, tmp_path, monkeypatch):
        import repro.baselines.offline as offline

        calls = []
        original = offline.offline_bound

        def counting(network, requests, horizon, method="maxflow"):
            calls.append(1)
            return original(network, requests, horizon, method=method)

        monkeypatch.setattr(offline, "offline_bound", counting)
        run_module._bound_cache.clear()
        batch = _sweep_scenarios()  # 2 seeds x 3 algorithms, 2 instances
        run_batch(batch, cache="readwrite", cache_dir=tmp_path)
        assert len(calls) == 2  # once per (seed, instance), not per algorithm

        # a fresh process (simulated by clearing the in-process memo) now
        # serves the bound from disk: zero recomputation
        run_module._bound_cache.clear()
        run_batch([batch[0].replace(
            algorithm={"name": "greedy", "params": {"priority": "longest"}})],
            cache="read", cache_dir=tmp_path)
        assert len(calls) == 2
        run_module._bound_cache.clear()

    def test_bound_entry_guards_against_collisions(self, tmp_path):
        from repro.api.cache import ResultCache

        store = ResultCache(tmp_path)
        scenario = _sweep_scenarios()[0]
        store.store_bound(scenario, 12.5)
        assert store.load_bound(scenario) == 12.5
        other = scenario.replace(seed=scenario.seed + 1)
        assert store.load_bound(other) is None
        # corruption degrades to a miss, never a wrong bound
        store.bound_path(scenario).write_text("{not json")
        assert store.load_bound(scenario) is None
