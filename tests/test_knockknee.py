"""Tests for the knock-knee tile automaton (Section 5.2.3, Figure 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deterministic.knockknee import (
    EAST,
    NORTH,
    SOUTH,
    WEST,
    KnockKneeTile,
    TilePath,
    always_succeeds,
)
from repro.util.errors import ValidationError


def mk(name, side, lane, exit_side):
    return TilePath(name=name, entry=(side, lane), exit_side=exit_side)


class TestSinglePaths:
    def test_straight_east(self):
        tile = KnockKneeTile(4)
        (p,) = tile.route([mk("a", WEST, 1, EAST)])
        assert not p.failed and p.out == (EAST, 1)
        assert p.cells == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_straight_north(self):
        tile = KnockKneeTile(4)
        (p,) = tile.route([mk("a", SOUTH, 2, NORTH)])
        assert not p.failed and p.out == (NORTH, 2)

    def test_lone_path_bends_immediately(self):
        # rule 1: with a free crossing edge the path turns toward its exit
        tile = KnockKneeTile(4)
        (p,) = tile.route([mk("a", WEST, 1, NORTH)])
        assert not p.failed and p.out == (NORTH, 0)
        assert p.cells[0] == (1, 0) and p.cells[-1] == (3, 0)

    def test_interior_start(self):
        tile = KnockKneeTile(4)
        (p,) = tile.route([TilePath("a", ("I", (1, 1)), NORTH)])
        assert not p.failed and p.out == (NORTH, 1)


class TestPrecedenceAndKnockKnee:
    def test_straight_has_precedence(self):
        # a bender meets a straight climber: rule 2 forces the bender on
        tile = KnockKneeTile(4)
        bender = mk("b", WEST, 1, NORTH)
        straight = mk("s", SOUTH, 0, NORTH)
        routed = tile.route([bender, straight])
        b, s = routed
        assert not s.failed and s.out == (NORTH, 0)
        assert not b.failed and b.out == (NORTH, 1)  # bent at the next column

    def test_knock_knee_swap(self):
        # both want to bend: they swap directions at the meeting node
        tile = KnockKneeTile(4)
        h = mk("h", WEST, 0, NORTH)
        v = mk("v", SOUTH, 0, EAST)
        routed = tile.route([h, v])
        assert not routed[0].failed and routed[0].out == (NORTH, 0)
        assert not routed[1].failed and routed[1].out == (EAST, 0)
        # exactly two bends happened (one per partner, Figure 6)
        assert tile.count_bends(routed) == 0  # both bent at their first node

    def test_bender_skips_occupied_columns(self):
        # straight climbers on columns 0..2 force the west bender to keep
        # travelling east (rule 2) until the free column 3
        tile = KnockKneeTile(4)
        h = mk("h", WEST, 2, NORTH)
        blockers = [mk(f"s{c}", SOUTH, c, NORTH) for c in range(3)]
        routed = tile.route([h] + blockers)
        by_name = {p.name: p for p in routed}
        assert not by_name["h"].failed and by_name["h"].out == (NORTH, 3)
        for c in range(3):
            assert by_name[f"s{c}"].out == (NORTH, c)

    def test_lone_south_path_turns_at_entry(self):
        # rule 1: a south path wanting east turns at its first free node
        tile = KnockKneeTile(4)
        (v,) = tile.route([mk("v", SOUTH, 3, EAST)])
        assert not v.failed and v.out == (EAST, 0)

    def test_full_side_load_succeeds(self):
        # k straights + k benders: the Section 5.2.3 counting argument
        k = 6
        tile = KnockKneeTile(k)
        paths = [mk(f"s{c}", SOUTH, c, NORTH) for c in range(k)]
        paths += [mk(f"b{r}", WEST, r, NORTH) for r in range(k)]
        routed = tile.route(paths)
        # straights always make it; benders may fail only if out of columns
        fails = [p for p in routed if p.failed]
        assert all(p.name.startswith("b") for p in fails)

    def test_duplicate_entry_rejected(self):
        tile = KnockKneeTile(4)
        with pytest.raises(ValidationError):
            tile.route([mk("a", WEST, 1, EAST), mk("b", WEST, 1, NORTH)])

    def test_bad_lane_rejected(self):
        with pytest.raises(ValidationError):
            KnockKneeTile(4).route([mk("a", WEST, 7, EAST)])


class TestPaperClaim:
    """Section 5.2.3: detailed routing always succeeds in internal
    segments when per-side loads respect the IPP guarantee."""

    @settings(max_examples=120, deadline=None)
    @given(st.data())
    def test_feasible_demands_route(self, data):
        k = data.draw(st.integers(2, 8))
        # choose disjoint lanes; demand mix: every path that must exit
        # east enters west, every path exiting north enters west or south.
        west_rows = data.draw(st.lists(st.integers(0, k - 1), unique=True, max_size=k))
        south_cols = data.draw(st.lists(st.integers(0, k - 1), unique=True, max_size=k))
        paths = []
        north_exits = 0
        for r in west_rows:
            wants = data.draw(st.sampled_from([EAST, NORTH]))
            north_exits += wants == NORTH
            paths.append(mk(f"w{r}", WEST, r, wants))
        for c in south_cols:
            paths.append(mk(f"s{c}", SOUTH, c, NORTH))
            north_exits += 1
        # the paper's load guarantee: at most k paths exit each side
        if north_exits > k:
            return
        assert always_succeeds(k, paths)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 10_000))
    def test_cells_are_connected_monotone(self, k, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        rows = list(rng.permutation(k)[: max(1, k // 2)])
        paths = [
            mk(f"w{r}", WEST, int(r), EAST if rng.random() < 0.5 else NORTH)
            for r in rows
        ]
        routed = KnockKneeTile(k).route(paths)
        for p in routed:
            for a, b in zip(p.cells, p.cells[1:]):
                dr, dc = b[0] - a[0], b[1] - a[1]
                assert (dr, dc) in ((0, 1), (1, 0))
