"""Tests for the ASCII renderers."""

import pytest

from repro.analysis.viz import render_sketch_loads, render_spacetime, render_tile_quadrants
from repro.network.topology import GridNetwork, LineNetwork
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError


class TestSpacetimeRender:
    def setup_method(self):
        self.net = LineNetwork(6, buffer_size=2, capacity=2)
        self.graph = SpaceTimeGraph(self.net, 10)

    def test_empty_grid(self):
        text = render_spacetime(self.graph, col_lo=0, col_hi=5)
        lines = text.splitlines()
        assert len(lines) == 6 + 2  # rows + axis + caption
        assert lines[0].startswith("  5")
        assert "....." in lines[0]

    def test_path_glyphs(self):
        path = STPath((0, 0), (0, 0, 1), rid=9)
        text = render_spacetime(self.graph, [path], col_lo=0, col_hi=5)
        grid = text.split("    ^")[0]  # strip axis + legend
        assert grid.count("A") == 4  # 3 moves -> 4 vertices
        assert "A = request 9" in text

    def test_two_paths_distinct_glyphs(self):
        p1 = STPath((0, 0), (0,), rid=1)
        p2 = STPath((3, 0), (1,), rid=2)
        text = render_spacetime(self.graph, [p1, p2], col_lo=0, col_hi=5)
        assert "A" in text and "B" in text

    def test_tile_rulings(self):
        text = render_spacetime(self.graph, tiling=Tiling((3, 3)),
                                col_lo=0, col_hi=5)
        assert "+" in text and "|" in text and "-" in text

    def test_rejects_grids(self):
        g2 = SpaceTimeGraph(GridNetwork((3, 3)), 6)
        with pytest.raises(ValidationError):
            render_spacetime(g2)

    def test_window_clipping(self):
        path = STPath((0, 0), (1,) * 9, rid=0)
        text = render_spacetime(self.graph, [path], col_lo=0, col_hi=3)
        grid = text.split("    ^")[0]
        assert grid.count("A") == 4  # clipped to the window


class TestQuadrantRender:
    def test_counts(self):
        text = render_tile_quadrants(4, 6)
        grid = "".join(text.splitlines()[:4]).replace(" ", "")
        assert grid.count("I") == 2 * 3
        assert grid.count("X") == 2 * 3
        assert grid.count("T") == 2 * 3 * 2

    def test_requires_even(self):
        with pytest.raises(ValidationError):
            render_tile_quadrants(3, 4)

    def test_legend_present(self):
        text = render_tile_quadrants(4, 4)
        assert "I-routing" in text and "X-routing" in text


class TestSketchLoadRender:
    def test_renders_loads(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, 8)
        sketch = PlainSketchGraph(graph, Tiling((4, 4)))
        loads = {("e", (0, 0), 0): 3, ("e", (0, 0), 1): 1}
        text = render_sketch_loads(sketch, loads)
        assert "3^" in text and "1>" in text

    def test_empty_sketch_loads(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, 8)
        sketch = PlainSketchGraph(graph, Tiling((4, 4)))
        text = render_sketch_loads(sketch, {})
        assert "band" in text
