"""Tests for the lightest-path oracles."""

import pytest

from repro.packing.oracle import hop_bounded_lightest_path, lightest_path


class DictGraph:
    """Tiny digraph for oracle tests: {u: [(edge, v, cap)]}"""

    def __init__(self, adj, sinks=()):
        self.adj = adj
        self.sinks = set(sinks)

    def out_edges(self, u):
        for edge, v, _cap in self.adj.get(u, []):
            yield edge, v

    def capacity(self, edge):
        for edges in self.adj.values():
            for e, _v, cap in edges:
                if e == edge:
                    return cap
        raise KeyError(edge)

    def is_sink(self, node):
        return node in self.sinks


@pytest.fixture
def diamond():
    #  a -> b -> d  (cheap, 2 hops)
    #  a ------> d  (expensive, 1 hop)
    return DictGraph({
        "a": [("ab", "b", 1), ("ad", "d", 1)],
        "b": [("bd", "d", 1)],
    })


class TestLightestPath:
    def test_prefers_lighter(self, diamond):
        w = {"ab": 0.1, "bd": 0.1, "ad": 1.5}.__getitem__
        p = lightest_path(diamond, "a", "d", w)
        assert p.edges == ("ab", "bd")
        assert p.weight == pytest.approx(0.2)

    def test_tie_break_fewest_hops(self, diamond):
        w = lambda e: 0.0
        p = lightest_path(diamond, "a", "d", w)
        assert p.edges == ("ad",)

    def test_unreachable(self, diamond):
        assert lightest_path(diamond, "d", "a", lambda e: 0.0) is None

    def test_max_hops_rejects(self, diamond):
        w = {"ab": 0.1, "bd": 0.1, "ad": 1.5}.__getitem__
        assert lightest_path(diamond, "a", "d", w, max_hops=1) is None

    def test_source_is_target(self, diamond):
        p = lightest_path(diamond, "a", "a", lambda e: 0.0)
        assert p.edges == () and p.weight == 0.0

    def test_skips_foreign_sinks(self):
        g = DictGraph(
            {"a": [("as1", "s1", 1), ("ab", "b", 1)], "b": [("bs2", "s2", 1)]},
            sinks={"s1", "s2"},
        )
        p = lightest_path(g, "a", "s2", lambda e: 0.0)
        assert p.nodes == ("a", "b", "s2")

    def test_nodes_sequence(self, diamond):
        w = {"ab": 0.1, "bd": 0.1, "ad": 1.5}.__getitem__
        p = lightest_path(diamond, "a", "d", w)
        assert p.nodes == ("a", "b", "d")


class TestHopBounded:
    def test_exact_hop_bound_finds_detour(self):
        # lightest path has 3 hops; with max_hops=1 only the heavy edge fits
        g = DictGraph({
            "a": [("a1", "m1", 1), ("ad", "d", 1)],
            "m1": [("m2", "m2", 1)],
            "m2": [("m3", "d", 1)],
        })
        w = {"a1": 0.0, "m2": 0.0, "m3": 0.0, "ad": 0.9}.__getitem__
        p = hop_bounded_lightest_path(g, "a", "d", w, max_hops=1)
        assert p.edges == ("ad",)
        p3 = hop_bounded_lightest_path(g, "a", "d", w, max_hops=3)
        assert p3.edges == ("a1", "m2", "m3")

    def test_unreachable_within_hops(self):
        g = DictGraph({"a": [("ab", "b", 1)], "b": [("bc", "c", 1)]})
        assert hop_bounded_lightest_path(g, "a", "c", lambda e: 0.0, 1) is None

    def test_agrees_with_dijkstra_when_unconstrained(self):
        g = DictGraph({
            "a": [("ab", "b", 1), ("ac", "c", 1)],
            "b": [("bd", "d", 1)],
            "c": [("cd", "d", 1)],
        })
        w = {"ab": 0.2, "bd": 0.2, "ac": 0.3, "cd": 0.3}.__getitem__
        p1 = lightest_path(g, "a", "d", w)
        p2 = hop_bounded_lightest_path(g, "a", "d", w, max_hops=10)
        assert p1.weight == pytest.approx(p2.weight)
