"""Tests for the d-dimensional knock-knee rules (Section 6, rules a-d)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deterministic.knockknee_ddim import (
    DPath,
    KnockKneeCube,
    feasible_random_demand,
)
from repro.util.errors import ValidationError


class TestBasics:
    def test_straight_path_any_axis(self):
        cube = KnockKneeCube(3, 4)
        for axis in range(3):
            pos = [1, 1, 1]
            pos[axis] = 0
            (p,) = cube.route([DPath("a", axis, tuple(pos), axis)])
            assert not p.failed
            assert p.out_pos[axis] == 4

    def test_lone_bender_turns(self):
        cube = KnockKneeCube(3, 4)
        (p,) = cube.route([DPath("a", 0, (0, 2, 1), 2)])
        assert not p.failed
        assert p.out_pos[2] == 4

    def test_reduces_to_2d_automaton(self):
        # the 2-axis cube must agree with the dedicated d = 1 automaton
        from repro.core.deterministic.knockknee import (
            EAST, NORTH, SOUTH, WEST, KnockKneeTile, TilePath,
        )

        k = 5
        rng = np.random.default_rng(4)
        for _ in range(40):
            rows = rng.permutation(k)[: rng.integers(1, k + 1)]
            flat = [
                (int(r), NORTH if rng.random() < 0.5 else EAST) for r in rows
            ]
            p2d = [TilePath(f"w{r}", (WEST, r), want) for r, want in flat]
            # axes: 0 = north (rows), 1 = east (cols); west entry = axis 1
            pdd = [
                DPath(f"w{r}", 1, (r, 0), 0 if want == NORTH else 1)
                for r, want in flat
            ]
            routed2 = KnockKneeTile(k).route(p2d)
            routedd = KnockKneeCube(2, k).route(pdd)
            assert [p.failed for p in routed2] == [p.failed for p in routedd]

    def test_duplicate_entry_rejected(self):
        cube = KnockKneeCube(3, 4)
        with pytest.raises(ValidationError):
            cube.route([
                DPath("a", 0, (0, 1, 1), 0),
                DPath("b", 0, (0, 1, 1), 1),
            ])

    def test_entry_must_be_on_face(self):
        with pytest.raises(ValidationError):
            KnockKneeCube(3, 4).route([DPath("a", 0, (2, 1, 1), 0)])


class TestKnockKnees:
    def test_swap_in_3d(self):
        cube = KnockKneeCube(3, 4)
        a = DPath("a", 0, (0, 1, 1), 1)  # enters axis 0, wants axis 1
        b = DPath("b", 1, (1, 0, 1), 0)  # enters axis 1, wants axis 0
        # arrange a meeting: both reach node (1, 1, 1)
        routed = cube.route([a, b])
        assert not routed[0].failed and not routed[1].failed
        assert routed[0].out_pos[1] == 4
        assert routed[1].out_pos[0] == 4

    def test_monotone_cells(self):
        cube = KnockKneeCube(3, 5)
        rng = np.random.default_rng(1)
        paths = feasible_random_demand(3, 5, rng, max_paths=8)
        for p in cube.route(paths):
            for u, v in zip(p.cells, p.cells[1:]):
                diff = [b - a for a, b in zip(u, v)]
                assert sum(diff) == 1 and all(x in (0, 1) for x in diff)


class TestSection6Claim:
    """Random feasible demands route without failure (the Theorem 10
    detailed-routing step)."""

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000), st.integers(2, 4), st.integers(2, 6))
    def test_feasible_demands_route(self, seed, naxes, side):
        rng = np.random.default_rng(seed)
        paths = feasible_random_demand(naxes, side, rng)
        routed = KnockKneeCube(naxes, side).route(paths)
        # straights never fail; benders may fail only when the demand
        # saturates their exit face -- which feasible_random_demand avoids
        # up to the per-face cap, so failures must stay rare
        fails = sum(p.failed for p in routed)
        straights = [p for p in routed if p.exit_axis == p.entry_axis]
        assert all(not p.failed for p in straights)
        assert fails <= max(1, len(routed) // 2)
