"""Reference <-> fast engine parity and engine-selection tests.

The array-backed :class:`~repro.network.fast_engine.FastEngine` must be a
bit-identical drop-in for :class:`~repro.network.simulator.Simulator` on
the policies it supports: same final ``status`` map, same stats counters,
same delivery times -- across workload families, grid shapes, buffer and
capacity settings, and priority orders.
"""

import pytest

from repro.baselines.greedy import GreedyPolicy, run_greedy
from repro.baselines.nearest_to_go import NearestToGoPolicy, run_nearest_to_go
from repro.core.deterministic import DeterministicRouter
from repro.network.engine import (
    make_engine,
    resolve_engine_name,
    set_default_engine,
)
from repro.network.fast_engine import FastEngine
from repro.network.packet import Request
from repro.network.simulator import Decision, Policy, Simulator, execute_plan
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import CapacityError, ValidationError
from repro.workloads import (
    clogging_instance,
    deadline_requests,
    grid_crossfire_instance,
    poisson_requests,
    uniform_requests,
)

STAT_FIELDS = (
    "delivered", "late", "rejected", "preempted", "forwards", "stores",
    "max_link_load", "max_buffer_load", "steps",
)


def assert_parity(net, policy_a, policy_b, reqs, horizon):
    """Run both engines and assert identical results."""
    ref = Simulator(net, policy_a).run(reqs, horizon)
    fast = FastEngine(net, policy_b).run(reqs, horizon)
    for name in STAT_FIELDS:
        assert getattr(fast.stats, name) == getattr(ref.stats, name), name
    assert fast.status == ref.status
    assert fast.stats.delivery_times == ref.stats.delivery_times
    return ref, fast


NETWORK_GRID = [
    ((9,), 1, 1),
    ((9,), 0, 1),
    ((12,), 2, 2),
    ((4, 4), 1, 1),
    ((3, 5), 2, 1),
    ((4, 4), 0, 2),
    ((2, 3, 2), 1, 1),
]


def build(dims, B, c):
    if len(dims) == 1:
        return LineNetwork(dims[0], buffer_size=B, capacity=c)
    return GridNetwork(dims, buffer_size=B, capacity=c)


class TestGreedyFamilyParity:
    @pytest.mark.parametrize("dims,B,c", NETWORK_GRID)
    @pytest.mark.parametrize("priority", ["fifo", "lifo", "longest"])
    def test_uniform(self, dims, B, c, priority):
        net = build(dims, B, c)
        for seed in range(3):
            reqs = uniform_requests(net, 40, 15, rng=seed)
            assert_parity(net, GreedyPolicy(priority), GreedyPolicy(priority),
                          reqs, 60)

    @pytest.mark.parametrize("dims,B,c", NETWORK_GRID)
    def test_ntg_uniform(self, dims, B, c):
        net = build(dims, B, c)
        for seed in range(3):
            reqs = uniform_requests(net, 40, 15, rng=seed)
            assert_parity(net, NearestToGoPolicy(), NearestToGoPolicy(),
                          reqs, 60)

    @pytest.mark.parametrize("dims,B,c", [((9,), 1, 1), ((4, 4), 2, 2)])
    def test_poisson(self, dims, B, c):
        net = build(dims, B, c)
        for seed in range(3):
            reqs = poisson_requests(net, 2.5, 20, rng=seed)
            assert_parity(net, GreedyPolicy("fifo"), GreedyPolicy("fifo"),
                          reqs, 80)
            assert_parity(net, NearestToGoPolicy(), NearestToGoPolicy(),
                          reqs, 80)

    def test_deadlines_produce_identical_late_counts(self):
        net = LineNetwork(6, buffer_size=4, capacity=1)
        reqs = [Request.line(0, 3, 0, deadline=4 + i % 2, rid=1000 + i)
                for i in range(5)]
        ref, fast = assert_parity(net, GreedyPolicy("fifo"),
                                  GreedyPolicy("fifo"), reqs, 40)
        assert ref.stats.late > 0  # the scenario actually exercises lateness

    @pytest.mark.parametrize("slack", [0, 2])
    def test_random_deadlines(self, slack):
        net = GridNetwork((4, 4), buffer_size=1, capacity=1)
        for seed in range(3):
            reqs = deadline_requests(net, 40, 12, slack=slack, rng=seed,
                                     jitter=3)
            assert_parity(net, NearestToGoPolicy(), NearestToGoPolicy(),
                          reqs, 60)

    def test_adversarial_clogging(self):
        net = LineNetwork(12, buffer_size=1, capacity=1)
        reqs = clogging_instance(net, duration=6)
        assert_parity(net, GreedyPolicy("fifo"), GreedyPolicy("fifo"), reqs, 60)
        assert_parity(net, NearestToGoPolicy(), NearestToGoPolicy(), reqs, 60)

    def test_adversarial_crossfire(self):
        net = GridNetwork((8, 8), buffer_size=1, capacity=1)
        reqs = grid_crossfire_instance(net)
        assert_parity(net, NearestToGoPolicy(), NearestToGoPolicy(), reqs, 80)

    def test_arrival_beyond_horizon_and_trivial(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [
            Request.line(0, 2, 50, rid=0),  # never injected within horizon
            Request.line(2, 2, 3, rid=1),   # trivial: delivered at injection
        ]
        ref, fast = assert_parity(net, GreedyPolicy("fifo"),
                                  GreedyPolicy("fifo"), reqs, 10)
        assert fast.status[0].value == "rejected"
        assert fast.status[1].value == "delivered"

    def test_empty_requests(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        ref, fast = assert_parity(net, GreedyPolicy("fifo"),
                                  GreedyPolicy("fifo"), [], 10)
        assert fast.status == {} and fast.stats.steps == 0


class TestPlanParity:
    def test_deterministic_router_replay(self):
        net = LineNetwork(16, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 40, 16, rng=3)
        paths = DeterministicRouter(net, 96).route(reqs).all_executable_paths()
        ref = execute_plan(net, paths, reqs, 96, engine="reference")
        fast = execute_plan(net, paths, reqs, 96, engine="fast")
        for name in STAT_FIELDS:
            assert getattr(fast.stats, name) == getattr(ref.stats, name), name
        assert fast.status == ref.status
        assert fast.stats.delivery_times == ref.stats.delivery_times

    def test_infeasible_plan_raises_on_both_engines(self):
        from repro.spacetime.graph import STPath

        net = LineNetwork(3, buffer_size=1, capacity=1)
        plans = {
            0: STPath((0, 0), (0, 0), rid=0),
            1: STPath((0, 0), (0, 0), rid=1),
        }
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        for engine in ("reference", "fast"):
            with pytest.raises(CapacityError):
                execute_plan(net, plans, reqs, 10, engine=engine)


class TestEngineSelection:
    def test_run_helpers_accept_engine(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 10, 8, rng=0)
        for runner in (run_greedy, run_nearest_to_go):
            ref = runner(net, reqs, 40, engine="reference")
            fast = runner(net, reqs, 40, engine="fast")
            assert fast.status == ref.status

    def test_unknown_engine_rejected(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        with pytest.raises(ValidationError):
            make_engine(net, GreedyPolicy(), engine="warp")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "fast")
        assert resolve_engine_name() == "fast"
        assert resolve_engine_name("reference") == "reference"  # arg wins
        net = LineNetwork(8, buffer_size=1, capacity=1)
        assert isinstance(make_engine(net, GreedyPolicy()), FastEngine)

    def test_default_engine_setting(self):
        try:
            set_default_engine("fast")
            assert resolve_engine_name() == "fast"
        finally:
            set_default_engine("reference")
        with pytest.raises(ValidationError):
            set_default_engine("warp")

    def test_custom_scalar_policy_runs_on_fast_via_adapter(self):
        # the PR-4 decision ABI: custom scalar policies no longer fall
        # back -- the batched adapter lifts them onto the fast engine
        class Custom(Policy):
            def decide(self, node, t, candidates, network):
                return Decision()

        net = LineNetwork(8, buffer_size=1, capacity=1)
        engine = make_engine(net, Custom(), engine="fast")
        assert isinstance(engine, FastEngine)
        assert FastEngine.supports(Custom())

    def test_policy_without_decide_falls_back_to_reference(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        engine = make_engine(net, object(), engine="fast")
        assert isinstance(engine, Simulator)
        with pytest.raises(ValidationError):
            FastEngine(net, object())

    def test_vectorize_false_pins_the_reference_engine(self):
        # an order-sensitive policy that cannot honour the ABI contract
        # opts out explicitly and keeps the safe per-packet path
        class OrderSensitive(Policy):
            vectorize = False

            def decide(self, node, t, candidates, network):
                return Decision(store=candidates[:network.buffer_size])

        net = LineNetwork(8, buffer_size=1, capacity=1)
        assert not FastEngine.supports(OrderSensitive())
        engine = make_engine(net, OrderSensitive(), engine="fast")
        assert isinstance(engine, Simulator)

    def test_trace_falls_back_to_reference(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        engine = make_engine(net, GreedyPolicy(), engine="fast", trace=True)
        assert isinstance(engine, Simulator)
        with pytest.raises(ValidationError):
            FastEngine(net, GreedyPolicy(), trace=True)

    def test_fast_engine_supports(self):
        assert FastEngine.supports(GreedyPolicy("lifo"))
        assert FastEngine.supports(NearestToGoPolicy())
        assert not FastEngine.supports(object())


class TestVectorABI:
    """The vectorized decision ABI: custom policies on the fast engine."""

    def _instance(self, B=1, c=1):
        net = LineNetwork(10, buffer_size=B, capacity=c)
        reqs = uniform_requests(net, 30, 12, rng=5)
        return net, reqs

    def test_native_vector_policy_matches_scalar_reference(self):
        # EDD implements both interfaces; the ABI must produce the
        # decision the scalar reference loop produces, bit for bit
        from repro.baselines.edd import EarliestDeadlinePolicy

        net, reqs = self._instance(B=2, c=2)
        assert_parity(net, EarliestDeadlinePolicy(),
                      EarliestDeadlinePolicy(), reqs, 60)

    def test_batched_adapter_matches_reference(self):
        from repro.baselines.edd import EarliestDeadlinePolicy, _ScalarOnly

        net, reqs = self._instance(B=2, c=1)
        assert_parity(net, EarliestDeadlinePolicy(),
                      _ScalarOnly(EarliestDeadlinePolicy()), reqs, 60)

    def test_adapter_forwards_on_step_begin(self):
        calls = []

        class Coordinated(Policy):
            def on_step_begin(self, t):
                calls.append(t)

            def decide(self, node, t, candidates, network):
                return Decision()

        net, reqs = self._instance()
        FastEngine(net, Coordinated()).run(reqs, 30)
        assert calls and calls == sorted(calls)

    def test_drop_everything_vector_policy(self):
        import numpy as np

        from repro.network.engine import VectorDecision

        class DropAll:
            def decide_vector(self, view):
                zeros = np.zeros(view.size, dtype=bool)
                return VectorDecision(forward=zeros,
                                      axis=np.zeros(view.size, np.int64),
                                      store=zeros)

        net, reqs = self._instance()
        result = FastEngine(net, DropAll()).run(reqs, 60)
        # everything except source==dest trivia is rejected at injection
        trivial = sum(r.source == r.dest for r in reqs)
        assert result.stats.delivered == trivial
        assert result.stats.rejected == len(reqs) - trivial

    def test_engine_enforces_capacity_on_vector_decisions(self):
        import numpy as np

        from repro.network.engine import VectorDecision

        class ForwardAll:
            def decide_vector(self, view):
                ones = np.ones(view.size, dtype=bool)
                return VectorDecision(forward=ones,
                                      axis=np.zeros(view.size, np.int64),
                                      store=np.zeros(view.size, bool))

        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 5, 0, rid=i) for i in range(3)]
        with pytest.raises(CapacityError):
            FastEngine(net, ForwardAll()).run(reqs, 30)

    def test_engine_rejects_double_scheduling(self):
        import numpy as np

        from repro.network.engine import VectorDecision

        class Both:
            def decide_vector(self, view):
                ones = np.ones(view.size, dtype=bool)
                return VectorDecision(forward=ones,
                                      axis=np.zeros(view.size, np.int64),
                                      store=ones)

        net = LineNetwork(6, buffer_size=1, capacity=1)
        with pytest.raises(ValidationError):
            FastEngine(net, Both()).run([Request.line(0, 5, 0, rid=0)], 30)

    def test_engine_rejects_off_grid_axis(self):
        import numpy as np

        from repro.network.engine import VectorDecision

        class WrongAxis:
            def decide_vector(self, view):
                ones = np.ones(view.size, dtype=bool)
                return VectorDecision(forward=ones,
                                      axis=np.ones(view.size, np.int64),
                                      store=np.zeros(view.size, bool))

        net = LineNetwork(6, buffer_size=1, capacity=1)  # d=1: axis 1 invalid
        with pytest.raises(ValidationError):
            FastEngine(net, WrongAxis()).run([Request.line(0, 5, 0, rid=0)], 30)

    def test_adapter_rejects_overfull_store(self):
        class Hoarder(Policy):
            def decide(self, node, t, candidates, network):
                return Decision(store=list(candidates))

        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 5, 0, rid=i) for i in range(3)]
        with pytest.raises(CapacityError):
            FastEngine(net, Hoarder()).run(reqs, 30)
        with pytest.raises(CapacityError):
            Simulator(net, Hoarder()).run(reqs, 30)
