"""Metamorphic/invariant suite over traces and results from both engines.

Where the differential suite (``test_differential.py``) asserts the two
engines agree with *each other*, this suite asserts both agree with the
*model* (Section 2.1 / Appendix F):

* buffer occupancy never exceeds ``B`` at any node in any step, and link
  load never exceeds ``c`` (checked per-step from reference traces and
  from the stats watermarks both engines report);
* delivered implies on time (Section 5.4: credit only for ``t' <= d_i``),
  and no delivery happens before ``arrival + distance`` (packets cannot
  outrun the grid);
* every request resolves to exactly one terminal status, and the status
  counts reconcile with the stats counters;
* Model 2 moves at most ``B`` packets per node per step (at most one of
  them onto the link), the Appendix F property separating it from
  Model 1.

The suite runs the same instances through the reference engines (with
tracing) and the vectorized engines, so a violation pinpoints which
implementation broke the model rather than both drifting together.
"""

from __future__ import annotations

import pytest

from repro.baselines.edd import EarliestDeadlinePolicy
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.nearest_to_go import NearestToGoPolicy
from repro.network.engine import make_engine
from repro.network.node_models import (
    FastModel2Engine,
    Model2LineSimulator,
    Model2Policy,
    separation_instance,
)
from repro.network.packet import DeliveryStatus
from repro.network.simulator import Simulator
from repro.network.topology import GridNetwork, LineNetwork
from repro.workloads import deadline_requests, uniform_requests

INSTANCES = [
    # (dims, B, c, num, window, horizon)
    ((10,), 1, 1, 40, 12, 60),
    ((10,), 0, 1, 40, 12, 60),
    ((12,), 3, 2, 50, 16, 80),
    ((4, 4), 1, 1, 40, 12, 60),
    ((3, 5), 2, 2, 50, 12, 60),
]

POLICIES = [
    lambda: GreedyPolicy("fifo"),
    lambda: GreedyPolicy("longest"),
    lambda: NearestToGoPolicy(),
    lambda: EarliestDeadlinePolicy(),
]


def build(dims, B, c):
    if len(dims) == 1:
        return LineNetwork(dims[0], buffer_size=B, capacity=c)
    return GridNetwork(dims, buffer_size=B, capacity=c)


def request_map(reqs):
    return {r.rid: r for r in reqs}


def assert_result_invariants(net, reqs, result):
    """Model invariants every engine's result must satisfy."""
    by_rid = request_map(reqs)
    stats = result.stats

    # watermark invariants: the engine enforced B and c
    assert stats.max_buffer_load <= net.buffer_size
    assert stats.max_link_load <= net.capacity

    # every request resolved to exactly one terminal status
    assert set(result.status) == set(by_rid)
    terminal = (DeliveryStatus.DELIVERED, DeliveryStatus.LATE,
                DeliveryStatus.REJECTED, DeliveryStatus.PREEMPTED)
    counts = {st: 0 for st in terminal}
    for st in result.status.values():
        assert st in terminal, st
        counts[st] += 1
    assert counts[DeliveryStatus.DELIVERED] == stats.delivered
    assert counts[DeliveryStatus.LATE] == stats.late
    assert counts[DeliveryStatus.REJECTED] == stats.rejected
    assert counts[DeliveryStatus.PREEMPTED] == stats.preempted
    assert sum(counts.values()) == len(reqs)

    # delivery-time invariants (Section 5.4)
    assert set(stats.delivery_times) == {
        rid for rid, st in result.status.items()
        if st in (DeliveryStatus.DELIVERED, DeliveryStatus.LATE)
    }
    for rid, t in stats.delivery_times.items():
        r = by_rid[rid]
        assert t >= r.arrival + r.distance  # cannot outrun the grid
        if result.status[rid] == DeliveryStatus.DELIVERED:
            assert r.deadline is None or t <= r.deadline  # on time
        else:  # LATE: reached the destination but after the deadline
            assert r.deadline is not None and t > r.deadline


def assert_trace_invariants(net, result, model2: bool = False):
    """Per-step occupancy invariants from a reference-engine trace."""
    B, c = net.buffer_size, net.capacity
    stores: dict = {}  # (t, node) -> count
    forwards: dict = {}  # (t, node, axis) -> count
    for e in result.trace.events:
        if e.kind == "store":
            stores[(e.t, e.node)] = stores.get((e.t, e.node), 0) + 1
        elif e.kind == "forward":
            key = (e.t, e.node, e.detail)
            forwards[key] = forwards.get(key, 0) + 1
    assert all(v <= B for v in stores.values())
    assert all(v <= c for v in forwards.values())
    if model2:
        # Appendix F: a Model 2 node moves at most B packets per step --
        # the survivors of phase 0 -- and at most one onto the link
        moved: dict = {}
        for (t, node, _), v in forwards.items():
            assert v <= 1
            moved[(t, node)] = moved.get((t, node), 0) + v
        for (t, node), v in stores.items():
            moved[(t, node)] = moved.get((t, node), 0) + v
        assert all(v <= B for v in moved.values())


class TestModel1Invariants:
    @pytest.mark.parametrize("dims,B,c,num,window,horizon", INSTANCES)
    @pytest.mark.parametrize("make_policy", POLICIES)
    def test_both_engines_respect_the_model(self, dims, B, c, num, window,
                                            horizon, make_policy):
        net = build(dims, B, c)
        for seed in range(2):
            reqs = uniform_requests(net, num, window, rng=seed)
            traced = Simulator(net, make_policy(), trace=True).run(
                reqs, horizon)
            assert_result_invariants(net, reqs, traced)
            assert_trace_invariants(net, traced)
            fast = make_engine(net, make_policy(), engine="fast").run(
                reqs, horizon)
            assert fast.engine == "fast"
            assert_result_invariants(net, reqs, fast)
            assert fast.status == traced.status

    def test_deadline_workload_delivered_implies_on_time(self):
        net = build((4, 4), 1, 1)
        for seed in range(3):
            reqs = deadline_requests(net, 40, 12, slack=1, rng=seed, jitter=2)
            for engine in ("reference", "fast"):
                result = make_engine(net, NearestToGoPolicy(),
                                     engine=engine).run(reqs, 60)
                assert_result_invariants(net, reqs, result)


class TestModel2Invariants:
    @pytest.mark.parametrize("n,B", [(8, 1), (8, 2), (10, 3), (6, 0)])
    def test_both_engines_respect_the_model(self, n, B):
        net = LineNetwork(n, buffer_size=B, capacity=1)
        for seed in range(2):
            reqs = uniform_requests(net, 3 * n, n, rng=seed)
            traced = Model2LineSimulator(net, Model2Policy(),
                                         trace=True).run(reqs, 4 * n)
            assert_result_invariants(net, reqs, traced)
            assert_trace_invariants(net, traced, model2=True)
            fast = FastModel2Engine(net, Model2Policy()).run(reqs, 4 * n)
            assert_result_invariants(net, reqs, fast)
            assert fast.status == traced.status

    def test_model2_deadlines(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        for seed in range(3):
            reqs = deadline_requests(net, 20, 10, slack=2, rng=seed, jitter=2)
            for engine in ("reference", "fast"):
                result = make_engine(net, Model2Policy(),
                                     engine=engine).run(reqs, 60)
                assert_result_invariants(net, reqs, result)


class TestSeparationRegression:
    """Pin the Appendix F remark-1 separation on both engines (PR-4
    regression: the fast Model 2 path must preserve the E14 headline)."""

    def test_direct_engines(self):
        net, reqs = separation_instance()
        m1_ref = Simulator(net, NearestToGoPolicy()).run(reqs, 10)
        m1_fast = make_engine(net, NearestToGoPolicy(),
                              engine="fast").run(reqs, 10)
        m2_ref = Model2LineSimulator(net).run(reqs, 10)
        m2_fast = FastModel2Engine(net).run(reqs, 10)
        # Model 1 keeps both packets (store one, forward the other)
        assert m1_ref.stats.delivered == m1_fast.stats.delivered == 2
        # Model 2 funnels both through the single buffer slot: one drops
        assert m2_ref.stats.delivered == m2_fast.stats.delivered == 1
        assert m2_ref.status == m2_fast.status

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_through_scenario_layer(self, engine):
        from repro.api import NetworkSpec, Scenario, WorkloadSpec, run

        def scenario(algorithm):
            return Scenario(
                network=NetworkSpec("line", (3,), 1, 1),
                workload=WorkloadSpec("separation"),
                algorithm=algorithm,
                horizon=10,
                engine=engine,
            )

        m1 = run(scenario("ntg"))
        m2 = run(scenario("ntg-model2"))
        assert m1.engine == engine and m2.engine == engine  # no fallback
        assert m1.throughput == 2
        assert m2.throughput == 1
        assert m2.preempted + m2.rejected == 1
