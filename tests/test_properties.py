"""Property-based invariants across the whole pipeline (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import BufferlessLineRouter
from repro.core.randomized import RandomizedLineRouter
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.packing.maxflow import throughput_upper_bound
from repro.spacetime.graph import SpaceTimeGraph
from repro.workloads.uniform import uniform_requests

seeds = st.integers(0, 10_000)


class TestDeterministicInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seeds, st.integers(5, 40))
    def test_plan_always_replays_and_below_bound(self, seed, num):
        net = LineNetwork(24, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, num, 24, rng=seed)
        plan = DeterministicRouter(net, 96).route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 96)
        assert plan.consistent_with_simulation(result)
        assert plan.throughput <= throughput_upper_bound(net, reqs, 96)

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_delivered_paths_end_at_destinations(self, seed):
        net = LineNetwork(24, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 20, 24, rng=seed)
        plan = DeterministicRouter(net, 96).route(reqs)
        by_rid = {r.rid: r for r in reqs}
        for rid, path in plan.paths.items():
            assert path.end(1)[0] == by_rid[rid].dest[0]
            assert path.start == (
                by_rid[rid].source[0],
                by_rid[rid].arrival - by_rid[rid].source[0],
            )

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_paths_are_valid_in_spacetime(self, seed):
        net = LineNetwork(24, buffer_size=3, capacity=3)
        graph = SpaceTimeGraph(net, 96)
        reqs = uniform_requests(net, 25, 24, rng=seed)
        plan = DeterministicRouter(net, 96).route(reqs)
        for path in plan.all_executable_paths().values():
            graph.check_path(path)

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_every_request_has_exactly_one_outcome(self, seed):
        net = LineNetwork(24, buffer_size=3, capacity=3)
        reqs = uniform_requests(net, 30, 24, rng=seed)
        plan = DeterministicRouter(net, 96).route(reqs)
        assert set(plan.outcome) == {r.rid for r in reqs}
        for rid, oc in plan.outcome.items():
            assert (rid in plan.paths) == (oc == RouteOutcome.DELIVERED)


class TestRandomizedInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seeds, seeds)
    def test_plan_replays_any_seed(self, wseed, rseed):
        net = LineNetwork(32, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 30, 32, rng=wseed)
        router = RandomizedLineRouter(net, 128, rng=rseed, lam=0.5)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 128)
        assert plan.consistent_with_simulation(result)

    @settings(max_examples=15, deadline=None)
    @given(seeds)
    def test_nonpreemptive_always(self, seed):
        net = LineNetwork(32, buffer_size=2, capacity=2)
        reqs = uniform_requests(net, 40, 32, rng=seed)
        router = RandomizedLineRouter(net, 128, rng=seed, lam=1.0)
        plan = router.route(reqs)
        assert not plan.truncated

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_far_class_respects_capacities(self, seed):
        net = LineNetwork(32, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 50, 32, rng=seed)
        router = RandomizedLineRouter(net, 128, rng=seed, lam=1.0, force_class="far")
        router.route(reqs)
        assert router.far_router.ledger.max_load_ratio() <= 1.0


class TestBufferlessInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seeds)
    def test_accepted_diagonals_disjoint(self, seed):
        net = LineNetwork(16, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 25, 16, rng=seed)
        plan = BufferlessLineRouter(net, 48).route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 48)
        assert plan.consistent_with_simulation(result)
        assert result.stats.max_link_load <= 1
