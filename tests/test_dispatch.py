"""Partition-equivalence suite for the shard dispatcher (repro.api.dispatch).

The headline guarantee of the distributed sweep orchestrator: **for
every partition of a batch into shards, the merged output is
bit-identical to the serial ``run_batch``** -- same reports in the same
order, same ``meta``, and (when the cache is on) the same aggregate
cache accounting.  Hypothesis draws random scenario batches, random
shard counts, and random merge orders to hunt for counterexamples.

The second pillar is *fail loudly*: ``merge`` must reject anything
short of exactly one complete batch -- a missing shard, the same shard
twice, a shard from a different batch, or a result file truncated by a
crash.  Crash recovery itself is rerun-based and cache-backed: the
crash-resume test truncates a shard's JSONL mid-file and shows the
rerun completing entirely from cache hits with byte-identical output.
"""

from __future__ import annotations

import json
import pathlib
import random
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import (
    NetworkSpec,
    Scenario,
    ShardError,
    WorkloadSpec,
    batch_digest,
    load_manifest,
    merge,
    plan_shards,
    run_batch,
    run_shard,
    write_manifest,
)
from repro.api.dispatch import write_shard_result


def scenario(seed=0, algorithm="ntg", n=12, num=16, engine=None):
    """A cheap runnable scenario (greedy family on a small line)."""
    return Scenario(
        network=NetworkSpec("line", (n,), 2, 2),
        workload=WorkloadSpec("uniform", {"num": num, "horizon": n}),
        algorithm=algorithm,
        horizon=4 * n,
        seed=seed,
        engine=engine,
    )


@st.composite
def batches(draw, min_size=1, max_size=8):
    """Random batches of cheap scenarios with pairwise-distinct digests
    (the plan contract; duplicates are covered separately)."""
    raw = draw(st.lists(
        st.builds(
            scenario,
            seed=st.integers(0, 9),
            algorithm=st.sampled_from(("ntg", "greedy", "edd")),
            n=st.integers(6, 12),
            num=st.integers(4, 20),
        ),
        min_size=min_size, max_size=max_size,
    ))
    seen, batch = set(), []
    for s in raw:
        if s.digest() not in seen:
            seen.add(s.digest())
            batch.append(s)
    hypothesis.assume(batch)
    return batch


def run_all_shards(manifests, directory, **kwargs) -> list:
    # default to cache="off": the ambient REPRO_CACHE (which flips the
    # default mode to readwrite) must neither leak real cache state into
    # these assertions nor let them write into a user's cache directory
    kwargs.setdefault("cache", "off")
    files = []
    for manifest in manifests:
        path = pathlib.Path(directory) / f"s{manifest['shard_index']}.jsonl"
        run_shard(manifest, path, **kwargs)
        files.append(path)
    return files


class TestPlan:
    def test_plan_is_deterministic_and_digest_ordered(self):
        batch = [scenario(seed=s, algorithm=a)
                 for s in range(4) for a in ("ntg", "greedy")]
        plans = [plan_shards(batch, 3) for _ in range(2)]
        assert plans[0] == plans[1]
        digests = [item["digest"]
                   for manifest in plans[0]
                   for item in manifest["scenarios"]]
        # striped assignment of the digest-sorted order: each shard's own
        # sequence is sorted, and the union is the whole batch exactly once
        for manifest in plans[0]:
            own = [item["digest"] for item in manifest["scenarios"]]
            assert own == sorted(own)
        assert sorted(digests) == sorted(f"{s.digest():08x}" for s in batch)
        assert len(set(digests)) == len(batch)

    def test_plan_is_independent_of_input_order_modulo_positions(self):
        batch = [scenario(seed=s) for s in range(5)]
        shuffled = list(reversed(batch))
        a = plan_shards(batch, 2)
        b = plan_shards(shuffled, 2)
        # same scenarios land on the same shards (positions differ because
        # they index the caller's batch order)
        for ma, mb in zip(a, b):
            assert [i["digest"] for i in ma["scenarios"]] \
                == [i["digest"] for i in mb["scenarios"]]
        # but the batch digest covers the order: these are different batches
        assert a[0]["batch_digest"] != b[0]["batch_digest"]

    def test_plan_rejects_duplicates(self):
        with pytest.raises(ShardError, match="duplicate scenario"):
            plan_shards([scenario(), scenario()], 2)

    def test_plan_rejects_bad_shard_counts(self):
        with pytest.raises(ShardError, match="n_shards"):
            plan_shards([scenario()], 0)
        with pytest.raises(ShardError, match="empty"):
            plan_shards([], 1)

    def test_more_shards_than_scenarios_yields_empty_shards(self, tmp_path):
        batch = [scenario(seed=s) for s in range(2)]
        manifests = plan_shards(batch, 4)
        assert sum(len(m["scenarios"]) for m in manifests) == 2
        files = run_all_shards(manifests, tmp_path)
        assert list(merge(files)) == list(run_batch(batch, cache="off"))

    def test_manifest_round_trips_through_file(self, tmp_path):
        manifest = plan_shards([scenario(seed=s) for s in range(3)], 2)[1]
        path = write_manifest(manifest, tmp_path / "m.json")
        assert load_manifest(path) == manifest

    def test_tampered_manifest_rejected(self, tmp_path):
        manifest = plan_shards([scenario()], 1)[0]
        manifest["scenarios"][0]["scenario"]["seed"] = 99  # digest now stale
        path = tmp_path / "m.json"
        path.write_text(json.dumps(manifest))
        with pytest.raises(ShardError, match="does not match"):
            load_manifest(path)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much,
                                 HealthCheck.data_too_large])
@given(batch=batches(), n_shards=st.integers(1, 10),
       shuffle_seed=st.integers(0, 2**16))
def test_partition_equivalence(batch, n_shards, shuffle_seed):
    """Any shard count, any partition stripe, any merge order: merged
    output equals the serial run_batch report-for-report (RunReport
    equality covers every measured field, the scenario, and ``meta``)."""
    serial = run_batch(batch, cache="off")
    with tempfile.TemporaryDirectory() as tmp:
        files = run_all_shards(plan_shards(batch, n_shards), tmp)
        random.Random(shuffle_seed).shuffle(files)
        merged = merge(files)
    assert list(merged) == list(serial)
    assert [r.scenario for r in merged] == [r.scenario for r in serial]
    assert [r.meta for r in merged] == [r.meta for r in serial]
    assert merged.cache_stats is None  # no shard ran with the cache on


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much,
                                 HealthCheck.data_too_large])
@given(batch=batches(min_size=2, max_size=5), n_shards=st.integers(2, 4))
def test_partition_equivalence_with_cache(batch, n_shards):
    """With the cache on, the merged batch also reproduces the serial
    run's aggregate cache accounting (misses/stores split across shards
    sum to the serial totals)."""
    with tempfile.TemporaryDirectory() as serial_cache, \
            tempfile.TemporaryDirectory() as shard_cache, \
            tempfile.TemporaryDirectory() as tmp:
        serial = run_batch(batch, cache="readwrite", cache_dir=serial_cache)
        files = run_all_shards(plan_shards(batch, n_shards), tmp,
                               cache="readwrite", cache_dir=shard_cache)
        merged = merge(files)
        assert list(merged) == list(serial)
        assert vars(merged.cache_stats) == vars(serial.cache_stats)
        # and a rerun of every shard is pure replay, still equal
        refiles = run_all_shards(plan_shards(batch, n_shards), tmp,
                                 cache="readwrite", cache_dir=shard_cache)
        remerged = merge(refiles)
        assert list(remerged) == list(serial)
        assert remerged.cache_stats.hits == len(batch)
        assert remerged.cache_stats.misses == 0


class TestMergeRejects:
    @pytest.fixture
    def shard_files(self, tmp_path):
        batch = [scenario(seed=s, algorithm=a)
                 for s in range(3) for a in ("ntg", "greedy")]
        return run_all_shards(plan_shards(batch, 3), tmp_path)

    def test_missing_shard(self, shard_files):
        with pytest.raises(ShardError, match="missing batch position"):
            merge(shard_files[:-1])

    def test_duplicate_shard(self, shard_files):
        with pytest.raises(ShardError, match="appears twice"):
            merge(shard_files + [shard_files[0]])

    def test_foreign_shard(self, shard_files, tmp_path):
        foreign = plan_shards([scenario(seed=77)], 1)
        foreign_files = run_all_shards(foreign, tmp_path / "other")
        with pytest.raises(ShardError, match="foreign"):
            merge(shard_files[:-1] + foreign_files)

    def test_mixed_plans_rejected(self, shard_files, tmp_path):
        batch = [scenario(seed=s, algorithm=a)
                 for s in range(3) for a in ("ntg", "greedy")]
        other_plan = run_all_shards(plan_shards(batch, 2), tmp_path / "p2")
        with pytest.raises(ShardError, match="different plan"):
            merge(shard_files + other_plan)

    def test_truncated_file(self, shard_files):
        path = shard_files[0]
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop the footer
        with pytest.raises(ShardError, match="no footer"):
            merge(shard_files)

    def test_half_written_line(self, shard_files):
        path = shard_files[0]
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ShardError, match="truncated|no footer"):
            merge(shard_files)

    def test_not_a_shard_file(self, tmp_path, shard_files):
        rogue = tmp_path / "rogue.jsonl"
        rogue.write_text('{"hello": 1}\n')
        with pytest.raises(ShardError, match="not a shard result"):
            merge(shard_files + [rogue])

    def test_empty_input(self):
        with pytest.raises(ShardError, match="at least one"):
            merge([])


class TestMergeDirectory:
    """``merge`` accepts directories of result files (the queue's
    ``results/`` directory, or a collected-from-hosts dropbox)."""

    @pytest.fixture
    def populated(self, tmp_path):
        batch = [scenario(seed=s, algorithm=a)
                 for s in range(3) for a in ("ntg", "greedy")]
        files = run_all_shards(plan_shards(batch, 3), tmp_path / "results")
        return batch, tmp_path / "results", files

    def test_directory_equals_explicit_file_list(self, populated):
        batch, directory, files = populated
        assert list(merge(directory)) == list(merge(files))
        assert list(merge([directory])) == list(run_batch(batch, cache="off"))

    def test_mixed_directory_and_files(self, populated, tmp_path):
        batch, directory, files = populated
        moved = tmp_path / "elsewhere.jsonl"
        files[0].rename(moved)
        assert list(merge([moved, directory])) \
            == list(run_batch(batch, cache="off"))

    def test_empty_directory_rejected(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(ShardError, match="holds no .*shard result"):
            merge(empty)

    def test_non_jsonl_entries_ignored(self, populated):
        _, directory, _ = populated
        (directory / "notes.txt").write_text("scratch\n")
        (directory / "sub").mkdir()
        batch_reports = merge(directory)
        assert len(batch_reports) == 6


class TestCrashResume:
    def test_truncated_shard_reruns_from_cache(self, tmp_path):
        """The resume contract: a shard that died mid-write is simply
        rerun; with the cache warmed by the first attempt the rerun is
        100% replay and the merged batch is byte-identical."""
        batch = [scenario(seed=s, algorithm=a)
                 for s in range(3) for a in ("ntg", "greedy")]
        manifests = plan_shards(batch, 2)
        cache_dir = tmp_path / "cache"
        files = run_all_shards(manifests, tmp_path, cache="readwrite",
                               cache_dir=cache_dir)

        def merged_bytes():
            return json.dumps([r.to_dict() for r in merge(files)],
                              sort_keys=True)

        before = merged_bytes()

        # crash: shard 0's JSONL loses its footer and its last report line
        victim = files[0]
        intact_lines = victim.read_text().splitlines()
        victim.write_text("\n".join(intact_lines[:-2]) + "\n")
        with pytest.raises(ShardError):
            merge(files)

        # resume = rerun the same manifest: every scenario replays from the
        # cache (no recomputation) and the file is atomically replaced
        rerun = run_shard(manifests[0], victim, cache="readwrite",
                          cache_dir=cache_dir)
        assert rerun.cache_stats.hits == len(manifests[0]["scenarios"])
        assert rerun.cache_stats.misses == 0
        # header and every report line are byte-identical (cache replay);
        # only the footer's hit/miss accounting legitimately differs
        assert victim.read_text().splitlines()[:-1] == intact_lines[:-1]
        assert merged_bytes() == before

    def test_shard_file_write_is_atomic(self, tmp_path):
        manifests = plan_shards([scenario(seed=s) for s in range(2)], 1)
        run_shard(manifests[0], tmp_path / "s0.jsonl", cache="off")
        assert [p.name for p in tmp_path.iterdir()] == ["s0.jsonl"]


class TestBatchDigest:
    def test_engine_excluded(self):
        fast = [scenario(seed=s, engine="fast") for s in range(2)]
        ref = [scenario(seed=s, engine="reference") for s in range(2)]
        assert batch_digest(fast) == batch_digest(ref)

    def test_order_and_content_sensitive(self):
        batch = [scenario(seed=s) for s in range(3)]
        assert batch_digest(batch) != batch_digest(list(reversed(batch)))
        assert batch_digest(batch) != batch_digest(batch[:-1])

    def test_cross_engine_merge_measures_identically(self, tmp_path):
        """Shards of the same batch pinned to different engines still
        merge (engines are bit-identical by contract; the digest excludes
        the engine field)."""
        batch = [scenario(seed=s) for s in range(4)]
        serial = run_batch(batch, cache="off")
        manifests = plan_shards(batch, 2)
        # rewrite shard 1's scenarios to run on the fast engine
        for item in manifests[1]["scenarios"]:
            item["scenario"]["engine"] = "fast"
        files = run_all_shards(manifests, tmp_path)
        merged = merge(files)
        for got, want in zip(merged, serial):
            assert got.throughput == want.throughput
            assert got.late == want.late
            assert got.steps == want.steps


def test_write_shard_result_roundtrip(tmp_path):
    """The JSONL layout is self-describing: header declares the shard,
    body lines carry (index, digest, report), footer closes the file."""
    batch = [scenario(seed=s) for s in range(2)]
    manifest = plan_shards(batch, 1)[0]
    reports = run_batch([Scenario.from_dict(i["scenario"])
                         for i in manifest["scenarios"]], cache="off")
    path = write_shard_result(manifest, reports, tmp_path / "s.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["kind"] == "repro-shard-result"
    assert lines[0]["batch_digest"] == manifest["batch_digest"]
    assert [rec["index"] for rec in lines[1:-1]] == lines[0]["indices"]
    assert lines[-1]["kind"] == "repro-shard-footer"
    assert lines[-1]["reports"] == 2
