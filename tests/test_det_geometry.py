"""Tests for sketch-path geometry decomposition."""

import pytest

from repro.core.deterministic.geometry import (
    Run,
    plain_sketch_tiles,
    runs_of,
    sketch_tiles,
    tile_moves,
)
from repro.packing.oracle import OraclePath
from repro.util.errors import RoutingError


def split_path(tiles):
    nodes = []
    for t in tiles:
        nodes.extend([("in", t), ("out", t)])
    nodes.append(("sink", "x"))
    return OraclePath((), tuple(nodes), 0.0)


class TestSketchTiles:
    def test_extracts_tiles_and_drops_sink(self):
        p = split_path([(0, 0), (0, 1), (1, 1)])
        assert sketch_tiles(p) == [(0, 0), (0, 1), (1, 1)]

    def test_single_tile(self):
        p = split_path([(2, 3)])
        assert sketch_tiles(p) == [(2, 3)]

    def test_plain_tiles(self):
        p = OraclePath((), (("t", (0, 0)), ("t", (1, 0)), ("sink", "d")), 0.0)
        assert plain_sketch_tiles(p) == [(0, 0), (1, 0)]

    def test_malformed_raises(self):
        p = OraclePath((), (("out", (0, 0)), ("sink", "x")), 0.0)
        with pytest.raises(RoutingError):
            sketch_tiles(p)


class TestTileMoves:
    def test_axes(self):
        moves = tile_moves([(0, 0), (1, 0), (1, 1), (2, 1)])
        assert moves == [0, 1, 0]

    def test_empty_for_single(self):
        assert tile_moves([(0, 0)]) == []

    def test_rejects_diagonal(self):
        with pytest.raises(RoutingError):
            tile_moves([(0, 0), (1, 1)])

    def test_rejects_backward(self):
        with pytest.raises(RoutingError):
            tile_moves([(1, 0), (0, 0)])

    def test_3d(self):
        moves = tile_moves([(0, 0, 0), (0, 1, 0), (0, 1, 1)])
        assert moves == [1, 2]


class TestRuns:
    def test_single_run(self):
        assert runs_of([0, 0, 0]) == [Run(axis=0, count=3, start=0, end=3)]

    def test_alternating(self):
        runs = runs_of([0, 1, 0])
        assert [r.axis for r in runs] == [0, 1, 0]
        assert [(r.start, r.end) for r in runs] == [(0, 1), (1, 2), (2, 3)]

    def test_grouping(self):
        runs = runs_of([1, 1, 0, 0, 0, 1])
        assert [(r.axis, r.count) for r in runs] == [(1, 2), (0, 3), (1, 1)]

    def test_empty(self):
        assert runs_of([]) == []

    def test_run_boundaries_consistent(self):
        moves = [0, 0, 1, 0, 1, 1]
        runs = runs_of(moves)
        assert runs[0].end == runs[1].start
        assert runs[-1].end == len(moves)
        assert sum(r.count for r in runs) == len(moves)
