"""Tests for interval packing (Section 5.2.1 / GLL82)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing.interval import Interval, OnlineIntervalPacker, max_disjoint_intervals


def ivs(pairs, owner_start=0):
    return [Interval(lo, hi, owner=owner_start + i) for i, (lo, hi) in enumerate(pairs)]


class TestInterval:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Interval(3, 3)

    def test_open_overlap(self):
        a, b = Interval(0, 5), Interval(5, 8)
        assert not a.overlaps(b)  # endpoints may be shared (open intervals)

    def test_real_overlap(self):
        assert Interval(0, 5).overlaps(Interval(4, 8))
        assert Interval(4, 8).overlaps(Interval(0, 5))

    def test_containment_overlaps(self):
        assert Interval(0, 10).overlaps(Interval(3, 4))


class TestOfflineOptimal:
    def test_simple(self):
        chosen = max_disjoint_intervals(ivs([(0, 3), (2, 5), (4, 7)]))
        assert len(chosen) == 2

    def test_nested(self):
        chosen = max_disjoint_intervals(ivs([(0, 10), (1, 2), (3, 4), (5, 6)]))
        assert len(chosen) == 3

    def test_empty(self):
        assert max_disjoint_intervals([]) == []

    def test_all_disjoint(self):
        pairs = [(i * 2, i * 2 + 1) for i in range(5)]
        assert len(max_disjoint_intervals(ivs(pairs))) == 5


class TestOnlineRule:
    def test_accept_disjoint(self):
        p = OnlineIntervalPacker()
        ok, victims = p.offer(Interval(0, 3, owner=1))
        assert ok and not victims
        ok, victims = p.offer(Interval(3, 6, owner=2))
        assert ok and not victims
        assert len(p.accepted) == 2

    def test_reject_longer(self):
        # paper rule: if b_i > b_j the newcomer is rejected
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 4, owner=1))
        ok, victims = p.offer(Interval(2, 6, owner=2))
        assert not ok and not victims
        assert p.accepted[0].owner == 1

    def test_preempt_shorter(self):
        # if b_i <= b_j the newcomer preempts
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 9, owner=1))
        ok, victims = p.offer(Interval(2, 5, owner=2))
        assert ok and victims[0].owner == 1
        assert [iv.owner for iv in p.accepted] == [2]

    def test_equal_right_endpoint_preempts(self):
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 5, owner=1))
        ok, victims = p.offer(Interval(2, 5, owner=2))
        assert ok and victims

    def test_multi_conflict_rejects(self):
        # overlapping two disjoint accepted intervals forces b_i past the
        # leftmost conflict's right endpoint, so the rule always rejects;
        # at most one victim is ever preempted
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 3, owner=1))
        p.offer(Interval(4, 5, owner=2))
        ok, victims = p.offer(Interval(2, 5, owner=3))
        assert not ok and not victims
        assert [iv.owner for iv in p.accepted] == [1, 2]

    def test_multi_conflict_rejected_when_dominated(self):
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 3, owner=1))
        p.offer(Interval(4, 5, owner=2))
        ok, victims = p.offer(Interval(2, 6, owner=3))
        assert not ok

    def test_would_accept_dry_run(self):
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 4, owner=1))
        assert p.would_accept(Interval(1, 3, owner=2))
        assert not p.would_accept(Interval(2, 6, owner=2))
        assert len(p.accepted) == 1  # unchanged

    def test_release(self):
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 4, owner=7))
        assert p.release(7)
        assert not p.accepted
        assert not p.release(7)

    def test_replace_shrinks(self):
        p = OnlineIntervalPacker()
        iv = Interval(0, 8, owner=1)
        p.offer(iv)
        p.replace(iv, Interval(0, 3, owner=1))
        assert p.accepted[0].hi == 3
        # the freed range is available again
        ok, _ = p.offer(Interval(3, 8, owner=2))
        assert ok

    def test_replace_drop(self):
        p = OnlineIntervalPacker()
        iv = Interval(0, 8, owner=1)
        p.offer(iv)
        p.replace(iv, None)
        assert not p.accepted

    def test_holds(self):
        p = OnlineIntervalPacker()
        iv = Interval(2, 8, owner=1)
        p.offer(iv)
        assert p.holds(iv)
        assert not p.holds(Interval(2, 9, owner=1))

    def test_insert_raw_bypasses_rule(self):
        p = OnlineIntervalPacker()
        p.insert_raw(Interval(0, 4, owner=1))
        assert len(p.accepted) == 1

    def test_histories(self):
        p = OnlineIntervalPacker()
        p.offer(Interval(0, 9, owner=1))
        p.offer(Interval(1, 4, owner=2))  # preempts 1
        p.offer(Interval(2, 12, owner=3))  # rejected
        assert [iv.owner for iv in p.preempted] == [1]
        assert [iv.owner for iv in p.rejected] == [3]

    def test_identical_bounds_distinct_owners(self):
        # regression: owner used to be excluded from equality, so after a
        # request preempted an identical-bounds interval, the victim's
        # cleanup (holds/replace on its stale handle) deleted the
        # *preemptor's* reservation -- its committed moves then occupied the
        # line with no interval backing them (CapacityError at replay)
        p = OnlineIntervalPacker()
        old = Interval(0, 4, owner=1)
        p.offer(old)
        ok, victims = p.offer(Interval(0, 4, owner=2))
        assert ok and victims == [old]
        assert not p.holds(old)
        assert p.holds(Interval(0, 4, owner=2))


@st.composite
def sorted_interval_seq(draw):
    """Intervals with nondecreasing left endpoints (the paper's regime)."""
    n = draw(st.integers(1, 25))
    lo = 0
    out = []
    for i in range(n):
        lo += draw(st.integers(0, 3))
        length = draw(st.integers(1, 8))
        out.append(Interval(lo, lo + length, owner=i))
    return out


class TestOptimality:
    """The online preemptive rule keeps an optimal packing of the prefix
    when intervals arrive sorted by left endpoint (Section 5.2.1)."""

    @settings(max_examples=200, deadline=None)
    @given(sorted_interval_seq())
    def test_matches_offline_optimum(self, seq):
        packer = OnlineIntervalPacker()
        for iv in seq:
            packer.offer(iv)
        online = len(packer.accepted)
        offline = len(max_disjoint_intervals(seq))
        assert online == offline

    @settings(max_examples=100, deadline=None)
    @given(sorted_interval_seq())
    def test_accepted_always_disjoint(self, seq):
        packer = OnlineIntervalPacker()
        for iv in seq:
            packer.offer(iv)
            acc = packer.accepted
            for a, b in zip(acc, acc[1:]):
                assert a.hi <= b.lo

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(1, 8)),
                    min_size=1, max_size=20))
    def test_disjoint_even_unsorted(self, pairs):
        packer = OnlineIntervalPacker()
        for i, (lo, length) in enumerate(pairs):
            packer.offer(Interval(lo, lo + length, owner=i))
        acc = sorted(packer.accepted)
        for a, b in zip(acc, acc[1:]):
            assert a.hi <= b.lo
