"""Tests for Algorithm 3 (online integral path packing, Theorem 1)."""

import math

import pytest

from repro.network.packet import Request
from repro.network.topology import LineNetwork
from repro.packing.ipp import OnlinePathPacking
from repro.packing.lp import fractional_opt
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError


class ParallelEdges:
    """k parallel unit-capacity edges s -> t (weight growth fixture)."""

    def __init__(self, cap=1.0):
        self.cap = cap

    def out_edges(self, u):
        if u == "s":
            yield "e", "t"

    def capacity(self, edge):
        return self.cap


@pytest.fixture
def sketch_setup():
    net = LineNetwork(16, buffer_size=2, capacity=2)
    graph = SpaceTimeGraph(net, horizon=32)
    sketch = PlainSketchGraph(graph, Tiling((4, 4)))
    return net, graph, sketch


class TestWeightUpdate:
    def test_single_edge_saturates_after_log_pmax(self):
        g = ParallelEdges(cap=1.0)
        pmax = 64
        ipp = OnlinePathPacking(g, pmax=pmax)
        accepted = 0
        for _ in range(100):
            if ipp.route("s", "t") is not None:
                accepted += 1
        # unit edge accepts ~log2(pmax) requests before x_e >= 1
        assert accepted <= math.log2(1 + 3 * pmax) + 1
        assert accepted >= math.log2(pmax) - 2

    def test_update_formula(self):
        g = ParallelEdges(cap=2.0)
        ipp = OnlinePathPacking(g, pmax=10)
        ipp.route("s", "t")
        factor = 2 ** 0.5
        assert ipp.x["e"] == pytest.approx((factor - 1) / 10)
        ipp.route("s", "t")
        assert ipp.x["e"] == pytest.approx(
            (factor - 1) / 10 * factor + (factor - 1) / 10
        )

    def test_rejects_when_weight_reaches_one(self):
        g = ParallelEdges(cap=1.0)
        ipp = OnlinePathPacking(g, pmax=2)
        while ipp.route("s", "t") is not None:
            pass
        assert ipp.x["e"] >= 1.0
        assert ipp.stats.rejected >= 1

    def test_load_bound_value(self):
        ipp = OnlinePathPacking(ParallelEdges(), pmax=100)
        assert ipp.load_bound() == pytest.approx(math.log2(301))

    def test_pmax_validation(self):
        with pytest.raises(ValidationError):
            OnlinePathPacking(ParallelEdges(), pmax=0)


class TestTheorem1Invariants:
    def test_invariants_on_sketch_graph(self, sketch_setup):
        net, graph, sketch = sketch_setup
        ipp = OnlinePathPacking(sketch, pmax=4 * net.n)
        sink = sketch.register_sink("d", (14,), 0, graph.horizon)
        src = sketch.source_node(Request.line(1, 14, 0))
        for _ in range(60):
            ipp.route(src, sink)
        ipp.check_theorem1_invariants()
        assert ipp.stats.accepted > 0

    def test_load_respects_bound(self, sketch_setup):
        net, graph, sketch = sketch_setup
        ipp = OnlinePathPacking(sketch, pmax=4 * net.n)
        sink = sketch.register_sink("d", (14,), 0, graph.horizon)
        src = sketch.source_node(Request.line(1, 14, 0))
        for _ in range(200):
            ipp.route(src, sink)
        assert ipp.max_load_ratio() <= ipp.load_bound() + 1e-9

    def test_primal_at_most_twice_dual(self, sketch_setup):
        net, graph, sketch = sketch_setup
        ipp = OnlinePathPacking(sketch, pmax=4 * net.n)
        sink = sketch.register_sink("d", (10,), 0, graph.horizon)
        for a in (0, 2, 4):
            src = sketch.source_node(Request.line(a, 10, a))
            for _ in range(20):
                ipp.route(src, sink)
        assert ipp.stats.primal_cost <= 2 * ipp.stats.dual_value + 1e-9

    def test_sink_edges_stay_free(self, sketch_setup):
        net, graph, sketch = sketch_setup
        ipp = OnlinePathPacking(sketch, pmax=4 * net.n)
        sink = sketch.register_sink("d", (14,), 0, graph.horizon)
        src = sketch.source_node(Request.line(1, 14, 0))
        for _ in range(30):
            ipp.route(src, sink)
        for edge in ipp.x:
            if edge[0] == "k":
                assert ipp.x[edge] == 0.0

    def test_z_values_recorded(self, sketch_setup):
        net, graph, sketch = sketch_setup
        ipp = OnlinePathPacking(sketch, pmax=4 * net.n)
        sink = sketch.register_sink("d", (14,), 0, graph.horizon)
        src = sketch.source_node(Request.line(1, 14, 0))
        ipp.route(src, sink)
        assert len(ipp.stats.z) == 1 and 0 <= ipp.stats.z[0] <= 1


class TestCompetitiveness:
    def test_half_of_fractional_opt_single_commodity(self):
        """Theorem 1: throughput >= opt_f / 2.  Single bottleneck edge."""
        net = LineNetwork(6, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        sketch = PlainSketchGraph(graph, Tiling((2, 2)))
        ipp = OnlinePathPacking(sketch, pmax=24)
        requests = [Request.line(0, 5, t, rid=t) for t in range(8)]
        accepted = 0
        sink = sketch.register_sink("d5", (5,), 0, graph.horizon)
        for r in requests:
            if ipp.route(sketch.source_node(r), sink) is not None:
                accepted += 1
        optf = fractional_opt(net, requests, 12)
        assert accepted >= optf / 2 - 1e-9
