"""Tests for the fractional multicommodity LP (opt_f, Lemma 2)."""

import pytest

from repro.network.packet import Request
from repro.network.topology import GridNetwork, LineNetwork
from repro.packing.exact import exact_opt_small
from repro.packing.lp import fractional_opt
from repro.packing.maxflow import throughput_upper_bound
from repro.util.errors import ValidationError
from repro.workloads.uniform import uniform_requests


class TestBasics:
    def test_single_request(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        assert fractional_opt(net, [Request.line(0, 4, 0)], 10) == pytest.approx(1.0)

    def test_empty(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        assert fractional_opt(net, [], 10) == 0.0

    def test_unreachable_within_horizon(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        assert fractional_opt(net, [Request.line(0, 4, 0)], 2) == pytest.approx(0.0)

    def test_contention_fractional_value(self):
        net = LineNetwork(3, buffer_size=0, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        # bufferless: both need the same diagonal; only one can be served
        assert fractional_opt(net, reqs, 4) == pytest.approx(1.0)

    def test_details_served_fractions(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, 0, rid=0), Request.line(0, 3, 0, rid=1)]
        value, served = fractional_opt(net, reqs, 10, return_details=True)
        assert value == pytest.approx(served.sum())
        assert all(0 - 1e-9 <= s <= 1 + 1e-9 for s in served)

    def test_grid(self):
        net = GridNetwork((3, 3), buffer_size=1, capacity=1)
        reqs = [Request((0, 0), (2, 2), 0)]
        assert fractional_opt(net, reqs, 8) == pytest.approx(1.0)

    def test_variable_guard(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 500, 64, rng=0)
        with pytest.raises(ValidationError):
            fractional_opt(net, reqs, 4000)


class TestRelationsBetweenBounds:
    def test_lp_at_least_exact(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 5, 4, rng=7)
        lp = fractional_opt(net, reqs, 9)
        exact, _ = exact_opt_small(net, reqs, 9)
        assert lp >= exact - 1e-9

    def test_lp_vs_maxflow_both_upper_bound(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 6, 5, rng=3)
        lp = fractional_opt(net, reqs, 10)
        mf = throughput_upper_bound(net, reqs, 10)
        exact, _ = exact_opt_small(net, reqs, 10)
        assert lp >= exact - 1e-9 and mf >= exact

    def test_integral_when_no_contention(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = [Request.line(i, i + 1, 0, rid=i) for i in range(0, 8, 2)]
        assert fractional_opt(net, reqs, 4) == pytest.approx(len(reqs))


class TestPathLengthBound:
    """Lemma 2: opt_f(R | p_max) degrades gracefully as p_max shrinks."""

    def test_monotone_in_pmax(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 5, t, rid=t) for t in range(4)]
        values = [fractional_opt(net, reqs, 20, pmax=p) for p in (5, 8, 12, 20)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_pmax_below_distance_kills_request(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 5, 0)]
        assert fractional_opt(net, reqs, 20, pmax=4) == pytest.approx(0.0)

    def test_paper_pmax_loses_nothing_small_instance(self):
        # with the paper's p_max (huge), the bound is inactive
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 6, 5, rng=5)
        free = fractional_opt(net, reqs, 12)
        capped = fractional_opt(net, reqs, 12, pmax=net.pmax())
        assert capped == pytest.approx(free)

    def test_lemma2_constant_fraction(self):
        # the Lemma 2 guarantee: at p_max = (nu+2) diam, at least
        # (1 - 1/e)/2 of the unbounded optimum survives
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 8, 6, rng=11)
        free = fractional_opt(net, reqs, 14)
        capped = fractional_opt(net, reqs, 14, pmax=net.pmax())
        assert capped >= 0.5 * (1 - 1 / 2.718281828) * free - 1e-9
