"""Kernel-parity test layer for the compiled step kernel.

:mod:`repro.network.kernel` owns the per-tick contention resolve of every
array engine, with two backends running the same function bodies: the
numba-compiled kernels and the plain-numpy fallback.  This suite proves
the contracts the rest of the repo leans on:

* unit parity: :func:`~repro.network.kernel.grouped_rank` and
  :func:`~repro.network.kernel.admit` reproduce the historical
  ``lexsort``-based oracles exactly (randomized, seeded);
* engine parity: the numba and numpy backends produce byte-identical
  :class:`~repro.network.simulator.SimulationResult` objects on the seed
  scenarios (skipped loudly when numba is not installed -- CI's main leg
  installs it, and the ``kernel-fallback`` leg proves the numpy path);
* selection semantics: explicit argument > ``REPRO_KERNEL`` > ``auto``,
  and an explicit ``numba`` with no numba fails loudly (the
  no-silent-fallback contract, mirrored from the PR-4 adapter);
* the shared injection-order helper (arrival time, stable by request
  position) that the engines used to duplicate;
* ``RunReport.meta["kernel"]`` recording -- engine-independent, because
  engines share cache entries and report equality includes meta;
* the ``repro list`` / registry surface.
"""

import numpy as np
import pytest

from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.api.registry import ALGORITHMS
from repro.baselines.greedy import GreedyPolicy
from repro.baselines.nearest_to_go import NearestToGoPolicy
from repro.network import kernel
from repro.network.fast_engine import FastEngine
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError
from repro.workloads import deadline_requests, uniform_requests

requires_numba = pytest.mark.skipif(
    not kernel.numba_available(),
    reason="numba is not installed in this environment, so the compiled "
           "kernel path cannot run: numba<->numpy parity is NOT verified "
           "here (CI's main leg installs numba and runs these; the "
           "kernel-fallback leg covers the numpy path)")

STAT_FIELDS = (
    "delivered", "late", "rejected", "preempted", "forwards", "stores",
    "max_link_load", "max_buffer_load", "steps",
)

MEASURES = ("throughput", "late", "rejected", "preempted", "steps",
            "latency_mean", "latency_max")


@pytest.fixture(autouse=True)
def _restore_kernel():
    """Whatever a test activates, put the process back afterwards."""
    previous = kernel.active_kernel()
    yield
    kernel.activate(previous)


# -- oracles: the historical lexsort implementations ----------------------


def oracle_rank(gid, keys):
    """The pre-kernel grouped rank: ``lexsort`` with ``gid`` primary."""
    gid = np.asarray(gid, dtype=np.int64)
    keys = tuple(np.asarray(k, dtype=np.int64) for k in keys)
    n = gid.size
    rank = np.empty(n, np.int64)
    if n == 0:
        return rank
    order = np.lexsort(tuple(reversed(keys)) + (gid,))
    g = gid[order]
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = g[1:] != g[:-1]
    starts = np.flatnonzero(new_group)
    gnum = np.cumsum(new_group) - 1
    rank[order] = np.arange(n) - starts[gnum]
    return rank


def oracle_admit(node_id, axis, d, keys, B, c):
    """The pre-kernel greedy admission: link ranks then buffer ranks."""
    node_id = np.asarray(node_id, dtype=np.int64)
    n = node_id.size
    B_rows = np.broadcast_to(np.asarray(B, dtype=np.int64), (n,))
    c_rows = np.broadcast_to(np.asarray(c, dtype=np.int64), (n,))
    fwd = oracle_rank(node_id * d + np.asarray(axis), keys) < c_rows
    store = np.zeros(n, dtype=bool)
    left = np.flatnonzero(~fwd)
    if left.size:
        lkeys = tuple(np.asarray(k)[left] for k in keys)
        lrank = oracle_rank(node_id[left], lkeys)
        store[left[lrank < B_rows[left]]] = True
    return fwd, store


def random_case(rng, n, num_keys=3, groups=7):
    gid = rng.integers(0, groups, size=n).astype(np.int64)
    # last key unique, like every caller's rid tie-break
    keys = tuple(rng.integers(0, 5, size=n).astype(np.int64)
                 for _ in range(num_keys - 1))
    keys += (rng.permutation(n).astype(np.int64),)
    return gid, keys


class TestGroupedRankParity:
    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    def test_matches_lexsort_oracle(self, backend):
        if backend == "numba" and not kernel.numba_available():
            pytest.skip("numba not installed: compiled rank unverified here")
        rng = np.random.default_rng(42)
        with kernel.using(backend):
            for n in (0, 1, 2, 17, 200):
                gid, keys = random_case(rng, n)
                got = kernel.grouped_rank(gid, keys)
                assert np.array_equal(got, oracle_rank(gid, keys)), n

    def test_ties_keep_row_order(self):
        # equal keys within a group rank by row position (stability)
        gid = np.zeros(5, dtype=np.int64)
        keys = (np.zeros(5, dtype=np.int64),)
        assert np.array_equal(kernel.grouped_rank(gid, keys),
                              np.arange(5))

    def test_single_key_and_many_groups(self):
        rng = np.random.default_rng(3)
        gid = rng.integers(0, 50, size=120).astype(np.int64)
        keys = (rng.permutation(120).astype(np.int64),)
        assert np.array_equal(kernel.grouped_rank(gid, keys),
                              oracle_rank(gid, keys))


class TestAdmitParity:
    @pytest.mark.parametrize("backend", ["numpy", "numba"])
    @pytest.mark.parametrize("B,c", [(0, 1), (1, 1), (2, 1), (1, 3)])
    def test_scalar_capacities(self, backend, B, c):
        if backend == "numba" and not kernel.numba_available():
            pytest.skip("numba not installed: compiled admit unverified here")
        rng = np.random.default_rng(7)
        with kernel.using(backend):
            for n in (0, 1, 33, 250):
                node_id = rng.integers(0, 9, size=n).astype(np.int64)
                axis = rng.integers(0, 2, size=n).astype(np.int64)
                _, keys = random_case(rng, n)
                got = kernel.admit(node_id, axis, 2, keys, B, c)
                want = oracle_admit(node_id, axis, 2, keys, B, c)
                assert np.array_equal(got[0], want[0])
                assert np.array_equal(got[1], want[1])

    def test_per_row_capacities(self):
        # the stacked batch facade passes per-row B/c arrays
        rng = np.random.default_rng(11)
        n = 180
        node_id = rng.integers(0, 6, size=n).astype(np.int64)
        axis = rng.integers(0, 2, size=n).astype(np.int64)
        _, keys = random_case(rng, n)
        B = rng.integers(0, 3, size=n).astype(np.int64)
        c = rng.integers(1, 3, size=n).astype(np.int64)
        got = kernel.admit(node_id, axis, 2, keys, B, c)
        want = oracle_admit(node_id, axis, 2, keys, B, c)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])

    def test_forward_and_store_are_disjoint_and_bounded(self):
        rng = np.random.default_rng(13)
        n = 300
        node_id = rng.integers(0, 8, size=n).astype(np.int64)
        axis = rng.integers(0, 2, size=n).astype(np.int64)
        _, keys = random_case(rng, n)
        fwd, store = kernel.admit(node_id, axis, 2, keys, 2, 1)
        assert not np.any(fwd & store)
        gid = node_id * 2 + axis
        assert max(np.bincount(gid[fwd], minlength=1)) <= 1
        assert max(np.bincount(node_id[store], minlength=1)) <= 2


class TestInjectionOrder:
    def test_regression_pin(self):
        # arrival time first, ties broken by request position -- the exact
        # order every engine's status accounting assumes
        order = kernel.injection_order(np.array([2, 0, 1, 0, 2]))
        assert order.tolist() == [1, 3, 2, 0, 4]

    def test_equal_arrivals_keep_request_order(self):
        assert kernel.injection_order([5, 5, 5, 5]).tolist() == [0, 1, 2, 3]

    def test_empty(self):
        assert kernel.injection_order(np.array([], dtype=np.int64)).size == 0


# -- selection semantics --------------------------------------------------


class TestKernelSelection:
    def test_explicit_numpy(self):
        assert kernel.resolve_kernel_name("numpy") == "numpy"

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValidationError, match="unknown kernel"):
            kernel.resolve_kernel_name("cuda")

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "numpy")
        assert kernel.resolve_kernel_name() == "numpy"
        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "bogus")
        with pytest.raises(ValidationError, match="unknown kernel"):
            kernel.resolve_kernel_name()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "bogus")
        assert kernel.resolve_kernel_name("numpy") == "numpy"

    def test_auto_resolves_to_a_concrete_backend(self):
        name = kernel.resolve_kernel_name("auto")
        assert name in ("numba", "numpy")
        assert name == ("numba" if kernel.numba_available() else "numpy")

    def test_no_silent_fallback_on_explicit_numba(self, monkeypatch):
        # the PR-4 adapter contract, mirrored: asking for the compiled
        # kernel either delivers it or fails loudly -- never a quiet numpy
        if kernel.numba_available():
            assert kernel.resolve_kernel_name("numba") == "numba"
            monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "numba")
            assert kernel.resolve_kernel_name() == "numba"
        else:
            with pytest.raises(ValidationError, match="numba"):
                kernel.resolve_kernel_name("numba")
            monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "numba")
            with pytest.raises(ValidationError, match="numba"):
                kernel.resolve_kernel_name()

    def test_using_restores_previous_backend(self):
        before = kernel.active_kernel()
        with kernel.using("numpy"):
            assert kernel.active_kernel() == "numpy"
        assert kernel.active_kernel() == before
        with pytest.raises(RuntimeError):
            with kernel.using("numpy"):
                raise RuntimeError("boom")
        assert kernel.active_kernel() == before

    def test_activate_reports_concrete_name(self):
        assert kernel.activate("numpy") == "numpy"
        assert kernel.active_kernel() == "numpy"

    def test_engine_module_reexports_the_kernel_surface(self):
        from repro.network import engine

        assert engine.KERNEL_ENV_VAR == kernel.KERNEL_ENV_VAR
        assert engine.KERNEL_NAMES == kernel.KERNEL_NAMES
        assert engine.active_kernel() == kernel.active_kernel()


# -- engine-level parity --------------------------------------------------


SEED_CASES = [
    # (dims, B, c, policy factory)
    ((9,), 1, 1, lambda: GreedyPolicy("fifo")),
    ((12,), 2, 2, lambda: GreedyPolicy("lifo")),
    ((4, 4), 1, 1, lambda: GreedyPolicy("longest")),
    ((3, 5), 2, 1, lambda: NearestToGoPolicy()),
    ((4, 4), 0, 2, lambda: NearestToGoPolicy()),
]


def _build(dims, B, c):
    if len(dims) == 1:
        return LineNetwork(dims[0], buffer_size=B, capacity=c)
    return GridNetwork(dims, buffer_size=B, capacity=c)


def _run_fast(net, policy, reqs, horizon, backend):
    with kernel.using(backend):
        return FastEngine(net, policy).run(reqs, horizon)


def assert_results_identical(a, b):
    for name in STAT_FIELDS:
        assert getattr(a.stats, name) == getattr(b.stats, name), name
    assert a.stats.delivery_times == b.stats.delivery_times
    assert a.status == b.status
    assert a.engine == b.engine


class TestEngineKernelParity:
    @requires_numba
    @pytest.mark.parametrize("dims,B,c,make_policy", SEED_CASES)
    def test_numba_matches_numpy_bit_identical(self, dims, B, c,
                                               make_policy):
        net = _build(dims, B, c)
        for seed in range(3):
            reqs = uniform_requests(net, 40, 15, rng=seed)
            assert_results_identical(
                _run_fast(net, make_policy(), reqs, 60, "numpy"),
                _run_fast(net, make_policy(), reqs, 60, "numba"))

    @requires_numba
    def test_numba_matches_numpy_with_deadlines(self):
        net = _build((10,), 1, 1)
        reqs = deadline_requests(net, 50, 20, slack=3, rng=5)
        assert_results_identical(
            _run_fast(net, NearestToGoPolicy(), reqs, 80, "numpy"),
            _run_fast(net, NearestToGoPolicy(), reqs, 80, "numba"))

    @requires_numba
    def test_batch_engine_parity_across_kernels(self):
        scenarios = [
            Scenario(NetworkSpec("grid", (5, 5), 1, 1),
                     WorkloadSpec("uniform", {"num": 30, "horizon": 24}),
                     algo, horizon=64, seed=seed, engine="batch")
            for seed in range(2)
            for algo in ("greedy", "ntg")
        ]
        with kernel.using("numpy"):
            base = run_batch(scenarios, cache="off", compute_bound=False)
        with kernel.using("numba"):
            jit = run_batch(scenarios, cache="off", compute_bound=False)
        for a, b in zip(base, jit):
            assert a.meta["kernel"] == "numpy"
            assert b.meta["kernel"] == "numba"
            for field in MEASURES:
                assert getattr(a, field) == getattr(b, field), field


class TestForcedFallback:
    def test_env_forced_numpy_run(self, monkeypatch):
        # a run forced onto the fallback stays bit-identical to the
        # reference engine and records the forced backend in its meta
        monkeypatch.setenv(kernel.KERNEL_ENV_VAR, "numpy")
        kernel.activate()
        assert kernel.active_kernel() == "numpy"
        scenario = Scenario(
            NetworkSpec("grid", (6, 6), 1, 1),
            WorkloadSpec("uniform", {"num": 60, "horizon": 24}),
            "greedy", horizon=64, seed=9)
        fast, ref = run_batch(
            [scenario.replace(engine="fast"),
             scenario.replace(engine="reference")],
            cache="off", compute_bound=False)
        assert fast.meta["kernel"] == "numpy"
        assert ref.meta["kernel"] == "numpy"
        for field in MEASURES:
            assert getattr(fast, field) == getattr(ref, field), field

    def test_meta_records_active_kernel_on_every_engine(self):
        # engine-independent by design: engines share cache entries and
        # report equality includes meta, so reference runs record the
        # kernel name too
        scenario = Scenario(
            NetworkSpec("line", (8,), 1, 1),
            WorkloadSpec("uniform", {"num": 20, "horizon": 16}),
            "ntg", horizon=40, seed=1)
        with kernel.using("numpy"):
            reports = run_batch(
                [scenario.replace(engine=e) for e in ("reference", "fast")],
                cache="off", compute_bound=False)
            assert all(r.meta["kernel"] == "numpy" for r in reports)


# -- the registry / CLI surface -------------------------------------------


class TestKernelSurface:
    def test_registry_kernel_labels(self):
        assert ALGORITHMS.get("greedy").kernel == "step"
        assert ALGORITHMS.get("ntg").kernel == "step"
        assert ALGORITHMS.get("ntg-model2").kernel == "step"
        assert ALGORITHMS.get("det").kernel == "no"
        assert ALGORITHMS.get("rand").kernel == "no"

    def test_cli_list_shows_kernel_column(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out
        assert f"step kernel: {kernel.active_kernel()}" in out
