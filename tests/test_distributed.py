"""Tests for the distributed interval-packing protocol (Section 5.2.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packing.distributed import (
    DistributedLinePacker,
    centralized_reference,
    distribute,
)
from repro.packing.interval import Interval, max_disjoint_intervals


@st.composite
def line_intervals(draw):
    n = draw(st.integers(4, 30))
    m = draw(st.integers(0, 20))
    out = []
    for i in range(m):
        lo = draw(st.integers(0, n - 2))
        hi = draw(st.integers(lo + 1, n))
        out.append(Interval(lo, hi, owner=i))
    out.sort(key=lambda iv: (iv.lo, iv.owner))
    return n, out


class TestProtocol:
    def test_single_interval(self):
        packer = DistributedLinePacker(8)
        accepted = packer.run(distribute([Interval(2, 5, owner=0)], 8))
        assert [iv.owner for iv in accepted] == [0]

    def test_preemption_along_the_line(self):
        packer = DistributedLinePacker(10)
        ivs = [Interval(0, 9, owner=0), Interval(3, 6, owner=1)]
        accepted = packer.run(distribute(ivs, 10))
        assert [iv.owner for iv in accepted] == [1]
        assert ("preempt", 0) in [(d[1], d[2]) for d in packer.trace.decisions]

    def test_rejection(self):
        packer = DistributedLinePacker(10)
        ivs = [Interval(0, 4, owner=0), Interval(2, 8, owner=1)]
        accepted = packer.run(distribute(ivs, 10))
        assert [iv.owner for iv in accepted] == [0]

    def test_message_count_is_line_length(self):
        packer = DistributedLinePacker(16)
        packer.run({})
        assert packer.trace.messages == 15

    def test_wrong_processor_raises(self):
        packer = DistributedLinePacker(8)
        with pytest.raises(ValueError):
            packer.run({3: [Interval(4, 6, owner=0)]})

    def test_out_of_range_interval(self):
        with pytest.raises(ValueError):
            distribute([Interval(7, 9, owner=0)], 8)


class TestEquivalence:
    """The distributed pass equals the centralized online packer, which in
    turn is optimal for sorted inputs -- the chain the paper's special
    segment routing relies on."""

    @settings(max_examples=200, deadline=None)
    @given(line_intervals())
    def test_matches_centralized(self, case):
        n, ivs = case
        dist = DistributedLinePacker(n).run(distribute(ivs, n))
        cent = centralized_reference(ivs)
        assert [(iv.lo, iv.hi, iv.owner) for iv in dist] == [
            (iv.lo, iv.hi, iv.owner) for iv in cent
        ]

    @settings(max_examples=100, deadline=None)
    @given(line_intervals())
    def test_distributed_is_optimal(self, case):
        n, ivs = case
        dist = DistributedLinePacker(n).run(distribute(ivs, n))
        assert len(dist) == len(max_disjoint_intervals(ivs))

    @settings(max_examples=100, deadline=None)
    @given(line_intervals())
    def test_accepted_disjoint(self, case):
        n, ivs = case
        dist = DistributedLinePacker(n).run(distribute(ivs, n))
        dist.sort(key=lambda iv: iv.lo)
        for a, b in zip(dist, dist[1:]):
            assert a.hi <= b.lo
