"""Tests for repro.network.packet: requests, packets, statuses."""

import pytest

from repro.network.packet import DeliveryStatus, Packet, Request
from repro.network.topology import GridNetwork, LineNetwork, RingNetwork
from repro.util.errors import ValidationError


class TestRequestConstruction:
    def test_line_constructor(self):
        r = Request.line(2, 5, 3)
        assert r.source == (2,) and r.dest == (5,)
        assert r.arrival == 3 and r.deadline is None

    def test_tuple_nodes(self):
        r = Request((1, 2), (3, 4), 0)
        assert r.source == (1, 2) and r.dest == (3, 4)

    def test_int_nodes_normalised(self):
        r = Request(1, 4, 0)
        assert r.source == (1,) and r.dest == (4,)

    def test_distance_line(self):
        assert Request.line(2, 7, 0).distance == 5

    def test_distance_grid(self):
        assert Request((0, 1), (3, 4), 0).distance == 6

    def test_dim(self):
        assert Request.line(0, 1, 0).dim == 1
        assert Request((0, 0, 0), (1, 1, 1), 0).dim == 3

    def test_trivial(self):
        assert Request.line(3, 3, 0).is_trivial()
        assert not Request.line(3, 4, 0).is_trivial()

    def test_rids_unique_when_auto(self):
        a, b = Request.line(0, 1, 0), Request.line(0, 1, 0)
        assert a.rid != b.rid

    def test_explicit_rid(self):
        assert Request.line(0, 1, 0, rid=99).rid == 99

    def test_deadline_stored(self):
        assert Request.line(0, 2, 1, deadline=5).deadline == 5


class TestRequestValidation:
    # Reachability and deadline feasibility are topology-dependent (a
    # "backward" pair is routable on a ring), so they live in
    # Network.check_request; the constructor keeps only shape checks.

    def test_backward_line_constructs_but_fails_check(self):
        r = Request.line(5, 2, 0)
        with pytest.raises(ValidationError, match="no directed path"):
            LineNetwork(8, 1, 1).check_request(r)

    def test_backward_pair_is_valid_on_a_ring(self):
        r = Request.line(5, 2, 0)
        RingNetwork(8, 1, 1).check_request(r)  # wraps: distance 5

    def test_rejects_backward_grid_component(self):
        r = Request((0, 5), (3, 2), 0)
        with pytest.raises(ValidationError, match="no directed path"):
            GridNetwork((6, 6), 1, 1).check_request(r)

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValidationError):
            Request((0,), (1, 1), 0)

    def test_check_request_rejects_dim_mismatch(self):
        with pytest.raises(ValidationError):
            LineNetwork(8, 1, 1).check_request(Request((1, 1), (2, 2), 0))

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValidationError):
            Request.line(0, 1, -1)

    def test_rejects_infeasible_deadline(self):
        # deadline before arrival + distance can never be met (Section 5.4)
        r = Request.line(0, 5, 2, deadline=4)
        with pytest.raises(ValidationError, match="infeasible deadline"):
            LineNetwork(8, 1, 1).check_request(r)

    def test_accepts_tight_feasible_deadline(self):
        r = Request.line(0, 5, 2, deadline=7)
        LineNetwork(8, 1, 1).check_request(r)
        assert r.deadline == 7

    def test_wrap_shortens_deadline_feasibility(self):
        # 6 -> 1 on an 8-ring is 3 hops, so deadline 3 is feasible there
        r = Request.line(6, 1, 0, deadline=3)
        RingNetwork(8, 1, 1).check_request(r)

    def test_rejects_garbage_node(self):
        with pytest.raises(ValidationError):
            Request("node-a", "node-b", 0)

    def test_rejects_empty_tuple(self):
        with pytest.raises(ValidationError):
            Request((), (), 0)


class TestRequestOrdering:
    def test_sorted_by_arrival_then_rid(self):
        a = Request.line(0, 1, 5, rid=2)
        b = Request.line(0, 1, 3, rid=9)
        c = Request.line(0, 1, 5, rid=1)
        assert sorted([a, b, c]) == [b, c, a]

    def test_repr_contains_endpoints(self):
        r = Request.line(1, 4, 2, rid=7)
        text = repr(r)
        assert "7" in text and "(1,)" in text and "(4,)" in text


class TestPacket:
    def test_remaining_distance(self):
        r = Request((0, 0), (3, 2), 0)
        pkt = Packet(request=r, location=(1, 0), injected_at=0)
        assert pkt.remaining_distance() == 4

    def test_status_default(self):
        pkt = Packet(request=Request.line(0, 1, 0), location=(0,), injected_at=0)
        assert pkt.status == DeliveryStatus.INJECTED

    def test_rid_and_dest_proxies(self):
        r = Request.line(0, 3, 0, rid=42)
        pkt = Packet(request=r, location=(0,), injected_at=0)
        assert pkt.rid == 42 and pkt.dest == (3,)


class TestDeliveryStatus:
    def test_all_states_present(self):
        names = {s.name for s in DeliveryStatus}
        assert names == {
            "PENDING", "REJECTED", "INJECTED", "PREEMPTED", "DELIVERED", "LATE",
        }
