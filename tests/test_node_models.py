"""Tests for the Appendix F node models (experiment E14)."""

from repro.baselines.greedy import run_greedy
from repro.network.node_models import (
    Model2LineSimulator,
    ntg_priority,
    separation_instance,
)
from repro.network.packet import DeliveryStatus, Request
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError

import pytest


class TestSeparation:
    """Appendix F remark 1: Model 1 strictly stronger at B = c = 1."""

    def test_model1_keeps_both(self):
        net, reqs = separation_instance()
        res = run_greedy(net, reqs, 10)
        assert res.throughput == 2

    def test_model2_drops_one(self):
        net, reqs = separation_instance()
        res = Model2LineSimulator(net).run(reqs, 10)
        assert res.stats.delivered == 1


class TestModel2Engine:
    def test_single_packet(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(0, 3, 0, rid=0)], 12)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_throughput_at_most_b_per_node_step(self):
        # a node moves at most B packets per step in Model 2
        net = LineNetwork(3, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=i) for i in range(4)]
        res = Model2LineSimulator(net).run(reqs, 20)
        assert res.stats.delivered <= 2 + 1  # B kept + later drain

    def test_requires_unit_capacity(self):
        with pytest.raises(ValidationError):
            Model2LineSimulator(LineNetwork(4, buffer_size=1, capacity=2))

    def test_deadline_late_not_credited(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        # Model 2 cannot cut through: each hop costs a buffered step, so a
        # distance-4 deadline-4 packet plus a blocker cannot both make it
        reqs = [
            Request.line(0, 4, 0, deadline=8, rid=0),
            Request.line(0, 4, 0, deadline=8, rid=1),
        ]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.delivered + res.stats.late + res.stats.preempted + res.stats.rejected == 2

    def test_trivial_request(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(1, 1, 0, rid=0)], 5)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_ntg_priority_key(self):
        from repro.network.packet import Packet

        near = Packet(request=Request.line(0, 1, 0, rid=0), location=(0,), injected_at=0)
        far = Packet(request=Request.line(0, 5, 0, rid=1), location=(0,), injected_at=0)
        assert ntg_priority(near) < ntg_priority(far)

    def test_model2_never_exceeds_buffer(self):
        net = LineNetwork(4, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(6)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.max_buffer_load <= 2

    def test_statuses_all_resolved(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(5)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert all(
            st != DeliveryStatus.PENDING and st != DeliveryStatus.INJECTED
            for st in res.status.values()
        )
