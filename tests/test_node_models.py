"""Tests for the Appendix F node models (experiment E14)."""

from repro.baselines.greedy import run_greedy
from repro.network.node_models import (
    Model2LineSimulator,
    ntg_priority,
    separation_instance,
)
from repro.network.packet import DeliveryStatus, Request
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError

import pytest


class TestSeparation:
    """Appendix F remark 1: Model 1 strictly stronger at B = c = 1."""

    def test_model1_keeps_both(self):
        net, reqs = separation_instance()
        res = run_greedy(net, reqs, 10)
        assert res.throughput == 2

    def test_model2_drops_one(self):
        net, reqs = separation_instance()
        res = Model2LineSimulator(net).run(reqs, 10)
        assert res.stats.delivered == 1


class TestModel2Engine:
    def test_single_packet(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(0, 3, 0, rid=0)], 12)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_throughput_at_most_b_per_node_step(self):
        # a node moves at most B packets per step in Model 2
        net = LineNetwork(3, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=i) for i in range(4)]
        res = Model2LineSimulator(net).run(reqs, 20)
        assert res.stats.delivered <= 2 + 1  # B kept + later drain

    def test_requires_unit_capacity(self):
        with pytest.raises(ValidationError):
            Model2LineSimulator(LineNetwork(4, buffer_size=1, capacity=2))

    def test_deadline_late_not_credited(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        # Model 2 cannot cut through: each hop costs a buffered step, so a
        # distance-4 deadline-4 packet plus a blocker cannot both make it
        reqs = [
            Request.line(0, 4, 0, deadline=8, rid=0),
            Request.line(0, 4, 0, deadline=8, rid=1),
        ]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.delivered + res.stats.late + res.stats.preempted + res.stats.rejected == 2

    def test_trivial_request(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(1, 1, 0, rid=0)], 5)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_ntg_priority_key(self):
        from repro.network.packet import Packet

        near = Packet(request=Request.line(0, 1, 0, rid=0), location=(0,), injected_at=0)
        far = Packet(request=Request.line(0, 5, 0, rid=1), location=(0,), injected_at=0)
        assert ntg_priority(near) < ntg_priority(far)

    def test_model2_never_exceeds_buffer(self):
        net = LineNetwork(4, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(6)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.max_buffer_load <= 2

    def test_statuses_all_resolved(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(5)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert all(
            st != DeliveryStatus.PENDING and st != DeliveryStatus.INJECTED
            for st in res.status.values()
        )


class TestScenarioParity:
    """The registered ``ntg-model2`` algorithm and ``separation`` workload
    (the declarative form of E14): the Appendix F remark-1 separation must
    reproduce through the Scenario layer, seeded end to end."""

    def _scenario(self, algorithm):
        from repro.api import NetworkSpec, Scenario, WorkloadSpec

        return Scenario(
            network=NetworkSpec("line", (3,), 1, 1),
            workload=WorkloadSpec("separation"),
            algorithm=algorithm,
            horizon=10,
            seed=0,
        )

    def test_separation_through_run(self):
        from repro.api import run

        model1 = run(self._scenario("ntg"))
        model2 = run(self._scenario("ntg-model2"))
        # Model 1 keeps both packets (store one, forward the other);
        # Model 2 funnels both through the single buffer slot and drops one
        assert model1.throughput == 2
        assert model2.throughput == 1
        assert model2.preempted + model2.rejected == 1

    def test_matches_direct_simulation(self):
        from repro.api import run

        net, reqs = separation_instance()
        direct = Model2LineSimulator(net).run(reqs, 10)
        report = run(self._scenario("ntg-model2"))
        assert report.throughput == direct.stats.delivered
        arrivals = {r.rid: r.arrival for r in reqs}
        latencies = [t - arrivals[rid]
                     for rid, t in direct.stats.delivery_times.items()]
        assert report.latency_mean == pytest.approx(
            sum(latencies) / len(latencies))

    def test_model2_records_delivery_times(self):
        net, reqs = separation_instance()
        res = Model2LineSimulator(net).run(reqs, 10)
        assert len(res.stats.delivery_times) == res.stats.delivered + res.stats.late

    def test_model2_registers_fast_engine_capability(self):
        # PR 4: Model 2 runs on the vectorized decision ABI -- the
        # registry advertises it and the capability gate still holds
        from repro.api import ALGORITHMS

        entry = ALGORITHMS.get("ntg-model2")
        assert entry.supports_fast_engine
        assert entry.fast_engine == "vector"
        net = LineNetwork(4, buffer_size=1, capacity=2)
        assert entry.unavailable(net, 10) is not None  # c must be 1

    def test_model2_selects_fast_engine_no_fallback(self):
        from repro.api import run

        ref = run(self._scenario("ntg-model2").replace(engine="reference"))
        fast = run(self._scenario("ntg-model2").replace(engine="fast"))
        assert ref.engine == "reference"
        assert fast.engine == "fast"  # no silent reference fallback
        for field in ("requests", "throughput", "bound", "late", "rejected",
                      "preempted", "latency_mean", "latency_max", "steps"):
            assert getattr(ref, field) == getattr(fast, field), field


class TestModel2EngineParity:
    """Model2LineSimulator vs FastModel2Engine bit-identity."""

    STAT_FIELDS = (
        "delivered", "late", "rejected", "preempted", "forwards", "stores",
        "max_link_load", "max_buffer_load", "steps",
    )

    def _parity(self, net, reqs, horizon, priority="ntg"):
        from repro.network.node_models import FastModel2Engine, Model2Policy

        ref = Model2LineSimulator(net, Model2Policy(priority)).run(reqs, horizon)
        fast = FastModel2Engine(net, Model2Policy(priority)).run(reqs, horizon)
        for name in self.STAT_FIELDS:
            assert getattr(fast.stats, name) == getattr(ref.stats, name), name
        assert fast.status == ref.status
        assert fast.stats.delivery_times == ref.stats.delivery_times
        return ref, fast

    @pytest.mark.parametrize("priority", ["ntg", "fifo", "lifo", "longest"])
    @pytest.mark.parametrize("n,B", [(3, 1), (8, 1), (8, 2), (8, 0), (12, 3)])
    def test_uniform_parity(self, n, B, priority):
        from repro.workloads import uniform_requests

        net = LineNetwork(n, buffer_size=B, capacity=1)
        for seed in range(3):
            reqs = uniform_requests(net, 30, 12, rng=seed)
            self._parity(net, reqs, 80, priority)

    def test_deadline_parity(self):
        from repro.workloads import deadline_requests

        net = LineNetwork(8, buffer_size=1, capacity=1)
        for seed in range(3):
            reqs = deadline_requests(net, 20, 10, slack=3, rng=seed, jitter=2)
            self._parity(net, reqs, 60)

    def test_separation_parity(self):
        net, reqs = separation_instance()
        ref, fast = self._parity(net, reqs, 10)
        assert ref.stats.delivered == 1
        assert ref.engine == "reference" and fast.engine == "fast"

    def test_fast_model2_requires_line_and_unit_capacity(self):
        from repro.network.node_models import FastModel2Engine, Model2Policy

        with pytest.raises(ValidationError):
            FastModel2Engine(LineNetwork(4, buffer_size=1, capacity=2))
        assert not FastModel2Engine.supports(
            Model2Policy(), LineNetwork(4, buffer_size=1, capacity=2))
        assert FastModel2Engine.supports(
            Model2Policy(), LineNetwork(4, buffer_size=1, capacity=1))

    def test_fast_model2_rejects_trace(self):
        from repro.network.node_models import FastModel2Engine

        with pytest.raises(ValidationError):
            FastModel2Engine(LineNetwork(4, buffer_size=1, capacity=1),
                             trace=True)

    def test_make_engine_routes_node_model(self):
        from repro.network.engine import make_engine
        from repro.network.node_models import FastModel2Engine, Model2Policy

        net = LineNetwork(4, buffer_size=1, capacity=1)
        assert isinstance(make_engine(net, Model2Policy(), engine="fast"),
                          FastModel2Engine)
        assert isinstance(make_engine(net, Model2Policy(), engine="reference"),
                          Model2LineSimulator)
        # tracing needs the per-packet loop: fall back even under "fast"
        assert isinstance(
            make_engine(net, Model2Policy(), engine="fast", trace=True),
            Model2LineSimulator)

    def test_model2_counts_buffered_stores(self):
        # "everything transits the buffer": a non-trivial Model 2 run
        # must report stores > 0 (and identically on both engines)
        from repro.workloads import uniform_requests

        from repro.network.node_models import Model2Policy

        net = LineNetwork(8, buffer_size=2, capacity=1)
        reqs = uniform_requests(net, 24, 8, rng=0)
        ref, fast = self._parity(net, reqs, 40)  # includes stores ref==fast
        assert ref.stats.stores > 0
        traced = Model2LineSimulator(net, Model2Policy(),
                                     trace=True).run(reqs, 40)
        assert traced.stats.stores == len(traced.trace.of_kind("store"))

    def test_model2_trace_records_two_phase_events(self):
        from repro.network.node_models import Model2Policy

        net, reqs = separation_instance()
        res = Model2LineSimulator(net, Model2Policy(), trace=True).run(reqs, 10)
        kinds = {e.kind for e in res.trace.events}
        assert "forward" in kinds and "deliver" in kinds
        assert res.trace.of_kind("deliver")[0].rid in res.status
        # a node never moves more than B packets in one step (App. F):
        # per (t, node), forwards <= c = 1 and forwards + stores <= B
        per_node_step: dict = {}
        for e in res.trace.events:
            if e.kind in ("forward", "store"):
                per_node_step.setdefault((e.t, e.node), []).append(e.kind)
        B = net.buffer_size
        for moves in per_node_step.values():
            assert moves.count("forward") <= 1
            assert len(moves) <= B
