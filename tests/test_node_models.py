"""Tests for the Appendix F node models (experiment E14)."""

from repro.baselines.greedy import run_greedy
from repro.network.node_models import (
    Model2LineSimulator,
    ntg_priority,
    separation_instance,
)
from repro.network.packet import DeliveryStatus, Request
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError

import pytest


class TestSeparation:
    """Appendix F remark 1: Model 1 strictly stronger at B = c = 1."""

    def test_model1_keeps_both(self):
        net, reqs = separation_instance()
        res = run_greedy(net, reqs, 10)
        assert res.throughput == 2

    def test_model2_drops_one(self):
        net, reqs = separation_instance()
        res = Model2LineSimulator(net).run(reqs, 10)
        assert res.stats.delivered == 1


class TestModel2Engine:
    def test_single_packet(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(0, 3, 0, rid=0)], 12)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_throughput_at_most_b_per_node_step(self):
        # a node moves at most B packets per step in Model 2
        net = LineNetwork(3, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=i) for i in range(4)]
        res = Model2LineSimulator(net).run(reqs, 20)
        assert res.stats.delivered <= 2 + 1  # B kept + later drain

    def test_requires_unit_capacity(self):
        with pytest.raises(ValidationError):
            Model2LineSimulator(LineNetwork(4, buffer_size=1, capacity=2))

    def test_deadline_late_not_credited(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        # Model 2 cannot cut through: each hop costs a buffered step, so a
        # distance-4 deadline-4 packet plus a blocker cannot both make it
        reqs = [
            Request.line(0, 4, 0, deadline=8, rid=0),
            Request.line(0, 4, 0, deadline=8, rid=1),
        ]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.delivered + res.stats.late + res.stats.preempted + res.stats.rejected == 2

    def test_trivial_request(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        res = Model2LineSimulator(net).run([Request.line(1, 1, 0, rid=0)], 5)
        assert res.status[0] == DeliveryStatus.DELIVERED

    def test_ntg_priority_key(self):
        from repro.network.packet import Packet

        near = Packet(request=Request.line(0, 1, 0, rid=0), location=(0,), injected_at=0)
        far = Packet(request=Request.line(0, 5, 0, rid=1), location=(0,), injected_at=0)
        assert ntg_priority(near) < ntg_priority(far)

    def test_model2_never_exceeds_buffer(self):
        net = LineNetwork(4, buffer_size=2, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(6)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert res.stats.max_buffer_load <= 2

    def test_statuses_all_resolved(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, t, rid=t) for t in range(5)]
        res = Model2LineSimulator(net).run(reqs, 30)
        assert all(
            st != DeliveryStatus.PENDING and st != DeliveryStatus.INJECTED
            for st in res.status.values()
        )


class TestScenarioParity:
    """The registered ``ntg-model2`` algorithm and ``separation`` workload
    (the declarative form of E14): the Appendix F remark-1 separation must
    reproduce through the Scenario layer, seeded end to end."""

    def _scenario(self, algorithm):
        from repro.api import NetworkSpec, Scenario, WorkloadSpec

        return Scenario(
            network=NetworkSpec("line", (3,), 1, 1),
            workload=WorkloadSpec("separation"),
            algorithm=algorithm,
            horizon=10,
            seed=0,
        )

    def test_separation_through_run(self):
        from repro.api import run

        model1 = run(self._scenario("ntg"))
        model2 = run(self._scenario("ntg-model2"))
        # Model 1 keeps both packets (store one, forward the other);
        # Model 2 funnels both through the single buffer slot and drops one
        assert model1.throughput == 2
        assert model2.throughput == 1
        assert model2.preempted + model2.rejected == 1

    def test_matches_direct_simulation(self):
        from repro.api import run

        net, reqs = separation_instance()
        direct = Model2LineSimulator(net).run(reqs, 10)
        report = run(self._scenario("ntg-model2"))
        assert report.throughput == direct.stats.delivered
        arrivals = {r.rid: r.arrival for r in reqs}
        latencies = [t - arrivals[rid]
                     for rid, t in direct.stats.delivery_times.items()]
        assert report.latency_mean == pytest.approx(
            sum(latencies) / len(latencies))

    def test_model2_records_delivery_times(self):
        net, reqs = separation_instance()
        res = Model2LineSimulator(net).run(reqs, 10)
        assert len(res.stats.delivery_times) == res.stats.delivered + res.stats.late

    def test_model2_rejects_fast_engine_claim(self):
        from repro.api import ALGORITHMS

        entry = ALGORITHMS.get("ntg-model2")
        assert not entry.supports_fast_engine
        net = LineNetwork(4, buffer_size=1, capacity=2)
        assert entry.unavailable(net, 10) is not None  # c must be 1
