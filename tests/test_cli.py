"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 64 and args.B == 1 and args.c == 1

    def test_route_args(self):
        args = build_parser().parse_args(
            ["route", "det", "--dims", "8x8", "-B", "3", "-c", "3"]
        )
        assert args.algorithm == "det" and args.dims == "8x8"

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "magic"])

    def test_engine_flag(self):
        args = build_parser().parse_args(["route", "greedy", "--engine", "fast"])
        assert args.engine == "fast"
        args = build_parser().parse_args(["route", "greedy"])
        assert args.engine is None  # resolved via REPRO_ENGINE / default

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "greedy", "--engine", "warp"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "-n", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "offline bound" in out

    def test_route_det(self, capsys):
        assert main([
            "route", "det", "--dims", "16", "-B", "3", "-c", "3",
            "--requests", "20", "--arrival-window", "16",
            "--horizon", "64", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_route_bufferless(self, capsys):
        assert main([
            "route", "bufferless", "--dims", "16", "-B", "0", "-c", "1",
            "--requests", "20", "--arrival-window", "16",
            "--horizon", "48", "--seed", "3",
        ]) == 0

    def test_compare(self, capsys):
        assert main([
            "compare", "greedy", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--requests", "30", "--arrival-window", "16",
            "--horizon", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "ntg" in out

    def test_compare_reports_unavailable(self, capsys):
        # det requires B >= 3; with B = 1 it must degrade gracefully
        assert main([
            "compare", "det", "--dims", "16", "-B", "1", "-c", "1",
            "--requests", "10", "--arrival-window", "8", "--horizon", "32",
        ]) == 0
        assert "n/a" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8/9" in out

    def test_route_fast_engine(self, capsys):
        assert main([
            "route", "ntg", "--dims", "8x8", "-B", "2", "-c", "2",
            "--requests", "40", "--arrival-window", "16",
            "--horizon", "64", "--engine", "fast",
        ]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_compare_engines_agree(self, capsys):
        argv = [
            "compare", "greedy", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--requests", "30", "--arrival-window", "16", "--horizon", "64",
        ]
        assert main(argv + ["--engine", "reference"]) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert ref_out == fast_out

    def test_clogging_workload(self, capsys):
        assert main([
            "route", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--workload", "clogging", "--horizon", "96",
        ]) == 0
