"""Tests for the command-line interface."""

import json

import pytest

from repro.api import algorithm_names, workload_names
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.n == 64 and args.B == 1 and args.c == 1

    def test_route_args(self):
        args = build_parser().parse_args(
            ["route", "det", "--dims", "8x8", "-B", "3", "-c", "3"]
        )
        assert args.algorithm == "det" and args.dims == "8x8"

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "magic"])

    def test_engine_flag(self):
        args = build_parser().parse_args(["route", "greedy", "--engine", "fast"])
        assert args.engine == "fast"
        args = build_parser().parse_args(["route", "greedy"])
        assert args.engine is None  # resolved via REPRO_ENGINE / default

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["route", "greedy", "--engine", "warp"])

    def test_choices_come_from_registries(self):
        # every registered algorithm/workload is reachable without touching
        # the CLI (no hardcoded tuples)
        for name in algorithm_names():
            args = build_parser().parse_args(["route", name])
            assert args.algorithm == name
        for name in workload_names():
            args = build_parser().parse_args(["route", "ntg", "--workload", name])
            assert args.workload == name


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "-n", "16", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "offline bound" in out

    def test_route_det(self, capsys):
        assert main([
            "route", "det", "--dims", "16", "-B", "3", "-c", "3",
            "--requests", "20", "--arrival-window", "16",
            "--horizon", "64", "--seed", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out

    def test_route_bufferless(self, capsys):
        assert main([
            "route", "bufferless", "--dims", "16", "-B", "0", "-c", "1",
            "--requests", "20", "--arrival-window", "16",
            "--horizon", "48", "--seed", "3",
        ]) == 0

    def test_compare(self, capsys):
        assert main([
            "compare", "greedy", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--requests", "30", "--arrival-window", "16",
            "--horizon", "64",
        ]) == 0
        out = capsys.readouterr().out
        assert "greedy" in out and "ntg" in out

    def test_compare_reports_unavailable(self, capsys):
        # det requires B >= 3; with B = 1 it must degrade gracefully
        assert main([
            "compare", "det", "--dims", "16", "-B", "1", "-c", "1",
            "--requests", "10", "--arrival-window", "8", "--horizon", "32",
        ]) == 0
        assert "n/a" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "Figure 8/9" in out

    def test_route_fast_engine(self, capsys):
        assert main([
            "route", "ntg", "--dims", "8x8", "-B", "2", "-c", "2",
            "--requests", "40", "--arrival-window", "16",
            "--horizon", "64", "--engine", "fast",
        ]) == 0
        assert "ratio" in capsys.readouterr().out

    def test_compare_engines_agree(self, capsys):
        argv = [
            "compare", "greedy", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--requests", "30", "--arrival-window", "16", "--horizon", "64",
        ]
        assert main(argv + ["--engine", "reference"]) == 0
        ref_out = capsys.readouterr().out
        assert main(argv + ["--engine", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert ref_out == fast_out

    def test_clogging_workload(self, capsys):
        assert main([
            "route", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--workload", "clogging", "--horizon", "96",
        ]) == 0

    def test_clogging_warns_on_ignored_flags(self, capsys):
        assert main([
            "route", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--workload", "clogging", "--horizon", "96",
            "--requests", "55", "--seed", "9",
        ]) == 0
        err = capsys.readouterr().err
        assert "ignores --requests" in err
        assert "deterministic" in err  # --seed does not reach the generator

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "registered algorithms" in out and "registered workloads" in out
        assert "det" in out and "clogging" in out and "fast engine" in out

    def test_line_only_workload_on_grid_reports_cleanly(self, capsys):
        # workload capability metadata: no AttributeError traceback, a clean
        # n/a row (and no bound, since the instance cannot be generated)
        assert main(["compare", "greedy", "--dims", "8x8",
                     "--workload", "clogging", "--horizon", "64"]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out and "targets lines" in out

    def test_algorithm_arg_applies_per_algorithm(self, capsys):
        # greedy takes priority=longest; ntg ignores it with a warning
        # instead of aborting the whole comparison
        assert main(["compare", "greedy", "ntg", "--dims", "16", "-B", "2",
                     "-c", "1", "--requests", "30", "--arrival-window", "16",
                     "--horizon", "64", "--algorithm-arg",
                     "priority=longest"]) == 0
        captured = capsys.readouterr()
        assert "greedy" in captured.out and "ntg" in captured.out
        assert "ignores --algorithm-arg priority" in captured.err

    def test_workload_arg_flag(self, capsys):
        assert main([
            "route", "ntg", "--dims", "16", "-B", "2", "-c", "1",
            "--workload", "clogging", "--horizon", "96",
            "--workload-arg", "duration=4",
        ]) == 0


def _throughput_rows(out):
    """Parse ``name | throughput`` (or wider sweep) table rows."""
    rows = {}
    for line in out.splitlines():
        parts = [p.strip() for p in line.split("|")]
        if len(parts) >= 2 and parts[0] and not set(parts[0]) <= {"-", "+"}:
            rows[parts[0]] = parts[1] if len(parts) == 2 else parts[4]
    return rows


class TestSpecs:
    SCENARIO = {
        "network": {"kind": "line", "dims": [16], "buffer_size": 3,
                    "capacity": 3},
        "workload": {"name": "uniform", "params": {"num": 20, "horizon": 16}},
        "algorithm": {"name": "det"},
        "horizon": 64,
        "seed": 2,
    }

    def test_route_spec(self, tmp_path, capsys):
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        assert main(["route", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "det" in out and "ratio" in out

    def test_route_spec_engines_agree(self, tmp_path, capsys):
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        assert main(["route", "--spec", str(path), "--engine", "reference"]) == 0
        ref = capsys.readouterr().out
        assert main(["route", "--spec", str(path), "--engine", "fast"]) == 0
        fast = capsys.readouterr().out

        def data_cells(out):
            lines = [l for l in out.splitlines() if "|" in l]
            return [c.strip() for c in lines[-1].split("|")]

        # identical measurements; only the engine column differs
        assert data_cells(ref)[:5] == data_cells(fast)[:5]
        assert data_cells(ref)[5] == "reference" and data_cells(fast)[5] == "fast"

    def test_route_spec_warns_on_ignored_flags(self, tmp_path, capsys):
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        assert main(["route", "--spec", str(path), "--seed", "9",
                     "--dims", "8x8"]) == 0
        err = capsys.readouterr().err
        assert "ignoring" in err and "--seed" in err and "--dims" in err

    def test_cli_applies_practical_rand_defaults(self):
        # the paper-exact lambda = 1/(200 k) rejects nearly everything at
        # CLI scale, so the CLI pins lam=0.5 (overridable)
        from repro.cli import _algorithm_spec

        args = build_parser().parse_args(["route", "rand"])
        assert dict(_algorithm_spec(args, "rand").params)["lam"] == 0.5
        args = build_parser().parse_args(
            ["route", "rand", "--algorithm-arg", "lam=0.25"])
        assert dict(_algorithm_spec(args, "rand").params)["lam"] == 0.25

    def test_route_rejects_spec_plus_algorithm(self, tmp_path):
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        with pytest.raises(SystemExit):
            main(["route", "det", "--spec", str(path)])

    def test_route_requires_algorithm_or_spec(self):
        with pytest.raises(SystemExit):
            main(["route"])

    def test_committed_specs_load(self):
        import pathlib

        from repro.api import load_scenarios

        spec_dir = pathlib.Path(__file__).parent.parent / "benchmarks" / "specs"
        specs = sorted(spec_dir.glob("*.json"))
        assert specs, "benchmarks/specs/ must stay populated (CI runs them)"
        for path in specs:
            assert load_scenarios(path)

    def test_compare_matches_spec_sweep(self, tmp_path, capsys):
        """Acceptance: the compare command and the same run expressed as a
        JSON scenario batch report identical throughput numbers."""
        argv = ["compare", "det", "rand", "greedy", "ntg",
                "--dims", "8x8", "--engine", "fast",
                "--requests", "40", "--arrival-window", "16",
                "--horizon", "64"]
        assert main(argv) == 0
        compare_rows = _throughput_rows(capsys.readouterr().out)

        scenarios = [
            {
                "network": {"kind": "grid", "dims": [8, 8],
                            "buffer_size": 3, "capacity": 3},
                "workload": {"name": "uniform",
                             "params": {"num": 40, "horizon": 16}},
                "algorithm": {"name": name},
                "horizon": 64,
                "seed": 0,
            }
            for name in ("det", "rand", "greedy", "ntg")
        ]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps({"scenarios": scenarios}))
        assert main(["sweep", "--spec", str(path), "--engine", "fast",
                     "--workers", "2"]) == 0
        sweep_rows = _throughput_rows(capsys.readouterr().out)

        for name in ("det", "greedy", "ntg"):
            assert compare_rows[name] == sweep_rows[name], name
        assert "n/a" in compare_rows["rand"] and "n/a" in sweep_rows["rand"]

    def test_sweep_rejects_nonpositive_workers(self, tmp_path, capsys):
        """--workers 0 used to run silently serial; negative likewise.
        Both must exit 2 with one clear line, not a traceback."""
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        for workers in ("0", "-2"):
            assert main(["sweep", "--spec", str(path),
                         "--workers", workers]) == 2
            err = capsys.readouterr().err
            assert "--workers must be a positive integer" in err
            assert "Traceback" not in err

    def test_sweep_rejects_bad_shard_flags(self, tmp_path, capsys):
        path = tmp_path / "sc.json"
        path.write_text(json.dumps(self.SCENARIO))
        cases = (
            (["--shards", "2", "--shard-index", "2", "--out", "s.jsonl"],
             "0 <= index < --shards"),
            (["--shards", "2", "--shard-index", "-1", "--out", "s.jsonl"],
             "0 <= index < --shards"),
            (["--shards", "0", "--shard-index", "0", "--out", "s.jsonl"],
             "--shards must be a positive integer"),
            (["--shard-index", "0", "--out", "s.jsonl"],
             "--shard-index needs --shards"),
            (["--shards", "2", "--shard-index", "0"], "needs --out"),
            (["--out", "s.jsonl"], "--out only applies to shard runs"),
            (["--shards", "2"], "--shards needs --shard-index"),
        )
        for flags, message in cases:
            assert main(["sweep", "--spec", str(path)] + flags) == 2, flags
            err = capsys.readouterr().err
            assert message in err, (flags, err)
            assert "Traceback" not in err

    def _shard_spec(self, tmp_path):
        scenarios = [dict(self.SCENARIO, seed=s, algorithm={"name": name})
                     for s in (0, 1)
                     for name in ("greedy", "ntg")]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(scenarios))
        return path

    def test_sharded_sweep_merges_to_unsharded_table(self, tmp_path, capsys):
        """Acceptance: shard runs + merge print the same measurements as
        the plain sweep (modulo the wall-clock column)."""
        path = self._shard_spec(tmp_path)
        assert main(["sweep", "--spec", str(path)]) == 0
        plain = capsys.readouterr().out
        files = []
        for i in range(3):
            out = tmp_path / f"shard_{i}.jsonl"
            assert main(["sweep", "--spec", str(path), "--shards", "3",
                         "--shard-index", str(i), "--out", str(out)]) == 0
            files.append(str(out))
        capsys.readouterr()
        assert main(["merge"] + files) == 0
        merged = capsys.readouterr().out

        def strip_wall(text):
            return [[c.strip() for c in line.split("|")][:-1]
                    for line in text.splitlines() if "|" in line]

        assert strip_wall(plain) == strip_wall(merged)

    def test_merge_out_writes_canonical_json(self, tmp_path, capsys):
        path = self._shard_spec(tmp_path)
        out = tmp_path / "s0.jsonl"
        assert main(["sweep", "--spec", str(path), "--shards", "1",
                     "--shard-index", "0", "--out", str(out)]) == 0
        merged = tmp_path / "merged.json"
        assert main(["merge", str(out), "--out", str(merged)]) == 0
        reports = json.loads(merged.read_text())
        assert len(reports) == 4
        assert all("throughput" in r and "scenario" in r for r in reports)

    def test_merge_refuses_incomplete_set(self, tmp_path, capsys):
        path = self._shard_spec(tmp_path)
        out = tmp_path / "s0.jsonl"
        assert main(["sweep", "--spec", str(path), "--shards", "2",
                     "--shard-index", "0", "--out", str(out)]) == 0
        assert main(["merge", str(out)]) == 2
        assert "missing batch position" in capsys.readouterr().err

    def test_emit_shards_then_run_manifests(self, tmp_path, capsys):
        path = self._shard_spec(tmp_path)
        plan_dir = tmp_path / "plans"
        assert main(["sweep", "--spec", str(path), "--shards", "2",
                     "--emit-shards", str(plan_dir)]) == 0
        manifests = sorted(plan_dir.glob("shard_*.json"))
        assert len(manifests) == 2
        files = []
        for i, manifest in enumerate(manifests):
            out = tmp_path / f"m{i}.jsonl"
            assert main(["sweep", "--spec", str(manifest),
                         "--out", str(out)]) == 0
            files.append(str(out))
        capsys.readouterr()
        assert main(["merge"] + files) == 0
        merged = capsys.readouterr().out
        assert "merged batch (4 scenarios, 2 shard files)" in merged

    def test_sweep_workers_match_serial(self, tmp_path, capsys):
        scenarios = [dict(self.SCENARIO, seed=s, algorithm={"name": name})
                     for s in (0, 1)
                     for name in ("greedy", "ntg")]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(scenarios))
        assert main(["sweep", "--spec", str(path)]) == 0
        serial = capsys.readouterr().out
        assert main(["sweep", "--spec", str(path), "--workers", "3"]) == 0
        pooled = capsys.readouterr().out

        def strip_wall(text):
            return [
                [c.strip() for c in line.split("|")][:-1]
                for line in text.splitlines()
                if "|" in line
            ]

        assert strip_wall(serial) == strip_wall(pooled)


class TestQueueCommands:
    """The elastic sweep service verbs: enqueue / work / status / collect."""

    SCENARIO = TestSpecs.SCENARIO

    def _queue_spec(self, tmp_path):
        scenarios = [dict(self.SCENARIO, seed=s, algorithm={"name": name})
                     for s in (0, 1)
                     for name in ("greedy", "ntg")]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(scenarios))
        return path

    def test_enqueue_work_status_collect(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        spec = self._queue_spec(tmp_path)
        queue_dir = tmp_path / "q"

        assert main(["enqueue", str(queue_dir), "--spec", str(spec),
                     "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 scenario(s) as 2 chunk(s)" in out

        assert main(["status", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "chunks: total=2 pending=2 leased=0 expired=0 done=0" in out
        assert "scenarios: done=0/4" in out

        assert main(["work", str(queue_dir), "--worker-id", "t",
                     "--cache", "off"]) == 0
        out = capsys.readouterr().out
        assert "queue drained" in out

        assert main(["status", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "chunks: total=2 pending=0 leased=0 expired=0 done=2" in out
        assert "scenarios: done=4/4" in out

        collected = tmp_path / "collected.json"
        assert main(["collect", str(queue_dir),
                     "--out", str(collected)]) == 0
        reports = json.loads(collected.read_text())
        assert len(reports) == 4
        assert all("throughput" in r and "scenario" in r for r in reports)

    def test_collect_table_matches_sweep(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        spec = self._queue_spec(tmp_path)
        assert main(["sweep", "--spec", str(spec)]) == 0
        plain = capsys.readouterr().out
        queue_dir = tmp_path / "q"
        assert main(["enqueue", str(queue_dir), "--spec", str(spec)]) == 0
        assert main(["work", str(queue_dir), "--cache", "off"]) == 0
        capsys.readouterr()
        assert main(["collect", str(queue_dir)]) == 0
        collected = capsys.readouterr().out

        def strip_wall(text):
            return [[c.strip() for c in line.split("|")][:-1]
                    for line in text.splitlines() if "|" in line]

        assert strip_wall(plain) == strip_wall(collected)

    def test_collect_refuses_undrained_queue(self, tmp_path, capsys):
        spec = self._queue_spec(tmp_path)
        queue_dir = tmp_path / "q"
        assert main(["enqueue", str(queue_dir), "--spec", str(spec),
                     "--chunk-size", "2"]) == 0
        capsys.readouterr()
        assert main(["collect", str(queue_dir)]) == 2
        err = capsys.readouterr().err
        assert "not drained" in err and "chunk_00000" in err
        assert "Traceback" not in err

    def test_enqueue_refuses_existing_queue(self, tmp_path, capsys):
        spec = self._queue_spec(tmp_path)
        queue_dir = tmp_path / "q"
        assert main(["enqueue", str(queue_dir), "--spec", str(spec)]) == 0
        capsys.readouterr()
        assert main(["enqueue", str(queue_dir), "--spec", str(spec)]) == 2
        assert "already holds a queue" in capsys.readouterr().err

    def test_enqueue_excludes_unavailable_scenarios(self, tmp_path,
                                                    capsys):
        """The capability pre-check mirrors 'sweep --shards': a scenario
        no engine can run never enters the queue (it would requeue
        forever)."""
        scenarios = [dict(self.SCENARIO, algorithm={"name": "bufferless"}),
                     dict(self.SCENARIO, algorithm={"name": "greedy"})]
        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps(scenarios))  # bufferless needs B=0
        queue_dir = tmp_path / "q"
        assert main(["enqueue", str(queue_dir), "--spec", str(spec)]) == 0
        captured = capsys.readouterr()
        assert "excluding 1 unavailable scenario(s)" in captured.err
        assert "1 scenario(s) as 1 chunk(s)" in captured.out

    def test_work_on_missing_queue_exits_cleanly(self, tmp_path, capsys):
        assert main(["work", str(tmp_path / "nope")]) == 2
        err = capsys.readouterr().err
        assert "not a work queue" in err and "Traceback" not in err

    def test_work_rejects_bad_crash_env(self, tmp_path, capsys,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_QUEUE_CRASH_AFTER", "soon")
        assert main(["work", str(tmp_path)]) == 2
        assert "REPRO_QUEUE_CRASH_AFTER" in capsys.readouterr().err
