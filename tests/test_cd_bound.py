"""Tests for the congestion + dilation offline bound (repro.packing.cd).

Three layers: the EDF unit-job scheduler the cut analysis rests on, the
bound itself (validity against the exact optimum, never looser than
max-flow, strictly tighter on a crafted deadline-coupled instance), and
its integration through ``offline_bound(method="cd")``.
"""

from __future__ import annotations

import pytest

from repro.baselines.offline import BOUND_METHODS, offline_bound
from repro.network.packet import Request
from repro.network.topology import GridNetwork, LineNetwork
from repro.packing.cd import (
    cd_cut_bound,
    cd_throughput_bound,
    edf_max_scheduled,
)
from repro.packing.exact import exact_opt_small
from repro.packing.maxflow import throughput_upper_bound
from repro.util.errors import ValidationError


class TestEDF:
    def test_empty_and_zero_capacity(self):
        assert edf_max_scheduled([], 3) == 0
        assert edf_max_scheduled([(0, 5)], 0) == 0

    def test_all_fit_when_windows_disjoint(self):
        assert edf_max_scheduled([(0, 0), (1, 1), (2, 2)], 1) == 3

    def test_capacity_binds_identical_windows(self):
        # four jobs, window of two slots, two per slot fit
        jobs = [(0, 1)] * 4
        assert edf_max_scheduled(jobs, 2) == 4
        assert edf_max_scheduled(jobs, 1) == 2

    def test_edf_beats_greedy_ordering(self):
        # one slot each at t=0: serving the loose job first loses the
        # tight one; EDF serves (0,0) at 0 and (0,5) later
        assert edf_max_scheduled([(0, 5), (0, 0)], 1) == 2

    def test_idle_gap_is_skipped(self):
        assert edf_max_scheduled([(0, 0), (100, 100)], 1) == 2

    def test_lapsed_jobs_are_dropped(self):
        # three jobs share the single slot 0; only one can be served
        assert edf_max_scheduled([(0, 0)] * 3, 1) == 1


def line(n=8, B=2, c=1):
    return LineNetwork(n, buffer_size=B, capacity=c)


class TestCutBound:
    def test_empty_and_infeasible(self):
        net = line()
        assert cd_cut_bound(net, [], 20) == 0
        # arrival past the horizon, and a deadline tighter than the distance
        reqs = [Request((0,), (5,), arrival=30, rid=0),
                Request((0,), (7,), arrival=0, deadline=3, rid=1)]
        assert cd_cut_bound(net, reqs, 20) == 0

    def test_single_request_counts_once(self):
        net = line()
        reqs = [Request((0,), (5,), arrival=0, rid=0)]
        assert cd_cut_bound(net, reqs, 20) == 1

    def test_cut_capacity_binds(self):
        # 6 identical requests over a c=1 line; each cut's crossing
        # window is [steps, 5 - (3 - steps)] -- always 3 slots -- so at
        # most 3 of them can ever cross, regardless of the horizon
        net = line(n=4, B=2, c=1)
        reqs = [Request((0,), (3,), arrival=0, deadline=5, rid=i)
                for i in range(6)]
        assert cd_cut_bound(net, reqs, 20) == 3

    def test_deadline_coupling_beats_maxflow(self):
        """The crafted swap-slack instance: two tight-deadline twins and
        one loose request share a source edge.  Max-flow credits a unit
        departing a tight request's source event to the loose deadline
        window (3 units); the cut analysis pins each crossing to its
        owner's window (2 units)."""
        net = line(n=6, B=2, c=1)
        reqs = [
            Request((2,), (4,), arrival=2, deadline=4, rid=0),
            Request((2,), (4,), arrival=2, deadline=4, rid=1),
            Request((2,), (5,), arrival=0, deadline=15, rid=2),
        ]
        horizon = 20
        mf = throughput_upper_bound(net, reqs, horizon)
        cd = cd_throughput_bound(net, reqs, horizon)
        assert mf == 3
        assert cd == 2
        # and 2 is achievable, so the tighter bound is still valid
        opt, _ = exact_opt_small(net, reqs, horizon)
        assert opt == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_valid_against_exact_optimum(self, seed):
        from repro.workloads.deadline import deadline_requests

        net = line(n=5, B=1, c=1)
        reqs = deadline_requests(net, num=6, horizon=4, slack=2, rng=seed,
                                 jitter=2)
        horizon = 12
        opt, _ = exact_opt_small(net, reqs, horizon)
        cd = cd_throughput_bound(net, reqs, horizon)
        assert cd >= opt
        assert cd <= throughput_upper_bound(net, reqs, horizon)

    def test_grid_axes_both_cut(self):
        net = GridNetwork((3, 3), buffer_size=1, capacity=1)
        reqs = [Request((0, 0), (2, 2), arrival=0, rid=i) for i in range(4)]
        cd = cd_throughput_bound(net, reqs, 16)
        assert 0 < cd <= 4


class TestOfflineBoundIntegration:
    def test_method_cd_dispatches(self):
        net = line()
        reqs = [Request((0,), (5,), arrival=0, rid=0)]
        assert offline_bound(net, reqs, 20, method="cd") == 1.0
        assert offline_bound(net, [], 20, method="cd") == 0.0

    def test_methods_are_ordered_by_tightness_on_lines(self):
        from repro.workloads.uniform import uniform_requests

        net = line(n=6, B=2, c=1)
        reqs = uniform_requests(net, num=12, horizon=6, rng=3)
        horizon = 24
        values = {m: offline_bound(net, reqs, horizon, method=m)
                  for m in ("exact", "lp", "cd", "maxflow")}
        assert values["exact"] <= values["lp"] + 1e-9
        assert values["cd"] <= values["maxflow"]
        assert values["exact"] <= values["cd"]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown offline bound"):
            offline_bound(line(), [Request((0,), (1,), arrival=0, rid=0)],
                          10, method="psychic")

    def test_bound_methods_constant_matches_run_layer(self):
        from repro.api.run import BOUND_METHODS as RUN_METHODS

        assert BOUND_METHODS == RUN_METHODS
