"""Tests for the repro.api Scenario layer: registries, specs, runner.

Extends the PR-1 determinism suite: scenario runs must be bit-identical
across serialization round-trips, process-pool sharding, and engines.
"""

import json
import math

import pytest

from repro.api import (
    ALGORITHMS,
    TOPOLOGIES,
    WORKLOADS,
    AlgorithmSpec,
    NetworkSpec,
    Scenario,
    ScenarioError,
    WorkloadSpec,
    algorithm_names,
    run,
    run_batch,
    unavailable_reason,
    workload_names,
)
from repro.util.errors import ValidationError


def line_scenario(algorithm="ntg", n=16, B=2, c=2, num=24, seed=0, **kw):
    return Scenario(
        network=NetworkSpec("line", (n,), B, c),
        workload=WorkloadSpec("uniform", {"num": num, "horizon": n}),
        algorithm=algorithm,
        horizon=4 * n,
        seed=seed,
        **kw,
    )


class TestRegistries:
    def test_builtin_algorithms_registered(self):
        assert {"det", "det2", "rand", "greedy", "ntg", "bufferless",
                "theorem13"} <= set(algorithm_names())

    def test_builtin_workloads_registered(self):
        assert {"uniform", "poisson", "bursty", "permutation", "deadline",
                "clogging", "dense-area", "distance-cascade",
                "crossfire"} <= set(workload_names())

    def test_topologies_registered(self):
        assert set(TOPOLOGIES.names()) >= {"line", "grid"}

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValidationError, match="registered"):
            ALGORITHMS.get("magic")

    def test_introspected_params(self):
        greedy = ALGORITHMS.get("greedy")
        assert greedy.params == ("priority",)
        uniform = WORKLOADS.get("uniform")
        assert set(uniform.params) == {"num", "horizon", "min_distance"}
        assert uniform.takes_rng
        assert not WORKLOADS.get("clogging").takes_rng

    def test_planner_adapter_exposes_factory_params(self):
        assert "lam" in ALGORITHMS.get("rand").params
        assert "k" in ALGORITHMS.get("det").params

    def test_validate_params_rejects_unknown(self):
        with pytest.raises(ValidationError, match="does not accept"):
            WORKLOADS.get("uniform").validate_params({"warp": 9})

    def test_validate_params_requires_required(self):
        with pytest.raises(ValidationError, match="requires parameters"):
            WORKLOADS.get("uniform").validate_params({"num": 5})

    def test_capability_metadata(self):
        net = NetworkSpec("line", (16,), 1, 1).build()
        assert ALGORITHMS.get("greedy").unavailable(net, 64) is None
        reason = ALGORITHMS.get("det").unavailable(net, 64)
        assert reason is not None and "B" in reason
        assert ALGORITHMS.get("bufferless").unavailable(net, 64) is not None

    def test_duplicate_registration_rejected(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError, match="twice"):
            ALGORITHMS.add("greedy", lambda network, requests, horizon: None)

    def test_provider_reimport_is_idempotent(self):
        # a provider module re-executing its decorators (re-imported after
        # a failed provider load dropped it from sys.modules) must refresh
        # entries, not die with 'registered twice' or lose names
        import importlib
        import sys

        before = algorithm_names()
        sys.modules.pop("repro.baselines.greedy")
        try:
            importlib.import_module("repro.baselines.greedy")
        finally:
            assert "repro.baselines.greedy" in sys.modules
        assert algorithm_names() == before
        assert ALGORITHMS.get("greedy").params == ("priority",)


class TestSpecs:
    def test_network_spec_parse(self):
        spec = NetworkSpec.parse("8x8", 3, 3)
        assert spec.kind == "grid" and spec.dims == (8, 8)
        assert NetworkSpec.parse("64").kind == "line"

    def test_network_spec_build(self):
        net = NetworkSpec("grid", (4, 4), 2, 1).build()
        assert net.dims == (4, 4) and net.buffer_size == 2

    def test_params_frozen_and_sorted(self):
        a = WorkloadSpec("uniform", {"num": 5, "horizon": 8})
        b = WorkloadSpec("uniform", {"horizon": 8, "num": 5})
        assert a == b and hash(a) == hash(b)

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ValidationError, match="JSON scalar"):
            AlgorithmSpec("rand", {"lam": [1, 2]})

    def test_scenario_coercion(self):
        sc = Scenario(
            network={"kind": "line", "dims": [8], "B": 1, "c": 1},
            workload="clogging",
            algorithm="ntg",
            horizon=32,
        )
        assert isinstance(sc.network, NetworkSpec)
        assert sc.network.buffer_size == 1
        assert sc.workload == WorkloadSpec("clogging")
        assert sc.algorithm == AlgorithmSpec("ntg")

    def test_dict_round_trip(self):
        sc = line_scenario("rand", engine="fast")
        assert Scenario.from_dict(sc.to_dict()) == sc

    def test_json_round_trip(self):
        sc = line_scenario("det", B=3, c=3)
        again = Scenario.from_json(sc.to_json())
        assert again == sc
        assert json.loads(sc.to_json())["horizon"] == sc.horizon

    def test_missing_key_reports_field(self):
        with pytest.raises(ValidationError, match="horizon"):
            Scenario.from_dict({"network": {"kind": "line", "dims": [8]},
                                "workload": "uniform", "algorithm": "ntg"})

    def test_digest_stable_and_engine_free(self):
        sc = line_scenario()
        assert sc.digest() == Scenario.from_dict(sc.to_dict()).digest()
        # the engine must never influence results, so it is not hashed
        assert sc.digest() == sc.replace(engine="fast").digest()
        assert sc.digest() != sc.replace(seed=1).digest()
        assert sc.digest() != sc.replace(algorithm="greedy").digest()

    def test_instance_digest_ignores_algorithm(self):
        sc = line_scenario("ntg")
        assert sc.instance_digest() == sc.replace(algorithm="greedy").instance_digest()

    def test_same_instance_across_algorithms(self):
        ntg = line_scenario("ntg")
        greedy = ntg.replace(algorithm="greedy")
        _, reqs_a = ntg.build_instance()
        _, reqs_b = greedy.build_instance()
        assert [(r.source, r.dest, r.arrival) for r in reqs_a] == \
            [(r.source, r.dest, r.arrival) for r in reqs_b]


class TestRun:
    def test_report_shape(self):
        report = run(line_scenario())
        assert 0 <= report.throughput <= report.requests == 24
        assert report.bound >= report.throughput
        assert report.ratio >= 1.0
        assert report.engine in ("reference", "fast")
        assert report.wall_time > 0

    def test_round_trip_bit_identical(self):
        # Scenario -> to_dict -> from_dict -> run == run (wall_time excluded
        # from equality by design)
        for name in ("ntg", "rand"):
            sc = line_scenario(name)
            assert run(Scenario.from_dict(sc.to_dict())) == run(sc)

    def test_engines_bit_identical(self):
        sc = line_scenario("greedy", n=12, num=30)
        ref = run(sc.replace(engine="reference"))
        fast = run(sc.replace(engine="fast"))
        measured = lambda r: (r.throughput, r.bound, r.late, r.rejected,
                              r.preempted, r.latency_mean, r.latency_max,
                              r.steps)
        assert measured(ref) == measured(fast)
        assert fast.engine == "fast" and ref.engine == "reference"

    def test_unavailable_raises_scenario_error(self):
        sc = line_scenario("det", B=1, c=1)
        with pytest.raises(ScenarioError, match="B, c >= 3"):
            run(sc)

    def test_unavailable_reason_matches(self):
        sc = line_scenario("det", B=1, c=1)
        assert "B, c >= 3" in unavailable_reason(sc)
        assert unavailable_reason(line_scenario("ntg")) is None

    def test_unknown_algorithm_param_rejected(self):
        sc = line_scenario()
        bad = sc.replace(algorithm=AlgorithmSpec("ntg", {"warp": 1}))
        with pytest.raises(ValidationError, match="does not accept"):
            run(bad)

    def test_latency_stats(self):
        report = run(line_scenario(num=10))
        if report.throughput > 0:
            assert report.latency_mean >= 1.0
            assert report.latency_max >= report.latency_mean
        else:
            assert math.isnan(report.latency_mean)

    def test_planner_consistency_enforced(self):
        # det runs through the plan/replay cross-check path
        report = run(line_scenario("det", B=3, c=3, num=12))
        assert report.throughput >= 0

    def test_bound_method_recorded_and_cd_no_looser(self):
        sc = line_scenario(num=30)
        maxflow = run(sc)
        cd = run(sc, bound_method="cd")
        assert maxflow.meta["bound_method"] == "maxflow"
        assert cd.meta["bound_method"] == "cd"
        assert cd.throughput <= cd.bound <= maxflow.bound

    def test_bound_method_validated(self):
        with pytest.raises(ValidationError, match="unknown offline bound"):
            run(line_scenario(), bound_method="psychic")
        with pytest.raises(ValidationError, match="unknown offline bound"):
            run_batch([line_scenario()], bound_method="psychic")


class TestReportEdges:
    def _report(self, throughput, bound):
        from repro.api.run import RunReport

        return RunReport(
            scenario=line_scenario(), requests=5, throughput=throughput,
            bound=bound, late=0, rejected=0, preempted=0, latency_mean=1.0,
            latency_max=1.0, steps=10, engine="fast")

    def test_zero_bound_positive_throughput_is_loud(self):
        # a bound claiming nothing was deliverable while packets landed is
        # broken; neither derived metric may dress that up as a perfect run
        report = self._report(throughput=3, bound=0.0)
        assert report.goodput == math.inf
        assert report.ratio == 0.0  # below 1.0: impossible for a true bound

    def test_zero_bound_zero_throughput_is_neutral(self):
        report = self._report(throughput=0, bound=0.0)
        assert report.goodput == 1.0
        assert report.ratio == 1.0

    def test_jsonable_coerces_non_string_dict_keys(self):
        from repro.api.run import _jsonable

        meta = {"hist": {2: 7, True: "x", "s": 3, (1, 2): "dropped"},
                5: "five"}
        out = _jsonable(meta)
        assert out == {"hist": {"2": 7, "True": "x", "s": 3}, "5": "five"}
        # and the result survives an actual JSON round-trip unchanged --
        # the cache-replay equality this exists for
        assert json.loads(json.dumps(out)) == out


class TestRunBatch:
    def test_workers_bit_identical_to_serial(self):
        # small grid matrix: algorithms x seeds, shared instances per seed
        scenarios = [
            line_scenario(name, n=12, num=18, seed=seed)
            for name in ("greedy", "ntg", "rand")
            for seed in range(2)
        ]
        serial = run_batch(scenarios)
        pooled = run_batch(scenarios, workers=4)
        assert serial == pooled  # RunReport equality excludes wall_time
        assert [r.scenario for r in pooled] == scenarios

    def test_accepts_raw_dicts(self):
        sc = line_scenario()
        assert run_batch([sc.to_dict()]) == [run(sc)]

    def test_duplicate_scenarios_execute_once(self, monkeypatch):
        """Pinned behaviour: identical scenarios in one batch are handled
        deterministically -- a single execution whose report fills every
        duplicate position (duplicates used to race each other into the
        cache: bit-identical by contract, but wasted work and
        nondeterministic store accounting)."""
        import sys

        run_mod = sys.modules["repro.api.run"]

        sc = line_scenario(seed=4)
        other = line_scenario("greedy", seed=4)
        batch = [sc, other, sc, sc]

        calls = []
        real = run_mod._execute

        def counting(scenario, compute_bound):
            calls.append(scenario)
            return real(scenario, compute_bound)

        monkeypatch.setattr(run_mod, "_execute", counting)
        reports = run_batch(batch)
        assert calls == [sc, other]  # one execution per unique scenario
        assert reports[0] == reports[2] == reports[3] == run(sc)
        assert reports[1] == run(other)
        assert [r.scenario for r in reports] == batch

    def test_duplicate_scenarios_store_once(self, tmp_path):
        """Cache accounting for duplicates: one lookup per position, one
        store per unique scenario; a warmed rerun hits every position."""
        sc = line_scenario(seed=5)
        batch = [sc, sc, line_scenario("greedy", seed=5)]
        cold = run_batch(batch, cache="readwrite", cache_dir=tmp_path)
        assert cold.cache_stats.misses == 3
        assert cold.cache_stats.stores == 2
        warm = run_batch(batch, cache="readwrite", cache_dir=tmp_path)
        assert warm.cache_stats.hits == 3
        assert list(warm) == list(cold)

    def test_duplicate_scenarios_pooled_match_serial(self):
        sc = line_scenario(seed=6)
        batch = [sc, line_scenario("greedy", seed=6), sc]
        assert run_batch(batch, workers=3) == run_batch(batch)

    def test_spec_file_round_trip(self, tmp_path):
        from repro.api import load_scenarios

        scenarios = [line_scenario("ntg"), line_scenario("greedy", seed=3)]
        path = tmp_path / "batch.json"
        path.write_text(json.dumps(
            {"scenarios": [s.to_dict() for s in scenarios]}))
        assert load_scenarios(path) == scenarios
        single = tmp_path / "one.json"
        single.write_text(scenarios[0].to_json())
        assert load_scenarios(single) == [scenarios[0]]

    def test_empty_spec_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("[]")
        with pytest.raises(ValidationError):
            from repro.api import load_scenarios

            load_scenarios(path)
