"""Tests for the analysis harness (metrics, runner, tables)."""

import math

import pytest

from repro.analysis.metrics import Evaluation, competitive_ratio, evaluate_plan, evaluate_policy
from repro.analysis.runner import ExperimentResult, run_trials, sweep
from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.core.base import Plan, RouteOutcome
from repro.core.deterministic.variants import BufferlessLineRouter
from repro.network.topology import LineNetwork
from repro.spacetime.graph import STPath
from repro.util.errors import ReproError
from repro.workloads.uniform import uniform_requests


class TestEvaluation:
    def test_ratio(self):
        ev = Evaluation(throughput=5, bound=10.0, requests=20)
        assert ev.ratio == 2.0
        assert ev.goodput == 0.5

    def test_zero_throughput(self):
        ev = Evaluation(throughput=0, bound=10.0, requests=20)
        assert ev.ratio == math.inf

    def test_empty_instance(self):
        ev = Evaluation(throughput=0, bound=0.0, requests=0)
        assert ev.ratio == 1.0 and ev.goodput == 1.0

    def test_evaluate_policy(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 10, 8, rng=0)
        res = run_greedy(net, reqs, 40)
        ev = evaluate_policy(net, res, reqs, 40)
        assert ev.throughput == res.throughput
        assert ev.bound >= ev.throughput

    def test_evaluate_plan_verifies(self):
        net = LineNetwork(8, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 8, 8, rng=1)
        plan = BufferlessLineRouter(net, 32).route(reqs)
        ev = evaluate_plan(net, plan, reqs, 32)
        assert ev.throughput == plan.throughput

    def test_evaluate_plan_detects_mismatch(self):
        net = LineNetwork(8, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 4, 4, rng=2)
        plan = Plan()
        # claim a delivery with a path that does not reach the destination
        r = reqs[0]
        bogus = STPath((r.source[0], r.arrival - r.source[0]), (), rid=r.rid)
        plan.record(r.rid, RouteOutcome.DELIVERED, bogus)
        if r.distance > 0:
            with pytest.raises(ReproError):
                evaluate_plan(net, plan, reqs, 32)

    def test_competitive_ratio_function(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 6, 6, rng=3)
        assert competitive_ratio(net, 3, reqs, 30) >= 1.0


class TestRunner:
    def test_experiment_result_stats(self):
        r = ExperimentResult("x")
        for v in (1.0, 2.0, 3.0):
            r.add(v)
        assert r.mean == 2.0 and r.best == 1.0 and r.worst == 3.0
        assert r.std > 0

    def test_infinities_excluded_from_mean(self):
        r = ExperimentResult("x")
        r.add(1.0)
        r.add(math.inf)
        assert r.mean == 1.0 and r.worst == math.inf

    def test_run_trials_deterministic(self):
        a = run_trials(lambda rng: float(rng.integers(0, 100)), 5, base_seed=1)
        b = run_trials(lambda rng: float(rng.integers(0, 100)), 5, base_seed=1)
        assert a.values == b.values
        assert len(a.values) == 5

    def test_sweep_shape(self):
        out = sweep(lambda p, rng: float(p * 2), [1, 2, 3], seeds=2)
        assert set(out) == {1, 2, 3}
        assert out[2].mean == 4.0

    def test_summary_text(self):
        r = ExperimentResult("ratio")
        r.add(2.0)
        assert "ratio" in r.summary() and "mean=2.000" in r.summary()


class TestTables:
    def test_format_basic(self):
        text = format_table(["n", "ratio"], [[8, 1.5], [16, 2.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "ratio" in lines[1]
        assert "2.250" in text

    def test_column_alignment(self):
        text = format_table(["a", "bbbb"], [["x", "y"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(row)
