"""Tests for the analysis harness (metrics, runner, tables)."""

import math
import os
import subprocess
import sys

import pytest

from repro.analysis.metrics import Evaluation, competitive_ratio, evaluate_plan, evaluate_policy
from repro.analysis.runner import ExperimentResult, run_trials, sweep
from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.core.base import Plan, RouteOutcome
from repro.core.deterministic.variants import BufferlessLineRouter
from repro.network.topology import LineNetwork
from repro.spacetime.graph import STPath
from repro.util.errors import ReproError
from repro.workloads.uniform import uniform_requests


class TestEvaluation:
    def test_ratio(self):
        ev = Evaluation(throughput=5, bound=10.0, requests=20)
        assert ev.ratio == 2.0
        assert ev.goodput == 0.5

    def test_zero_throughput(self):
        ev = Evaluation(throughput=0, bound=10.0, requests=20)
        assert ev.ratio == math.inf

    def test_empty_instance(self):
        ev = Evaluation(throughput=0, bound=0.0, requests=0)
        assert ev.ratio == 1.0 and ev.goodput == 1.0

    def test_evaluate_policy(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 10, 8, rng=0)
        res = run_greedy(net, reqs, 40)
        ev = evaluate_policy(net, res, reqs, 40)
        assert ev.throughput == res.throughput
        assert ev.bound >= ev.throughput

    def test_evaluate_plan_verifies(self):
        net = LineNetwork(8, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 8, 8, rng=1)
        plan = BufferlessLineRouter(net, 32).route(reqs)
        ev = evaluate_plan(net, plan, reqs, 32)
        assert ev.throughput == plan.throughput

    def test_evaluate_plan_detects_mismatch(self):
        net = LineNetwork(8, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 4, 4, rng=2)
        plan = Plan()
        # claim a delivery with a path that does not reach the destination
        r = reqs[0]
        bogus = STPath((r.source[0], r.arrival - r.source[0]), (), rid=r.rid)
        plan.record(r.rid, RouteOutcome.DELIVERED, bogus)
        if r.distance > 0:
            with pytest.raises(ReproError):
                evaluate_plan(net, plan, reqs, 32)

    def test_competitive_ratio_function(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 6, 6, rng=3)
        assert competitive_ratio(net, 3, reqs, 30) >= 1.0


class TestRunner:
    def test_experiment_result_stats(self):
        r = ExperimentResult("x")
        for v in (1.0, 2.0, 3.0):
            r.add(v)
        assert r.mean == 2.0 and r.best == 1.0 and r.worst == 3.0
        assert r.std > 0

    def test_infinities_excluded_from_mean(self):
        r = ExperimentResult("x")
        r.add(1.0)
        r.add(math.inf)
        # best/worst use the same finite filter as mean/std
        assert r.mean == 1.0 and r.worst == 1.0 and r.best == 1.0

    def test_nan_does_not_poison_extremes(self):
        r = ExperimentResult("x")
        for v in (2.0, math.nan, 1.0, 3.0):
            r.add(v)
        assert r.best == 1.0 and r.worst == 3.0
        assert r.mean == 2.0

    def test_all_nonfinite_extremes(self):
        r = ExperimentResult("x")
        r.add(math.nan)
        r.add(math.inf)
        assert math.isnan(r.best) and math.isnan(r.worst)

    def test_all_nonfinite_mean_and_std_are_nan(self):
        # regression: mean used to report inf (and std 0.0) when *every*
        # trial was non-finite, which made a fully-poisoned aggregate look
        # like a clean divergent one
        r = ExperimentResult("x")
        r.add(math.inf)
        r.add(math.nan)
        assert math.isnan(r.mean) and math.isnan(r.std)
        empty = ExperimentResult("empty")
        assert math.isnan(empty.mean) and math.isnan(empty.std)

    def test_run_trials_deterministic(self):
        a = run_trials(lambda rng: float(rng.integers(0, 100)), 5, base_seed=1)
        b = run_trials(lambda rng: float(rng.integers(0, 100)), 5, base_seed=1)
        assert a.values == b.values
        assert len(a.values) == 5

    def test_sweep_shape(self):
        out = sweep(lambda p, rng: float(p * 2), [1, 2, 3], seeds=2)
        assert set(out) == {1, 2, 3}
        assert out[2].mean == 4.0

    def test_summary_text(self):
        r = ExperimentResult("ratio")
        r.add(2.0)
        assert "ratio" in r.summary() and "mean=2.000" in r.summary()


def _probe_metric(point, rng):
    """Module-level sweep metric so ``workers > 1`` can pickle it."""
    scale = point[1] if isinstance(point, tuple) else point
    return float(rng.uniform()) + 100.0 * scale


_SWEEP_SCRIPT = """\
from repro.analysis.runner import sweep

def metric(point, rng):
    scale = point[1] if isinstance(point, tuple) else point
    return float(rng.uniform()) + 100.0 * scale

for workers in (None, 2):
    out = sweep(metric, [("a", 1), ("b", 2), 3], seeds=4, base_seed=7,
                workers=workers)
    for point, result in out.items():
        print(workers, point, [v.hex() for v in result.values])
"""


class TestSweepReproducibility:
    def _run_with_hashseed(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _SWEEP_SCRIPT],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        return proc.stdout

    def test_sweep_stable_across_hash_randomization(self):
        # hash(str) differs between these two processes; sweep values must not
        a = self._run_with_hashseed("12345")
        b = self._run_with_hashseed("54321")
        assert a == b
        assert a.strip()  # the script really produced output

    def test_workers_bit_identical_to_serial(self):
        points = [("a", 1), ("b", 2), 3]
        serial = sweep(_probe_metric, points, seeds=4, base_seed=7)
        pooled = sweep(_probe_metric, points, seeds=4, base_seed=7, workers=2)
        assert set(serial) == set(pooled)
        for point in points:
            assert serial[point].values == pooled[point].values

    def test_distinct_points_get_distinct_streams(self):
        out = sweep(_probe_metric, [("a", 1), ("b", 1)], seeds=3, base_seed=0)
        frac = lambda vs: [v % 1.0 for v in vs]
        assert frac(out[("a", 1)].values) != frac(out[("b", 1)].values)

    def test_same_point_reproducible_in_process(self):
        a = sweep(_probe_metric, [3], seeds=5, base_seed=9)
        b = sweep(_probe_metric, [3], seeds=5, base_seed=9)
        assert a[3].values == b[3].values


class TestSweepSharding:
    """Multi-host partitioning of (point, trial) sweeps: any shard count
    merges back to exactly the serial sweep (values in trial order)."""

    POINTS = [("a", 1), ("b", 2), 3, ("a", 1)]  # duplicate collapses

    def test_partition_equivalence(self):
        from repro.analysis.runner import merge_sweep_shards, sweep_shard

        serial = sweep(_probe_metric, self.POINTS, seeds=4, base_seed=7)
        for n_shards in (1, 2, 3, 5, 12):
            parts = [
                sweep_shard(_probe_metric, self.POINTS, i, n_shards,
                            seeds=4, base_seed=7)
                for i in range(n_shards)
            ]
            merged = merge_sweep_shards(self.POINTS, reversed(parts), seeds=4)
            assert list(merged) == list(serial)
            for point in serial:
                assert merged[point].values == serial[point].values

    def test_plan_is_deterministic_and_complete(self):
        from repro.analysis.runner import plan_sweep_shards

        a = plan_sweep_shards(self.POINTS, 4, 3)
        b = plan_sweep_shards(self.POINTS, 4, 3)
        assert a == b
        units = [u for shard in a for u in shard]
        assert sorted(units) == [(pi, ti) for pi in range(3)
                                 for ti in range(4)]

    def test_merge_rejects_missing_and_duplicate_units(self):
        from repro.analysis.runner import merge_sweep_shards, sweep_shard

        parts = [sweep_shard(_probe_metric, self.POINTS, i, 2, seeds=2)
                 for i in range(2)]
        with pytest.raises(ValueError, match="missing"):
            merge_sweep_shards(self.POINTS, parts[:1], seeds=2)
        with pytest.raises(ValueError, match="more than one shard"):
            merge_sweep_shards(self.POINTS, parts + parts[:1], seeds=2)

    def test_pooled_shard_matches_serial_shard(self):
        from repro.analysis.runner import sweep_shard

        serial = sweep_shard(_probe_metric, self.POINTS, 0, 2, seeds=4,
                             base_seed=7)
        pooled = sweep_shard(_probe_metric, self.POINTS, 0, 2, seeds=4,
                             base_seed=7, workers=2)
        assert serial == pooled

    def test_zero_seeds_yields_empty_results(self):
        out = sweep(_probe_metric, [1, 2], seeds=0)
        assert set(out) == {1, 2}
        assert all(r.values == [] for r in out.values())

    def test_duplicate_points_do_not_misalign_values(self):
        dup = sweep(_probe_metric, [1, 1, 2], seeds=2)
        plain = sweep(_probe_metric, [1, 2], seeds=2)
        assert dup[1].values == plain[1].values
        assert dup[2].values == plain[2].values


class TestTables:
    def test_format_basic(self):
        text = format_table(["n", "ratio"], [[8, 1.5], [16, 2.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "ratio" in lines[1]
        assert "2.250" in text

    def test_column_alignment(self):
        text = format_table(["a", "bbbb"], [["x", "y"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(row)
