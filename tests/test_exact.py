"""Tests for the exact branch-and-bound optimum."""

import pytest

from repro.network.packet import Request
from repro.network.topology import LineNetwork
from repro.packing.exact import enumerate_paths, exact_opt_small
from repro.spacetime.graph import SpaceTimeGraph
from repro.util.errors import ValidationError


class TestEnumeratePaths:
    def test_bufferless_single_path(self):
        net = LineNetwork(4, buffer_size=0, capacity=1)
        graph = SpaceTimeGraph(net, horizon=6)
        paths = enumerate_paths(graph, Request.line(0, 3, 0))
        assert len(paths) == 1
        assert paths[0].moves == (0, 0, 0)

    def test_buffered_path_count(self):
        # distance 2, deadline slack 1: shift the single buffer step into
        # 3 positions (before hop 1, between hops, after... arrival on time)
        net = LineNetwork(3, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=10)
        paths = enumerate_paths(graph, Request.line(0, 2, 0, deadline=3))
        moves = {p.moves for p in paths}
        assert (0, 0) in moves
        assert (1, 0, 0) in moves and (0, 1, 0) in moves
        assert len(paths) == 3  # buffering after arrival is not a path

    def test_limit_enforced(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=40)
        with pytest.raises(ValidationError):
            enumerate_paths(graph, Request.line(0, 3, 0), limit=5)

    def test_paths_end_at_destination(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=8)
        for p in enumerate_paths(graph, Request.line(1, 3, 2)):
            assert p.end(1)[0] == 3


class TestExactOpt:
    def test_no_contention(self):
        net = LineNetwork(6, buffer_size=1, capacity=1)
        reqs = [Request.line(i, i + 1, 0, rid=i) for i in (0, 2, 4)]
        value, chosen = exact_opt_small(net, reqs, 5)
        assert value == 3 and set(chosen) == {0, 2, 4}

    def test_bufferless_contention(self):
        net = LineNetwork(3, buffer_size=0, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        value, _ = exact_opt_small(net, reqs, 4)
        assert value == 1

    def test_buffering_resolves_contention(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        value, chosen = exact_opt_small(net, reqs, 8)
        assert value == 2
        # the chosen paths must be capacity-feasible
        ledger = SpaceTimeGraph(net, 8).ledger()
        for path in chosen.values():
            ledger.add_path(path)  # raises on violation

    def test_request_limit(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 1, t, rid=t) for t in range(20)]
        with pytest.raises(ValidationError):
            exact_opt_small(net, reqs, 30)

    def test_deadline_contention(self):
        net = LineNetwork(3, buffer_size=2, capacity=1)
        reqs = [
            Request.line(0, 2, 0, deadline=2, rid=0),
            Request.line(0, 2, 0, deadline=2, rid=1),
        ]
        value, _ = exact_opt_small(net, reqs, 6)
        assert value == 1  # second packet cannot make the deadline

    def test_witness_paths_serve_right_requests(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, 0, rid=0), Request.line(1, 4, 1, rid=1)]
        value, chosen = exact_opt_small(net, reqs, 10)
        assert value == 2
        assert chosen[0].start == (0, 0)
        assert chosen[1].start == (1, 0)
