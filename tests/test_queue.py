"""Chaos suite for the elastic sweep service (repro.api.queue/service).

The queue inherits the dispatch layer's headline guarantee and must keep
it under *elastic* execution: **any execution history -- any worker
count, any crash/requeue interleaving, any lease contention -- collects
to the serial ``run_batch`` report-for-report** (same measurements, same
``meta``; and for clean histories with a fresh cache, the same aggregate
cache accounting).  Hypothesis drives randomized worker interleavings
with a crash injected at a random point to hunt for counterexamples;
the deterministic tests pin down the lease state machine itself --
atomic claims, heartbeats, TTL expiry, crash-safe requeue, and the
both-workers-finish-the-same-chunk race a false expiry produces.

Everything timing-shaped runs against a fake clock and inline sleeps
(``heartbeat_interval=0``), so no test here waits on wall time.
"""

from __future__ import annotations

import json
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import (
    NetworkSpec,
    QueueError,
    Scenario,
    WorkloadSpec,
    run_batch,
)
from repro.api.queue import WorkQueue
from repro.api.service import QueueWorker, WorkerCrash


def scenario(seed=0, algorithm="ntg", n=12, num=16, engine=None):
    """A cheap runnable scenario (greedy family on a small line)."""
    return Scenario(
        network=NetworkSpec("line", (n,), 2, 2),
        workload=WorkloadSpec("uniform", {"num": num, "horizon": n}),
        algorithm=algorithm,
        horizon=4 * n,
        seed=seed,
        engine=engine,
    )


def small_batch(n_seeds=3, algorithms=("ntg", "greedy")):
    return [scenario(seed=s, algorithm=a)
            for s in range(n_seeds) for a in algorithms]


class FakeClock:
    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_worker(queue, worker_id, clock, cache_dir=None, **kwargs):
    """A step-driven worker: no heartbeat thread, no real sleeps, cache
    off unless a directory is given (the ambient REPRO_CACHE must never
    leak into these assertions)."""
    cache = "off" if cache_dir is None else "readwrite"
    kwargs.setdefault("heartbeat_interval", 0)
    kwargs.setdefault("poll", 0)
    kwargs.setdefault("sleep", lambda seconds: None)
    return QueueWorker(queue, worker_id, clock=clock, cache=cache,
                       cache_dir=cache_dir, **kwargs)


class TestEnqueue:
    def test_layout_and_header(self, tmp_path):
        batch = small_batch()
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        header = queue.header()
        assert header["batch_size"] == len(batch)
        assert header["n_chunks"] == 3
        assert sorted(p.name for p in queue.pending_dir.iterdir()) == [
            "chunk_00000.json", "chunk_00001.json", "chunk_00002.json"]
        assert list(queue.claimed_dir.iterdir()) == []
        assert list(queue.results_dir.iterdir()) == []
        assert sum(header["chunk_sizes"].values()) == len(batch)

    def test_chunking_is_deterministic(self, tmp_path):
        batch = small_batch()
        a = WorkQueue.create(tmp_path / "a", batch, chunk_size=2)
        b = WorkQueue.create(tmp_path / "b", batch, chunk_size=2)
        for name in ("chunk_00000.json", "chunk_00001.json"):
            assert (a.pending_dir / name).read_text() \
                == (b.pending_dir / name).read_text()
        assert a.header()["batch_digest"] == b.header()["batch_digest"]

    def test_refuses_existing_queue(self, tmp_path):
        WorkQueue.create(tmp_path / "q", small_batch())
        with pytest.raises(QueueError, match="already holds a queue"):
            WorkQueue.create(tmp_path / "q", small_batch())

    def test_rejects_bad_chunk_size_and_duplicates(self, tmp_path):
        with pytest.raises(QueueError, match="chunk_size"):
            WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=0)
        from repro.api import ShardError

        with pytest.raises(ShardError, match="duplicate scenario"):
            WorkQueue.create(tmp_path / "q2", [scenario(), scenario()])

    def test_non_queue_directory_rejected(self, tmp_path):
        with pytest.raises(QueueError, match="not a work queue"):
            WorkQueue(tmp_path).claim("w")
        with pytest.raises(QueueError, match="not a work queue"):
            WorkQueue(tmp_path).status()


class TestLeaseStateMachine:
    def test_claims_are_exclusive_and_ordered(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        first = queue.claim("a", clock=clock)
        second = queue.claim("b", clock=clock)
        third = queue.claim("a", clock=clock)
        assert [m["shard_index"] for m in (first, second, third)] == [0, 1, 2]
        assert queue.claim("b", clock=clock) is None
        assert sorted(p.stem for p in queue.claimed_dir.iterdir()) == [
            "chunk_00000", "chunk_00001", "chunk_00002"]

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        queue.claim("a", clock=clock)
        clock.advance(5)
        queue.heartbeat("chunk_00000", "a", clock=clock)
        clock.advance(6)  # 11s since claim, 6s since heartbeat
        assert queue.requeue_expired(ttl=8, clock=clock) == []
        clock.advance(5)  # 11s since heartbeat
        assert queue.requeue_expired(ttl=8, clock=clock) == ["chunk_00000"]
        assert (queue.pending_dir / "chunk_00000.json").exists()
        assert not queue._lease_path("chunk_00000").exists()

    def test_heartbeat_is_noop_without_lease_ownership(self, tmp_path):
        """After a false expiry and requeue, the old worker's heartbeat
        must not stomp the new claimant's lease (or resurrect a lease
        for a chunk it no longer holds)."""
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        queue.claim("a", clock=clock)
        assert queue.heartbeat("chunk_00000", "a", clock=clock) is True
        # a stalls long enough to be presumed dead; its chunk is requeued
        clock.advance(100)
        assert queue.requeue_expired(ttl=8, clock=clock) == ["chunk_00000"]
        assert queue.heartbeat("chunk_00000", "a", clock=clock) is False
        assert not queue._lease_path("chunk_00000").exists()  # no resurrection
        # b reclaims; a's late heartbeats leave b's lease untouched
        assert queue.claim("b", clock=clock)["shard_index"] == 0
        before = queue._read_lease("chunk_00000")
        clock.advance(5)
        assert queue.heartbeat("chunk_00000", "a", clock=clock) is False
        assert queue._read_lease("chunk_00000") == before
        assert queue._read_lease("chunk_00000")["worker"] == "b"
        # the rightful owner still refreshes normally
        assert queue.heartbeat("chunk_00000", "b", clock=clock) is True
        assert queue._read_lease("chunk_00000")["heartbeat_at"] == clock.now

    def test_heartbeat_thread_stands_down_after_lease_loss(self, tmp_path):
        """The service's heartbeat thread exits for good once its lease
        is gone, instead of beating over the new claimant forever."""
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        queue.claim("a", clock=clock)
        worker = make_worker(queue, "a", clock, heartbeat_interval=0.05)
        stop = worker._start_heartbeat("chunk_00000")
        try:
            # steal the lease before the thread's first beat fires
            clock.advance(100)
            queue.requeue_expired(ttl=8, clock=clock)
            queue.claim("b", clock=clock)
            worker._heartbeat_thread.join(timeout=5.0)
            assert not worker._heartbeat_thread.is_alive()
            assert queue._read_lease("chunk_00000")["worker"] == "b"
        finally:
            stop.set()

    def test_backwards_clock_step_counts_as_expired(self, tmp_path):
        """A wall clock stepping backwards leaves the lease heartbeat
        future-dated; trusting it would hold a dead worker's lease alive
        past any TTL, so it must classify as stale (requeue is always
        safe, a live owner merely reruns)."""
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock(start=1000.0)
        queue.claim("a", clock=clock)
        clock.now = 500.0  # NTP / VM-restore style backwards jump
        status = queue.status(ttl=10_000, clock=clock)
        assert status.chunks_expired == 1 and status.chunks_active == 0
        assert queue.requeue_expired(ttl=10_000, clock=clock) \
            == ["chunk_00000"]
        assert (queue.pending_dir / "chunk_00000.json").exists()

    def test_missing_lease_counts_as_expired(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        queue.claim("a", clock=clock)
        queue._lease_path("chunk_00000").unlink()
        assert queue.requeue_expired(ttl=60, clock=clock) == ["chunk_00000"]

    def test_completed_but_uncleaned_chunk_is_finalized(self, tmp_path):
        """A worker that died between the result write and the marker
        cleanup left a done chunk behind a claim: the sweep finalizes it
        instead of requeueing (the result file is authoritative)."""
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        manifest = queue.claim("a", clock=clock)
        reports = run_batch([Scenario.from_dict(i["scenario"])
                             for i in manifest["scenarios"]], cache="off")
        from repro.api.dispatch import write_shard_result

        write_shard_result(manifest, reports,
                           queue.result_path("chunk_00000"))
        clock.advance(1000)
        assert queue.requeue_expired(ttl=1, clock=clock) == []
        assert not (queue.claimed_dir / "chunk_00000.json").exists()
        assert not queue._lease_path("chunk_00000").exists()
        assert "chunk_00000" in queue.done_chunks()

    def test_release_returns_chunk_immediately(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        queue.claim("a", clock=clock)
        queue.release("chunk_00000")
        assert (queue.pending_dir / "chunk_00000.json").exists()
        assert queue.claim("b", clock=clock)["shard_index"] == 0

    def test_worker_releases_chunk_on_execution_error(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        worker = make_worker(queue, "a", clock)
        queue.complete = lambda *args: (_ for _ in ()).throw(
            RuntimeError("disk full"))
        with pytest.raises(RuntimeError, match="disk full"):
            worker.step()
        assert (queue.pending_dir / "chunk_00000.json").exists()
        assert list(queue.claimed_dir.iterdir()) == []


class TestWorkerLoop:
    def test_single_worker_drains_and_matches_serial(self, tmp_path):
        batch = small_batch()
        serial = run_batch(batch, cache="off")
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        worker = make_worker(queue, "solo", FakeClock())
        assert worker.run() == 3
        assert queue.is_drained()
        assert worker.step() == "drained"
        merged = queue.collect()
        assert list(merged) == list(serial)
        assert [r.meta for r in merged] == [r.meta for r in serial]

    def test_step_waits_while_others_hold_live_leases(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=6)
        clock = FakeClock()
        queue.claim("other", clock=clock)  # the only chunk, lease fresh
        worker = make_worker(queue, "idle", clock, ttl=60)
        assert worker.step() == "wait"

    def test_clean_history_cache_stats_equal_serial(self, tmp_path):
        """No crashes, fresh caches on both sides: the collected batch
        reproduces the serial aggregate cache accounting exactly --
        including the PR 6 offline-bound tier."""
        batch = small_batch()
        serial = run_batch(batch, cache="readwrite",
                           cache_dir=tmp_path / "serial_cache")
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        worker = make_worker(queue, "solo", FakeClock(),
                             cache_dir=tmp_path / "queue_cache")
        worker.run()
        merged = queue.collect()
        assert list(merged) == list(serial)
        assert vars(merged.cache_stats) == vars(serial.cache_stats)
        assert merged.cache_stats.bound_misses > 0  # the tier is live


class TestCrashRequeue:
    def test_crash_midchunk_requeues_and_collects_serial(self, tmp_path):
        """A worker dies after executing (and caching) one scenario of
        its chunk.  The lease expires, a second worker requeues and
        reruns the chunk -- replaying the crashed worker's partial
        progress from the shared cache -- and the collected batch equals
        the serial run with exactly accounted hits/misses."""
        batch = small_batch()
        serial = run_batch(batch, cache="off")
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        clock = FakeClock()
        cache_dir = tmp_path / "cache"

        crasher = make_worker(queue, "crasher", clock, cache_dir=cache_dir,
                              crash_after=1)
        with pytest.raises(WorkerCrash):
            crasher.step()
        assert list(queue.results_dir.iterdir()) == []
        assert (queue.claimed_dir / "chunk_00000.json").exists()

        # within the TTL nothing moves; past it the rescuer requeues
        rescuer = make_worker(queue, "rescuer", clock, cache_dir=cache_dir,
                              ttl=30)
        clock.advance(31)
        assert rescuer.run() == 3
        assert queue.is_drained()

        merged = queue.collect()
        assert list(merged) == list(serial)
        assert [r.meta for r in merged] == [r.meta for r in serial]
        stats = merged.cache_stats
        n = len(batch)
        assert (stats.hits, stats.misses, stats.stores) == (1, n - 1, n - 1)

    def test_false_expiry_duplicate_execution_is_harmless(self, tmp_path):
        """The race the TTL cannot rule out: a slow-but-alive worker
        loses its lease, another worker reruns the chunk, and *both*
        complete it.  Bit-identity makes the duplicate write a no-op;
        the collected batch still equals serial."""
        batch = small_batch()
        serial = run_batch(batch, cache="off")
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        clock = FakeClock()

        slow = queue.claim("slow", clock=clock)
        clock.advance(1000)  # slow never heartbeats; lease long dead
        fast = make_worker(queue, "fast", clock, ttl=30)
        assert fast.run() == 3  # includes the requeued chunk_00000
        assert queue.is_drained()

        # the slow worker wakes up and finishes the same chunk anyway
        reports = run_batch([Scenario.from_dict(i["scenario"])
                             for i in slow["scenarios"]], cache="off")
        queue.complete(slow, reports)

        assert queue.is_drained()
        assert list(queue.claimed_dir.iterdir()) == []
        merged = queue.collect()
        assert list(merged) == list(serial)

    def test_crash_between_result_and_cleanup(self, tmp_path):
        """Death in the completion window (result written, markers not
        yet removed) must not rerun the chunk: the sweep finalizes it
        and the queue drains without duplicate work."""
        batch = small_batch()
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        clock = FakeClock()
        manifest = queue.claim("victim", clock=clock)
        from repro.api.dispatch import write_shard_result

        write_shard_result(
            manifest,
            run_batch([Scenario.from_dict(i["scenario"])
                       for i in manifest["scenarios"]], cache="off"),
            queue.result_path("chunk_00000"))
        # claim + lease still on disk: exactly the wreckage of that crash
        clock.advance(1000)
        survivor = make_worker(queue, "survivor", clock, ttl=30)
        assert survivor.run() == 2  # the other two chunks only
        assert queue.is_drained()
        assert list(queue.collect()) == list(run_batch(batch, cache="off"))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much,
                                 HealthCheck.data_too_large])
@given(
    seeds=st.lists(st.integers(0, 6), min_size=1, max_size=6, unique=True),
    chunk_size=st.integers(1, 4),
    schedule=st.lists(st.integers(0, 2), min_size=1, max_size=40),
    crash_at=st.integers(0, 5),
    crash_progress=st.integers(0, 3),
)
def test_chaos_histories_collect_serial(seeds, chunk_size, schedule,
                                        crash_at, crash_progress):
    """The headline invariant, fuzzed: three workers sharing one cache
    interleave claims in a random order, one of them crashes mid-chunk
    at a random point with random partial progress, leases expire at
    random times (every idle step advances the clock past the TTL) --
    and whatever history results, the collected batch equals the serial
    ``run_batch`` report-for-report, including ``meta``."""
    batch = [scenario(seed=s, algorithm=a)
             for s in seeds for a in ("ntg", "greedy")]
    serial = run_batch(batch, cache="off")
    with tempfile.TemporaryDirectory() as tmp:
        import pathlib

        root = pathlib.Path(tmp)
        queue = WorkQueue.create(root / "q", batch, chunk_size=chunk_size)
        clock = FakeClock()
        cache_dir = root / "cache"
        workers = [make_worker(queue, f"w{i}", clock, cache_dir=cache_dir,
                               ttl=10)
                   for i in range(3)]
        steps = 0
        for turn in schedule:
            worker = workers[turn]
            if steps == crash_at:
                worker.crash_after = crash_progress
            try:
                outcome = worker.step()
            except WorkerCrash:
                outcome = "crashed"
            steps += 1
            if outcome in ("wait", "crashed"):
                clock.advance(11)  # beyond the TTL: stale leases expire
            if queue.is_drained():
                break
        # the schedule may end mid-flight; one worker mops up
        finisher = make_worker(queue, "finisher", clock, cache_dir=cache_dir,
                               ttl=10,
                               sleep=lambda seconds: clock.advance(11))
        finisher.run()
        assert queue.is_drained()
        merged = queue.collect()
    assert list(merged) == list(serial)
    assert [r.meta for r in merged] == [r.meta for r in serial]
    assert merged.cache_stats.lookups >= len(batch)


class TestStatusAndCollect:
    def test_status_tracks_lifecycle(self, tmp_path):
        batch = small_batch()
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        clock = FakeClock()

        status = queue.status(ttl=10, clock=clock)
        assert (status.chunks_pending, status.chunks_active,
                status.chunks_expired, status.chunks_done) == (3, 0, 0, 0)
        assert not status.done and status.cache_stats is None

        manifest = queue.claim("a", clock=clock)
        status = queue.status(ttl=10, clock=clock)
        assert (status.chunks_pending, status.chunks_active) == (2, 1)
        assert status.workers[0][0] == "a"

        clock.advance(11)
        status = queue.status(ttl=10, clock=clock)
        assert (status.chunks_active, status.chunks_expired) == (0, 1)

        worker = make_worker(queue, "b", clock, ttl=10,
                             cache_dir=tmp_path / "cache")
        worker.run()
        status = queue.status(ttl=10, clock=clock)
        assert status.done
        assert status.chunks_done == 3
        assert status.scenarios_done == len(batch)
        assert status.cache_stats is not None
        assert status.cache_stats.lookups == len(batch)
        lines = "\n".join(status.lines())
        assert "chunks: total=3 pending=0 leased=0 expired=0 done=3" in lines
        assert "cache: hits=" in lines
        del manifest

    def test_status_lines_are_greppable(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        lines = queue.status(clock=FakeClock()).lines()
        assert lines[1] == "chunks: total=3 pending=3 leased=0 expired=0 " \
                           "done=0"
        assert lines[2] == "scenarios: done=0/6"

    def test_collect_refuses_undrained_queue(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", small_batch(), chunk_size=2)
        clock = FakeClock()
        worker = make_worker(queue, "a", clock)
        worker.step()  # one of three chunks done
        with pytest.raises(QueueError, match="chunk_00001, chunk_00002"):
            queue.collect()

    def test_results_dir_merges_like_any_shard_set(self, tmp_path):
        """The results directory is a plain dispatch.merge input: the
        queue introduces no private result format."""
        from repro.api import merge

        batch = small_batch()
        queue = WorkQueue.create(tmp_path / "q", batch, chunk_size=2)
        make_worker(queue, "a", FakeClock()).run()
        via_queue = queue.collect()
        via_merge = merge(queue.results_dir)
        assert list(via_queue) == list(via_merge)
        assert json.dumps([r.to_dict() for r in via_queue], sort_keys=True) \
            == json.dumps([r.to_dict() for r in via_merge], sort_keys=True)
