"""Tests for the untilting automorphism (Section 3.2)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.spacetime.coords import col_of, space_of, tilt, time_of, untilt

coords = st.tuples(st.integers(0, 50), st.integers(0, 50), st.integers(0, 200))


class TestUntilt:
    def test_paper_example(self):
        # the paper's example: node (2, 1) maps to (2, -1)
        assert untilt((2, 1)) == (2, -1)

    def test_line_vertex(self):
        assert untilt((3, 10)) == (3, 7)

    def test_grid_vertex(self):
        assert untilt((1, 2, 10)) == (1, 2, 7)

    @given(coords)
    def test_roundtrip_2d(self, v):
        assert tilt(untilt(v)) == v
        assert untilt(tilt(v)) == v

    @given(st.tuples(st.integers(0, 50), st.integers(0, 200)))
    def test_roundtrip_1d(self, v):
        assert tilt(untilt(v)) == v

    def test_time_of(self):
        assert time_of(untilt((3, 10))) == 10
        assert time_of(untilt((1, 2, 10))) == 10

    def test_space_and_col(self):
        v = untilt((4, 9))
        assert space_of(v) == (4,) and col_of(v) == 5


class TestUntiltMakesEdgesAxisParallel:
    """Figure 3: E0 edges become space-axis steps, E1 edges column steps."""

    def test_transmit_edge(self):
        # (u, t) -> (u+1, t+1) keeps the column
        tail, head = untilt((2, 5)), untilt((3, 6))
        assert head[0] == tail[0] + 1 and head[1] == tail[1]

    def test_buffer_edge(self):
        # (u, t) -> (u, t+1) keeps the space coordinate
        tail, head = untilt((2, 5)), untilt((2, 6))
        assert head[0] == tail[0] and head[1] == tail[1] + 1

    def test_grid_transmit_edges(self):
        for axis in range(2):
            t = (1, 1, 4)
            h = list(t)
            h[axis] += 1
            h[2] += 1
            tail, head = untilt(t), untilt(tuple(h))
            diff = [b - a for a, b in zip(tail, head)]
            assert diff[axis] == 1 and sum(map(abs, diff)) == 1

    @given(coords)
    def test_automorphism_is_injective_shift(self, v):
        # q is a bijection of Z^{d+1}: distinct inputs differ after untilt
        w = (v[0] + 1, v[1], v[2])
        assert untilt(v) != untilt(w)
