"""Tests for the content-addressed result cache (repro.api.cache).

The contract under test: a cache hit is indistinguishable from a cold
run (equal ``RunReport``), corruption and schema drift degrade to
recomputation (never to wrong results or crashes), the digest excludes
the engine (cross-engine hits), ``cache="off"`` never touches disk, and
a fully warmed ``run_batch`` short-circuits *all* recomputation --
including the offline-bound max-flow, which is the expensive part.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.api import (
    NetworkSpec,
    ResultCache,
    Scenario,
    WorkloadSpec,
    run,
    run_batch,
)
from repro.api.cache import SCHEMA_VERSION, resolve_mode
from repro.util.errors import ValidationError


def scenario(seed=0, algorithm="ntg", engine=None):
    return Scenario(
        network=NetworkSpec("line", (16,), 2, 2),
        workload=WorkloadSpec("uniform", {"num": 24, "horizon": 16}),
        algorithm=algorithm,
        horizon=64,
        seed=seed,
        engine=engine,
    )


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    """Point REPRO_CACHE at a tmp dir (the default-mode switch)."""
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
    return tmp_path


class TestModeResolution:
    def test_default_off_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert resolve_mode(None) == "off"

    def test_default_readwrite_with_env(self, cache_env):
        assert resolve_mode(None) == "readwrite"

    def test_explicit_modes_pass_through(self):
        for mode in ("off", "read", "readwrite"):
            assert resolve_mode(mode) == mode

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError, match="cache mode"):
            resolve_mode("append")


class TestHitSemantics:
    def test_hit_equals_cold_run(self, cache_env):
        cold = run(scenario(), cache="readwrite")
        warm = run(scenario(), cache="readwrite")
        assert warm == cold
        assert warm.to_dict() == cold.to_dict() or warm.wall_time != cold.wall_time

    def test_batch_hit_equals_cold_batch(self, cache_env):
        scenarios = [scenario(seed=s) for s in range(3)]
        cold = run_batch(scenarios)
        assert cold.cache_stats.misses == 3 and cold.cache_stats.stores == 3
        warm = run_batch(scenarios, workers=2)
        assert warm.cache_stats.hits == 3 and warm.cache_stats.misses == 0
        assert list(warm) == list(cold)

    def test_digest_excludes_engine(self, cache_env):
        cold = run(scenario(algorithm="greedy", engine="reference"),
                   cache="readwrite")
        warm = run(scenario(algorithm="greedy", engine="fast"),
                   cache="readwrite")
        # same entry served both: the numbers agree, the report names the
        # engine that actually produced them, and the scenario is rebound
        # to the requested one
        assert warm.throughput == cold.throughput
        assert warm.engine == "reference"
        assert warm.scenario.engine == "fast"
        store = ResultCache(cache_env)
        assert store.entry_path(scenario(algorithm="greedy", engine="fast")) \
            == store.entry_path(scenario(algorithm="greedy"))

    def test_read_mode_never_writes(self, tmp_path):
        report = run(scenario(), cache="read")
        assert report.throughput >= 0
        run_batch([scenario(seed=9)], cache="read", cache_dir=tmp_path)
        assert not any(tmp_path.rglob("*.json"))

    def test_off_mode_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        run(scenario(), cache="off")
        run_batch([scenario(seed=1)], cache="off")
        assert not any(tmp_path.iterdir())


class TestInvalidation:
    def test_corrupted_entry_recomputes(self, tmp_path):
        store = ResultCache(tmp_path)
        cold = run_batch([scenario()], cache="readwrite", cache_dir=tmp_path)[0]
        path = store.entry_path(scenario())
        path.write_text("{not json")
        again = run_batch([scenario()], cache="readwrite", cache_dir=tmp_path)
        assert again[0] == cold
        assert again.cache_stats.invalid == 1
        # the corrupted entry was overwritten with a good one
        assert run_batch([scenario()], cache="readwrite",
                         cache_dir=tmp_path).cache_stats.hits == 1

    def test_legacy_schema_ignored(self, tmp_path):
        store = ResultCache(tmp_path)
        cold = run_batch([scenario()], cache="readwrite", cache_dir=tmp_path)[0]
        path = store.entry_path(scenario())
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION - 1
        path.write_text(json.dumps(payload))
        again = run_batch([scenario()], cache="readwrite", cache_dir=tmp_path)
        assert again[0] == cold
        assert again.cache_stats.invalid == 1

    def test_digest_collision_misses(self, tmp_path):
        """An entry whose stored scenario differs from the requested one
        (CRC-32 collision) must be a miss, not a wrong result."""
        store = ResultCache(tmp_path)
        run_batch([scenario(seed=5)], cache="readwrite", cache_dir=tmp_path)
        src = store.entry_path(scenario(seed=5))
        dst = store.entry_path(scenario(seed=6))
        dst.parent.mkdir(parents=True, exist_ok=True)
        dst.write_text(src.read_text())  # fake a colliding digest
        batch = run_batch([scenario(seed=6)], cache="readwrite",
                          cache_dir=tmp_path)
        assert batch.cache_stats.invalid == 1
        assert batch[0].scenario.seed == 6
        assert batch[0] != run_batch([scenario(seed=5)], cache="read",
                                     cache_dir=tmp_path)[0]

    def test_atomic_store_leaves_no_temp_files(self, tmp_path):
        run_batch([scenario(seed=s) for s in range(2)],
                  cache="readwrite", cache_dir=tmp_path)
        leftovers = [p for p in tmp_path.rglob("*") if ".tmp" in p.name]
        assert leftovers == []


class TestBoundShortCircuit:
    def test_warm_batch_computes_no_bounds(self, tmp_path, monkeypatch):
        """Regression: a fully warmed batch must not recompute the
        offline-bound max-flow (it used to re-derive the per-process memo
        per chunk even when every scenario was a hit)."""
        import repro.baselines.offline as offline

        scenarios = [scenario(seed=s) for s in range(4)]
        run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)

        calls = {"n": 0}
        real = offline.offline_bound

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(offline, "offline_bound", counting)
        # the per-process bound memo must not mask a recomputation either
        from repro.api.run import _bound_cache
        _bound_cache.clear()
        warm = run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)
        assert warm.cache_stats.hits == len(scenarios)
        assert calls["n"] == 0

    def test_warm_batch_spawns_no_workers(self, tmp_path, monkeypatch):
        """Hits are resolved in the parent: a fully warmed batch never
        opens a process pool."""
        import sys

        run_mod = sys.modules["repro.api.run"]
        scenarios = [scenario(seed=s) for s in range(3)]
        run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)

        def boom(*args, **kwargs):
            raise AssertionError("process pool opened on a full-hit batch")

        monkeypatch.setattr(run_mod, "ProcessPoolExecutor", boom)
        warm = run_batch(scenarios, workers=4, cache="readwrite",
                         cache_dir=tmp_path)
        assert warm.cache_stats.hits == 3

    def test_nan_bound_entry_upgraded_when_bound_needed(self, tmp_path):
        """A compute_bound=False entry must not starve consumers that
        need the bound: the lookup misses and the entry is rewritten."""
        import math

        no_bound = run_batch([scenario()], cache="readwrite",
                             cache_dir=tmp_path, compute_bound=False)
        assert math.isnan(no_bound[0].bound)
        with_bound = run_batch([scenario()], cache="readwrite",
                               cache_dir=tmp_path)
        assert with_bound.cache_stats.misses == 1
        assert math.isfinite(with_bound[0].bound)
        # and the upgraded entry now serves bound-free consumers too
        again = run_batch([scenario()], cache="readwrite",
                          cache_dir=tmp_path, compute_bound=False)
        assert again.cache_stats.hits == 1


class TestBoundStats:
    """The offline-bound tier is accounted in ``CacheStats`` (one event
    per executed scenario that needed a bound), deterministically for a
    given batch and cache state -- the queue's ``status`` metrics and
    the dispatch stat-equality assertions both lean on this."""

    def test_cold_batch_counts_memo_hits_and_misses(self, tmp_path):
        # 2 instances x 2 algorithms: one max-flow per instance, the
        # sibling algorithm is served from the call-scoped memo
        scenarios = [scenario(seed=s, algorithm=a)
                     for s in range(2) for a in ("ntg", "greedy")]
        batch = run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)
        assert batch.cache_stats.bound_misses == 2
        assert batch.cache_stats.bound_hits == 2

    def test_warm_batch_has_no_bound_events(self, tmp_path):
        """Report hits resolve in the parent and never reach the bound
        path at all -- zero events, matching ``status`` showing no
        remaining bound work."""
        scenarios = [scenario(seed=s) for s in range(3)]
        run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)
        warm = run_batch(scenarios, cache="readwrite", cache_dir=tmp_path)
        assert warm.cache_stats.hits == 3
        assert (warm.cache_stats.bound_hits,
                warm.cache_stats.bound_misses) == (0, 0)

    def test_disk_bound_entry_counts_as_hit_across_batches(self, tmp_path):
        """A second batch over the same instance with a *different*
        algorithm recomputes the report but replays the bound from the
        on-disk tier."""
        from repro.api.run import _bound_cache

        run_batch([scenario(algorithm="ntg")], cache="readwrite",
                  cache_dir=tmp_path)
        _bound_cache.clear()  # isolate the disk tier from the process memo
        second = run_batch([scenario(algorithm="greedy")],
                           cache="readwrite", cache_dir=tmp_path)
        assert second.cache_stats.misses == 1  # new report...
        assert second.cache_stats.bound_hits == 1  # ...cached bound
        assert second.cache_stats.bound_misses == 0

    def test_stats_are_deterministic_across_identical_runs(self, tmp_path):
        """Same batch, same starting cache state => identical counters
        (the process-global memo must not leak into accounting)."""
        scenarios = [scenario(seed=s, algorithm=a)
                     for s in range(2) for a in ("ntg", "greedy")]
        a = run_batch(scenarios, cache="readwrite",
                      cache_dir=tmp_path / "a")
        b = run_batch(scenarios, cache="readwrite",
                      cache_dir=tmp_path / "b")
        assert vars(a.cache_stats) == vars(b.cache_stats)

    def test_summary_includes_bound_fields(self, tmp_path):
        batch = run_batch([scenario()], cache="readwrite",
                          cache_dir=tmp_path)
        summary = batch.cache_stats.summary()
        assert "bound_hits=0 bound_misses=1" in summary
        # the long-standing prefix layout CI greps is unchanged
        assert summary.startswith("cache: hits=0 misses=1 stores=1 ")


class TestReportRoundTrip:
    def test_report_json_round_trip(self):
        from repro.api import RunReport

        report = run(scenario(algorithm="greedy"))
        clone = RunReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone == report

    def test_nan_fields_compare_equal(self):
        # a scenario delivering nothing has nan latencies; identical runs
        # must still compare equal (the cache contract)
        sc = Scenario(
            network=NetworkSpec("line", (8,), 1, 1),
            workload=WorkloadSpec("uniform", {"num": 4, "horizon": 2}),
            algorithm="ntg",
            horizon=0,  # nothing can be delivered by t=0
            seed=0,
        )
        assert run(sc) == run(sc)
