"""Tests for the greedy and nearest-to-go baselines."""

import pytest

from repro.baselines.greedy import GreedyPolicy, one_bend_axis, run_greedy
from repro.baselines.nearest_to_go import ntg_key, run_nearest_to_go
from repro.baselines.offline import offline_bound
from repro.network.packet import Packet, Request
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError
from repro.workloads.adversarial import clogging_instance
from repro.workloads.uniform import uniform_requests


class TestOneBendRouting:
    def test_first_axis_first(self):
        pkt = Packet(request=Request((0, 0), (2, 2), 0), location=(0, 0), injected_at=0)
        assert one_bend_axis(pkt) == 0
        pkt.location = (2, 0)
        assert one_bend_axis(pkt) == 1

    def test_at_destination_raises(self):
        pkt = Packet(request=Request((0, 0), (2, 2), 0), location=(2, 2), injected_at=0)
        with pytest.raises(ValidationError):
            one_bend_axis(pkt)


class TestGreedy:
    def test_delivers_light_load(self):
        net = LineNetwork(8, buffer_size=2, capacity=1)
        reqs = uniform_requests(net, 5, 8, rng=1)
        res = run_greedy(net, reqs, 64)
        assert res.throughput == 5

    def test_unknown_priority(self):
        with pytest.raises(ValidationError):
            GreedyPolicy("magic")

    def test_priorities_change_behaviour(self):
        net = LineNetwork(16, buffer_size=2, capacity=1)
        reqs = clogging_instance(net, duration=6, shorts_per_node=1)
        t_fifo = run_greedy(net, reqs, 128, priority="fifo").throughput
        t_lifo = run_greedy(net, reqs, 128, priority="lifo").throughput
        t_long = run_greedy(net, reqs, 128, priority="longest").throughput
        assert len({t_fifo, t_lifo, t_long}) >= 2  # not all identical

    def test_grid_delivery(self):
        net = GridNetwork((4, 4), buffer_size=2, capacity=1)
        reqs = uniform_requests(net, 6, 8, rng=2)
        res = run_greedy(net, reqs, 64)
        assert res.throughput >= 4

    def test_never_violates_capacities(self):
        # the simulator raises if a policy overcommits; a clean run is the check
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 40, 8, rng=3)
        res = run_greedy(net, reqs, 64)
        assert res.stats.max_link_load <= 1
        assert res.stats.max_buffer_load <= 1


class TestNearestToGo:
    def test_short_beats_long(self):
        net = LineNetwork(4, buffer_size=0, capacity=1)
        # long packet arrives at node 1 exactly when a short one is injected
        reqs = [
            Request.line(0, 3, 0, rid=0),
            Request.line(1, 2, 1, rid=1),
        ]
        res = run_nearest_to_go(net, reqs, 16)
        from repro.network.packet import DeliveryStatus

        assert res.status[1] == DeliveryStatus.DELIVERED
        assert res.status[0] != DeliveryStatus.DELIVERED  # dropped at node 1

    def test_ntg_key_ordering(self):
        near = Packet(request=Request.line(0, 1, 0, rid=0), location=(0,), injected_at=0)
        far = Packet(request=Request.line(0, 5, 0, rid=1), location=(0,), injected_at=0)
        assert ntg_key(near) < ntg_key(far)

    def test_beats_greedy_on_clogging(self):
        net = LineNetwork(16, buffer_size=2, capacity=1)
        reqs = clogging_instance(net, duration=8, shorts_per_node=1)
        greedy = run_greedy(net, reqs, 160).throughput
        ntg = run_nearest_to_go(net, reqs, 160).throughput
        assert ntg > greedy

    def test_grid_one_bend(self):
        net = GridNetwork((5, 5), buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 8, 6, rng=4)
        res = run_nearest_to_go(net, reqs, 64)
        assert res.throughput >= 5


class TestOfflineBound:
    def test_methods_agree_on_tiny(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 4, 3, rng=5)
        exact = offline_bound(net, reqs, 8, "exact")
        lp = offline_bound(net, reqs, 8, "lp")
        mf = offline_bound(net, reqs, 8, "maxflow")
        assert exact <= lp + 1e-9 and exact <= mf

    def test_empty_requests(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        assert offline_bound(net, [], 8) == 0.0

    def test_unknown_method(self):
        net = LineNetwork(5, buffer_size=1, capacity=1)
        with pytest.raises(ValidationError):
            offline_bound(net, [Request.line(0, 1, 0)], 8, "oracle")

    def test_online_never_beats_bound(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 15, 8, rng=6)
        bound = offline_bound(net, reqs, 40)
        assert run_greedy(net, reqs, 40).throughput <= bound
        assert run_nearest_to_go(net, reqs, 40).throughput <= bound
