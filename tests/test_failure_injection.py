"""Failure injection: corrupted plans and hostile inputs must be caught.

The plan/simulator cross-check is the safety net of the whole
reproduction; these tests corrupt plans in targeted ways and assert the
net catches each one.
"""

import pytest

from repro.analysis.metrics import evaluate_plan
from repro.core.base import Plan, RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.network.packet import Request
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.spacetime.graph import STPath
from repro.util.errors import CapacityError, ReproError
from repro.workloads.uniform import uniform_requests


@pytest.fixture
def net():
    return LineNetwork(16, buffer_size=3, capacity=3)


@pytest.fixture
def routed(net):
    reqs = uniform_requests(net, 25, 16, rng=0)
    plan = DeterministicRouter(net, 64).route(reqs)
    return reqs, plan


class TestCorruptedPlans:
    def test_duplicated_path_overloads(self, net, routed):
        reqs, plan = routed
        rid, path = next(iter(plan.paths.items()))
        extra = [Request.line(path.start[0],
                              path.end(1)[0],
                              path.start[1] + path.start[0], rid=9999)]
        corrupted = dict(plan.all_executable_paths())
        # four clones of the same unit-track path must breach a capacity
        clones = {
            10_000 + i: STPath(path.start, path.moves, rid=10_000 + i)
            for i in range(4)
        }
        corrupted.update(clones)
        all_reqs = list(reqs) + [
            Request.line(path.start[0], path.end(1)[0],
                         path.start[1] + path.start[0], rid=r)
            for r in clones
        ]
        if len(path.moves) == 0:
            pytest.skip("trivial path drawn")
        with pytest.raises(CapacityError):
            execute_plan(net, corrupted, all_reqs, 64)

    def test_wrong_destination_detected(self, net, routed):
        reqs, plan = routed
        rid, path = next(iter(plan.paths.items()))
        if len(path.moves) == 0:
            pytest.skip("trivial path drawn")
        # truncate the path one move early but keep claiming delivery
        plan.paths[rid] = STPath(path.start, path.moves[:-1], rid=rid)
        with pytest.raises(ReproError):
            evaluate_plan(net, plan, reqs, 64)

    def test_foreign_claimed_delivery_detected(self, net):
        reqs = [Request.line(0, 5, 0, rid=0)]
        plan = Plan()
        # claim rid 0 delivered via a path that belongs to nobody
        plan.record(0, RouteOutcome.DELIVERED, STPath((0, 0), (), rid=0))
        with pytest.raises(ReproError):
            evaluate_plan(net, plan, reqs, 64)

    def test_plan_with_invalid_vertex_rejected_by_checker(self, net):
        from repro.spacetime.graph import SpaceTimeGraph
        from repro.util.errors import ValidationError

        graph = SpaceTimeGraph(net, 10)
        rogue = STPath((15, -20), (0, 0), rid=1)  # before time zero
        with pytest.raises(ValidationError):
            graph.check_path(rogue)


class TestHostileInputs:
    def test_router_validates_requests(self, net):
        router = DeterministicRouter(net, 64)
        from repro.util.errors import ValidationError

        with pytest.raises(ValidationError):
            router.route([Request.line(0, 40, 0)])  # outside the grid

    def test_router_survives_duplicate_rids(self, net):
        # duplicate ids are the caller's bug, but must not corrupt state:
        # the second occurrence simply overwrites the plan entry
        reqs = [Request.line(0, 8, 0, rid=7), Request.line(1, 9, 0, rid=7)]
        plan = DeterministicRouter(net, 64).route(reqs)
        assert 7 in plan.outcome

    def test_empty_request_list(self, net):
        plan = DeterministicRouter(net, 64).route([])
        assert plan.throughput == 0

    def test_all_trivial(self, net):
        reqs = [Request.line(i, i, 0, rid=i) for i in range(5)]
        plan = DeterministicRouter(net, 64).route(reqs)
        assert plan.throughput == 5

    def test_zero_horizon(self, net):
        router = DeterministicRouter(net, 0)
        plan = router.route([Request.line(0, 5, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.REJECTED
