"""Tests for the deterministic variants (Theorems 11, 13; Proposition 12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import BufferlessLineRouter, LargeCapacityRouter
from repro.network.packet import Request
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.packing.exact import exact_opt_small
from repro.util.errors import ValidationError
from repro.workloads.uniform import uniform_requests


class TestBufferlessLine:
    def test_requires_b0(self):
        with pytest.raises(ValidationError):
            BufferlessLineRouter(LineNetwork(8, buffer_size=1), 16)

    def test_single_packet(self, bufferless8):
        router = BufferlessLineRouter(bufferless8, 32)
        plan = router.route([Request.line(1, 6, 2, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert plan.paths[0].arrival_time(1) == 2 + 5

    def test_contention_preempts_farther(self, bufferless8):
        # long packet arrives at node 2 when a shorter one is injected there
        reqs = [Request.line(0, 7, 0, rid=0), Request.line(2, 5, 2, rid=1)]
        router = BufferlessLineRouter(bufferless8, 32)
        plan = router.route(reqs)
        assert plan.outcome[1] == RouteOutcome.DELIVERED
        assert plan.outcome[0] == RouteOutcome.PREEMPTED

    def test_plan_replays(self, bufferless8):
        reqs = uniform_requests(bufferless8, 20, 8, rng=0)
        router = BufferlessLineRouter(bufferless8, 32)
        plan = router.route(reqs)
        result = execute_plan(bufferless8, plan.all_executable_paths(), reqs, 32)
        assert plan.consistent_with_simulation(result)

    def test_capacity_channels(self):
        net = LineNetwork(8, buffer_size=0, capacity=2)
        reqs = [Request.line(0, 7, 0, rid=i) for i in range(3)]
        router = BufferlessLineRouter(net, 32)
        plan = router.route(reqs)
        delivered = sum(
            1 for o in plan.outcome.values() if o == RouteOutcome.DELIVERED
        )
        assert delivered == 2  # c = 2 identical diagonals fit

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_proposition12_optimality(self, seed):
        """Prop. 12: nearest-to-go (= online interval packing per diagonal)
        is optimal on bufferless lines."""
        net = LineNetwork(7, buffer_size=0, capacity=1)
        reqs = uniform_requests(net, 6, 5, rng=seed)
        router = BufferlessLineRouter(net, 16)
        plan = router.route(reqs)
        exact, _ = exact_opt_small(net, reqs, 16)
        assert plan.throughput == exact

    def test_deadline_respected(self, bufferless8):
        router = BufferlessLineRouter(bufferless8, 32)
        r = Request.line(0, 5, 0, deadline=5, rid=0)
        plan = router.route([r])
        assert plan.outcome[0] == RouteOutcome.DELIVERED

    def test_horizon_rejects(self, bufferless8):
        router = BufferlessLineRouter(bufferless8, 4)
        plan = router.route([Request.line(0, 7, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.REJECTED


class TestBufferlessViaMainRouter:
    def test_theorem11_machinery(self):
        """The main deterministic router also handles B = 0 (Theorem 11)."""
        net = LineNetwork(16, buffer_size=0, capacity=3)
        router = DeterministicRouter(net, 64)
        reqs = uniform_requests(net, 20, 16, rng=1)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 64)
        assert plan.consistent_with_simulation(result)
        assert plan.throughput >= 1
        # no buffer edges may appear in any path
        for path in plan.paths.values():
            assert all(m == 0 for m in path.moves)


class TestLargeCapacity:
    def test_requires_large_caps(self):
        net = LineNetwork(32, buffer_size=4, capacity=4)
        with pytest.raises(ValidationError):
            LargeCapacityRouter(net, 64)

    def test_nonpreemptive_and_feasible(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 96)
        reqs = uniform_requests(net, 60, 32, rng=2)
        plan = router.route(reqs)
        assert not plan.truncated  # Theorem 13: reject or route, no preempt
        result = execute_plan(net, plan.all_executable_paths(), reqs, 96)
        assert plan.consistent_with_simulation(result)

    def test_scaled_load_bound(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 96)
        reqs = uniform_requests(net, 120, 24, rng=3)
        router.route(reqs)
        # IPP load on scaled caps stays within log2(1 + 3 pmax)
        assert router.ipp.max_load_ratio() <= router.ipp.load_bound() + 1e-9

    def test_good_throughput_light_load(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 96)
        reqs = uniform_requests(net, 40, 32, rng=4)
        plan = router.route(reqs)
        assert plan.throughput >= 0.9 * len(reqs)

    def test_deadlines(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 96)
        reqs = [Request.line(0, 20, 0, deadline=25, rid=0)]
        plan = router.route(reqs)
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert plan.paths[0].arrival_time(1) <= 25

    def test_trivial(self):
        net = LineNetwork(32, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 96)
        plan = router.route([Request.line(4, 4, 1, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
