"""End-to-end tests for the deterministic algorithm (Algorithm 1)."""

import pytest

from repro.core.base import RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.network.packet import DeliveryStatus, Request
from repro.network.simulator import execute_plan
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError
from repro.workloads.deadline import deadline_requests
from repro.workloads.uniform import uniform_requests


class TestConstruction:
    def test_rejects_small_buffers(self):
        with pytest.raises(ValidationError):
            DeterministicRouter(LineNetwork(16, buffer_size=2, capacity=3), 64)

    def test_rejects_small_capacity(self):
        with pytest.raises(ValidationError):
            DeterministicRouter(LineNetwork(16, buffer_size=3, capacity=2), 64)

    def test_accepts_bufferless(self):
        DeterministicRouter(LineNetwork(16, buffer_size=0, capacity=3), 64)

    def test_strict_false_allows_exploration(self):
        DeterministicRouter(LineNetwork(16, buffer_size=1, capacity=1), 64, strict=False)

    def test_paper_parameters(self):
        net = LineNetwork(16, buffer_size=3, capacity=3)
        r = DeterministicRouter(net, 64)
        assert r.pmax == net.pmax()
        assert r.k == net.tile_side_k()
        assert r.ipp.pmax == 2 * r.pmax + 1

    def test_k_override(self):
        net = LineNetwork(16, buffer_size=3, capacity=3)
        r = DeterministicRouter(net, 64, k=6)
        assert r.k == 6 and r.tiling.sides == (6, 6)


class TestSingleRequests:
    def test_one_request_delivered(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        plan = router.route([Request.line(2, 20, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        path = plan.paths[0]
        assert path.start == (2, -2)
        assert path.end(1)[0] == 20

    def test_trivial_delivered(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        plan = router.route([Request.line(5, 5, 3, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert len(plan.paths[0].moves) == 0

    def test_arrival_beyond_horizon_rejected(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 16)
        plan = router.route([Request.line(0, 30, 50, rid=0)])
        assert plan.outcome[0] == RouteOutcome.REJECTED

    def test_near_request_climb_only(self, line32_b3c3):
        # source and dest in the same tile band: last-tile routing only
        router = DeterministicRouter(line32_b3c3, 128)
        plan = router.route([Request.line(0, 3, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert set(plan.paths[0].moves) == {0}

    def test_deadline_met(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        r = Request.line(1, 17, 0, deadline=40, rid=0)
        plan = router.route([r])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert plan.paths[0].arrival_time(1) <= 40


class TestPlanFeasibility:
    def test_plan_replays_in_simulator(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = uniform_requests(line32_b3c3, 30, 32, rng=0)
        plan = router.route(reqs)
        result = execute_plan(line32_b3c3, plan.all_executable_paths(), reqs, 128)
        assert plan.consistent_with_simulation(result)
        assert result.throughput == plan.throughput

    def test_deadlines_never_late(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = deadline_requests(line32_b3c3, 30, 32, slack=8, rng=1)
        plan = router.route(reqs)
        result = execute_plan(line32_b3c3, plan.all_executable_paths(), reqs, 128)
        # Section 5.4: a request not preempted reaches its dest on time
        assert result.stats.late == 0
        assert plan.consistent_with_simulation(result)

    def test_heavy_load_feasible(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 160)
        reqs = uniform_requests(line32_b3c3, 150, 40, rng=2)
        plan = router.route(reqs)
        result = execute_plan(line32_b3c3, plan.all_executable_paths(), reqs, 160)
        assert plan.consistent_with_simulation(result)

    def test_grid_plan_feasible(self, grid4x4):
        router = DeterministicRouter(grid4x4, 64)
        reqs = uniform_requests(grid4x4, 40, 16, rng=3)
        plan = router.route(reqs)
        result = execute_plan(grid4x4, plan.all_executable_paths(), reqs, 64)
        assert plan.consistent_with_simulation(result)

    def test_all_requests_have_outcomes(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = uniform_requests(line32_b3c3, 25, 32, rng=4)
        plan = router.route(reqs)
        assert set(plan.outcome) == {r.rid for r in reqs}


class TestPreemption:
    def test_duplicate_requests_preempt(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = [Request.line(2, 20, 0, rid=i) for i in range(4)]
        plan = router.route(reqs)
        delivered = [i for i in range(4) if plan.outcome[i] == RouteOutcome.DELIVERED]
        preempted = [i for i in range(4) if plan.outcome[i] == RouteOutcome.PREEMPTED]
        # identical requests collide on their first-segment lines; the
        # GLL82 rule preempts at least one, while IPP may route others
        # around the loaded sketch edge (so > 1 can survive)
        assert len(delivered) >= 1
        assert len(preempted) >= 1
        # and the whole thing still replays
        result = execute_plan(line32_b3c3, plan.all_executable_paths(), reqs, 128)
        assert plan.consistent_with_simulation(result)

    def test_preempted_prefixes_are_capacity_feasible(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = [Request.line(0, 24, t % 2, rid=t) for t in range(8)]
        plan = router.route(reqs)
        execute_plan(line32_b3c3, plan.all_executable_paths(), reqs, 128)

    def test_detailed_counters_consistent(self, line32_b3c3):
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = uniform_requests(line32_b3c3, 60, 16, rng=5)
        plan = router.route(reqs)
        meta = plan.meta["framework"]
        outcomes = plan.outcome.values()
        assert meta["accepted"] + meta["ipp_rejected"] + meta["no_sink"] + meta[
            "trivial"
        ] == len(reqs)
        delivered = sum(1 for o in outcomes if o == RouteOutcome.DELIVERED)
        assert delivered == plan.throughput


class TestTracksAreDisjoint:
    def test_track_loads_within_capacity(self, line32_b3c3):
        """Three tracks of one unit each fit inside B, c >= 3."""
        router = DeterministicRouter(line32_b3c3, 128)
        reqs = uniform_requests(line32_b3c3, 100, 24, rng=6)
        router.route(reqs)
        assert router.detail.track2.max_load_ratio() <= 1.0
        assert router.detail.track3.max_load_ratio() <= 1.0


class TestGrid2D:
    def test_basic_delivery(self, grid4x4):
        router = DeterministicRouter(grid4x4, 64)
        plan = router.route([Request((0, 0), (3, 3), 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        end = plan.paths[0].end(2)
        assert end[:2] == (3, 3)

    def test_many_deliveries(self, grid4x4):
        router = DeterministicRouter(grid4x4, 64)
        reqs = uniform_requests(grid4x4, 30, 16, rng=7)
        plan = router.route(reqs)
        assert plan.throughput >= len(reqs) * 0.5

    def test_3d_grid(self):
        net = GridNetwork((3, 3, 3), buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 48)
        reqs = uniform_requests(net, 10, 8, rng=8)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 48)
        assert plan.consistent_with_simulation(result)
        assert plan.throughput >= 1
