"""Tests for repro.network.topology: grids, indexing, paper parameters."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.packet import Request
from repro.network.topology import Edge, GridNetwork, LineNetwork, Network
from repro.util.errors import ValidationError


class TestConstruction:
    def test_line_dims(self):
        net = LineNetwork(10, buffer_size=2, capacity=3)
        assert net.dims == (10,) and net.n == 10 and net.d == 1
        assert net.buffer_size == 2 and net.capacity == 3

    def test_grid_dims(self):
        net = GridNetwork((3, 4), buffer_size=1, capacity=1)
        assert net.n == 12 and net.d == 2

    def test_rejects_zero_dim(self):
        with pytest.raises(ValidationError):
            GridNetwork((0, 4), 1, 1)

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValidationError):
            LineNetwork(4, buffer_size=-1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            LineNetwork(4, capacity=0)

    def test_bufferless_allowed(self):
        assert LineNetwork(4, buffer_size=0).buffer_size == 0


class TestGeometry:
    def test_diameter_line(self):
        assert LineNetwork(10).diameter == 9

    def test_diameter_grid(self):
        assert GridNetwork((3, 5)).diameter == 2 + 4

    def test_nodes_count(self):
        net = GridNetwork((3, 4))
        assert len(list(net.nodes())) == 12

    def test_edges_count_line(self):
        net = LineNetwork(6)
        assert net.num_edges() == 5
        assert len(list(net.edges())) == 5

    def test_edges_count_grid(self):
        net = GridNetwork((3, 4))
        expected = 2 * 4 + 3 * 3  # horizontal + vertical
        assert net.num_edges() == expected
        assert len(list(net.edges())) == expected

    def test_edge_head(self):
        e = Edge((1, 2), axis=1)
        assert e.head == (1, 3)

    def test_dist(self):
        net = GridNetwork((5, 5))
        assert net.dist((1, 1), (3, 4)) == 5

    def test_dist_rejects_backward(self):
        net = GridNetwork((5, 5))
        with pytest.raises(ValidationError):
            net.dist((3, 1), (1, 4))

    def test_out_neighbors_interior(self):
        net = GridNetwork((3, 3))
        assert sorted(net.out_neighbors((1, 1))) == [(0, (2, 1)), (1, (1, 2))]

    def test_out_neighbors_corner(self):
        net = GridNetwork((3, 3))
        assert list(net.out_neighbors((2, 2))) == []

    def test_contains(self):
        net = GridNetwork((3, 3))
        assert net.contains((2, 2)) and not net.contains((3, 0))
        assert not net.contains((0,))


class TestIndexing:
    @given(st.integers(0, 2), st.integers(0, 3), st.integers(0, 4))
    def test_roundtrip_3d(self, x, y, z):
        net = GridNetwork((3, 4, 5))
        idx = net.node_index((x, y, z))
        assert net.node_from_index(idx) == (x, y, z)

    def test_indices_distinct(self):
        net = GridNetwork((4, 7))
        indices = {net.node_index(n) for n in net.nodes()}
        assert len(indices) == net.n
        assert min(indices) == 0 and max(indices) == net.n - 1


class TestRequestChecks:
    def test_check_request_ok(self):
        net = LineNetwork(8)
        net.check_request(Request.line(0, 7, 0))

    def test_check_request_outside(self):
        net = LineNetwork(8)
        with pytest.raises(ValidationError):
            net.check_request(Request.line(0, 8, 0))

    def test_check_request_wrong_dim(self):
        net = GridNetwork((4, 4))
        with pytest.raises(ValidationError):
            net.check_request(Request.line(0, 3, 0))


class TestPaperParameters:
    def test_pmax_line_formula(self):
        # Section 3.6.1 remark (1): p_max = 2n (1 + n (B/c + 1))
        net = LineNetwork(16, buffer_size=3, capacity=3)
        assert net.pmax() == math.ceil(2 * 16 * (1 + 16 * (3 / 3 + 1)))

    def test_pmax_grid_formula(self):
        net = GridNetwork((4, 4), buffer_size=3, capacity=3)
        expected = math.ceil(2 * net.diameter * (1 + 16 * (1 + 2)))
        assert net.pmax() == expected

    def test_tile_side_log(self):
        net = LineNetwork(16, buffer_size=3, capacity=3)
        k = net.tile_side_k()
        assert k == math.ceil(math.log2(1 + 3 * net.pmax()))

    def test_tile_side_monotone_in_n(self):
        ks = [LineNetwork(n, 3, 3).tile_side_k() for n in (8, 64, 512)]
        assert ks == sorted(ks)

    def test_pmax_grows_with_buffer(self):
        small = LineNetwork(16, buffer_size=1, capacity=1).pmax()
        large = LineNetwork(16, buffer_size=8, capacity=1).pmax()
        assert large > small

    def test_base_network_class(self):
        net = Network((5,), 1, 1)
        assert net.n == 5

    def test_repr(self):
        assert "B=3" in repr(LineNetwork(4, 3, 2)) and "c=2" in repr(LineNetwork(4, 3, 2))
