"""Tests for the randomized algorithm (Section 7)."""

import math

import pytest

from repro.core.base import RouteOutcome
from repro.core.randomized import (
    FarPlusRouter,
    NearRouter,
    RandomizedLineRouter,
    RandomizedParams,
)
from repro.core.randomized.combined import proposition14_filter
from repro.network.packet import Request
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError
from repro.workloads.uniform import uniform_requests


class TestParams:
    def test_definition15_small_product(self):
        # B * c = 1 < log n: tau = 2 ceil(log n / c), Q = 2 ceil(log n / B)
        net = LineNetwork(64, buffer_size=1, capacity=1)
        p = RandomizedParams.for_network(net)
        assert p.tau == 2 * math.ceil(6)
        assert p.Q == 2 * math.ceil(6)

    def test_definition15_large_product(self):
        net = LineNetwork(64, buffer_size=3, capacity=3)
        p = RandomizedParams.for_network(net)  # B c = 9 >= 6
        assert p.tau == 6 and p.Q == 6

    def test_pmax_and_k(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        p = RandomizedParams.for_network(net)
        assert p.pmax == 256
        assert p.k == math.ceil(math.log2(1 + 3 * 256))

    def test_paper_lambda(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        p = RandomizedParams.for_network(net)
        assert p.lam == pytest.approx(1.0 / (200 * p.k))

    def test_lambda_override(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        p = RandomizedParams.for_network(net, lam=0.25)
        assert p.lam == 0.25

    def test_proposition16(self):
        for B, c in [(1, 1), (1, 3), (2, 2), (3, 1), (4, 4)]:
            net = LineNetwork(256, buffer_size=B, capacity=c)
            RandomizedParams.for_network(net).check_proposition16()

    def test_rejects_large_b(self):
        net = LineNetwork(16, buffer_size=10, capacity=1)
        with pytest.raises(ValidationError):
            RandomizedParams.for_network(net)

    def test_rejects_grid(self):
        from repro.network.topology import GridNetwork

        with pytest.raises(ValidationError):
            RandomizedParams.for_network(GridNetwork((4, 4)))

    def test_side_cap_positive(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        p = RandomizedParams.for_network(net)
        assert p.side_cap >= 1


class TestClassification:
    def setup_method(self):
        self.net = LineNetwork(64, buffer_size=1, capacity=1)
        self.params = RandomizedParams.for_network(self.net, lam=1.0)
        self.router = FarPlusRouter(self.net, 256, self.params, phases=(0, 0))

    def test_near_same_band(self):
        # Q = 12 with zero phase: rows 0..11 are one band
        assert self.router.is_near(Request.line(1, 10, 0))

    def test_far_across_bands(self):
        assert not self.router.is_near(Request.line(1, 20, 0))

    def test_sw_membership(self):
        # vertex (1, -1): local row 1 < 6, local col (-1 mod 12) = 11 >= 6 -> not SW
        r = Request.line(1, 30, 0)
        assert not self.router.in_sw(r)
        # vertex (1, 1) at t = 2: local col 1 < 6 -> SW
        r2 = Request.line(1, 30, 2)
        assert self.router.in_sw(r2)

    def test_far_plus(self):
        assert self.router.is_far_plus(Request.line(1, 30, 2))
        assert not self.router.is_far_plus(Request.line(1, 10, 2))  # near

    def test_trivial_not_far_plus(self):
        assert not self.router.is_far_plus(Request.line(3, 3, 2))


class TestFarPlusPipeline:
    def make(self, lam=1.0, n=64, horizon=256):
        net = LineNetwork(n, buffer_size=1, capacity=1)
        params = RandomizedParams.for_network(net, lam=lam)
        return net, FarPlusRouter(net, horizon, params, phases=(0, 0), rng=0)

    def test_far_plus_delivery(self):
        net, router = self.make()
        r = Request.line(1, 30, 2, rid=0)
        outcome, path = router.route_one(r)
        assert outcome == RouteOutcome.DELIVERED
        assert path.end(1)[0] == 30

    def test_lambda_zero_rejects_all(self):
        net, router = self.make(lam=0.0)
        outcome, _ = router.route_one(Request.line(1, 30, 2, rid=0))
        assert outcome == RouteOutcome.REJECTED
        assert router.counters["coin_rejected"] == 1

    def test_plan_replays(self):
        net, router = self.make()
        reqs = [r for r in uniform_requests(net, 50, 64, rng=1)]
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
        assert plan.consistent_with_simulation(result)

    def test_nonpreemptive(self):
        net, router = self.make()
        reqs = uniform_requests(net, 80, 64, rng=2)
        plan = router.route(reqs)
        assert not plan.truncated  # rejection only happens before injection

    def test_invariant_loads_within_capacity(self):
        net, router = self.make()
        reqs = uniform_requests(net, 120, 64, rng=3)
        router.route(reqs)
        assert router.ledger.max_load_ratio() <= 1.0

    def test_quarter_load_cap_respected(self):
        net, router = self.make()
        reqs = uniform_requests(net, 200, 32, rng=4)
        router.route(reqs)
        for edge, load in router.sparse_load.items():
            assert load < router.sketch.capacity(edge) / 4.0 + 1

    def test_side_caps_respected(self):
        net, router = self.make()
        reqs = uniform_requests(net, 200, 32, rng=5)
        router.route(reqs)
        for state in router.quadrants.values():
            assert state.east_exits <= router.params.side_cap
            assert state.north_exits <= router.params.side_cap

    def test_plane_assignment_monotone(self):
        net, router = self.make()
        # three identical far+ sources: planes 1, 2, 3 (B + c = 2 usable)
        reqs = [Request.line(1, 30, 2, rid=i) for i in range(3)]
        plan = router.route(reqs)
        delivered = [i for i in range(3) if plan.outcome[i] == RouteOutcome.DELIVERED]
        # B = c = 1: plane 1 horizontal, plane 2 vertical, plane 3 rejected
        assert len(delivered) <= 2
        assert router.counters["iroute_rejected"] >= 1


class TestNearRouter:
    def test_near_delivery(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        params = RandomizedParams.for_network(net, lam=1.0)
        router = NearRouter(net, 256, params, phases=(0, 0))
        plan = router.route([Request.line(1, 8, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        # vertical path: transmit every step
        assert set(plan.paths[0].moves) == {0}

    def test_far_rejected_by_near_router(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        params = RandomizedParams.for_network(net, lam=1.0)
        router = NearRouter(net, 256, params, phases=(0, 0))
        plan = router.route([Request.line(1, 40, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.REJECTED

    def test_saturation_rejects(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        params = RandomizedParams.for_network(net, lam=1.0)
        router = NearRouter(net, 256, params, phases=(0, 0))
        reqs = [Request.line(1, 8, 0, rid=i) for i in range(3)]
        plan = router.route(reqs)
        delivered = [i for i in range(3) if plan.outcome[i] == RouteOutcome.DELIVERED]
        assert len(delivered) == 1  # c = 1: one vertical path per diagonal

    def test_plan_replays(self):
        net = LineNetwork(64, buffer_size=2, capacity=2)
        params = RandomizedParams.for_network(net, lam=1.0)
        router = NearRouter(net, 256, params, phases=(3, 5))
        reqs = uniform_requests(net, 60, 64, rng=6)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
        assert plan.consistent_with_simulation(result)


class TestProposition14:
    def test_filter_keeps_closest(self):
        reqs = [
            Request.line(0, 9, 0, rid=0),
            Request.line(0, 2, 0, rid=1),
            Request.line(0, 5, 0, rid=2),
        ]
        kept, dropped = proposition14_filter(reqs, 2)
        assert {r.rid for r in kept} == {1, 2}
        assert {r.rid for r in dropped} == {0}

    def test_filter_groups_by_event(self):
        reqs = [
            Request.line(0, 9, 0, rid=0),
            Request.line(0, 9, 1, rid=1),
            Request.line(1, 9, 0, rid=2),
        ]
        kept, dropped = proposition14_filter(reqs, 1)
        assert len(kept) == 3 and not dropped


class TestCombined:
    def test_class_selection_by_coin(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        classes = set()
        for seed in range(12):
            router = RandomizedLineRouter(net, 256, rng=seed, lam=1.0)
            classes.add(router.plan_class())
        assert classes == {"far+", "near"}

    def test_force_class(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        far = RandomizedLineRouter(net, 256, rng=0, lam=1.0, force_class="far")
        near = RandomizedLineRouter(net, 256, rng=0, lam=1.0, force_class="near")
        assert far.serve_far and not near.serve_far

    def test_combined_plan_replays(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 60, 64, rng=7)
        for seed in (0, 1, 2):
            router = RandomizedLineRouter(net, 256, rng=seed, lam=0.6)
            plan = router.route(reqs)
            result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
            assert plan.consistent_with_simulation(result)

    def test_all_outcomes_recorded(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 40, 64, rng=8)
        router = RandomizedLineRouter(net, 256, rng=1, lam=1.0)
        plan = router.route(reqs)
        assert set(plan.outcome) == {r.rid for r in reqs}

    def test_phases_within_ranges(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        for seed in range(10):
            router = RandomizedLineRouter(net, 128, rng=seed)
            pq, pt = router.phases
            assert 0 <= pq < router.params.Q and 0 <= pt < router.params.tau

    def test_deterministic_given_seed(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        reqs = uniform_requests(net, 40, 64, rng=9)
        t1 = RandomizedLineRouter(net, 256, rng=5, lam=0.7).route(reqs).throughput
        t2 = RandomizedLineRouter(net, 256, rng=5, lam=0.7).route(reqs).throughput
        assert t1 == t2
