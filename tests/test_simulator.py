"""Tests for the synchronous simulator (Model 1 semantics, Section 2.1)."""

import pytest

from repro.network.packet import DeliveryStatus, Request
from repro.network.simulator import (
    Decision,
    PlanPolicy,
    Policy,
    Simulator,
    execute_plan,
)
from repro.network.topology import GridNetwork, LineNetwork
from repro.spacetime.graph import STPath
from repro.util.errors import CapacityError, ValidationError


class ForwardAll(Policy):
    """Forward everything possible, store the rest up to B."""

    def decide(self, node, t, candidates, network):
        decision = Decision()
        c = network.capacity
        by_axis = {}
        for pkt in candidates:
            for axis in range(network.d):
                if pkt.location[axis] < pkt.dest[axis]:
                    by_axis.setdefault(axis, []).append(pkt)
                    break
        leftovers = []
        for axis, pkts in by_axis.items():
            decision.forward[axis] = pkts[:c]
            leftovers.extend(pkts[c:])
        decision.store = leftovers[: network.buffer_size]
        return decision


class DropAll(Policy):
    def decide(self, node, t, candidates, network):
        return Decision()


class TestBasicDelivery:
    def test_single_packet_line(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        sim = Simulator(net, ForwardAll())
        res = sim.run([Request.line(0, 3, 0)], 10)
        assert res.throughput == 1
        assert res.stats.delivery_times[next(iter(res.delivered_ids()))] == 3

    def test_trivial_request_delivered_at_injection(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        sim = Simulator(net, DropAll())
        res = sim.run([Request.line(2, 2, 5, rid=1)], 10)
        assert res.status[1] == DeliveryStatus.DELIVERED
        assert res.stats.delivery_times[1] == 5

    def test_grid_delivery(self):
        net = GridNetwork((3, 3), buffer_size=1, capacity=1)
        sim = Simulator(net, ForwardAll())
        res = sim.run([Request((0, 0), (2, 2), 0)], 10)
        assert res.throughput == 1

    def test_drop_all_rejects(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        sim = Simulator(net, DropAll())
        res = sim.run([Request.line(0, 3, 0, rid=5)], 10)
        assert res.status[5] == DeliveryStatus.REJECTED
        assert res.stats.rejected == 1

    def test_deadline_late(self):
        net = LineNetwork(4, buffer_size=2, capacity=1)

        class BufferFirst(Policy):
            def decide(self, node, t, candidates, network):
                d = Decision()
                if t < 3:
                    d.store = candidates[: network.buffer_size]
                else:
                    d.forward[0] = candidates[: network.capacity]
                return d

        sim = Simulator(net, BufferFirst())
        res = sim.run([Request.line(0, 3, 0, deadline=3, rid=9)], 20)
        assert res.status[9] == DeliveryStatus.LATE
        assert res.stats.late == 1 and res.throughput == 0

    def test_late_delivery_recorded_in_delivery_times(self):
        """Latency metrics must see late packets too; only ``throughput``
        is restricted to on-time deliveries."""
        net = LineNetwork(6, buffer_size=4, capacity=1)
        # five packets contend for one link; the back of the queue is late
        reqs = [Request.line(0, 3, 0, deadline=4, rid=100 + i) for i in range(5)]
        sim = Simulator(net, ForwardAll())
        res = sim.run(reqs, 40)
        assert res.stats.late > 0 and res.stats.delivered > 0
        delivered_or_late = {
            rid for rid, st in res.status.items()
            if st in (DeliveryStatus.DELIVERED, DeliveryStatus.LATE)
        }
        assert set(res.stats.delivery_times) == delivered_or_late
        late_rids = [r for r, st in res.status.items()
                     if st == DeliveryStatus.LATE]
        for rid in late_rids:
            assert res.stats.delivery_times[rid] > 4  # past the deadline
        assert res.throughput == res.stats.delivered  # unchanged objective

    def test_early_termination(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        sim = Simulator(net, ForwardAll())
        res = sim.run([Request.line(0, 1, 0)], 1000)
        assert res.stats.steps < 10


class TestCapacityEnforcement:
    def test_link_capacity_violation_raises(self):
        net = LineNetwork(3, buffer_size=2, capacity=1)

        class Cheater(Policy):
            def decide(self, node, t, candidates, network):
                return Decision(forward={0: candidates})

        sim = Simulator(net, Cheater())
        reqs = [Request.line(0, 2, 0, rid=i) for i in range(2)]
        with pytest.raises(CapacityError):
            sim.run(reqs, 10)

    def test_buffer_capacity_violation_raises(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)

        class Hoarder(Policy):
            def decide(self, node, t, candidates, network):
                return Decision(store=list(candidates))

        sim = Simulator(net, Hoarder())
        reqs = [Request.line(0, 2, 0, rid=i) for i in range(3)]
        with pytest.raises(CapacityError):
            sim.run(reqs, 10)

    def test_foreign_packet_rejected(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        from repro.network.packet import Packet

        ghost = Packet(request=Request.line(0, 2, 0, rid=77), location=(0,), injected_at=0)

        class Forger(Policy):
            def decide(self, node, t, candidates, network):
                return Decision(forward={0: [ghost]})

        sim = Simulator(net, Forger())
        with pytest.raises(ValidationError):
            sim.run([Request.line(0, 2, 0)], 5)

    def test_double_scheduling_rejected(self):
        net = LineNetwork(3, buffer_size=1, capacity=2)

        class Duplicator(Policy):
            def decide(self, node, t, candidates, network):
                return Decision(forward={0: [candidates[0], candidates[0]]})

        sim = Simulator(net, Duplicator())
        with pytest.raises(ValidationError):
            sim.run([Request.line(0, 2, 0)], 5)

    def test_invalid_axis_rejected(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        sim = Simulator(net, DropAll())
        # forwarding off the end of the line must be refused
        with pytest.raises(ValidationError):
            sim._validate_decision(
                (2,), [], Decision(forward={0: [object()]}),
                net.buffer_size, net.capacity,
            )


class TestCutThrough:
    def test_model1_cut_through(self):
        """Model 1 (Appendix F): arrive and be forwarded in the same step
        while another packet is stored -- B = c = 1 keeps both."""
        net = LineNetwork(3, buffer_size=1, capacity=1)

        class Smart(Policy):
            def decide(self, node, t, candidates, network):
                d = Decision()
                pkts = sorted(candidates, key=lambda p: p.remaining_distance())
                d.forward[0] = pkts[:1]
                d.store = pkts[1:2]
                return d

        sim = Simulator(net, Smart())
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(1, 2, 1, rid=1)]
        res = sim.run(reqs, 10)
        assert res.throughput == 2


class TestPlanExecution:
    def test_plan_replay_delivers(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        # path: (0,0) -N-> (1,0) -buffer-> (1,1) -N-> (2,1) -N-> (3,1)
        path = STPath((0, 0), (0, 1, 0, 0), rid=3)
        reqs = [Request.line(0, 3, 0, rid=3)]
        res = execute_plan(net, {3: path}, reqs, 10)
        assert res.status[3] == DeliveryStatus.DELIVERED
        assert res.stats.delivery_times[3] == 4

    def test_truncated_plan_preempts(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        path = STPath((0, 0), (0, 0), rid=3)  # stops at node 2
        reqs = [Request.line(0, 3, 0, rid=3)]
        res = execute_plan(net, {3: path}, reqs, 10)
        assert res.status[3] == DeliveryStatus.PREEMPTED

    def test_no_plan_rejects(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        reqs = [Request.line(0, 3, 0, rid=3)]
        res = execute_plan(net, {}, reqs, 10)
        assert res.status[3] == DeliveryStatus.REJECTED

    def test_conflicting_plans_raise(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        p0 = STPath((0, 0), (0, 0), rid=0)
        p1 = STPath((0, 0), (0, 0), rid=1)
        reqs = [Request.line(0, 2, 0, rid=0), Request.line(0, 2, 0, rid=1)]
        with pytest.raises(CapacityError):
            execute_plan(net, {0: p0, 1: p1}, reqs, 10)

    def test_plan_policy_action_table(self):
        net = LineNetwork(4, buffer_size=1, capacity=1)
        path = STPath((1, 2), (1, 0), rid=7)  # starts at node 1, t = 3
        policy = PlanPolicy(net, {7: path})
        assert policy.actions[(7, 3)] == ("S",)
        assert policy.actions[(7, 4)] == ("F", 0)


class TestTrace:
    def test_trace_records_lifecycle(self):
        net = LineNetwork(3, buffer_size=1, capacity=1)
        sim = Simulator(net, ForwardAll(), trace=True)
        res = sim.run([Request.line(0, 2, 0, rid=4)], 10)
        kinds = [e.kind for e in res.trace.for_request(4)]
        assert kinds[0] == "inject" and kinds[-1] == "deliver"
        assert "forward" in kinds
