"""Tests for SpaceTimeGraph, STPath and LoadLedger."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.packet import Request
from repro.network.topology import GridNetwork, LineNetwork
from repro.spacetime.graph import LoadLedger, STPath, SpaceTimeGraph
from repro.util.errors import CapacityError, ValidationError


@pytest.fixture
def g_line():
    return SpaceTimeGraph(LineNetwork(8, buffer_size=2, capacity=1), horizon=20)


@pytest.fixture
def g_grid():
    return SpaceTimeGraph(GridNetwork((4, 4), buffer_size=1, capacity=1), horizon=16)


class TestVertices:
    def test_valid_vertex(self, g_line):
        assert g_line.valid_vertex((0, 0))
        assert g_line.valid_vertex((7, 20 - 7))

    def test_vertex_time(self, g_line):
        assert g_line.vertex_time((3, 4)) == 7

    def test_negative_col_valid(self, g_line):
        # node 7 at time 0 has column -7
        assert g_line.valid_vertex((7, -7))

    def test_invalid_before_time_zero(self, g_line):
        assert not g_line.valid_vertex((7, -8))

    def test_invalid_after_horizon(self, g_line):
        assert not g_line.valid_vertex((0, 21))

    def test_invalid_outside_grid(self, g_line):
        assert not g_line.valid_vertex((8, 0))

    def test_check_vertex_raises(self, g_line):
        with pytest.raises(ValidationError):
            g_line.check_vertex((9, 0))

    def test_wrong_arity(self, g_line):
        assert not g_line.valid_vertex((1, 2, 3))

    def test_ncols(self, g_line):
        # columns range over [-7, 20]
        assert g_line.ncols == 28
        assert g_line.col_offset == 7


class TestMoves:
    def test_space_move_head(self, g_line):
        assert g_line.move_head((2, 5), 0) == (3, 5)

    def test_buffer_move_head(self, g_line):
        assert g_line.move_head((2, 5), 1) == (2, 6)

    def test_buffer_move_index_is_d(self, g_grid):
        assert g_grid.buffer_move == 2
        assert g_grid.move_head((1, 1, 3), 2) == (1, 1, 4)

    def test_valid_move_capacity_gate(self):
        g = SpaceTimeGraph(LineNetwork(4, buffer_size=0, capacity=1), horizon=8)
        assert not g.valid_move((1, 0), 1)  # no buffering when B = 0
        assert g.valid_move((1, 0), 0)

    def test_moves_from(self, g_line):
        assert list(g_line.moves_from((2, 5))) == [0, 1]

    def test_moves_from_last_node(self, g_line):
        assert list(g_line.moves_from((7, 0))) == [1]

    def test_moves_from_horizon_edge(self, g_line):
        assert list(g_line.moves_from((0, 20))) == []

    def test_edge_capacity(self, g_line):
        assert g_line.edge_capacity(0) == 1
        assert g_line.edge_capacity(1) == 2


class TestSTPath:
    def test_vertices_and_end(self, g_line):
        p = STPath((0, 0), (0, 1, 0))
        assert list(p.vertices(1)) == [(0, 0), (1, 0), (1, 1), (2, 1)]
        assert p.end(1) == (2, 1)

    def test_edges(self, g_line):
        p = STPath((0, 0), (0, 1))
        assert list(p.edges(1)) == [(0, (0, 0)), (1, (1, 0))]

    def test_arrival_time(self):
        p = STPath((0, 0), (0, 0, 1))
        assert p.arrival_time(1) == 3

    def test_check_path_ok(self, g_line):
        g_line.check_path(STPath((0, 0), (0, 0, 1, 0)))

    def test_check_path_rejects_invalid(self, g_line):
        with pytest.raises(ValidationError):
            g_line.check_path(STPath((7, 0), (0,)))  # off the end of the line

    def test_len(self):
        assert len(STPath((0, 0), (0, 1, 0))) == 3

    def test_hops_between_constant(self, g_grid):
        # all monotone paths between fixed endpoints have equal hop count
        assert g_grid.hops_between((0, 0, 0), (2, 1, 3)) == 6

    def test_hops_between_rejects_non_monotone(self, g_grid):
        with pytest.raises(ValidationError):
            g_grid.hops_between((2, 0, 0), (1, 1, 3))


class TestSourceAndDest:
    def test_source_vertex(self, g_line):
        r = Request.line(3, 6, 5)
        assert g_line.source_vertex(r) == (3, 2)

    def test_dest_columns_no_deadline(self, g_line):
        r = Request.line(0, 6, 2)
        cols = list(g_line.dest_columns(r))
        # t' in [2, 20] -> col in [-4, 14]
        assert cols[0] == 2 - 6 and cols[-1] == 20 - 6

    def test_dest_columns_deadline(self, g_line):
        r = Request.line(0, 6, 2, deadline=10)
        cols = list(g_line.dest_columns(r))
        assert cols[-1] == 10 - 6


class TestLoadLedger:
    def test_add_and_residual(self, g_line):
        led = g_line.ledger()
        assert led.residual(1, (2, 3)) == 2
        led.add_edge(1, (2, 3))
        assert led.residual(1, (2, 3)) == 1
        assert led.load(1, (2, 3)) == 1

    def test_capacity_violation_raises(self, g_line):
        led = g_line.ledger()
        led.add_edge(0, (2, 3))
        with pytest.raises(CapacityError):
            led.add_edge(0, (2, 3))

    def test_override_capacity(self, g_line):
        track = g_line.ledger(capacity_override=1)
        track.add_edge(1, (2, 3))
        with pytest.raises(CapacityError):
            track.add_edge(1, (2, 3))

    def test_add_remove_path(self, g_line):
        led = g_line.ledger()
        p = STPath((0, 0), (0, 1, 0))
        led.add_path(p)
        assert led.total_load() == 3
        led.remove_path(p)
        assert led.total_load() == 0

    def test_path_fits(self, g_line):
        led = g_line.ledger()
        p = STPath((0, 0), (0, 0))
        led.add_path(p)
        assert not led.path_fits(p)  # c = 1, both edges saturated

    def test_max_load_ratio(self, g_line):
        led = g_line.ledger()
        led.add_edge(1, (2, 3))
        assert led.max_load_ratio() == pytest.approx(0.5)

    def test_bufferless_ledger_infinite_ratio_on_buffer_use(self):
        g = SpaceTimeGraph(LineNetwork(4, buffer_size=0, capacity=1), horizon=4)
        led = g.ledger()
        led.add_edge(1, (0, 0), strict=False)
        assert led.max_load_ratio() == float("inf")

    @given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=6))
    def test_path_edge_count_matches_moves(self, moves):
        g = SpaceTimeGraph(LineNetwork(16, buffer_size=2, capacity=2), horizon=40)
        p = STPath((0, 0), tuple(moves))
        assert len(list(p.edges(1))) == len(moves)
        assert g.vertex_time(p.end(1)) == len(moves)
