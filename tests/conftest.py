"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.network.topology import GridNetwork, LineNetwork


@pytest.fixture
def line8():
    """Small unit-capacity line."""
    return LineNetwork(8, buffer_size=1, capacity=1)


@pytest.fixture
def line16_b3c3():
    """Line satisfying the deterministic algorithm's B, c >= 3."""
    return LineNetwork(16, buffer_size=3, capacity=3)


@pytest.fixture
def line32_b3c3():
    return LineNetwork(32, buffer_size=3, capacity=3)


@pytest.fixture
def grid4x4():
    return GridNetwork((4, 4), buffer_size=3, capacity=3)


@pytest.fixture
def bufferless8():
    return LineNetwork(8, buffer_size=0, capacity=1)
