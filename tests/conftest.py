"""Shared fixtures for the repro test suite.

Also registers the hypothesis settings profiles for the fuzz suites
(``test_differential.py``, ``test_properties.py``): the ``ci`` profile --
selected with ``HYPOTHESIS_PROFILE=ci``, as the CI workflow does -- pins
``derandomize=True`` and ``deadline=None`` so fuzz runs are deterministic
and never flake on shared-runner timing; the default ``dev`` profile
keeps random exploration for local runs.
"""

from __future__ import annotations

import os

import pytest

from repro.network.topology import GridNetwork, LineNetwork

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # hypothesis is optional outside CI
    pass
else:
    _hyp_settings.register_profile("dev", deadline=None)
    _hyp_settings.register_profile(
        "ci", deadline=None, derandomize=True, print_blob=True)
    _hyp_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def line8():
    """Small unit-capacity line."""
    return LineNetwork(8, buffer_size=1, capacity=1)


@pytest.fixture
def line16_b3c3():
    """Line satisfying the deterministic algorithm's B, c >= 3."""
    return LineNetwork(16, buffer_size=3, capacity=3)


@pytest.fixture
def line32_b3c3():
    return LineNetwork(32, buffer_size=3, capacity=3)


@pytest.fixture
def grid4x4():
    return GridNetwork((4, 4), buffer_size=3, capacity=3)


@pytest.fixture
def bufferless8():
    return LineNetwork(8, buffer_size=0, capacity=1)
