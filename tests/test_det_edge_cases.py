"""Geometric edge cases of the deterministic pipeline.

These pin behaviours that the uniform-workload tests rarely exercise:
forced bends under load, sources on tile boundaries, negative-column
geometry, and the Theorem-13 digraph adapter.
"""

import pytest

from repro.core.base import RouteOutcome
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import LargeCapacityRouter, SpaceTimeDigraph
from repro.network.packet import Request
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.spacetime.graph import SpaceTimeGraph


class TestForcedBends:
    def test_saturation_forces_buffer_segments(self):
        """Many duplicates of one request saturate the pure-north sketch
        route; later accepted paths must detour east (buffer moves)."""
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 256, k=6)
        reqs = [Request.line(2, 20, 0, rid=i) for i in range(30)]
        plan = router.route(reqs)
        delivered_paths = list(plan.paths.values())
        assert delivered_paths, "something must be delivered"
        detours = [p for p in delivered_paths if 1 in p.moves]
        assert detours, "under saturation some delivered path must bend east"
        # and the whole thing still replays
        result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
        assert plan.consistent_with_simulation(result)

    def test_multi_bend_paths_reach_destination(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 256, k=6)
        reqs = [Request.line(0, 30, t % 3, rid=t) for t in range(24)]
        plan = router.route(reqs)
        for rid, path in plan.paths.items():
            assert path.end(1)[0] == 30
        result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
        assert plan.consistent_with_simulation(result)


class TestBoundaryGeometry:
    def test_source_at_tile_corner(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 128, k=8)
        # source vertex (8, 0): exactly a tile origin with k = 8
        r = Request.line(8, 25, 8, rid=0)
        plan = router.route([r])
        assert plan.outcome[0] == RouteOutcome.DELIVERED

    def test_source_at_last_row_of_band(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 128, k=8)
        r = Request.line(7, 25, 0, rid=0)  # top row of band 0
        plan = router.route([r])
        assert plan.outcome[0] == RouteOutcome.DELIVERED

    def test_negative_columns(self):
        # node 30 at t = 0 has column -30: deep in negative territory
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 128, k=8)
        r = Request.line(29, 31, 0, rid=0)
        plan = router.route([r])
        assert plan.outcome[0] == RouteOutcome.DELIVERED
        assert plan.paths[0].start == (29, -29)

    def test_dest_is_last_node(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 128)
        plan = router.route([Request.line(0, 31, 0, rid=0)])
        assert plan.outcome[0] == RouteOutcome.DELIVERED

    def test_arrival_at_horizon_edge(self):
        net = LineNetwork(32, buffer_size=3, capacity=3)
        router = DeterministicRouter(net, 40)
        plan = router.route([Request.line(0, 8, 39, rid=0)])
        # cannot finish within the horizon: must be rejected/preempted
        assert plan.outcome[0] != RouteOutcome.DELIVERED


class TestSpaceTimeDigraph:
    @pytest.fixture
    def adapter(self):
        net = LineNetwork(8, buffer_size=4, capacity=4)
        graph = SpaceTimeGraph(net, 16)
        return graph, SpaceTimeDigraph(graph, buffer_cap=2, link_cap=2)

    def test_out_edges(self, adapter):
        graph, dg = adapter
        edges = dict(dg.out_edges(("v", (2, 3))))
        assert (("e", (2, 3), 0), ("v", (3, 3))) in edges.items()
        assert (("e", (2, 3), 1), ("v", (2, 4))) in edges.items()

    def test_capacities(self, adapter):
        graph, dg = adapter
        assert dg.capacity(("e", (2, 3), 0)) == 2
        assert dg.capacity(("e", (2, 3), 1)) == 2

    def test_zero_buffer_scaled_out(self):
        net = LineNetwork(8, buffer_size=4, capacity=4)
        graph = SpaceTimeGraph(net, 16)
        dg = SpaceTimeDigraph(graph, buffer_cap=0, link_cap=2)
        moves = {e[2] for e, _ in dg.out_edges(("v", (2, 3)))}
        assert 1 not in moves  # buffer edges removed entirely

    def test_sink_registration_window(self, adapter):
        graph, dg = adapter
        r = Request.line(1, 6, 2, deadline=10, rid=0)
        sink = dg.register_sink(r)
        assert sink == ("sink", 0)
        sink_edges = [
            e for v in [(6, col) for col in range(-6, 11)]
            for e, h in dg.out_edges(("v", v))
            if e[0] == "k"
            if graph.valid_vertex(v)
        ]
        times = {e[1][1] + 6 for e in sink_edges}
        assert times and all(7 <= t <= 10 for t in times)

    def test_unreachable_sink_is_none(self, adapter):
        graph, dg = adapter
        # horizon 16: request arriving at 16 with distance 5 cannot be served
        r = Request.line(1, 6, 16, rid=1)
        assert dg.register_sink(r) is None


class TestLargeCapacityEdgeCases:
    def test_paths_are_valid_spacetime_paths(self):
        net = LineNetwork(16, buffer_size=16, capacity=16)
        router = LargeCapacityRouter(net, 64)
        from repro.workloads.uniform import uniform_requests

        reqs = uniform_requests(net, 40, 16, rng=5)
        plan = router.route(reqs)
        graph = SpaceTimeGraph(net, 64)
        for path in plan.paths.values():
            graph.check_path(path)

    def test_scaled_caps_floor(self):
        net = LineNetwork(16, buffer_size=13, capacity=13)
        router = LargeCapacityRouter(net, 64, k=6, strict=False)
        assert router.digraph.buffer_cap == 2
        assert router.digraph.link_cap == 2


class TestIdenticalIntervalPreemption:
    def test_det_plan_feasible_after_same_bounds_preemption(self):
        """Regression: on this instance two requests reserve *identical*
        track-1 intervals in sequence; owner-blind Interval equality let
        the victim's cleanup delete the preemptor's reservation, and the
        resulting plan forwarded 4 > c = 3 packets on one edge (caught by
        the replay engine as a CapacityError)."""
        from repro.api import NetworkSpec, Scenario, WorkloadSpec, run

        scenario = Scenario(
            network=NetworkSpec("line", (64,), buffer_size=3, capacity=3),
            workload=WorkloadSpec("uniform", {"num": 192, "horizon": 64}),
            algorithm="det",
            horizon=256,
            seed=1,
        )
        report = run(scenario)  # run() replays the plan; it must not raise
        assert report.throughput > 0


class TestDeadlineMissTruncation:
    def test_deadline_miss_is_preempted_not_late(self):
        """Regression (E12 port): a packet whose detailed path overshoots
        its deadline used to be 'truncated' at full length, so the replay
        delivered it late -- violating the Section 5.4 invariant
        (delivered => on time).  The truncation must cut strictly before
        the destination so the replay preempts instead."""
        from repro.api import NetworkSpec, Scenario, WorkloadSpec, run

        for seed in range(3):
            report = run(Scenario(
                network=NetworkSpec("line", (32,), 3, 3),
                workload=WorkloadSpec("deadline", {"num": 96, "horizon": 32,
                                                   "slack": 2}),
                algorithm="det",
                horizon=128,
                seed=seed,
            ))
            assert report.late == 0
            # the specific instances above all contain a deadline miss;
            # the miss must surface as a detailed-routing preemption
            assert report.meta["detailed"]["deadline_miss"] >= 1
            assert report.preempted >= report.meta["detailed"]["deadline_miss"]
