"""Tests for the Section 7.7 / 7.8 variants (Table 2 regimes)."""

import pytest

from repro.core.base import RouteOutcome
from repro.core.randomized import LargeBufferLineRouter, SmallBufferLineRouter
from repro.network.packet import Request
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError
from repro.workloads.uniform import uniform_requests


class TestLargeBuffers:
    """Section 7.7: log n <= B/c <= poly(n)."""

    def make(self, n=32, B=None, c=1, lam=1.0, horizon=512, rng=0):
        B = B if B is not None else 8 * max(1, n.bit_length())
        net = LineNetwork(n, buffer_size=B, capacity=c)
        return net, LargeBufferLineRouter(net, horizon, rng=rng, lam=lam)

    def test_requires_large_ratio(self):
        net = LineNetwork(64, buffer_size=2, capacity=1)
        with pytest.raises(ValidationError):
            LargeBufferLineRouter(net, 128)

    def test_tau_even_and_near_ratio(self):
        net, router = self.make(n=32, B=48, c=1)
        assert router.tau % 2 == 0
        assert abs(router.tau - 48) <= 2

    def test_delivery(self):
        net, router = self.make()
        plan = router.route([Request.line(1, 20, 1, rid=0)])
        outcomes = set(plan.outcome.values())
        # either delivered or classified out of R+; never preempted
        assert RouteOutcome.PREEMPTED not in outcomes

    def test_some_delivered_bulk(self):
        net, router = self.make(rng=3)
        reqs = uniform_requests(net, 60, 64, rng=1)
        plan = router.route(reqs)
        assert plan.throughput >= 1

    def test_plan_replays(self):
        net, router = self.make(rng=5)
        reqs = uniform_requests(net, 50, 64, rng=2)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 512)
        assert plan.consistent_with_simulation(result)

    def test_loads_within_capacity(self):
        net, router = self.make(rng=7)
        reqs = uniform_requests(net, 100, 64, rng=3)
        router.route(reqs)
        assert router.ledger.max_load_ratio() <= 1.0

    def test_nonpreemptive(self):
        net, router = self.make(rng=9)
        reqs = uniform_requests(net, 80, 64, rng=4)
        plan = router.route(reqs)
        assert not plan.truncated


class TestSmallBuffers:
    """Section 7.8: B <= log n <= c."""

    def make(self, n=32, B=1, c=None, lam=1.0, horizon=256, rng=0):
        c = c if c is not None else 2 * max(1, n.bit_length())
        net = LineNetwork(n, buffer_size=B, capacity=c)
        return net, SmallBufferLineRouter(net, horizon, rng=rng, lam=lam)

    def test_requires_regime(self):
        net = LineNetwork(64, buffer_size=1, capacity=1)
        with pytest.raises(ValidationError):
            SmallBufferLineRouter(net, 128)

    def test_q_even(self):
        net, router = self.make()
        assert router.Q % 2 == 0

    def test_delivery(self):
        net, router = self.make()
        reqs = [Request.line(0, 20, 0, rid=0)]
        plan = router.route(reqs)
        assert RouteOutcome.PREEMPTED not in set(plan.outcome.values())

    def test_some_delivered_bulk(self):
        net, router = self.make(rng=1)
        reqs = uniform_requests(net, 60, 32, rng=5)
        plan = router.route(reqs)
        assert plan.throughput >= 1

    def test_plan_replays(self):
        net, router = self.make(rng=2)
        reqs = uniform_requests(net, 50, 32, rng=6)
        plan = router.route(reqs)
        result = execute_plan(net, plan.all_executable_paths(), reqs, 256)
        assert plan.consistent_with_simulation(result)

    def test_loads_within_capacity(self):
        net, router = self.make(rng=4)
        reqs = uniform_requests(net, 120, 32, rng=7)
        router.route(reqs)
        assert router.ledger.max_load_ratio() <= 1.0

    def test_iroute_cap(self):
        net, router = self.make(rng=6)
        reqs = uniform_requests(net, 150, 16, rng=8)
        router.route(reqs)
        for count in router.iroute_exits.values():
            assert count <= router.iroute_cap
