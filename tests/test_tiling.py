"""Tests for tiling and quadrants (Sections 3.3 and 7.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.topology import LineNetwork
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.tiling import Quadrant, Tiling
from repro.util.errors import ValidationError


class TestConstruction:
    def test_cubes(self):
        t = Tiling.cubes(2, 5)
        assert t.sides == (5, 5, 5) and t.phases == (0, 0, 0)

    def test_phases_default_zero(self):
        assert Tiling((4, 6)).phases == (0, 0)

    def test_rejects_zero_side(self):
        with pytest.raises(ValidationError):
            Tiling((0, 4))

    def test_rejects_phase_out_of_range(self):
        with pytest.raises(ValidationError):
            Tiling((4, 4), (4, 0))

    def test_rejects_phase_length_mismatch(self):
        with pytest.raises(ValidationError):
            Tiling((4, 4), (0,))


class TestTileGeometry:
    def test_tile_of_origin(self):
        t = Tiling((4, 4))
        assert t.tile_of((0, 0)) == (0, 0)
        assert t.tile_of((3, 3)) == (0, 0)
        assert t.tile_of((4, 0)) == (1, 0)

    def test_tile_of_negative(self):
        t = Tiling((4, 4))
        assert t.tile_of((0, -1)) == (0, -1)
        assert t.tile_of((0, -4)) == (0, -1)
        assert t.tile_of((0, -5)) == (0, -2)

    def test_phase_shift(self):
        t = Tiling((4, 4), (1, 2))
        assert t.tile_of((1, 2)) == (0, 0)
        assert t.tile_of((0, 0)) == (-1, -1)

    def test_origin_roundtrip(self):
        t = Tiling((4, 6), (2, 3))
        tile = t.tile_of((9, 10))
        org = t.origin(tile)
        assert all(o <= x < o + s for o, x, s in zip(org, (9, 10), t.sides))

    def test_ranges(self):
        t = Tiling((4, 6))
        assert t.ranges((1, 2)) == [(4, 8), (12, 18)]

    def test_local(self):
        t = Tiling((4, 6), (1, 0))
        assert t.local((5, 7)) == (0, 1)

    def test_contains(self):
        t = Tiling((4, 4))
        assert t.contains((1, 1), (5, 6))
        assert not t.contains((0, 0), (5, 6))

    @given(st.integers(-30, 30), st.integers(-30, 30),
           st.integers(1, 7), st.integers(1, 7))
    def test_tile_of_consistent_with_ranges(self, x, y, sx, sy):
        t = Tiling((sx, sy))
        tile = t.tile_of((x, y))
        (lo0, hi0), (lo1, hi1) = t.ranges(tile)
        assert lo0 <= x < hi0 and lo1 <= y < hi1

    @given(st.integers(-20, 20), st.integers(0, 3), st.integers(0, 5))
    def test_phases_translate_tiles(self, x, pa, pb):
        base = Tiling((4, 6))
        shifted = Tiling((4, 6), (pa, pb))
        assert shifted.tile_of((x + pa, pb)) == base.tile_of((x, 0))


class TestQuadrants:
    def test_sw(self):
        t = Tiling((4, 6))
        assert t.quadrant_of((0, 0)) == Quadrant.SW
        assert t.quadrant_of((1, 2)) == Quadrant.SW

    def test_se(self):
        t = Tiling((4, 6))
        assert t.quadrant_of((1, 3)) == Quadrant.SE

    def test_nw(self):
        t = Tiling((4, 6))
        assert t.quadrant_of((2, 0)) == Quadrant.NW

    def test_ne(self):
        t = Tiling((4, 6))
        assert t.quadrant_of((3, 5)) == Quadrant.NE

    def test_requires_even_sides(self):
        with pytest.raises(ValidationError):
            Tiling((3, 4)).quadrant_of((0, 0))

    def test_requires_two_axes(self):
        with pytest.raises(ValidationError):
            Tiling((4, 4, 4)).quadrant_of((0, 0, 0))

    def test_quadrant_ranges_cover_tile(self):
        t = Tiling((4, 6))
        cells = set()
        for q in Quadrant:
            (r0, r1), (c0, c1) = t.quadrant_ranges((0, 0), q)
            for r in range(r0, r1):
                for c in range(c0, c1):
                    cells.add((r, c))
        assert len(cells) == 24  # disjoint cover of the 4 x 6 tile

    @given(st.integers(0, 3), st.integers(0, 5))
    def test_quadrant_matches_ranges(self, r, c):
        t = Tiling((4, 6))
        q = t.quadrant_of((r, c))
        (r0, r1), (c0, c1) = t.quadrant_ranges((0, 0), q)
        assert r0 <= r < r1 and c0 <= c < c1


class TestOverGraph:
    def test_all_tiles_cover_valid_region(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        t = Tiling((4, 4))
        tiles = set(t.all_tiles(graph))
        for x in range(8):
            for time in range(13):
                v = (x, time - x)
                assert t.tile_of(v) in tiles

    def test_all_tiles_excludes_far_tiles(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        t = Tiling((4, 4))
        tiles = set(t.all_tiles(graph))
        assert (0, 100) not in tiles and (50, 0) not in tiles

    def test_tiles_with_dest_copies(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        t = Tiling((4, 4))
        tiles = t.tiles_with_dest_copies(graph, (6,), 3, 9)
        # copies of node 6 at t' in [3, 9]: columns -3..3 -> col tiles -1, 0
        assert tiles == [(1, -1), (1, 0)]

    def test_tiles_with_dest_copies_empty_window(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        t = Tiling((4, 4))
        assert t.tiles_with_dest_copies(graph, (6,), 20, 30) == []

    def test_tile_bounds_sane(self):
        net = LineNetwork(8, buffer_size=1, capacity=1)
        graph = SpaceTimeGraph(net, horizon=12)
        t = Tiling((4, 4))
        (rlo, rhi), (clo, chi) = t.tile_bounds(graph)
        assert rlo == 0 and rhi == 1
        assert clo == (-7 - 0) // 4 and chi == 3
