"""E2 -- Theorem 4: the deterministic algorithm on uni-directional lines.

Measured competitive ratio of Algorithm 1 (B = c = 3) against the offline
bound, swept over n, on uniform and adversarial (clogging) traffic, with
greedy on the same instances for contrast.  The theorem predicts a
polylog(n) ratio; the reproducible *shape* is that the deterministic
algorithm's ratio grows much slower than greedy's sqrt(n)-type growth on
the adversarial instances.

Ported to the :mod:`repro.api` Scenario layer: every run is a declarative
``Scenario`` executed by ``run_batch``; instances are shared across
algorithms by the seeding contract (same network/workload/seed => same
requests).
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch

SIZES = trim((16, 32, 64))
SEEDS = len(seeds(3))


def _line(n: int) -> NetworkSpec:
    return NetworkSpec("line", (n,), buffer_size=3, capacity=3)


def run_uniform_sweep():
    scenarios = [
        Scenario(_line(n), WorkloadSpec("uniform", {"num": 3 * n, "horizon": n}),
                 algo, horizon=4 * n, seed=seed)
        for n in SIZES
        for seed in range(SEEDS)
        for algo in ("det", "greedy")
    ]
    reports = dict(zip(
        ((s.network.dims[0], s.seed, s.algorithm.name) for s in scenarios),
        run_batch(scenarios, workers=2),
    ))
    rows = []
    for n in SIZES:
        det = [reports[(n, s, "det")].ratio for s in range(SEEDS)]
        greedy = [reports[(n, s, "greedy")].ratio for s in range(SEEDS)]
        rows.append([n, 3 * n, sum(det) / len(det), sum(greedy) / len(greedy)])
    return rows


def run_adversarial_sweep():
    scenarios = [
        Scenario(_line(n),
                 WorkloadSpec("clogging",
                              {"duration": n // 2, "shorts_per_node": 3}),
                 algo, horizon=5 * n)
        for n in SIZES
        for algo in (AlgorithmSpec("det"),
                     AlgorithmSpec("greedy", {"priority": "longest"}))
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, n in enumerate(SIZES):
        det, greedy = reports[2 * i], reports[2 * i + 1]
        rows.append([n, det.requests, det.bound, det.ratio, greedy.ratio])
    return rows


def test_det_line_uniform(once):
    rows = once(run_uniform_sweep)
    emit(
        "E2_det_line_uniform",
        format_table(
            ["n", "requests", "det ratio", "greedy ratio"],
            rows,
            title="E2/Theorem 4 -- deterministic line algorithm, uniform traffic "
            "(mean over seeds; paper: O(log^5 n)-competitive)",
        ),
    )
    assert all(r[2] >= 1.0 for r in rows)
    # the algorithm stays useful across the sweep
    assert rows[-1][2] < 50


def test_det_line_adversarial(once):
    rows = once(run_adversarial_sweep)
    emit(
        "E2_det_line_adversarial",
        format_table(
            ["n", "requests", "bound", "det ratio", "greedy(longest) ratio"],
            rows,
            title="E2/Theorem 4 -- deterministic vs greedy on the clogging "
            "instance (paper: polylog vs Omega(sqrt n))",
        ),
    )
    # shape check: greedy's ratio grows strictly faster than the
    # deterministic algorithm's across the sweep
    det_growth = rows[-1][3] / rows[0][3]
    greedy_growth = rows[-1][4] / rows[0][4]
    assert greedy_growth > det_growth
