"""E2 -- Theorem 4: the deterministic algorithm on uni-directional lines.

Measured competitive ratio of Algorithm 1 (B = c = 3) against the offline
bound, swept over n, on uniform and adversarial (clogging) traffic, with
greedy on the same instances for contrast.  The theorem predicts a
polylog(n) ratio; the reproducible *shape* is that the deterministic
algorithm's ratio grows much slower than greedy's sqrt(n)-type growth on
the adversarial instances.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.metrics import evaluate_plan
from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.offline import offline_bound
from repro.core.deterministic import DeterministicRouter
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.adversarial import clogging_instance
from repro.workloads.uniform import uniform_requests

SIZES = (16, 32, 64)
SEEDS = 3


def run_uniform_sweep():
    rows = []
    for n in SIZES:
        horizon = 4 * n
        net = LineNetwork(n, buffer_size=3, capacity=3)
        ratios, greedy_ratios = [], []
        for rng in spawn_generators(17, SEEDS):
            reqs = uniform_requests(net, 3 * n, n, rng=rng)
            plan = DeterministicRouter(net, horizon).route(reqs)
            ev = evaluate_plan(net, plan, reqs, horizon)
            ratios.append(ev.ratio)
            g = run_greedy(net, reqs, horizon).throughput
            greedy_ratios.append(ev.bound / max(1, g))
        rows.append([
            n, 3 * n,
            sum(ratios) / len(ratios),
            sum(greedy_ratios) / len(greedy_ratios),
        ])
    return rows


def run_adversarial_sweep():
    rows = []
    for n in SIZES:
        horizon = 5 * n
        net = LineNetwork(n, buffer_size=3, capacity=3)
        reqs = clogging_instance(net, duration=n // 2, shorts_per_node=3)
        bound = offline_bound(net, reqs, horizon)
        plan = DeterministicRouter(net, horizon).route(reqs)
        det_ratio = bound / max(1, plan.throughput)
        g = run_greedy(net, reqs, horizon, priority="longest").throughput
        rows.append([n, len(reqs), bound, det_ratio, bound / max(1, g)])
    return rows


def test_det_line_uniform(once):
    rows = once(run_uniform_sweep)
    emit(
        "E2_det_line_uniform",
        format_table(
            ["n", "requests", "det ratio", "greedy ratio"],
            rows,
            title="E2/Theorem 4 -- deterministic line algorithm, uniform traffic "
            "(mean over seeds; paper: O(log^5 n)-competitive)",
        ),
    )
    assert all(r[2] >= 1.0 for r in rows)
    # the algorithm stays useful across the sweep
    assert rows[-1][2] < 50


def test_det_line_adversarial(once):
    rows = once(run_adversarial_sweep)
    emit(
        "E2_det_line_adversarial",
        format_table(
            ["n", "requests", "bound", "det ratio", "greedy(longest) ratio"],
            rows,
            title="E2/Theorem 4 -- deterministic vs greedy on the clogging "
            "instance (paper: polylog vs Omega(sqrt n))",
        ),
    )
    # shape check: greedy's ratio grows strictly faster than the
    # deterministic algorithm's across the sweep
    det_growth = rows[-1][3] / rows[0][3]
    greedy_growth = rows[-1][4] / rows[0][4]
    assert greedy_growth > det_growth
