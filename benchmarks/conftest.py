"""Shared helpers for the experiment benches.

Every bench prints a fixed-format table (the reproduction of a paper
table/figure/theorem -- see DESIGN.md Section 4 and EXPERIMENTS.md) and
also appends it to ``benchmarks/_output/`` so results survive the pytest
capture.  Benches assert the *shape* of each result (who wins, growth
trends), not absolute numbers.

The whole suite runs on either simulation engine: ``REPRO_ENGINE=fast``
routes every greedy/NTG/plan run through the array-backed
:class:`~repro.network.fast_engine.FastEngine` (policies the fast engine
cannot vectorize fall back to the reference simulator); the default is the
reference engine.  See :mod:`repro.network.engine`.
"""

from __future__ import annotations

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
