"""Shared helpers for the experiment benches.

Every bench prints a fixed-format table (the reproduction of a paper
table/figure/theorem -- see DESIGN.md Section 4 and EXPERIMENTS.md) and
also appends it to ``benchmarks/_output/`` so results survive the pytest
capture.  Benches assert the *shape* of each result (who wins, growth
trends), not absolute numbers.

Every bench drives :func:`repro.api.run_batch` over declarative
:class:`~repro.api.Scenario` lists, which buys three suite-wide switches:

* ``REPRO_ENGINE=fast`` routes every greedy/NTG/plan run through the
  array-backed :class:`~repro.network.fast_engine.FastEngine` with
  bit-identical results (policies the fast engine cannot vectorize fall
  back to the reference simulator);
* ``REPRO_CACHE=<dir>`` replays previously computed scenario reports
  from the content-addressed result cache (:mod:`repro.api.cache`) --
  a warmed second pass of the suite recomputes (almost) nothing and
  emits byte-identical ``E*`` output files.  The per-session hit/miss
  totals are printed at the end of the run (CI asserts them);
* ``REPRO_BENCH_SMOKE=1`` trims sweeps to their first points for fast
  CI passes (shape assertions that need a trend keep two points).

The heaviest benches fan out through :func:`dispatch_batch`, which adds
the multi-host switches of :mod:`repro.api.dispatch`:

* ``REPRO_SHARDS=N`` routes the batch through the shard orchestrator --
  plan manifests, run every shard, write each shard's JSONL under
  ``benchmarks/_output/shards/``, and merge the result files back into
  the (bit-identical) batch result the bench prints from;
* ``REPRO_SHARD_INDEX=i`` (with ``REPRO_SHARDS``) runs *only* shard
  ``i`` and skips the bench's table -- the partial-run mode for spreading
  one bench across hosts; merge the emitted files with
  ``python -m repro merge``.

Timing-dependent tables (the ``ENGINE_*`` outputs of ``bench_engine``)
are cache-exempt by design and excluded from byte-identity checks.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

#: smoke mode: shrink every sweep so the whole suite runs in CI minutes
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def dispatch_batch(scenarios, workers=None, name=None):
    """``run_batch``, optionally through the shard dispatch layer.

    Without ``REPRO_SHARDS`` this is exactly ``run_batch(scenarios,
    workers=...)``.  With it, the batch goes through
    plan -> run_shard -> merge (see the module docstring); partition
    equivalence guarantees the bench's numbers cannot change.  ``name``
    labels the shard files (defaults to the batch digest).
    """
    from repro.api import run_batch

    n_shards = int(os.environ.get("REPRO_SHARDS", "0") or 0)
    if n_shards <= 1:
        return run_batch(scenarios, workers=workers)

    from repro.api.dispatch import merge, plan_shards, run_shard

    manifests = plan_shards(scenarios, n_shards)
    tag = name or manifests[0]["batch_digest"]
    shard_dir = OUTPUT_DIR / "shards"
    out = lambda i: shard_dir / f"{tag}_shard{i}of{n_shards}.jsonl"
    index = os.environ.get("REPRO_SHARD_INDEX")
    if index is not None:
        i = int(index)
        if not 0 <= i < n_shards:
            raise ValueError(
                f"REPRO_SHARD_INDEX must satisfy 0 <= index < "
                f"REPRO_SHARDS={n_shards}, got {i}")
        run_shard(manifests[i], out(i), workers=workers)
        pytest.skip(f"shard {i}/{n_shards} written to {out(i)}; merge the "
                    "full set with 'python -m repro merge'")
    files = []
    for manifest in manifests:
        path = out(manifest["shard_index"])
        run_shard(manifest, path, workers=workers)
        files.append(path)
    return merge(files)


def trim(seq, keep: int = 2) -> tuple:
    """The sweep points to run: all of ``seq``, or the first ``keep`` in
    smoke mode (two by default, so growth assertions keep a trend)."""
    return tuple(seq)[:keep] if SMOKE else tuple(seq)


def seeds(n: int, smoke_n: int = 2) -> range:
    """Trial seeds: ``range(n)``, shrunk to ``smoke_n`` in smoke mode."""
    return range(smoke_n if SMOKE else n)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def pytest_terminal_summary(terminalreporter):
    """Print the session's aggregate result-cache accounting.

    CI's warmed-cache step greps this line to assert the second pass
    actually replayed from disk (``hits > 0``).
    """
    from repro.api.cache import GLOBAL_STATS

    if GLOBAL_STATS.lookups:
        terminalreporter.write_line("repro result " + GLOBAL_STATS.summary())
