"""Shared helpers for the experiment benches.

Every bench prints a fixed-format table (the reproduction of a paper
table/figure/theorem -- see DESIGN.md Section 4 and EXPERIMENTS.md) and
also appends it to ``benchmarks/_output/`` so results survive the pytest
capture.  Benches assert the *shape* of each result (who wins, growth
trends), not absolute numbers.

Every bench drives :func:`repro.api.run_batch` over declarative
:class:`~repro.api.Scenario` lists, which buys three suite-wide switches:

* ``REPRO_ENGINE=fast`` routes every greedy/NTG/plan run through the
  array-backed :class:`~repro.network.fast_engine.FastEngine` with
  bit-identical results (policies the fast engine cannot vectorize fall
  back to the reference simulator);
* ``REPRO_CACHE=<dir>`` replays previously computed scenario reports
  from the content-addressed result cache (:mod:`repro.api.cache`) --
  a warmed second pass of the suite recomputes (almost) nothing and
  emits byte-identical ``E*`` output files.  The per-session hit/miss
  totals are printed at the end of the run (CI asserts them);
* ``REPRO_BENCH_SMOKE=1`` trims sweeps to their first points for fast
  CI passes (shape assertions that need a trend keep two points).

Timing-dependent tables (the ``ENGINE_*`` outputs of ``bench_engine``)
are cache-exempt by design and excluded from byte-identity checks.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

#: smoke mode: shrink every sweep so the whole suite runs in CI minutes
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def trim(seq, keep: int = 2) -> tuple:
    """The sweep points to run: all of ``seq``, or the first ``keep`` in
    smoke mode (two by default, so growth assertions keep a trend)."""
    return tuple(seq)[:keep] if SMOKE else tuple(seq)


def seeds(n: int, smoke_n: int = 2) -> range:
    """Trial seeds: ``range(n)``, shrunk to ``smoke_n`` in smoke mode."""
    return range(smoke_n if SMOKE else n)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def pytest_terminal_summary(terminalreporter):
    """Print the session's aggregate result-cache accounting.

    CI's warmed-cache step greps this line to assert the second pass
    actually replayed from disk (``hits > 0``).
    """
    from repro.api.cache import GLOBAL_STATS

    if GLOBAL_STATS.lookups:
        terminalreporter.write_line("repro result " + GLOBAL_STATS.summary())
