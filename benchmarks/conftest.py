"""Shared helpers for the experiment benches.

Every bench prints a fixed-format table (the reproduction of a paper
table/figure/theorem -- see DESIGN.md Section 4 and EXPERIMENTS.md) and
also appends it to ``benchmarks/_output/`` so results survive the pytest
capture.  Benches assert the *shape* of each result (who wins, growth
trends), not absolute numbers.

Every bench drives :func:`repro.api.run_batch` over declarative
:class:`~repro.api.Scenario` lists, which buys three suite-wide switches:

* ``REPRO_ENGINE=fast`` routes every greedy/NTG/plan run through the
  array-backed :class:`~repro.network.fast_engine.FastEngine` with
  bit-identical results (policies the fast engine cannot vectorize fall
  back to the reference simulator);
* ``REPRO_CACHE=<dir>`` replays previously computed scenario reports
  from the content-addressed result cache (:mod:`repro.api.cache`) --
  a warmed second pass of the suite recomputes (almost) nothing and
  emits byte-identical ``E*`` output files.  The per-session hit/miss
  totals are printed at the end of the run (CI asserts them);
* ``REPRO_BENCH_SMOKE=1`` trims sweeps to their first points for fast
  CI passes (shape assertions that need a trend keep two points).

The heaviest benches fan out through :func:`dispatch_batch`, which adds
the multi-host switches of :mod:`repro.api.dispatch`:

* ``REPRO_SHARDS=N`` routes the batch through the shard orchestrator --
  plan manifests, run every shard, write each shard's JSONL under
  ``benchmarks/_output/shards/``, and merge the result files back into
  the (bit-identical) batch result the bench prints from;
* ``REPRO_SHARD_INDEX=i`` (with ``REPRO_SHARDS``) runs *only* shard
  ``i`` and skips the bench's table -- the partial-run mode for spreading
  one bench across hosts; merge the emitted files with
  ``python -m repro merge``;
* ``REPRO_QUEUE=N`` routes the batch through the elastic queue service
  instead (:mod:`repro.api.queue`): enqueue chunks under
  ``benchmarks/_output/queue/``, pull-execute them with ``N``
  ``repro work`` subprocesses, and collect the (bit-identical) batch
  result.  Takes precedence over ``REPRO_SHARDS``.  Exercises the
  whole lease/heartbeat/collect path in-tree; share ``REPRO_CACHE``
  for warmed replays exactly as with shards.

Timing-dependent tables (the ``ENGINE_*`` outputs of ``bench_engine``)
are cache-exempt by design and excluded from byte-identity checks.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

#: smoke mode: shrink every sweep so the whole suite runs in CI minutes
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def dispatch_batch(scenarios, workers=None, name=None):
    """``run_batch``, optionally through the shard dispatch layer.

    Without ``REPRO_SHARDS`` this is exactly ``run_batch(scenarios,
    workers=...)``.  With it, the batch goes through
    plan -> run_shard -> merge (see the module docstring); partition
    equivalence guarantees the bench's numbers cannot change.  ``name``
    labels the shard files (defaults to the batch digest).
    """
    from repro.api import run_batch

    n_queue = int(os.environ.get("REPRO_QUEUE", "0") or 0)
    if n_queue >= 1:
        return _queue_batch(scenarios, n_queue, name=name)
    n_shards = int(os.environ.get("REPRO_SHARDS", "0") or 0)
    if n_shards <= 1:
        return run_batch(scenarios, workers=workers)

    from repro.api.dispatch import merge, plan_shards, run_shard

    manifests = plan_shards(scenarios, n_shards)
    tag = name or manifests[0]["batch_digest"]
    shard_dir = OUTPUT_DIR / "shards"
    out = lambda i: shard_dir / f"{tag}_shard{i}of{n_shards}.jsonl"
    index = os.environ.get("REPRO_SHARD_INDEX")
    if index is not None:
        i = int(index)
        if not 0 <= i < n_shards:
            raise ValueError(
                f"REPRO_SHARD_INDEX must satisfy 0 <= index < "
                f"REPRO_SHARDS={n_shards}, got {i}")
        run_shard(manifests[i], out(i), workers=workers)
        pytest.skip(f"shard {i}/{n_shards} written to {out(i)}; merge the "
                    "full set with 'python -m repro merge'")
    files = []
    for manifest in manifests:
        path = out(manifest["shard_index"])
        run_shard(manifest, path, workers=workers)
        files.append(path)
    return merge(files)


def _queue_batch(scenarios, n_workers: int, name=None):
    """Run a batch through the queue service with subprocess workers.

    Enqueues into a fresh per-batch directory, launches ``n_workers``
    ``python -m repro work`` subprocesses against it, and collects.  A
    ``REPRO_QUEUE_CRASH_AFTER`` value in the environment is *consumed
    here* and applied to the first worker only (the chaos switch: that
    worker dies mid-chunk and the survivors finish via requeue) -- it is
    popped from the child environments so the rescuing workers do not
    crash too.
    """
    import subprocess
    import sys

    from repro.api.dispatch import batch_digest
    from repro.api.queue import WorkQueue

    tag = name or batch_digest(scenarios)
    root = OUTPUT_DIR / "queue" / tag
    if root.exists():
        import shutil

        shutil.rmtree(root)
    queue = WorkQueue.create(root, scenarios)
    env = {k: v for k, v in os.environ.items()
           if k != "REPRO_QUEUE_CRASH_AFTER"}
    crash_after = os.environ.get("REPRO_QUEUE_CRASH_AFTER")
    procs = []
    for i in range(n_workers):
        worker_env = dict(env)
        if i == 0 and crash_after is not None:
            worker_env["REPRO_QUEUE_CRASH_AFTER"] = crash_after
        procs.append(subprocess.Popen(
            [sys.executable, "-m", "repro", "work", str(root),
             "--worker-id", f"bench-{tag}-{i}", "--ttl", "5",
             "--poll", "0.2"],
            env=worker_env, stdout=subprocess.DEVNULL))
    for proc in procs:
        proc.wait()
    result = queue.collect()
    # fold the workers' (subprocess-side) cache accounting into this
    # process's session totals so the terminal summary stays truthful
    from repro.api.cache import GLOBAL_STATS

    if result.cache_stats is not None:
        GLOBAL_STATS.add(result.cache_stats)
    return result


def trim(seq, keep: int = 2) -> tuple:
    """The sweep points to run: all of ``seq``, or the first ``keep`` in
    smoke mode (two by default, so growth assertions keep a trend)."""
    return tuple(seq)[:keep] if SMOKE else tuple(seq)


def seeds(n: int, smoke_n: int = 2) -> range:
    """Trial seeds: ``range(n)``, shrunk to ``smoke_n`` in smoke mode."""
    return range(smoke_n if SMOKE else n)


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/_output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    print(f"\n{text}\n")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run


def pytest_terminal_summary(terminalreporter):
    """Print the session's aggregate result-cache accounting.

    CI's warmed-cache step greps this line to assert the second pass
    actually replayed from disk (``hits > 0``).
    """
    from repro.api.cache import GLOBAL_STATS

    if GLOBAL_STATS.lookups:
        terminalreporter.write_line("repro result " + GLOBAL_STATS.summary())
