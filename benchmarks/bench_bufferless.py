"""E4 -- Theorem 11 and Proposition 12: bufferless grids.

Proposition 12 says nearest-to-go is *optimal* on bufferless lines: the
bench verifies equality with the exact optimum on small instances and a
ratio of 1.0 against the max-flow bound across a size sweep.  Theorem 11's
bufferless grid variant (B = 0, c >= 3 through the main deterministic
machinery) is measured alongside.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.offline import offline_bound
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import BufferlessLineRouter
from repro.network.topology import LineNetwork
from repro.packing.exact import exact_opt_small
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def run_prop12_exact_check():
    rows = []
    net = LineNetwork(7, buffer_size=0, capacity=1)
    matches = 0
    trials = 12
    for rng in spawn_generators(5, trials):
        reqs = uniform_requests(net, 6, 6, rng=rng)
        plan = BufferlessLineRouter(net, 20).route(reqs)
        exact, _ = exact_opt_small(net, reqs, 20)
        matches += plan.throughput == exact
    rows.append([net.n, trials, matches])
    return rows


def run_prop12_sweep():
    rows = []
    for n in (16, 32, 64, 128):
        net = LineNetwork(n, buffer_size=0, capacity=1)
        horizon = 3 * n
        ratios = []
        for rng in spawn_generators(11, 3):
            reqs = uniform_requests(net, 2 * n, n, rng=rng)
            plan = BufferlessLineRouter(net, horizon).route(reqs)
            bound = offline_bound(net, reqs, horizon)
            ratios.append(bound / max(1, plan.throughput))
        rows.append([n, 2 * n, sum(ratios) / len(ratios)])
    return rows


def run_theorem11_grid():
    from repro.network.topology import GridNetwork

    rows = []
    for side in (4, 6, 8):
        net = GridNetwork((side, side), buffer_size=0, capacity=3)
        horizon = 8 * side
        reqs = uniform_requests(net, 3 * side * side, 2 * side, rng=side)
        plan = DeterministicRouter(net, horizon).route(reqs)
        bound = offline_bound(net, reqs, horizon)
        rows.append([
            f"{side}x{side}", len(reqs), bound,
            bound / max(1, plan.throughput),
        ])
    return rows


def test_prop12_ntg_equals_exact(once):
    rows = once(run_prop12_exact_check)
    emit(
        "E4_prop12_exact",
        format_table(
            ["n", "trials", "exact matches"],
            rows,
            title="E4/Prop 12 -- bufferless NTG (interval packing) vs exact "
            "optimum (must match on every trial)",
        ),
    )
    assert rows[0][2] == rows[0][1]  # optimal on every instance


def test_prop12_ratio_sweep(once):
    rows = once(run_prop12_sweep)
    emit(
        "E4_prop12_sweep",
        format_table(
            ["n", "requests", "ratio vs maxflow bound"],
            rows,
            title="E4/Prop 12 -- bufferless NTG ratio sweep (paper: optimal; "
            "bound is a relaxation so ratio ~ 1)",
        ),
    )
    assert all(r[2] <= 1.5 for r in rows)


def test_theorem11_bufferless_grid(once):
    rows = once(run_theorem11_grid)
    emit(
        "E4_theorem11_grid",
        format_table(
            ["grid", "requests", "bound", "det ratio"],
            rows,
            title="E4/Theorem 11 -- deterministic algorithm on bufferless 2-d "
            "grids (paper: O(log^{d+2} n))",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
