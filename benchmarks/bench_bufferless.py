"""E4 -- Theorem 11 and Proposition 12: bufferless grids.

Proposition 12 says nearest-to-go is *optimal* on bufferless lines: the
bench verifies equality with the exact optimum on small instances and a
ratio of 1.0 against the max-flow bound across a size sweep.  Theorem 11's
bufferless grid variant (B = 0, c >= 3 through the main deterministic
machinery) is measured alongside.

Ported to the :mod:`repro.api` Scenario layer; the exact-optimum check
rebuilds the identical instance from the scenario (``build_instance``) so
the declarative run and the oracle see the same requests.
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run, run_batch
from repro.packing.exact import exact_opt_small


def run_prop12_exact_check():
    trials = len(seeds(12, 6))
    scenarios = [
        Scenario(NetworkSpec("line", (7,), buffer_size=0, capacity=1),
                 WorkloadSpec("uniform", {"num": 6, "horizon": 6}),
                 "bufferless", horizon=20, seed=seed)
        for seed in range(trials)
    ]
    matches = 0
    for scenario in scenarios:
        report = run(scenario)
        net, reqs = scenario.build_instance()
        exact, _ = exact_opt_small(net, reqs, scenario.horizon)
        matches += report.throughput == exact
    return [[7, trials, matches]]


def run_prop12_sweep():
    sizes, n_seeds = trim((16, 32, 64, 128), 2), len(seeds(3))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), buffer_size=0, capacity=1),
                 WorkloadSpec("uniform", {"num": 2 * n, "horizon": n}),
                 "bufferless", horizon=3 * n, seed=seed)
        for n in sizes
        for seed in range(n_seeds)
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, n in enumerate(sizes):
        chunk = reports[i * n_seeds:(i + 1) * n_seeds]
        rows.append([n, 2 * n, sum(r.ratio for r in chunk) / n_seeds])
    return rows


def run_theorem11_grid():
    scenarios = [
        Scenario(NetworkSpec("grid", (side, side), buffer_size=0, capacity=3),
                 WorkloadSpec("uniform",
                              {"num": 3 * side * side, "horizon": 2 * side}),
                 "det", horizon=8 * side, seed=side)
        for side in trim((4, 6, 8))
    ]
    reports = run_batch(scenarios, workers=2)
    return [
        [f"{side}x{side}", r.requests, r.bound, r.ratio]
        for side, r in zip(trim((4, 6, 8)), reports)
    ]


def test_prop12_ntg_equals_exact(once):
    rows = once(run_prop12_exact_check)
    emit(
        "E4_prop12_exact",
        format_table(
            ["n", "trials", "exact matches"],
            rows,
            title="E4/Prop 12 -- bufferless NTG (interval packing) vs exact "
            "optimum (must match on every trial)",
        ),
    )
    assert rows[0][2] == rows[0][1]  # optimal on every instance


def test_prop12_ratio_sweep(once):
    rows = once(run_prop12_sweep)
    emit(
        "E4_prop12_sweep",
        format_table(
            ["n", "requests", "ratio vs maxflow bound"],
            rows,
            title="E4/Prop 12 -- bufferless NTG ratio sweep (paper: optimal; "
            "bound is a relaxation so ratio ~ 1)",
        ),
    )
    assert all(r[2] <= 1.5 for r in rows)


def test_theorem11_bufferless_grid(once):
    rows = once(run_theorem11_grid)
    emit(
        "E4_theorem11_grid",
        format_table(
            ["grid", "requests", "bound", "det ratio"],
            rows,
            title="E4/Theorem 11 -- deterministic algorithm on bufferless 2-d "
            "grids (paper: O(log^{d+2} n))",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
