"""E12 -- Figure 7 / Section 5.4: requests with deadlines.

Two claims reproduced: (i) the invariant that a request not preempted by
detailed routing arrives on time -- zero late deliveries ever; and (ii)
throughput as a function of deadline slack: slack 0 forces shortest
schedules (tight), large slack recovers the no-deadline throughput.

Ported to the :mod:`repro.api` Scenario layer: each (slack, seed) point
is a declarative ``Scenario`` over the registered ``deadline`` workload
(plain ``uniform`` for the no-deadline row), executed by ``run_batch``;
late-delivery counts come straight from the ``RunReport``.
"""

from __future__ import annotations

from conftest import emit, seeds

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

N = 32
SLACKS = (0, 2, 8, 32, None)
TRIALS = 3


def _workload(slack):
    if slack is None:
        return WorkloadSpec("uniform", {"num": 3 * N, "horizon": N})
    return WorkloadSpec("deadline", {"num": 3 * N, "horizon": N,
                                     "slack": slack})


def run_slack_sweep():
    trials = list(seeds(TRIALS))
    scenarios = [
        Scenario(NetworkSpec("line", (N,), 3, 3), _workload(slack), "det",
                 horizon=4 * N, seed=seed)
        for slack in SLACKS
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, slack in enumerate(SLACKS):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        tput = sum(r.throughput for r in batch)
        late = sum(r.late for r in batch)
        rows.append(["inf" if slack is None else slack,
                     tput / len(trials), late])
    return rows


def test_deadline_slack_sweep(once):
    rows = once(run_slack_sweep)
    emit(
        "E12_deadlines",
        format_table(
            ["slack", "mean throughput", "late deliveries"],
            rows,
            title="E12/Figure 7 -- throughput vs deadline slack "
            "(paper invariant: delivered => on time; late must be 0)",
        ),
    )
    assert all(r[2] == 0 for r in rows)  # never late (Section 5.4)
    # more slack never hurts (weak monotonicity; the slack points draw
    # independent instances now, so allow a few packets of seed noise)
    assert rows[-1][1] >= rows[0][1] - 5
