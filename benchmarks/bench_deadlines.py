"""E12 -- Figure 7 / Section 5.4: requests with deadlines.

Two claims reproduced: (i) the invariant that a request not preempted by
detailed routing arrives on time -- zero late deliveries ever; and (ii)
throughput as a function of deadline slack: slack 0 forces shortest
schedules (tight), large slack recovers the no-deadline throughput.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.deterministic import DeterministicRouter
from repro.network.simulator import execute_plan
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.deadline import with_deadlines
from repro.workloads.uniform import uniform_requests


def run_slack_sweep():
    n = 32
    net = LineNetwork(n, buffer_size=3, capacity=3)
    horizon = 4 * n
    rows = []
    for slack in (0, 2, 8, 32, None):
        tput = late = 0
        trials = 3
        for rng in spawn_generators(7, trials):
            base = uniform_requests(net, 3 * n, n, rng=rng)
            reqs = base if slack is None else with_deadlines(base, slack)
            plan = DeterministicRouter(net, horizon).route(reqs)
            result = execute_plan(net, plan.all_executable_paths(), reqs, horizon)
            tput += result.throughput
            late += result.stats.late
        rows.append(["inf" if slack is None else slack, tput / trials, late])
    return rows


def test_deadline_slack_sweep(once):
    rows = once(run_slack_sweep)
    emit(
        "E12_deadlines",
        format_table(
            ["slack", "mean throughput", "late deliveries"],
            rows,
            title="E12/Figure 7 -- throughput vs deadline slack "
            "(paper invariant: delivered => on time; late must be 0)",
        ),
    )
    assert all(r[2] == 0 for r in rows)  # never late (Section 5.4)
    # more slack never hurts (weak monotonicity with seed tolerance)
    assert rows[-1][1] >= rows[0][1] - 2
