"""E3 -- Theorem 10: the deterministic algorithm on 2-dimensional grids.

Measured ratio of Algorithm 1 on square grids with B = c = 3, uniform and
dense-area traffic.  Theorem 10 predicts O(log^6 n); the reproduction
checks the ratio stays polylog-flat as n quadruples while greedy degrades
on the dense-area instance (perimeter-vs-area effect, Section 1.3).

Ported to the :mod:`repro.api` Scenario layer (declarative runs through
``run_batch``; greedy and det share instances by the seeding contract).
"""

from __future__ import annotations

from conftest import emit, trim

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

SIDES = trim((4, 6, 8))


def _grid(side: int) -> NetworkSpec:
    return NetworkSpec("grid", (side, side), buffer_size=3, capacity=3)


def run_grid_sweep():
    scenarios = [
        Scenario(_grid(side),
                 WorkloadSpec("uniform",
                              {"num": 4 * side * side, "horizon": 3 * side}),
                 "det", horizon=10 * side, seed=side)
        for side in SIDES
    ]
    reports = run_batch(scenarios, workers=2)
    return [
        [f"{side}x{side}", r.requests, r.bound, r.ratio]
        for side, r in zip(SIDES, reports)
    ]


def run_dense_area_sweep():
    scenarios = [
        Scenario(_grid(side),
                 WorkloadSpec("dense-area",
                              {"area_side": max(2, side // 2), "per_node": 4}),
                 algo, horizon=10 * side)
        for side in SIDES
        for algo in ("det", "greedy")
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, side in enumerate(SIDES):
        det, greedy = reports[2 * i], reports[2 * i + 1]
        rows.append([f"{side}x{side}", det.requests, det.bound,
                     det.ratio, greedy.ratio])
    return rows


def test_det_grid_uniform(once):
    rows = once(run_grid_sweep)
    emit(
        "E3_det_grid_uniform",
        format_table(
            ["grid", "requests", "bound", "det ratio"],
            rows,
            title="E3/Theorem 10 -- deterministic algorithm on 2-d grids, "
            "uniform traffic (paper: O(log^{d+4} n))",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
    assert rows[-1][3] < 50


def test_det_grid_dense_area(once):
    rows = once(run_dense_area_sweep)
    emit(
        "E3_det_grid_dense",
        format_table(
            ["grid", "requests", "bound", "det ratio", "greedy ratio"],
            rows,
            title="E3/Theorem 10 -- dense-area instance (volume vs perimeter, "
            "Section 1.3)",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
