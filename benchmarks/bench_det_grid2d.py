"""E3 -- Theorem 10: the deterministic algorithm on 2-dimensional grids.

Measured ratio of Algorithm 1 on square grids with B = c = 3, uniform and
dense-area traffic.  Theorem 10 predicts O(log^6 n); the reproduction
checks the ratio stays polylog-flat as n quadruples while greedy degrades
on the dense-area instance (perimeter-vs-area effect, Section 1.3).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.metrics import evaluate_plan
from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.offline import offline_bound
from repro.core.deterministic import DeterministicRouter
from repro.network.topology import GridNetwork
from repro.workloads.adversarial import dense_area_instance
from repro.workloads.uniform import uniform_requests

SIDES = (4, 6, 8)


def run_grid_sweep():
    rows = []
    for side in SIDES:
        net = GridNetwork((side, side), buffer_size=3, capacity=3)
        horizon = 10 * side
        reqs = uniform_requests(net, 4 * side * side, 3 * side, rng=side)
        plan = DeterministicRouter(net, horizon).route(reqs)
        ev = evaluate_plan(net, plan, reqs, horizon)
        rows.append([f"{side}x{side}", len(reqs), ev.bound, ev.ratio])
    return rows


def run_dense_area_sweep():
    rows = []
    for side in SIDES:
        net = GridNetwork((side, side), buffer_size=3, capacity=3)
        horizon = 10 * side
        reqs = dense_area_instance(net, area_side=max(2, side // 2), per_node=4)
        bound = offline_bound(net, reqs, horizon)
        plan = DeterministicRouter(net, horizon).route(reqs)
        g = run_greedy(net, reqs, horizon).throughput
        rows.append([
            f"{side}x{side}", len(reqs), bound,
            bound / max(1, plan.throughput), bound / max(1, g),
        ])
    return rows


def test_det_grid_uniform(once):
    rows = once(run_grid_sweep)
    emit(
        "E3_det_grid_uniform",
        format_table(
            ["grid", "requests", "bound", "det ratio"],
            rows,
            title="E3/Theorem 10 -- deterministic algorithm on 2-d grids, "
            "uniform traffic (paper: O(log^{d+4} n))",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
    assert rows[-1][3] < 50


def test_det_grid_dense_area(once):
    rows = once(run_dense_area_sweep)
    emit(
        "E3_det_grid_dense",
        format_table(
            ["grid", "requests", "bound", "det ratio", "greedy ratio"],
            rows,
            title="E3/Theorem 10 -- dense-area instance (volume vs perimeter, "
            "Section 1.3)",
        ),
    )
    assert all(r[3] >= 1.0 for r in rows)
