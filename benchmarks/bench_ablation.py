"""E16 -- Ablations over the design choices DESIGN.md calls out.

* **Tile side k** (deterministic): the paper pins k = ceil(log2(1+3 p_max));
  smaller tiles change the sketch granularity / detailed-routing loss
  trade-off.
* **Sparsification gamma** (randomized): the paper's 200 is a Chernoff
  artifact; the sweep shows throughput ~ 1/gamma until the load cap bites.
* **Classify-and-select**: serving both classes by coin vs pinning one.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.metrics import evaluate_plan
from repro.analysis.tables import format_table
from repro.baselines.offline import offline_bound
from repro.core.deterministic import DeterministicRouter
from repro.core.randomized import RandomizedLineRouter
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def run_tile_side_ablation():
    net = LineNetwork(32, buffer_size=3, capacity=3)
    horizon = 128
    paper_k = net.tile_side_k()
    rows = []
    for k in (4, 8, paper_k, 20):
        ratios = []
        for rng in spawn_generators(5, 3):
            reqs = uniform_requests(net, 120, 32, rng=rng)
            plan = DeterministicRouter(net, horizon, k=k).route(reqs)
            ev = evaluate_plan(net, plan, reqs, horizon)
            ratios.append(ev.ratio)
        rows.append([k, k == paper_k, sum(ratios) / len(ratios)])
    return rows


def run_gamma_ablation():
    net = LineNetwork(64, buffer_size=1, capacity=1)
    horizon = 256
    rows = []
    for gamma in (0.5, 2.0, 8.0, 50.0, 200.0):
        tputs, bounds = [], []
        for rng in spawn_generators(13, 6):
            reqs = uniform_requests(net, 200, 64, rng=rng)
            router = RandomizedLineRouter(
                net, horizon, rng=rng, gamma=gamma, force_class="far"
            )
            plan = router.route(reqs)
            tputs.append(plan.throughput)
            bounds.append(offline_bound(net, reqs, horizon))
        rows.append([
            gamma, router.params.lam,
            sum(tputs) / len(tputs),
            (sum(bounds) / len(bounds)) / max(1e-9, sum(tputs) / len(tputs)),
        ])
    return rows


def run_classify_ablation():
    net = LineNetwork(64, buffer_size=1, capacity=1)
    horizon = 256
    rows = []
    for mode in (None, "far", "near"):
        tputs = []
        for rng in spawn_generators(29, 8):
            reqs = uniform_requests(net, 200, 64, rng=rng)
            router = RandomizedLineRouter(
                net, horizon, rng=rng, lam=0.5, force_class=mode
            )
            tputs.append(router.route(reqs).throughput)
        rows.append([mode or "coin", sum(tputs) / len(tputs)])
    return rows


def test_tile_side(once):
    rows = once(run_tile_side_ablation)
    emit(
        "E16_tile_side",
        format_table(
            ["k", "paper?", "mean ratio"],
            rows,
            title="E16 -- deterministic ratio vs tile side k",
        ),
    )
    assert all(r[2] >= 1.0 for r in rows)


def test_gamma(once):
    rows = once(run_gamma_ablation)
    emit(
        "E16_gamma",
        format_table(
            ["gamma", "lambda", "E[throughput]", "E[ratio]"],
            rows,
            title="E16 -- randomized throughput vs sparsification constant "
            "(paper gamma = 200)",
        ),
    )
    # throughput decreases as gamma grows (lambda shrinks)
    tputs = [r[2] for r in rows]
    assert tputs[0] >= tputs[-1]


def test_classify_and_select(once):
    rows = once(run_classify_ablation)
    emit(
        "E16_classify",
        format_table(
            ["class", "E[throughput]"],
            rows,
            title="E16 -- classify-and-select: fair coin vs pinned class",
        ),
    )
    by = {r[0]: r[1] for r in rows}
    # the coin averages the two pinned classes (within seed noise)
    lo, hi = sorted([by["far"], by["near"]])
    assert lo * 0.5 - 3 <= by["coin"] <= hi * 1.5 + 3
