"""E16 -- Ablations over the design choices DESIGN.md calls out.

* **Tile side k** (deterministic): the paper pins k = ceil(log2(1+3 p_max));
  smaller tiles change the sketch granularity / detailed-routing loss
  trade-off.
* **Sparsification gamma** (randomized): the paper's 200 is a Chernoff
  artifact; the sweep shows throughput ~ 1/gamma until the load cap bites.
* **Classify-and-select**: serving both classes by coin vs pinning one.

Ported to the :mod:`repro.api` Scenario layer: every ablation point is a
declarative ``Scenario`` whose algorithm parameters (``k``, ``gamma``,
``lam``, ``force_class``) ride in the ``AlgorithmSpec``, executed by
``run_batch``; ratios/bounds come from the ``RunReport``.
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.core.randomized import RandomizedParams


def run_tile_side_ablation():
    net = NetworkSpec("line", (32,), 3, 3)
    paper_k = net.build().tile_side_k()
    ks = trim((4, 8, paper_k, 20), 3)
    trials = list(seeds(3))
    scenarios = [
        Scenario(net, WorkloadSpec("uniform", {"num": 120, "horizon": 32}),
                 AlgorithmSpec("det", {"k": k}), horizon=128, seed=seed)
        for k in ks
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, k in enumerate(ks):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        ratios = [r.ratio for r in batch]
        rows.append([k, k == paper_k, sum(ratios) / len(ratios)])
    return rows


def run_gamma_ablation():
    net = NetworkSpec("line", (64,), 1, 1)
    gammas = trim((0.5, 2.0, 8.0, 50.0, 200.0), 3)
    trials = list(seeds(6, 3))
    scenarios = [
        Scenario(net, WorkloadSpec("uniform", {"num": 200, "horizon": 64}),
                 AlgorithmSpec("rand", {"gamma": gamma, "force_class": "far"}),
                 horizon=256, seed=seed)
        for gamma in gammas
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    network = net.build()
    rows = []
    for i, gamma in enumerate(gammas):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        lam = RandomizedParams.for_network(network, gamma=gamma).lam
        et = sum(r.throughput for r in batch) / len(batch)
        eb = sum(r.bound for r in batch) / len(batch)
        rows.append([gamma, lam, et, eb / max(1e-9, et)])
    return rows


def run_classify_ablation():
    net = NetworkSpec("line", (64,), 1, 1)
    trials = list(seeds(8, 3))
    modes = (None, "far", "near")
    scenarios = [
        Scenario(net, WorkloadSpec("uniform", {"num": 200, "horizon": 64}),
                 AlgorithmSpec("rand", {"lam": 0.5} if mode is None
                               else {"lam": 0.5, "force_class": mode}),
                 horizon=256, seed=seed)
        for mode in modes
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, mode in enumerate(modes):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        tputs = [r.throughput for r in batch]
        rows.append([mode or "coin", sum(tputs) / len(tputs)])
    return rows


def test_tile_side(once):
    rows = once(run_tile_side_ablation)
    emit(
        "E16_tile_side",
        format_table(
            ["k", "paper?", "mean ratio"],
            rows,
            title="E16 -- deterministic ratio vs tile side k",
        ),
    )
    assert all(r[2] >= 1.0 for r in rows)


def test_gamma(once):
    rows = once(run_gamma_ablation)
    emit(
        "E16_gamma",
        format_table(
            ["gamma", "lambda", "E[throughput]", "E[ratio]"],
            rows,
            title="E16 -- randomized throughput vs sparsification constant "
            "(paper gamma = 200)",
        ),
    )
    # throughput decreases as gamma grows (lambda shrinks)
    tputs = [r[2] for r in rows]
    assert tputs[0] >= tputs[-1]


def test_classify_and_select(once):
    rows = once(run_classify_ablation)
    emit(
        "E16_classify",
        format_table(
            ["class", "E[throughput]"],
            rows,
            title="E16 -- classify-and-select: fair coin vs pinned class",
        ),
    )
    by = {r[0]: r[1] for r in rows}
    # the coin averages the two pinned classes (within seed noise)
    lo, hi = sorted([by["far"], by["near"]])
    assert lo * 0.5 - 3 <= by["coin"] <= hi * 1.5 + 3
