"""E6 -- Theorem 29: the randomized O(log n) algorithm on lines.

Expected competitive ratio (mean over seeds, both coin outcomes occurring)
for B = c = 1 and B = c = 2, compared with greedy and NTG on the same
instances, plus the deterministic algorithm's requirement gap (it needs
B >= 3, which the randomized algorithm does not).

The paper's constants (lambda = 1/(200 k)) reject almost everything at
laptop scale, so the headline table uses a practical sparsification
(gamma = 2); a separate table runs the paper-exact constants to show the
pipeline is identical and only the constant changes (see also E16).

Ported to the :mod:`repro.api` Scenario layer: each (n, seed, algorithm)
cell is one declarative ``Scenario``; instances are shared across the
three algorithms by the seeding contract, and ``run_batch`` fans the
whole sweep out -- or, under ``REPRO_SHARDS=N``, the multi-host shard
dispatcher does (see ``conftest.dispatch_batch``; partition equivalence
keeps every table bit-identical).
"""

from __future__ import annotations

from conftest import SMOKE, dispatch_batch, emit, seeds, trim

import pytest

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec

SIZES = trim((32, 64, 128))
SEEDS = len(seeds(6, 3))


def _scenarios(n, B, c, algorithms, seeds, requests_per_n=3):
    net = NetworkSpec("line", (n,), buffer_size=B, capacity=c)
    workload = WorkloadSpec("uniform", {"num": requests_per_n * n, "horizon": n})
    return [
        Scenario(net, workload, algo, horizon=4 * n, seed=seed)
        for seed in range(seeds)
        for algo in algorithms
    ]


def run_sweep(B, c, lam=None, gamma=2.0):
    algorithms = (
        AlgorithmSpec("rand", {"lam": lam, "gamma": gamma}),
        AlgorithmSpec("greedy"),
        AlgorithmSpec("ntg"),
    )
    rows = []
    for n in SIZES:
        # run_batch keeps each seed's (rand, greedy, ntg) triple in one
        # worker, so the offline bound is computed once per instance
        reports = dispatch_batch(_scenarios(n, B, c, algorithms, SEEDS),
                                 workers=2, name=f"E6_b{B}c{c}_n{n}")
        per_algo = {a.name: [] for a in algorithms}
        for report in reports:
            per_algo[report.scenario.algorithm.name].append(report)
        bound = sum(r.bound for r in per_algo["rand"]) / SEEDS
        mean_tput = lambda name: sum(r.throughput for r in per_algo[name]) / SEEDS
        rows.append([
            n,
            bound / max(1e-9, mean_tput("rand")),
            bound / max(1e-9, mean_tput("greedy")),
            bound / max(1e-9, mean_tput("ntg")),
        ])
    return rows


def test_randomized_b1c1(once):
    rows = once(run_sweep, 1, 1)
    emit(
        "E6_rand_b1c1",
        format_table(
            ["n", "rand E[ratio]", "greedy ratio", "ntg ratio"],
            rows,
            title="E6/Theorem 29 -- randomized line algorithm, B = c = 1 "
            "(gamma = 2; paper: O(log n) expected; at these n the measured "
            "growth is dominated by the 1/lambda and quadrant constants)",
        ),
    )
    assert all(r[1] >= 1.0 for r in rows)
    # the algorithm keeps delivering across the sweep (never degenerates)
    assert rows[-1][1] < 100


@pytest.mark.skipif(SMOKE, reason="the growth trend needs the full seed count")
def test_randomized_fixed_lambda_shape(once):
    """With the sparsification probability held fixed, the asymptotic
    log-shape is visible at laptop scale: the per-doubling growth factor of
    the expected ratio *decreases* with n."""

    def fixed_lambda_sweep():
        algo = AlgorithmSpec("rand", {"lam": 0.5})
        rows = []
        for n in (32, 64, 128):
            reports = dispatch_batch(_scenarios(n, 1, 1, (algo,), 8),
                                     workers=2, name=f"E6_fixed_lambda_n{n}")
            exp_tput = sum(r.throughput for r in reports) / len(reports)
            bound = sum(r.bound for r in reports) / len(reports)
            rows.append([n, bound / max(1e-9, exp_tput)])
        return rows

    rows = once(fixed_lambda_sweep)
    emit(
        "E6_rand_fixed_lambda",
        format_table(
            ["n", "E[ratio] (lambda = 0.5)"],
            rows,
            title="E6/Theorem 29 -- fixed-lambda sweep: per-doubling growth "
            "flattens (the O(log n) shape)",
        ),
    )
    g1 = rows[1][1] / rows[0][1]
    g2 = rows[2][1] / rows[1][1]
    assert g2 < g1 + 0.35  # flattening (tolerance for seed noise)


def test_randomized_b2c2(once):
    rows = once(run_sweep, 2, 2)
    emit(
        "E6_rand_b2c2",
        format_table(
            ["n", "rand E[ratio]", "greedy ratio", "ntg ratio"],
            rows,
            title="E6/Theorem 29 -- randomized line algorithm, B = c = 2",
        ),
    )
    assert all(r[1] >= 1.0 for r in rows)


def test_randomized_paper_constants(once):
    def paper_run():
        from repro.core.randomized import RandomizedParams
        from repro.network.topology import LineNetwork

        n = 64
        # gamma = 200 is the AlgorithmSpec default (no params needed)
        reports = dispatch_batch(
            _scenarios(n, 1, 1, (AlgorithmSpec("rand"),), len(seeds(10, 4)),
                       requests_per_n=6),
            workers=2, name="E6_paper_constants",
        )
        lam = RandomizedParams.for_network(
            LineNetwork(n, buffer_size=1, capacity=1)).lam
        exp_tput = sum(r.throughput for r in reports) / len(reports)
        bound = sum(r.bound for r in reports) / len(reports)
        return [[n, lam, exp_tput, bound]]

    rows = once(paper_run)
    emit(
        "E6_rand_paper_constants",
        format_table(
            ["n", "lambda", "E[throughput]", "bound"],
            rows,
            title="E6 -- paper-exact lambda = 1/(200 k): the Chernoff constant "
            "rejects nearly everything at this scale (documented gap)",
        ),
    )
    # the paper constant is tiny: expected throughput is near zero here,
    # which is the point of recording it
    assert rows[0][1] < 0.01
