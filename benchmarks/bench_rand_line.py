"""E6 -- Theorem 29: the randomized O(log n) algorithm on lines.

Expected competitive ratio (mean over seeds, both coin outcomes occurring)
for B = c = 1 and B = c = 2, compared with greedy and NTG on the same
instances, plus the deterministic algorithm's requirement gap (it needs
B >= 3, which the randomized algorithm does not).

The paper's constants (lambda = 1/(200 k)) reject almost everything at
laptop scale, so the headline table uses a practical sparsification
(gamma = 2); a separate table runs the paper-exact constants to show the
pipeline is identical and only the constant changes (see also E16).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.nearest_to_go import run_nearest_to_go
from repro.baselines.offline import offline_bound
from repro.core.randomized import RandomizedLineRouter
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests

SIZES = (32, 64, 128)
SEEDS = 6


def run_sweep(B, c, lam=None, gamma=2.0):
    rows = []
    for n in SIZES:
        net = LineNetwork(n, buffer_size=B, capacity=c)
        horizon = 4 * n
        tputs, bounds, g_t, ntg_t = [], [], [], []
        for i, rng in enumerate(spawn_generators(23, SEEDS)):
            reqs = uniform_requests(net, 3 * n, n, rng=rng)
            router = RandomizedLineRouter(net, horizon, rng=rng, lam=lam, gamma=gamma)
            plan = router.route(reqs)
            tputs.append(plan.throughput)
            bounds.append(offline_bound(net, reqs, horizon))
            g_t.append(run_greedy(net, reqs, horizon).throughput)
            ntg_t.append(run_nearest_to_go(net, reqs, horizon).throughput)
        exp_tput = sum(tputs) / len(tputs)
        bound = sum(bounds) / len(bounds)
        rows.append([
            n,
            bound / max(1e-9, exp_tput),
            bound / max(1e-9, sum(g_t) / len(g_t)),
            bound / max(1e-9, sum(ntg_t) / len(ntg_t)),
        ])
    return rows


def test_randomized_b1c1(once):
    rows = once(run_sweep, 1, 1)
    emit(
        "E6_rand_b1c1",
        format_table(
            ["n", "rand E[ratio]", "greedy ratio", "ntg ratio"],
            rows,
            title="E6/Theorem 29 -- randomized line algorithm, B = c = 1 "
            "(gamma = 2; paper: O(log n) expected; at these n the measured "
            "growth is dominated by the 1/lambda and quadrant constants)",
        ),
    )
    assert all(r[1] >= 1.0 for r in rows)
    # the algorithm keeps delivering across the sweep (never degenerates)
    assert rows[-1][1] < 100


def test_randomized_fixed_lambda_shape(once):
    """With the sparsification probability held fixed, the asymptotic
    log-shape is visible at laptop scale: the per-doubling growth factor of
    the expected ratio *decreases* with n."""

    def fixed_lambda_sweep():
        rows = []
        for n in (32, 64, 128):
            net = LineNetwork(n, buffer_size=1, capacity=1)
            horizon = 4 * n
            tputs, bounds = [], []
            for rng in spawn_generators(23, 8):
                reqs = uniform_requests(net, 3 * n, n, rng=rng)
                router = RandomizedLineRouter(net, horizon, rng=rng, lam=0.5)
                plan = router.route(reqs)
                tputs.append(plan.throughput)
                bounds.append(offline_bound(net, reqs, horizon))
            et = sum(tputs) / len(tputs)
            rows.append([n, sum(bounds) / len(bounds) / max(1e-9, et)])
        return rows

    rows = once(fixed_lambda_sweep)
    emit(
        "E6_rand_fixed_lambda",
        format_table(
            ["n", "E[ratio] (lambda = 0.5)"],
            rows,
            title="E6/Theorem 29 -- fixed-lambda sweep: per-doubling growth "
            "flattens (the O(log n) shape)",
        ),
    )
    g1 = rows[1][1] / rows[0][1]
    g2 = rows[2][1] / rows[1][1]
    assert g2 < g1 + 0.35  # flattening (tolerance for seed noise)


def test_randomized_b2c2(once):
    rows = once(run_sweep, 2, 2)
    emit(
        "E6_rand_b2c2",
        format_table(
            ["n", "rand E[ratio]", "greedy ratio", "ntg ratio"],
            rows,
            title="E6/Theorem 29 -- randomized line algorithm, B = c = 2",
        ),
    )
    assert all(r[1] >= 1.0 for r in rows)


def test_randomized_paper_constants(once):
    def paper_run():
        n = 64
        net = LineNetwork(n, buffer_size=1, capacity=1)
        horizon = 4 * n
        tputs, bounds = [], []
        for rng in spawn_generators(31, 10):
            reqs = uniform_requests(net, 6 * n, n, rng=rng)
            router = RandomizedLineRouter(net, horizon, rng=rng)  # gamma = 200
            plan = router.route(reqs)
            tputs.append(plan.throughput)
            bounds.append(offline_bound(net, reqs, horizon))
        return [[n, router.params.lam, sum(tputs) / len(tputs),
                 sum(bounds) / len(bounds)]]

    rows = once(paper_run)
    emit(
        "E6_rand_paper_constants",
        format_table(
            ["n", "lambda", "E[throughput]", "bound"],
            rows,
            title="E6 -- paper-exact lambda = 1/(200 k): the Chernoff constant "
            "rejects nearly everything at this scale (documented gap)",
        ),
    )
    # the paper constant is tiny: expected throughput is near zero here,
    # which is the point of recording it
    assert rows[0][1] < 0.01
