"""E15 -- Monte-Carlo verification of the internal counting lemmas.

* **Proposition 17**: with uniform random phase shifts, a request lands in
  ``R+`` (source in the SW quadrant) with probability exactly 1/4, so
  ``E[opt(R+)] = opt/4``.
* **Lemma 21**: after random sparsification, the probability that any
  sketch edge exceeds 1/4 load is small -- measured as the fraction of
  requests rejected by the 1/4-load cap.
* **Propositions 8-9** (deterministic): the fraction of IPP-accepted
  requests surviving special segments is at least 1/(2k), and of those at
  least 1/(2k) survive the last tile.

Ported to the :mod:`repro.api` Scenario layer: the Lemma 21 and
Props 8-9 measurements run the registered ``rand``/``det`` algorithms
through ``run_batch`` and read the routers' pipeline counters from
``RunReport.meta``; Proposition 17 is a pure tiling-geometry audit over
a declaratively generated instance (no simulation involved).
"""

from __future__ import annotations

from conftest import emit, seeds

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.core.randomized import RandomizedParams
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.tiling import Quadrant, Tiling
from repro.util.rng import as_generator


def run_prop17():
    """Fraction of requests in R+ over random phases (expect ~ 1/4)."""
    spec = Scenario(NetworkSpec("line", (64,), 1, 1),
                    WorkloadSpec("uniform", {"num": 400, "horizon": 64}),
                    "ntg", horizon=256, seed=3)
    net, reqs = spec.build_instance()
    graph = SpaceTimeGraph(net, 256)
    params = RandomizedParams.for_network(net, lam=1.0)
    rng = as_generator(3)
    trials = 200
    hits = 0
    for _ in range(trials):
        phases = (
            int(rng.integers(0, params.Q)),
            int(rng.integers(0, params.tau)),
        )
        tiling = Tiling((params.Q, params.tau), phases)
        for r in reqs:
            v = graph.source_vertex(r)
            hits += tiling.quadrant_of(v) == Quadrant.SW
    frac = hits / (trials * len(reqs))
    return [["Prop 17: P[source in SW]", 0.25, round(frac, 4)]]


def run_lemma21():
    """Fraction of coin-surviving requests killed by the 1/4-load cap."""
    scenarios = [
        Scenario(NetworkSpec("line", (64,), 1, 1),
                 WorkloadSpec("uniform", {"num": 300, "horizon": 64}),
                 AlgorithmSpec("rand", {"lam": 0.5, "force_class": "far"}),
                 horizon=256, seed=seed)  # lam far above paper: heavy on purpose
        for seed in seeds(5, 3)
    ]
    total_pass = total_load_rejected = 0
    for report in run_batch(scenarios, workers=2):
        counters = report.meta["far_plus"]
        total_load_rejected += counters["load_rejected"]
        total_pass += counters["ipp_accepted"] - counters["coin_rejected"]
    frac = total_load_rejected / max(1, total_pass)
    # the paper proves < 1/4 in expectation for lambda = 1/(200 k); at the
    # much heavier lambda = 0.5 we only require it stays a minority
    return [["Lemma 21: P[load-cap rejection]", "< 0.5", round(frac, 4)]]


def run_props89():
    """Deterministic survival fractions vs the 1/(2k) floors."""
    scenarios = [
        Scenario(NetworkSpec("line", (32,), 3, 3),
                 WorkloadSpec("uniform", {"num": 150, "horizon": 32}),
                 "det", horizon=128, seed=seed)
        for seed in seeds(5, 3)
    ]
    accepted = special_survived = delivered = 0
    k = None
    for report in run_batch(scenarios, workers=2):
        k = report.meta["k"]
        ctr = report.meta["detailed"]
        acc = report.meta["framework"]["accepted"]
        accepted += acc
        special_lost = (
            ctr["preempt_first_segment"]
            + ctr["preempt_last_segment"]
            + ctr["preempt_by_interval"]
            + ctr["horizon_miss"]
        )
        special_survived += acc - special_lost
        delivered += report.throughput
    rows = []
    rows.append([
        "Prop 8: special-segment survival",
        f">= 1/(2k) = {1 / (2 * k):.4f}",
        round(special_survived / max(1, accepted), 4),
    ])
    rows.append([
        "Prop 9: end-to-end survival",
        f">= 1/(4k^2) = {1 / (4 * k * k):.4f}",
        round(delivered / max(1, accepted), 4),
    ])
    return rows


def test_prop17(once):
    rows = once(run_prop17)
    emit("E15_prop17", format_table(["quantity", "predicted", "measured"], rows,
                                    title="E15 -- Proposition 17"))
    assert abs(rows[0][2] - 0.25) < 0.02


def test_lemma21(once):
    rows = once(run_lemma21)
    emit("E15_lemma21", format_table(["quantity", "predicted", "measured"], rows,
                                     title="E15 -- Lemma 21 (load cap)"))
    assert rows[0][2] < 0.5


def test_props_8_9(once):
    rows = once(run_props89)
    emit("E15_props89", format_table(["quantity", "floor", "measured"], rows,
                                     title="E15 -- Propositions 8-9 survival"))
    # measured survival must clear the theoretical floors
    floor8 = float(rows[0][1].rsplit("= ", 1)[1])
    floor9 = float(rows[1][1].rsplit("= ", 1)[1])
    assert rows[0][2] >= floor8
    assert rows[1][2] >= floor9
