"""E15 -- Monte-Carlo verification of the internal counting lemmas.

* **Proposition 17**: with uniform random phase shifts, a request lands in
  ``R+`` (source in the SW quadrant) with probability exactly 1/4, so
  ``E[opt(R+)] = opt/4``.
* **Lemma 21**: after random sparsification, the probability that any
  sketch edge exceeds 1/4 load is small -- measured as the fraction of
  requests rejected by the 1/4-load cap.
* **Propositions 8-9** (deterministic): the fraction of IPP-accepted
  requests surviving special segments is at least 1/(2k), and of those at
  least 1/(2k) survive the last tile.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.deterministic import DeterministicRouter
from repro.core.randomized import FarPlusRouter, RandomizedParams
from repro.network.topology import LineNetwork
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.tiling import Quadrant, Tiling
from repro.util.rng import as_generator, spawn_generators
from repro.workloads.uniform import uniform_requests


def run_prop17():
    """Fraction of requests in R+ over random phases (expect ~ 1/4)."""
    net = LineNetwork(64, buffer_size=1, capacity=1)
    graph = SpaceTimeGraph(net, 256)
    params = RandomizedParams.for_network(net, lam=1.0)
    rng = as_generator(3)
    reqs = uniform_requests(net, 400, 64, rng=rng)
    trials = 200
    hits = 0
    for _ in range(trials):
        phases = (
            int(rng.integers(0, params.Q)),
            int(rng.integers(0, params.tau)),
        )
        tiling = Tiling((params.Q, params.tau), phases)
        for r in reqs:
            v = graph.source_vertex(r)
            hits += tiling.quadrant_of(v) == Quadrant.SW
    frac = hits / (trials * len(reqs))
    return [["Prop 17: P[source in SW]", 0.25, round(frac, 4)]]


def run_lemma21():
    """Fraction of coin-surviving requests killed by the 1/4-load cap."""
    net = LineNetwork(64, buffer_size=1, capacity=1)
    params = RandomizedParams.for_network(net, lam=0.5)  # heavy on purpose
    total_pass = total_load_rejected = 0
    for rng in spawn_generators(9, 5):
        router = FarPlusRouter(net, 256, params, phases=(0, 0), rng=rng)
        reqs = uniform_requests(net, 300, 64, rng=rng)
        router.route(reqs)
        total_load_rejected += router.counters["load_rejected"]
        total_pass += (
            router.ipp.stats.accepted - router.counters["coin_rejected"]
        )
    frac = total_load_rejected / max(1, total_pass)
    # the paper proves < 1/4 in expectation for lambda = 1/(200 k); at the
    # much heavier lambda = 0.5 we only require it stays a minority
    return [["Lemma 21: P[load-cap rejection]", "< 0.5", round(frac, 4)]]


def run_props89():
    """Deterministic survival fractions vs the 1/(2k) floors."""
    net = LineNetwork(32, buffer_size=3, capacity=3)
    rows = []
    accepted = special_survived = delivered = 0
    k = None
    for rng in spawn_generators(17, 5):
        router = DeterministicRouter(net, 128)
        k = router.k
        reqs = uniform_requests(net, 150, 32, rng=rng)
        plan = router.route(reqs)
        ctr = plan.meta["detailed"]
        acc = plan.meta["framework"]["accepted"]
        accepted += acc
        special_lost = (
            ctr["preempt_first_segment"]
            + ctr["preempt_last_segment"]
            + ctr["preempt_by_interval"]
            + ctr["horizon_miss"]
        )
        special_survived += acc - special_lost
        delivered += plan.throughput
    rows.append([
        "Prop 8: special-segment survival",
        f">= 1/(2k) = {1 / (2 * k):.4f}",
        round(special_survived / max(1, accepted), 4),
    ])
    rows.append([
        "Prop 9: end-to-end survival",
        f">= 1/(4k^2) = {1 / (4 * k * k):.4f}",
        round(delivered / max(1, accepted), 4),
    ])
    return rows


def test_prop17(once):
    rows = once(run_prop17)
    emit("E15_prop17", format_table(["quantity", "predicted", "measured"], rows,
                                    title="E15 -- Proposition 17"))
    assert abs(rows[0][2] - 0.25) < 0.02


def test_lemma21(once):
    rows = once(run_lemma21)
    emit("E15_lemma21", format_table(["quantity", "predicted", "measured"], rows,
                                     title="E15 -- Lemma 21 (load cap)"))
    assert rows[0][2] < 0.5


def test_props_8_9(once):
    rows = once(run_props89)
    emit("E15_props89", format_table(["quantity", "floor", "measured"], rows,
                                     title="E15 -- Propositions 8-9 survival"))
    # measured survival must clear the theoretical floors
    floor8 = float(rows[0][1].rsplit("= ", 1)[1])
    floor9 = float(rows[1][1].rsplit("= ", 1)[1])
    assert rows[0][2] >= floor8
    assert rows[1][2] >= floor9
