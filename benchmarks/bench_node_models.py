"""E14 -- Figure 12 / Appendix F: the two node-functionality models.

Model 1 ([ARSU02, RR09], the paper's model) lets a packet cut through a
node while another is buffered; Model 2 ([AZ05, AKK09]) funnels everything
through the buffer.  The bench reproduces the B = c = 1 separation
instance (Model 1 delivers both packets, Model 2 can only deliver one) and
sweeps NTG throughput under both models on shared workloads.

Ported to the :mod:`repro.api` Scenario layer: Model 2 is the registered
``ntg-model2`` algorithm, the separation instance is the registered
``separation`` workload, and both experiments run through ``run_batch``
-- by the seeding contract the two models see identical request
sequences at every (n, seed) point.
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

SIZES = trim((16, 32, 64))
TRIALS = 4
MODELS = ("ntg", "ntg-model2")


def run_separation():
    scenarios = [
        Scenario(NetworkSpec("line", (3,), 1, 1), WorkloadSpec("separation"),
                 algo, horizon=10)
        for algo in MODELS
    ]
    m1, m2 = run_batch(scenarios)
    return [["separation (B=c=1)", m1.throughput, m2.throughput]]


def run_model_sweep():
    trials = list(seeds(TRIALS))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 1, 1),
                 WorkloadSpec("uniform", {"num": 2 * n, "horizon": n}),
                 algo, horizon=4 * n, seed=seed)
        for n in SIZES
        for seed in trials
        for algo in MODELS
    ]
    reports = dict(zip(
        ((s.network.dims[0], s.seed, s.algorithm.name) for s in scenarios),
        run_batch(scenarios, workers=2),
    ))
    rows = []
    for n in SIZES:
        t1 = sum(reports[(n, s, "ntg")].throughput for s in trials)
        t2 = sum(reports[(n, s, "ntg-model2")].throughput for s in trials)
        rows.append([n, t1 / len(trials), t2 / len(trials)])
    return rows


def test_model_separation(once):
    rows = once(run_separation)
    emit(
        "E14_separation",
        format_table(
            ["instance", "Model 1", "Model 2"],
            rows,
            title="E14/Appendix F -- the remark-1 separation instance "
            "(Model 1 keeps both packets; Model 2 must drop one)",
        ),
    )
    assert rows[0][1] == 2 and rows[0][2] == 1


def test_model_throughput_sweep(once):
    rows = once(run_model_sweep)
    emit(
        "E14_model_sweep",
        format_table(
            ["n", "Model 1 NTG", "Model 2 NTG"],
            rows,
            title="E14/Appendix F -- NTG throughput under the two node "
            "models (Model 1 dominates)",
        ),
    )
    for row in rows:
        assert row[1] >= row[2]  # Model 1 is strictly stronger
