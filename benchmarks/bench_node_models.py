"""E14 -- Figure 12 / Appendix F: the two node-functionality models.

Model 1 ([ARSU02, RR09], the paper's model) lets a packet cut through a
node while another is buffered; Model 2 ([AZ05, AKK09]) funnels everything
through the buffer.  The bench reproduces the B = c = 1 separation
instance (Model 1 delivers both packets, Model 2 can only deliver one) and
sweeps NTG throughput under both models on shared workloads.

Ported to the :mod:`repro.api` Scenario layer: Model 2 is the registered
``ntg-model2`` algorithm, the separation instance is the registered
``separation`` workload, and both experiments run through ``run_batch``
-- by the seeding contract the two models see identical request
sequences at every (n, seed) point.

Since PR 4 the whole experiment runs on *both* engines: ``ntg-model2``
rides the vectorized two-phase :class:`FastModel2Engine` under
``engine="fast"``, and every E14 point asserts reference/fast
bit-identity before reporting.  ``test_model2_engine_speedup`` pins the
payoff (fast >= 3x on the E14 sweep scale); like every wall-clock table
it runs with ``cache="off"`` and emits an ``ENGINE_*`` output, which is
exempt from CI's byte-identity check.
"""

from __future__ import annotations

from conftest import SMOKE, emit, seeds, trim

import pytest

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

SIZES = trim((16, 32, 64))
TRIALS = 4
MODELS = ("ntg", "ntg-model2")
ENGINES = ("reference", "fast")

#: measured fields that must be bit-identical across engines
_MEASURES = ("throughput", "late", "rejected", "preempted", "steps",
             "latency_mean", "latency_max")


def _same(a, b) -> bool:
    return a == b or (a != a and b != b)  # nan-safe


def _assert_engine_parity(ref, fast, context: str) -> None:
    for field in _MEASURES:
        assert _same(getattr(ref, field), getattr(fast, field)), (
            f"{context}: {field} diverged across engines")


def run_separation():
    scenarios = [
        Scenario(NetworkSpec("line", (3,), 1, 1), WorkloadSpec("separation"),
                 algo, horizon=10, engine=engine)
        for algo in MODELS
        for engine in ENGINES
    ]
    m1_ref, m1_fast, m2_ref, m2_fast = run_batch(scenarios)
    _assert_engine_parity(m1_ref, m1_fast, "separation model 1")
    _assert_engine_parity(m2_ref, m2_fast, "separation model 2")
    return [["separation (B=c=1)", m1_ref.throughput, m2_ref.throughput]]


def run_model_sweep():
    trials = list(seeds(TRIALS))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 1, 1),
                 WorkloadSpec("uniform", {"num": 2 * n, "horizon": n}),
                 algo, horizon=4 * n, seed=seed, engine=engine)
        for n in SIZES
        for seed in trials
        for algo in MODELS
        for engine in ENGINES
    ]
    reports = dict(zip(
        ((s.network.dims[0], s.seed, s.algorithm.name, s.engine)
         for s in scenarios),
        run_batch(scenarios, workers=2),
    ))
    rows = []
    for n in SIZES:
        for seed in trials:
            for algo in MODELS:
                _assert_engine_parity(
                    reports[(n, seed, algo, "reference")],
                    reports[(n, seed, algo, "fast")],
                    f"E14 sweep n={n} seed={seed} {algo}",
                )
        t1 = sum(reports[(n, s, "ntg", "reference")].throughput
                 for s in trials)
        t2 = sum(reports[(n, s, "ntg-model2", "reference")].throughput
                 for s in trials)
        rows.append([n, t1 / len(trials), t2 / len(trials)])
    return rows


def test_model_separation(once):
    rows = once(run_separation)
    emit(
        "E14_separation",
        format_table(
            ["instance", "Model 1", "Model 2"],
            rows,
            title="E14/Appendix F -- the remark-1 separation instance "
            "(Model 1 keeps both packets; Model 2 must drop one)",
        ),
    )
    assert rows[0][1] == 2 and rows[0][2] == 1


def test_model_throughput_sweep(once):
    rows = once(run_model_sweep)
    emit(
        "E14_model_sweep",
        format_table(
            ["n", "Model 1 NTG", "Model 2 NTG"],
            rows,
            title="E14/Appendix F -- NTG throughput under the two node "
            "models (Model 1 dominates; both engines bit-identical)",
        ),
    )
    for row in rows:
        assert row[1] >= row[2]  # Model 1 is strictly stronger


@pytest.mark.skipif(SMOKE, reason="speedup floor needs the full-size sweep")
def test_model2_engine_speedup():
    """The PR-4 acceptance bar: the vectorized Model 2 engine is >= 3x
    faster than the per-packet reference loop on the E14 sweep scale."""
    n = 256
    net = NetworkSpec("line", (n,), 1, 1)
    workload = WorkloadSpec("uniform", {"num": 8 * n, "horizon": 2 * n})
    rows = []
    speedups = {}
    for algo in MODELS:
        ref, fast = run_batch(
            [Scenario(net, workload, algo, horizon=4 * n, seed=7,
                      engine=engine) for engine in ENGINES],
            cache="off", compute_bound=False)
        _assert_engine_parity(ref, fast, f"speedup instance {algo}")
        assert ref.engine == "reference" and fast.engine == "fast"
        speedups[algo] = ref.engine_time / max(1e-9, fast.engine_time)
        rows.append([algo, ref.throughput, f"{ref.engine_time:.3f}",
                     f"{fast.engine_time:.3f}", f"{speedups[algo]:.1f}x"])
    emit(
        "ENGINE_model2_speedup",
        format_table(
            ["algorithm", "throughput", "reference_s", "fast_s", "speedup"],
            rows,
            title=f"node-model engine speedup on {net} ({workload})",
        ),
    )
    assert speedups["ntg-model2"] >= 3.0, speedups
