"""E14 -- Figure 12 / Appendix F: the two node-functionality models.

Model 1 ([ARSU02, RR09], the paper's model) lets a packet cut through a
node while another is buffered; Model 2 ([AZ05, AKK09]) funnels everything
through the buffer.  The bench reproduces the B = c = 1 separation
instance (Model 1 delivers both packets, Model 2 can only deliver one) and
sweeps NTG throughput under both models on shared workloads.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.nearest_to_go import run_nearest_to_go
from repro.network.node_models import Model2LineSimulator, separation_instance
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def run_separation():
    net, reqs = separation_instance()
    m1 = run_nearest_to_go(net, reqs, 10).throughput
    m2 = Model2LineSimulator(net).run(reqs, 10).stats.delivered
    return [["separation (B=c=1)", m1, m2]]


def run_model_sweep():
    rows = []
    for n in (16, 32, 64):
        net = LineNetwork(n, buffer_size=1, capacity=1)
        horizon = 4 * n
        t1 = t2 = 0
        trials = 4
        for rng in spawn_generators(n, trials):
            reqs = uniform_requests(net, 2 * n, n, rng=rng)
            t1 += run_nearest_to_go(net, reqs, horizon).throughput
            t2 += Model2LineSimulator(net).run(reqs, horizon).stats.delivered
        rows.append([n, t1 / trials, t2 / trials])
    return rows


def test_model_separation(once):
    rows = once(run_separation)
    emit(
        "E14_separation",
        format_table(
            ["instance", "Model 1", "Model 2"],
            rows,
            title="E14/Appendix F -- the remark-1 separation instance "
            "(Model 1 keeps both packets; Model 2 must drop one)",
        ),
    )
    assert rows[0][1] == 2 and rows[0][2] == 1


def test_model_throughput_sweep(once):
    rows = once(run_model_sweep)
    emit(
        "E14_model_sweep",
        format_table(
            ["n", "Model 1 NTG", "Model 2 NTG"],
            rows,
            title="E14/Appendix F -- NTG throughput under the two node "
            "models (Model 1 dominates)",
        ),
    )
    for row in rows:
        assert row[1] >= row[2]  # Model 1 is strictly stronger
