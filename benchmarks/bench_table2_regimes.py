"""E7 -- Table 2: the three (B, c) regimes of the randomized algorithm.

One measured row per regime of the paper's Table 2:

* ``B, c in [1, log n]``      -- Sections 7.3-7.6 (classify-and-select);
* ``log n <= B/c <= poly(n)`` -- Section 7.7 (half-tile, horizontal I-routing);
* ``B <= log n <= c``         -- Section 7.8 (column slivers).

Each row reports the measured expected ratio over seeds with a practical
sparsification constant; the claim reproduced is that *all three regimes
work through the same pipeline* with logarithmic-type degradation.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.offline import offline_bound
from repro.core.randomized import (
    LargeBufferLineRouter,
    RandomizedLineRouter,
    SmallBufferLineRouter,
)
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests

N = 64
SEEDS = 6


def run_regimes():
    logn = math.ceil(math.log2(N))
    configs = [
        ("7.3-7.6: B,c in [1,log n]", 1, 1,
         lambda net, rng: RandomizedLineRouter(net, 4 * N, rng=rng, lam=0.5)),
        ("7.7: B/c >= log n", 8 * logn, 1,
         lambda net, rng: LargeBufferLineRouter(net, 8 * N, rng=rng, lam=0.5)),
        ("7.8: B <= log n <= c", 2, 2 * logn,
         lambda net, rng: SmallBufferLineRouter(net, 4 * N, rng=rng, lam=0.5)),
    ]
    rows = []
    for label, B, c, make in configs:
        net = LineNetwork(N, buffer_size=B, capacity=c)
        horizon = 8 * N if B > logn else 4 * N
        tputs, bounds = [], []
        for rng in spawn_generators(41, SEEDS):
            reqs = uniform_requests(net, 3 * N, N, rng=rng)
            plan = make(net, rng).route(reqs)
            tputs.append(plan.throughput)
            bounds.append(offline_bound(net, reqs, horizon))
        et = sum(tputs) / len(tputs)
        eb = sum(bounds) / len(bounds)
        rows.append([label, B, c, eb, eb / max(1e-9, et)])
    return rows


def test_table2_regimes(once):
    rows = once(run_regimes)
    emit(
        "E7_table2",
        format_table(
            ["regime", "B", "c", "bound", "E[ratio]"],
            rows,
            title=f"E7/Table 2 -- randomized-algorithm regimes at n = {N} "
            "(paper: O(log n) in every row)",
        ),
    )
    assert all(r[4] >= 1.0 for r in rows)
    # every regime delivers a nontrivial fraction of the bound
    assert all(r[4] < 60 for r in rows)
