"""E7 -- Table 2: the three (B, c) regimes of the randomized algorithm.

One measured row per regime of the paper's Table 2:

* ``B, c in [1, log n]``      -- Sections 7.3-7.6 (classify-and-select);
* ``log n <= B/c <= poly(n)`` -- Section 7.7 (half-tile, horizontal I-routing);
* ``B <= log n <= c``         -- Section 7.8 (column slivers).

Each row reports the measured expected ratio over seeds with a practical
sparsification constant; the claim reproduced is that *all three regimes
work through the same pipeline* with logarithmic-type degradation.

Ported to the :mod:`repro.api` Scenario layer: one declarative
``Scenario`` per (regime, seed), executed by ``run_batch`` -- or, under
``REPRO_SHARDS=N``, through the multi-host shard dispatcher (see
``conftest.dispatch_batch``; partition equivalence keeps the table
bit-identical).
"""

from __future__ import annotations

import math

from conftest import dispatch_batch, emit, seeds

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec

N = 64
SEEDS = 6
LOGN = math.ceil(math.log2(N))

#: (label, algorithm, B, c, horizon) -- one per Table 2 regime
REGIMES = (
    ("7.3-7.6: B,c in [1,log n]", "rand", 1, 1, 4 * N),
    ("7.7: B/c >= log n", "rand-large-buffers", 8 * LOGN, 1, 8 * N),
    ("7.8: B <= log n <= c", "rand-small-buffers", 2, 2 * LOGN, 4 * N),
)


def run_regimes():
    trials = list(seeds(SEEDS))
    scenarios = [
        Scenario(NetworkSpec("line", (N,), B, c),
                 WorkloadSpec("uniform", {"num": 3 * N, "horizon": N}),
                 AlgorithmSpec(algo, {"lam": 0.5}),
                 horizon=horizon, seed=seed)
        for _, algo, B, c, horizon in REGIMES
        for seed in trials
    ]
    reports = dispatch_batch(scenarios, workers=2, name="E7_table2")
    rows = []
    for i, (label, _, B, c, _) in enumerate(REGIMES):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        et = sum(r.throughput for r in batch) / len(batch)
        eb = sum(r.bound for r in batch) / len(batch)
        rows.append([label, B, c, eb, eb / max(1e-9, et)])
    return rows


def test_table2_regimes(once):
    rows = once(run_regimes)
    emit(
        "E7_table2",
        format_table(
            ["regime", "B", "c", "bound", "E[ratio]"],
            rows,
            title=f"E7/Table 2 -- randomized-algorithm regimes at n = {N} "
            "(paper: O(log n) in every row)",
        ),
    )
    assert all(r[4] >= 1.0 for r in rows)
    # every regime delivers a nontrivial fraction of the bound
    assert all(r[4] < 60 for r in rows)
