"""E10 -- Figures 1-3: structural validation of the space-time machinery.

The paper's first figures are constructions, not measurements; their
reproduction is a property audit over randomized instances: the untilting
automorphism round-trips and renders edges axis-parallel, tilings
partition the lattice, and sketch capacities match the Section 3.4
formulas (``c * tau`` vertical, ``B * Q`` horizontal).

Ported to the :mod:`repro.api` Scenario layer: networks are built from
``NetworkSpec`` and a final grounding row runs an online algorithm via
``run_batch`` on the same substrate, checking the structural bound chain
end to end (simulated throughput <= max-flow bound of the space-time
graph the audit validated).
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.spacetime.coords import tilt, untilt
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.rng import as_generator


def run_structure_audit():
    rng = as_generator(0)
    rows = []

    # Figure 3a/3b: untilting round-trip + axis-parallel edges
    total = 3000
    ok_roundtrip = ok_parallel = 0
    for _ in range(total):
        x = int(rng.integers(0, 64))
        t = int(rng.integers(0, 256))
        v = (x, t)
        ok_roundtrip += tilt(untilt(v)) == v
        e0_tail, e0_head = untilt((x, t)), untilt((x + 1, t + 1))
        e1_tail, e1_head = untilt((x, t)), untilt((x, t + 1))
        ok_parallel += (
            e0_head[0] == e0_tail[0] + 1 and e0_head[1] == e0_tail[1]
            and e1_head[0] == e1_tail[0] and e1_head[1] == e1_tail[1] + 1
        )
    rows.append(["untilt round-trip", total, ok_roundtrip])
    rows.append(["axis-parallel edges", total, ok_parallel])

    # Figure 3c/3d: tiling partitions the valid region exactly once
    net_spec = NetworkSpec("line", (32,), 2, 3)
    net = net_spec.build()
    graph = SpaceTimeGraph(net, 64)
    for phases in ((0, 0), (3, 5)):
        tiling = Tiling((8, 8), phases)
        tiles = set(tiling.all_tiles(graph))
        covered = 0
        for x in range(32):
            for t in range(65):
                v = (x, t - x)
                covered += tiling.tile_of(v) in tiles
        rows.append([f"tiling covers (phases={phases})", 32 * 65, covered])

    # Figure 3e / Section 3.4: sketch capacities
    sketch = PlainSketchGraph(graph, Tiling((8, 4)))
    vertical = sketch.boundary_capacity(0)
    horizontal = sketch.boundary_capacity(1)
    rows.append(["vertical capacity == c*tau", 3 * 4, int(vertical)])
    rows.append(["horizontal capacity == B*Q", 2 * 8, int(horizontal)])

    # grounding: the validated space-time graph also bounds execution --
    # an online run on the same substrate cannot beat its max-flow bound
    report, = run_batch([
        Scenario(net_spec, WorkloadSpec("uniform", {"num": 60, "horizon": 32}),
                 "ntg", horizon=64, seed=0)
    ])
    rows.append(["ntg throughput <= st-graph bound", 1,
                 int(report.throughput <= report.bound + 1e-9)])
    return rows


def test_structure_audit(once):
    rows = once(run_structure_audit)
    emit(
        "E10_structure",
        format_table(
            ["property", "expected", "observed"],
            rows,
            title="E10/Figures 1-3 -- space-time structure audit "
            "(observed must equal expected everywhere)",
        ),
    )
    for prop, expected, observed in rows:
        assert expected == observed, prop
