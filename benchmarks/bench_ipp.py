"""E8 -- Theorem 1 / Algorithm 3: online integral path packing.

Measures, over random packing instances on sketch graphs: (i) throughput
against half the optimal fractional packing (the theorem's guarantee), and
(ii) the maximum edge load against ``log2(1 + 3 p_max)`` times capacity.

Ported to the :mod:`repro.api` Scenario layer: the registered
``ipp-sketch`` audit algorithm runs Algorithm 3 over the tiled sketch
through ``run_batch`` (asserting the Theorem 1 primal-dual and load
invariants internally) and reports ``opt_f``/``max_load_ratio``/
``load_bound`` in ``RunReport.meta``.
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.network.topology import LineNetwork
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.workloads.uniform import uniform_requests

CONFIGS = trim(((16, 4), (32, 4), (32, 8)))


def run_ipp_instances():
    trials = list(seeds(2))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 1, 1),
                 WorkloadSpec("uniform", {"num": 3 * n, "horizon": n}),
                 AlgorithmSpec("ipp-sketch", {"tile": tile, "pmax": 4 * n}),
                 horizon=2 * n, seed=seed)
        for n, tile in CONFIGS
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for (scenario, report) in zip(scenarios, reports):
        n = scenario.network.dims[0]
        tile = dict(scenario.algorithm.params)["tile"]
        optf = report.meta["opt_f"]
        rows.append([
            n, tile, report.requests, report.throughput, optf,
            report.throughput / max(1e-9, optf / 2),
            report.meta["max_load_ratio"], report.meta["load_bound"],
        ])
    return rows


def test_theorem1_throughput_and_load(once):
    rows = once(run_ipp_instances)
    emit(
        "E8_ipp",
        format_table(
            ["n", "tile", "reqs", "accepted", "opt_f",
             "tput/(opt_f/2)", "max load", "load bound"],
            rows,
            title="E8/Theorem 1 -- IPP throughput >= opt_f/2 and edge load "
            "<= log2(1 + 3 p_max) * capacity",
        ),
    )
    for r in rows:
        assert r[5] >= 1.0 - 1e-9  # throughput at least half of fractional opt
        assert r[6] <= r[7] + 1e-9  # load bound holds


def test_ipp_is_fast(benchmark):
    """Micro-benchmark: routing cost per request on a mid-size sketch
    (pure packing-layer hot path; no network simulation involved)."""
    net = LineNetwork(64, buffer_size=1, capacity=1)
    graph = SpaceTimeGraph(net, 128)
    sketch = PlainSketchGraph(graph, Tiling((8, 8)))
    ipp = OnlinePathPacking(sketch, pmax=256)
    reqs = uniform_requests(net, 50, 64, rng=0)
    sinks = {}
    for r in reqs:
        sinks[r.rid] = sketch.register_sink(("d", r.dest), r.dest, 0, 128)

    def route_all():
        for r in reqs:
            ipp.route(sketch.source_node(r), sinks[r.rid])

    benchmark.pedantic(route_all, rounds=3, iterations=1)
