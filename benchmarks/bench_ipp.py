"""E8 -- Theorem 1 / Algorithm 3: online integral path packing.

Measures, over random packing instances on sketch graphs: (i) throughput
against half the optimal fractional packing (the theorem's guarantee), and
(ii) the maximum edge load against ``log2(1 + 3 p_max)`` times capacity.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.network.topology import LineNetwork
from repro.packing.ipp import OnlinePathPacking
from repro.packing.lp import fractional_opt
from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def run_ipp_instances():
    rows = []
    for n, tile in ((16, 4), (32, 4), (32, 8)):
        net = LineNetwork(n, buffer_size=1, capacity=1)
        horizon = 2 * n
        for rng in spawn_generators(n + tile, 2):
            graph = SpaceTimeGraph(net, horizon)
            sketch = PlainSketchGraph(graph, Tiling((tile, tile)))
            ipp = OnlinePathPacking(sketch, pmax=4 * n)
            reqs = uniform_requests(net, 3 * n, n, rng=rng)
            accepted = 0
            for r in reqs:
                sink = sketch.register_sink(("d", r.dest), r.dest, 0, horizon)
                if sink is None:
                    continue
                if ipp.route(sketch.source_node(r), sink) is not None:
                    accepted += 1
            ipp.check_theorem1_invariants()
            optf = fractional_opt(net, reqs, horizon)
            rows.append([
                n, tile, len(reqs), accepted, optf,
                accepted / max(1e-9, optf / 2),
                ipp.max_load_ratio(), ipp.load_bound(),
            ])
    return rows


def test_theorem1_throughput_and_load(once):
    rows = once(run_ipp_instances)
    emit(
        "E8_ipp",
        format_table(
            ["n", "tile", "reqs", "accepted", "opt_f",
             "tput/(opt_f/2)", "max load", "load bound"],
            rows,
            title="E8/Theorem 1 -- IPP throughput >= opt_f/2 and edge load "
            "<= log2(1 + 3 p_max) * capacity",
        ),
    )
    for r in rows:
        assert r[5] >= 1.0 - 1e-9  # throughput at least half of fractional opt
        assert r[6] <= r[7] + 1e-9  # load bound holds


def test_ipp_is_fast(benchmark):
    """Micro-benchmark: routing cost per request on a mid-size sketch."""
    net = LineNetwork(64, buffer_size=1, capacity=1)
    graph = SpaceTimeGraph(net, 128)
    sketch = PlainSketchGraph(graph, Tiling((8, 8)))
    ipp = OnlinePathPacking(sketch, pmax=256)
    reqs = uniform_requests(net, 50, 64, rng=0)
    sinks = {}
    for r in reqs:
        sinks[r.rid] = sketch.register_sink(("d", r.dest), r.dest, 0, 128)

    def route_all():
        for r in reqs:
            ipp.route(sketch.source_node(r), sinks[r.rid])

    benchmark.pedantic(route_all, rounds=3, iterations=1)
