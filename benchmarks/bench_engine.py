"""Performance micro-benchmarks for the substrate (profiling targets).

Per the hpc-parallel guides ("no optimization without measuring"), these
pin the throughput of the hot paths: the synchronous step engine, the
array-backed fast engine, the space-time load ledger, Dinic, and the
deterministic pipeline end to end.  They carry no paper claim -- they
exist so regressions in the substrate are visible.

Set ``REPRO_ENGINE=fast`` to run the whole bench suite (this file and the
experiment benches) on the array-backed engine; see
:mod:`repro.network.engine`.

Ported to the :mod:`repro.api` Scenario layer: engine comparisons run the
same declarative ``Scenario`` under ``engine="reference"`` vs
``engine="fast"`` through ``run_batch`` and read per-run ``engine_time``
from the reports.  All timing runs use ``cache="off"`` and
``compute_bound=False`` -- replaying a wall-clock measurement from the
result cache (or paying a max-flow bound) would make the speedup
meaningless, which is also why the ``ENGINE_*`` output files are exempt
from CI's byte-identity check.
"""

from __future__ import annotations

from conftest import SMOKE, emit

import pytest

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.network.engine import resolve_engine_name

#: measured fields that must be bit-identical across engines
_MEASURES = ("throughput", "late", "rejected", "preempted", "steps",
             "latency_mean", "latency_max")


@pytest.mark.skipif(SMOKE, reason="speedup floor needs the full-size grid")
def test_engine_speedup():
    """Reference vs fast engine on the largest grid workload of the suite.

    The acceptance bar for the array-backed engine: >= 5x wall-clock on a
    congested 48x48 grid with 20k requests, with identical measurements
    (full status-map equality is enforced by tests/test_fast_engine.py
    and tests/test_differential.py).
    """
    net = NetworkSpec("grid", (48, 48), 1, 1)
    horizon = 128 + 2 * (48 + 48)
    workload = WorkloadSpec("uniform", {"num": 20_000, "horizon": 128})
    rows = []
    speedups = {}
    for algo, label in (({"name": "greedy", "params": {"priority": "fifo"}},
                         "greedy/fifo"), ("ntg", "ntg")):
        ref, fast = run_batch(
            [Scenario(net, workload, algo, horizon=horizon, seed=7,
                      engine=engine) for engine in ("reference", "fast")],
            cache="off", compute_bound=False)
        for field in _MEASURES:
            assert getattr(fast, field) == getattr(ref, field), field
        speedups[label] = ref.engine_time / max(1e-9, fast.engine_time)
        rows.append([label, ref.throughput, f"{ref.engine_time:.3f}",
                     f"{fast.engine_time:.3f}", f"{speedups[label]:.1f}x"])
    emit(
        "ENGINE_speedup",
        format_table(
            ["policy", "throughput", "reference_s", "fast_s", "speedup"],
            rows,
            title=f"engine speedup on {net} ({workload})",
        ),
    )
    assert max(speedups.values()) >= 5.0, speedups


def test_engine_env_selection():
    """The suite-wide engine switch: run on whatever REPRO_ENGINE selects
    (CI smokes this file under both values)."""
    name = resolve_engine_name()
    report, = run_batch([
        Scenario(NetworkSpec("grid", (12, 12), 2, 2),
                 WorkloadSpec("uniform", {"num": 800, "horizon": 64}),
                 "greedy", horizon=256, seed=11)
    ], cache="off", compute_bound=False)
    assert report.engine == name
    emit(
        "ENGINE_selected",
        format_table(
            ["engine", "throughput", "steps"],
            [[report.engine, report.throughput, report.steps]],
            title="suite engine selection smoke",
        ),
    )
    assert report.throughput > 0


def test_simulator_step_rate(benchmark):
    scenario = Scenario(NetworkSpec("line", (64,), 2, 2),
                        WorkloadSpec("uniform", {"num": 300, "horizon": 128}),
                        "ntg", horizon=512, seed=0, engine="reference")

    def run():
        report, = run_batch([scenario], cache="off", compute_bound=False)
        return report.throughput

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_ledger_add_remove(benchmark):
    from repro.network.topology import LineNetwork
    from repro.spacetime.graph import STPath, SpaceTimeGraph

    net = LineNetwork(64, buffer_size=4, capacity=4)
    graph = SpaceTimeGraph(net, 256)
    paths = [
        STPath((i % 32, 2 * i % 64), (0, 1) * 8, rid=i) for i in range(64)
    ]

    def run():
        ledger = graph.ledger()
        for p in paths:
            ledger.add_path(p, strict=False)
        for p in paths:
            ledger.remove_path(p)
        return ledger.total_load()

    assert benchmark.pedantic(run, rounds=5, iterations=1) == 0


def test_dinic_spacetime(benchmark):
    from repro.network.topology import LineNetwork
    from repro.packing.maxflow import throughput_upper_bound
    from repro.workloads.uniform import uniform_requests

    net = LineNetwork(64, buffer_size=1, capacity=1)
    reqs = uniform_requests(net, 150, 64, rng=1)

    def run():
        return throughput_upper_bound(net, reqs, 256)

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_deterministic_pipeline(benchmark):
    scenario = Scenario(NetworkSpec("line", (32,), 3, 3),
                        WorkloadSpec("uniform", {"num": 100, "horizon": 32}),
                        "det", horizon=128, seed=2)

    def run():
        report, = run_batch([scenario], cache="off", compute_bound=False)
        return report.throughput

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
