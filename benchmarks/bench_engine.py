"""Performance micro-benchmarks for the substrate (profiling targets).

Per the hpc-parallel guides ("no optimization without measuring"), these
pin the throughput of the hot paths: the synchronous step engine, the
array-backed fast engine, the space-time load ledger, Dinic, and the
deterministic pipeline end to end.  They carry no paper claim -- they
exist so regressions in the substrate are visible.

Set ``REPRO_ENGINE=fast`` to run the whole bench suite (this file and the
experiment benches) on the array-backed engine; see
:mod:`repro.network.engine`.

Ported to the :mod:`repro.api` Scenario layer: engine comparisons run the
same declarative ``Scenario`` under ``engine="reference"`` vs
``engine="fast"`` through ``run_batch`` and read per-run ``engine_time``
from the reports.  All timing runs use ``cache="off"`` and
``compute_bound=False`` -- replaying a wall-clock measurement from the
result cache (or paying a max-flow bound) would make the speedup
meaningless, which is also why the ``ENGINE_*`` output files are exempt
from CI's byte-identity check.
"""

from __future__ import annotations

import json
import time

from conftest import OUTPUT_DIR, SMOKE, emit

import pytest

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.network import kernel
from repro.network.engine import resolve_engine_name

#: measured fields that must be bit-identical across engines
_MEASURES = ("throughput", "late", "rejected", "preempted", "steps",
             "latency_mean", "latency_max")


def _merge_bench_record(name: str, record: dict) -> None:
    """Read-modify-write one named record into ``BENCH_engine.json``.

    The trajectory file is a dict keyed by bench name so the sweep and
    kernel benches coexist regardless of test execution order.  A legacy
    single-record file (the pre-kernel flat layout, recognizable by its
    top-level ``"bench"`` key) is folded in under that key.
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_engine.json"
    records = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
        if isinstance(existing, dict):
            if "bench" in existing:  # legacy flat layout
                records[str(existing["bench"])] = existing
            else:
                records = existing
    records[name] = dict(record, bench=name)
    path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")


@pytest.mark.skipif(SMOKE, reason="speedup floor needs the full-size grid")
def test_engine_speedup():
    """Reference vs fast engine on the largest grid workload of the suite.

    The acceptance bar for the array-backed engine: >= 5x wall-clock on a
    congested 48x48 grid with 20k requests, with identical measurements
    (full status-map equality is enforced by tests/test_fast_engine.py
    and tests/test_differential.py).
    """
    net = NetworkSpec("grid", (48, 48), 1, 1)
    horizon = 128 + 2 * (48 + 48)
    workload = WorkloadSpec("uniform", {"num": 20_000, "horizon": 128})
    rows = []
    speedups = {}
    for algo, label in (({"name": "greedy", "params": {"priority": "fifo"}},
                         "greedy/fifo"), ("ntg", "ntg")):
        ref, fast = run_batch(
            [Scenario(net, workload, algo, horizon=horizon, seed=7,
                      engine=engine) for engine in ("reference", "fast")],
            cache="off", compute_bound=False)
        for field in _MEASURES:
            assert getattr(fast, field) == getattr(ref, field), field
        speedups[label] = ref.engine_time / max(1e-9, fast.engine_time)
        rows.append([label, ref.throughput, f"{ref.engine_time:.3f}",
                     f"{fast.engine_time:.3f}", f"{speedups[label]:.1f}x"])
    emit(
        "ENGINE_speedup",
        format_table(
            ["policy", "throughput", "reference_s", "fast_s", "speedup"],
            rows,
            title=f"engine speedup on {net} ({workload})",
        ),
    )
    assert max(speedups.values()) >= 5.0, speedups


def _sweep_shaped_batch(n: int, engine=None) -> list:
    """A sweep-shaped batch: many *small* grids with long horizons and
    sparse workloads -- the regime where per-scenario numpy call overhead
    dominates the fast engine and stacking pays.  Mixed shapes, seeds,
    priorities, and policy families, like a real parameter sweep."""
    scenarios = []
    algos = ({"name": "greedy", "params": {"priority": "fifo"}},
             {"name": "greedy", "params": {"priority": "lifo"}},
             {"name": "greedy", "params": {"priority": "longest"}},
             "ntg",
             {"name": "edd", "params": {}})
    for i in range(n):
        side = 4 + (i % 3)
        scenarios.append(Scenario(
            NetworkSpec("grid", (side, side), 2, 2),
            WorkloadSpec("uniform", {"num": 10 + (i % 4), "horizon": 48}),
            algos[i % len(algos)],
            horizon=96, seed=i // len(algos), engine=engine))
    return scenarios


def test_batch_engine_sweep_speedup():
    """The stacked batch engine vs the process pool on a 200-scenario
    small-grid sweep.  Like ``test_engine_speedup`` the floor is pinned
    on *engine execution* (per-run ``engine_time`` from the reports):
    the pooled path pays ~30 numpy calls per scenario per step, the
    stack pays one grouped pass per step for the whole sweep, so summed
    engine time must drop >= 10x.  End-to-end wall clock of the three
    ``run_batch`` calls is recorded alongside (it additionally carries
    the scenario layer -- workload generation, report assembly -- which
    is identical across modes and dilutes the wall ratio on small
    sweeps).  Measurements stay bit-identical across all three modes.
    The timing trajectory lands in BENCH_engine.json for CI to archive
    per run."""
    n = 30 if SMOKE else 200
    t0 = time.perf_counter()
    serial = run_batch(_sweep_shaped_batch(n, engine="fast"),
                       workers=1, cache="off", compute_bound=False)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_batch(_sweep_shaped_batch(n, engine="fast"),
                       workers=4, cache="off", compute_bound=False)
    pooled_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    stacked = run_batch(_sweep_shaped_batch(n, engine="batch"),
                        workers=1, cache="off", compute_bound=False)
    batch_s = time.perf_counter() - t0

    for one, many, fused in zip(serial, pooled, stacked):
        assert fused.engine == "batch"
        for field in _MEASURES:
            assert getattr(fused, field) == getattr(one, field) \
                == getattr(many, field), field

    serial_es = sum(r.engine_time for r in serial)
    pooled_es = sum(r.engine_time for r in pooled)
    batch_es = sum(r.engine_time for r in stacked)
    record = {
        "n_scenarios": n,
        "smoke": bool(SMOKE),
        "serial_wall_s": round(serial_s, 4),
        "pooled_wall_s": round(pooled_s, 4),
        "batch_wall_s": round(batch_s, 4),
        "serial_engine_s": round(serial_es, 4),
        "pooled_engine_s": round(pooled_es, 4),
        "batch_engine_s": round(batch_es, 4),
        # headline floor: summed engine execution, pooled vs stacked
        "speedup_batch_vs_pooled": round(pooled_es / max(1e-9, batch_es), 2),
        "speedup_batch_vs_serial": round(serial_es / max(1e-9, batch_es), 2),
        "wall_speedup_batch_vs_pooled": round(pooled_s / max(1e-9, batch_s), 2),
        "wall_speedup_batch_vs_serial": round(serial_s / max(1e-9, batch_s), 2),
    }
    _merge_bench_record("batch_engine_sweep", record)
    emit(
        "ENGINE_batch_sweep",
        format_table(
            ["mode", "wall_s", "engine_s", "engine_speedup_vs_pooled"],
            [["serial (workers=1, fast)", f"{serial_s:.3f}",
              f"{serial_es:.3f}", f"{pooled_es / max(1e-9, serial_es):.1f}x"],
             ["pooled (workers=4, fast)", f"{pooled_s:.3f}",
              f"{pooled_es:.3f}", "1.0x"],
             ["stacked (engine=batch)", f"{batch_s:.3f}",
              f"{batch_es:.3f}",
              f"{record['speedup_batch_vs_pooled']}x"]],
            title=f"sweep-shaped batch of {n} small grids",
        ),
    )
    if not SMOKE:
        assert record["speedup_batch_vs_pooled"] >= 10.0, record


def test_kernel_speedup():
    """Numpy vs numba step kernel on the congested-grid workload.

    Both backends run the *same* fast-engine program; only the admission
    kernel (:mod:`repro.network.kernel`) differs, so measurements must be
    bit-identical and ``meta["kernel"]`` must record the selected backend
    (no silent fallback).  With numba installed, the compiled kernel must
    cut fast-engine execution >= 2x on the full-size grid after an
    untimed warmup run that pays JIT compilation; without numba the test
    still records the numpy timing so the trajectory file carries a
    kernel row on every CI leg.
    """
    side, num, wl_h = (16, 2_000, 64) if SMOKE else (48, 20_000, 128)
    net = NetworkSpec("grid", (side, side), 1, 1)
    workload = WorkloadSpec("uniform", {"num": num, "horizon": wl_h})

    def run_under(name):
        with kernel.using(name):
            report, = run_batch(
                [Scenario(net, workload, "ntg",
                          horizon=wl_h + 2 * (side + side), seed=7,
                          engine="fast")],
                cache="off", compute_bound=False)
        assert report.meta["kernel"] == name, report.meta
        return report

    numpy_report = run_under("numpy")
    record = {
        "smoke": bool(SMOKE),
        "numba_available": kernel.numba_available(),
        "numpy_engine_s": round(numpy_report.engine_time, 4),
        "numba_engine_s": None,
        "speedup_numba_vs_numpy": None,
    }
    rows = [["numpy", f"{numpy_report.engine_time:.3f}", "1.0x"]]
    if kernel.numba_available():
        run_under("numba")  # warmup: pays JIT compilation, untimed
        numba_report = run_under("numba")
        for field in _MEASURES:
            assert getattr(numba_report, field) \
                == getattr(numpy_report, field), field
        speedup = numpy_report.engine_time \
            / max(1e-9, numba_report.engine_time)
        record["numba_engine_s"] = round(numba_report.engine_time, 4)
        record["speedup_numba_vs_numpy"] = round(speedup, 2)
        rows.append(["numba", f"{numba_report.engine_time:.3f}",
                     f"{speedup:.1f}x"])
    _merge_bench_record("kernel", record)
    emit(
        "ENGINE_kernel",
        format_table(
            ["kernel", "engine_s", "speedup"], rows,
            title=f"step kernel backends on {net} ({workload})",
        ),
    )
    if kernel.numba_available() and not SMOKE:
        assert record["speedup_numba_vs_numpy"] >= 2.0, record


def test_engine_env_selection():
    """The suite-wide engine switch: run on whatever REPRO_ENGINE selects
    (CI smokes this file under both values)."""
    name = resolve_engine_name()
    report, = run_batch([
        Scenario(NetworkSpec("grid", (12, 12), 2, 2),
                 WorkloadSpec("uniform", {"num": 800, "horizon": 64}),
                 "greedy", horizon=256, seed=11)
    ], cache="off", compute_bound=False)
    assert report.engine == name
    emit(
        "ENGINE_selected",
        format_table(
            ["engine", "throughput", "steps"],
            [[report.engine, report.throughput, report.steps]],
            title="suite engine selection smoke",
        ),
    )
    assert report.throughput > 0


def test_simulator_step_rate(benchmark):
    scenario = Scenario(NetworkSpec("line", (64,), 2, 2),
                        WorkloadSpec("uniform", {"num": 300, "horizon": 128}),
                        "ntg", horizon=512, seed=0, engine="reference")

    def run():
        report, = run_batch([scenario], cache="off", compute_bound=False)
        return report.throughput

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_ledger_add_remove(benchmark):
    from repro.network.topology import LineNetwork
    from repro.spacetime.graph import STPath, SpaceTimeGraph

    net = LineNetwork(64, buffer_size=4, capacity=4)
    graph = SpaceTimeGraph(net, 256)
    paths = [
        STPath((i % 32, 2 * i % 64), (0, 1) * 8, rid=i) for i in range(64)
    ]

    def run():
        ledger = graph.ledger()
        for p in paths:
            ledger.add_path(p, strict=False)
        for p in paths:
            ledger.remove_path(p)
        return ledger.total_load()

    assert benchmark.pedantic(run, rounds=5, iterations=1) == 0


def test_dinic_spacetime(benchmark):
    from repro.network.topology import LineNetwork
    from repro.packing.maxflow import throughput_upper_bound
    from repro.workloads.uniform import uniform_requests

    net = LineNetwork(64, buffer_size=1, capacity=1)
    reqs = uniform_requests(net, 150, 64, rng=1)

    def run():
        return throughput_upper_bound(net, reqs, 256)

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_deterministic_pipeline(benchmark):
    scenario = Scenario(NetworkSpec("line", (32,), 3, 3),
                        WorkloadSpec("uniform", {"num": 100, "horizon": 32}),
                        "det", horizon=128, seed=2)

    def run():
        report, = run_batch([scenario], cache="off", compute_bound=False)
        return report.throughput

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
