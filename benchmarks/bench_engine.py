"""Performance micro-benchmarks for the substrate (profiling targets).

Per the hpc-parallel guides ("no optimization without measuring"), these
pin the throughput of the hot paths: the synchronous step engine, the
space-time load ledger, Dinic, and the deterministic pipeline end to end.
They carry no paper claim -- they exist so regressions in the substrate
are visible.
"""

from __future__ import annotations

from repro.baselines.nearest_to_go import NearestToGoPolicy
from repro.core.deterministic import DeterministicRouter
from repro.network.simulator import Simulator
from repro.network.topology import LineNetwork
from repro.packing.maxflow import throughput_upper_bound
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.workloads.uniform import uniform_requests


def test_simulator_step_rate(benchmark):
    net = LineNetwork(64, buffer_size=2, capacity=2)
    reqs = uniform_requests(net, 300, 128, rng=0)

    def run():
        return Simulator(net, NearestToGoPolicy()).run(reqs, 512).throughput

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_ledger_add_remove(benchmark):
    net = LineNetwork(64, buffer_size=4, capacity=4)
    graph = SpaceTimeGraph(net, 256)
    paths = [
        STPath((i % 32, 2 * i % 64), (0, 1) * 8, rid=i) for i in range(64)
    ]

    def run():
        ledger = graph.ledger()
        for p in paths:
            ledger.add_path(p, strict=False)
        for p in paths:
            ledger.remove_path(p)
        return ledger.total_load()

    assert benchmark.pedantic(run, rounds=5, iterations=1) == 0


def test_dinic_spacetime(benchmark):
    net = LineNetwork(64, buffer_size=1, capacity=1)
    reqs = uniform_requests(net, 150, 64, rng=1)

    def run():
        return throughput_upper_bound(net, reqs, 256)

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_deterministic_pipeline(benchmark):
    net = LineNetwork(32, buffer_size=3, capacity=3)
    reqs = uniform_requests(net, 100, 32, rng=2)

    def run():
        return DeterministicRouter(net, 128).route(reqs).throughput

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
