"""Performance micro-benchmarks for the substrate (profiling targets).

Per the hpc-parallel guides ("no optimization without measuring"), these
pin the throughput of the hot paths: the synchronous step engine, the
array-backed fast engine, the space-time load ledger, Dinic, and the
deterministic pipeline end to end.  They carry no paper claim -- they
exist so regressions in the substrate are visible.

Set ``REPRO_ENGINE=fast`` to run the whole bench suite (this file and the
experiment benches) on the array-backed engine; see
:mod:`repro.network.engine`.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.nearest_to_go import NearestToGoPolicy, run_nearest_to_go
from repro.core.deterministic import DeterministicRouter
from repro.network.engine import resolve_engine_name
from repro.network.simulator import Simulator
from repro.network.topology import GridNetwork, LineNetwork
from repro.packing.maxflow import throughput_upper_bound
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.workloads.uniform import uniform_requests


def test_engine_speedup():
    """Reference vs fast engine on the largest grid workload of the suite.

    The acceptance bar for the array-backed engine: >= 5x wall-clock on a
    congested 48x48 grid with 20k requests, with identical status maps.
    """
    net = GridNetwork((48, 48), buffer_size=1, capacity=1)
    reqs = uniform_requests(net, 20_000, 128, rng=7)
    horizon = 128 + 2 * sum(net.dims)
    rows = []
    speedups = {}
    for runner, label in ((run_greedy, "greedy/fifo"), (run_nearest_to_go, "ntg")):
        t0 = time.perf_counter()
        ref = runner(net, reqs, horizon, engine="reference")
        t1 = time.perf_counter()
        fast = runner(net, reqs, horizon, engine="fast")
        t2 = time.perf_counter()
        assert fast.status == ref.status
        assert fast.stats.delivered == ref.stats.delivered
        speedups[label] = (t1 - t0) / max(1e-9, t2 - t1)
        rows.append([label, ref.throughput, f"{t1 - t0:.3f}",
                     f"{t2 - t1:.3f}", f"{speedups[label]:.1f}x"])
    emit(
        "ENGINE_speedup",
        format_table(
            ["policy", "throughput", "reference_s", "fast_s", "speedup"],
            rows,
            title=f"engine speedup on {net} ({len(reqs)} requests, "
                  f"horizon {horizon})",
        ),
    )
    assert max(speedups.values()) >= 5.0, speedups


def test_engine_env_selection():
    """The suite-wide engine switch: run on whatever REPRO_ENGINE selects
    (CI smokes this file under both values)."""
    name = resolve_engine_name()
    net = GridNetwork((12, 12), buffer_size=2, capacity=2)
    reqs = uniform_requests(net, 800, 64, rng=11)
    res = run_greedy(net, reqs, 256)  # engine resolved from the environment
    emit(
        "ENGINE_selected",
        format_table(
            ["engine", "throughput", "steps"],
            [[name, res.throughput, res.stats.steps]],
            title="suite engine selection smoke",
        ),
    )
    assert res.throughput > 0


def test_simulator_step_rate(benchmark):
    net = LineNetwork(64, buffer_size=2, capacity=2)
    reqs = uniform_requests(net, 300, 128, rng=0)

    def run():
        return Simulator(net, NearestToGoPolicy()).run(reqs, 512).throughput

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result > 0


def test_ledger_add_remove(benchmark):
    net = LineNetwork(64, buffer_size=4, capacity=4)
    graph = SpaceTimeGraph(net, 256)
    paths = [
        STPath((i % 32, 2 * i % 64), (0, 1) * 8, rid=i) for i in range(64)
    ]

    def run():
        ledger = graph.ledger()
        for p in paths:
            ledger.add_path(p, strict=False)
        for p in paths:
            ledger.remove_path(p)
        return ledger.total_load()

    assert benchmark.pedantic(run, rounds=5, iterations=1) == 0


def test_dinic_spacetime(benchmark):
    net = LineNetwork(64, buffer_size=1, capacity=1)
    reqs = uniform_requests(net, 150, 64, rng=1)

    def run():
        return throughput_upper_bound(net, reqs, 256)

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0


def test_deterministic_pipeline(benchmark):
    net = LineNetwork(32, buffer_size=3, capacity=3)
    reqs = uniform_requests(net, 100, 32, rng=2)

    def run():
        return DeterministicRouter(net, 128).route(reqs).throughput

    assert benchmark.pedantic(run, rounds=3, iterations=1) > 0
