"""E9 -- Lemma 2 / Lemma 19: bounding path lengths costs only a constant.

``opt_f(R | p_max) / opt_f(R)`` swept over p_max.  Lemma 2 predicts the
fraction reaches at least ``(1 - 1/e)/2 ~ 0.316`` once
``p_max >= (nu + 2) diam(G)``; empirically the curve rises from 0 (below
the distance floor) to 1 (unconstrained) with the paper's p_max far past
the knee.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.tables import format_table
from repro.network.topology import LineNetwork
from repro.packing.lp import fractional_opt
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests

LEMMA_FLOOR = 0.5 * (1 - 1 / math.e)


def run_pathlength_sweep():
    net = LineNetwork(12, buffer_size=1, capacity=1)
    horizon = 30
    rows = []
    sweeps = (4, 8, 12, 16, 24, 40)
    for rng in spawn_generators(2, 3):
        reqs = uniform_requests(net, 18, 12, rng=rng)
        free = fractional_opt(net, reqs, horizon)
        fracs = [
            fractional_opt(net, reqs, horizon, pmax=p) / max(1e-9, free)
            for p in sweeps
        ]
        rows.append([round(free, 2)] + [round(f, 4) for f in fracs])
    return sweeps, rows


def test_lemma2_pathlength(once):
    sweeps, rows = once(run_pathlength_sweep)
    emit(
        "E9_pathlength",
        format_table(
            ["opt_f"] + [f"pmax={p}" for p in sweeps],
            rows,
            title="E9/Lemma 2 -- opt_f(R | p_max) / opt_f(R): the knee sits "
            f"far below the paper's p_max; floor {LEMMA_FLOOR:.3f} at the "
            "paper's bound",
        ),
    )
    for row in rows:
        fracs = row[1:]
        # monotone in p_max
        assert all(a <= b + 1e-6 for a, b in zip(fracs, fracs[1:]))
        # unconstrained limit reached
        assert fracs[-1] >= 0.999
        # Lemma 2 floor already met at the largest swept p_max
        assert fracs[-1] >= LEMMA_FLOOR
