"""E9 -- Lemma 2 / Lemma 19: bounding path lengths costs only a constant.

``opt_f(R | p_max) / opt_f(R)`` swept over p_max.  Lemma 2 predicts the
fraction reaches at least ``(1 - 1/e)/2 ~ 0.316`` once
``p_max >= (nu + 2) diam(G)``; empirically the curve rises from 0 (below
the distance floor) to 1 (unconstrained) with the paper's p_max far past
the knee.

Ported to the :mod:`repro.api` Scenario layer: the instances are
declarative ``Scenario``s (one per seed), the LP sweep runs over their
materialized request sets, and an NTG run via ``run_batch`` grounds the
fractional curve against an actual online algorithm on the same
instances (``ntg/opt_f`` must stay <= 1: the LP relaxes the integral
online problem).
"""

from __future__ import annotations

import math

from conftest import emit, seeds

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch
from repro.packing.lp import fractional_opt

LEMMA_FLOOR = 0.5 * (1 - 1 / math.e)

N = 12
HORIZON = 30
SWEEPS = (4, 8, 12, 16, 24, 40)


def run_pathlength_sweep():
    scenarios = [
        Scenario(NetworkSpec("line", (N,), 1, 1),
                 WorkloadSpec("uniform", {"num": 18, "horizon": N}),
                 "ntg", horizon=HORIZON, seed=seed)
        for seed in seeds(3)
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for scenario, report in zip(scenarios, reports):
        net, reqs = scenario.build_instance()
        free = fractional_opt(net, reqs, HORIZON)
        fracs = [
            fractional_opt(net, reqs, HORIZON, pmax=p) / max(1e-9, free)
            for p in SWEEPS
        ]
        rows.append([round(free, 2)]
                    + [round(f, 4) for f in fracs]
                    + [round(report.throughput / max(1e-9, free), 4)])
    return SWEEPS, rows


def test_lemma2_pathlength(once):
    sweeps, rows = once(run_pathlength_sweep)
    emit(
        "E9_pathlength",
        format_table(
            ["opt_f"] + [f"pmax={p}" for p in sweeps] + ["ntg/opt_f"],
            rows,
            title="E9/Lemma 2 -- opt_f(R | p_max) / opt_f(R): the knee sits "
            f"far below the paper's p_max; floor {LEMMA_FLOOR:.3f} at the "
            "paper's bound",
        ),
    )
    for row in rows:
        fracs = row[1:-1]
        # monotone in p_max
        assert all(a <= b + 1e-6 for a, b in zip(fracs, fracs[1:]))
        # unconstrained limit reached
        assert fracs[-1] >= 0.999
        # Lemma 2 floor already met at the largest swept p_max
        assert fracs[-1] >= LEMMA_FLOOR
        # the online integral run cannot beat the fractional relaxation
        assert row[-1] <= 1.0 + 1e-6
