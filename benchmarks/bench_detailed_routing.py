"""E11 -- Figures 5-6 / Section 5.2: detailed-routing success accounting.

The paper proves internal segments never fail under the IPP load guarantee
(Section 5.2.3) and that special segments / last tiles succeed for 1/(2k)
fractions (Propositions 8-9).  The bench routes heavy request batches
through the deterministic pipeline and reports the preemption breakdown per
part; the claims checked: zero internal-segment failures, and per-part
survival at least the theory floors.

Ported to the :mod:`repro.api` Scenario layer: the pipeline runs via
``run_batch`` and the part-by-part counters come from
``RunReport.meta["detailed"]``; the knock-knee automaton audit below is a
pure tile-level property check (no network simulation involved).
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

CONFIGS = trim(((32, 4), (64, 4)))


def run_accounting():
    trials = list(seeds(3))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 3, 3),
                 WorkloadSpec("uniform", {"num": load * n, "horizon": n}),
                 "det", horizon=4 * n, seed=seed)
        for n, load in CONFIGS
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, (n, _load) in enumerate(CONFIGS):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        k = batch[0].meta["k"]
        agg: dict = {}
        accepted = 0
        for report in batch:
            accepted += report.meta["framework"]["accepted"]
            for key, val in report.meta["detailed"].items():
                agg[key] = agg.get(key, 0) + val
        survived = agg.get("delivered", 0)
        rows.append([
            n, k, accepted,
            agg.get("preempt_internal", 0),
            agg.get("preempt_first_segment", 0) + agg.get("preempt_by_interval", 0),
            agg.get("preempt_last_segment", 0),
            agg.get("preempt_last_tile", 0) + agg.get("preempt_by_climb", 0),
            survived / max(1, accepted),
        ])
    return rows


def test_detailed_routing_accounting(once):
    rows = once(run_accounting)
    emit(
        "E11_detailed_routing",
        format_table(
            ["n", "k", "ipp accepted", "internal fails", "special preempts",
             "lastseg preempts", "lasttile preempts", "survival"],
            rows,
            title="E11/Figs 5-6 -- detailed-routing part-by-part accounting "
            "(paper: internal never fails; special/last-tile lose <= 1-1/2k)",
        ),
    )
    for row in rows:
        n, k = row[0], row[1]
        assert row[3] == 0, "internal segments must never fail (Sec 5.2.3)"
        # survival across all of detailed routing at least the product of
        # the two 1/(2k) floors (very loose, should be far above)
        assert row[7] >= 1.0 / (4 * k * k)


def run_knockknee_audit():
    """Figure 6 verbatim: the node-rule automaton on random tile loads."""
    import numpy as np

    from repro.core.deterministic.knockknee import (
        EAST, NORTH, SOUTH, WEST, KnockKneeTile, TilePath,
    )

    rows = []
    rng = np.random.default_rng(6)
    for k in (6, 10, 14):
        trials = 300
        fails = 0
        bends = 0
        paths_total = 0
        for _ in range(trials):
            tile = KnockKneeTile(k)
            west = rng.permutation(k)[: rng.integers(1, k + 1)]
            south = rng.permutation(k)[: rng.integers(0, k + 1)]
            paths = []
            north_exits = len(south)
            for r in west:
                wants = NORTH if rng.random() < 0.5 else EAST
                if wants == NORTH and north_exits >= k:
                    wants = EAST  # respect the k-per-side load guarantee
                north_exits += wants == NORTH
                paths.append(TilePath(f"w{r}", (WEST, int(r)), wants))
            for c in south:
                paths.append(TilePath(f"s{c}", (SOUTH, int(c)), NORTH))
            routed = tile.route(paths)
            fails += sum(p.failed for p in routed)
            bends += tile.count_bends(routed)
            paths_total += len(routed)
        rows.append([k, trials, paths_total, fails, bends / max(1, paths_total)])
    return rows


def test_knockknee_automaton_never_fails(once):
    rows = once(run_knockknee_audit)
    emit(
        "E11_knockknee",
        format_table(
            ["k", "trials", "paths", "failures", "bends/path"],
            rows,
            title="E11/Figure 6 -- the knock-knee automaton on random "
            "feasible tile loads (paper: always succeeds)",
        ),
    )
    for row in rows:
        assert row[3] == 0
