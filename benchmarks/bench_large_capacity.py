"""E5 -- Theorem 13: large buffers and capacities.

With B, c >= k = Theta(log n) the algorithm reduces to online path packing
on the capacity-scaled space-time graph, is non-preemptive, and is
O(log n)-competitive.  The bench sweeps n with B = c = 4 ceil(log2 n) and
checks the ratio stays a small constant while the scaled load bound holds.

Ported to the :mod:`repro.api` Scenario layer: the registered
``theorem13`` algorithm runs through ``run_batch``; the tile side k and
preemption count come from the ``RunReport`` (``meta["k"]`` /
``preempted``) instead of poking the router.
"""

from __future__ import annotations

import math

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import NetworkSpec, Scenario, WorkloadSpec, run_batch

SIZES = trim((16, 32, 64))
TRIALS = 3


def _caps(n: int) -> int:
    return 4 * max(4, math.ceil(math.log2(n)) + 10)  # comfortably >= k


def run_sweep():
    trials = list(seeds(TRIALS))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), _caps(n), _caps(n)),
                 WorkloadSpec("uniform", {"num": 4 * n, "horizon": n}),
                 "theorem13", horizon=3 * n, seed=seed)
        for n in SIZES
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, n in enumerate(SIZES):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        k = batch[0].meta["k"]
        # caps must clear the paper's k for the theorem to apply
        assert _caps(n) >= k
        ratios = [r.ratio for r in batch]
        preempted = sum(r.preempted for r in batch)
        rows.append([n, _caps(n), k, sum(ratios) / len(ratios), preempted])
    return rows


def test_theorem13_sweep(once):
    rows = once(run_sweep)
    emit(
        "E5_theorem13",
        format_table(
            ["n", "B=c", "k", "mean ratio", "preemptions"],
            rows,
            title="E5/Theorem 13 -- large buffers & capacities via scaled IPP "
            "(paper: O(log n)-competitive, non-preemptive)",
        ),
    )
    assert all(r[4] == 0 for r in rows)  # never preempts
    assert all(r[3] < 4.0 for r in rows)  # small-constant ratio at this load
