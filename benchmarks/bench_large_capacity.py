"""E5 -- Theorem 13: large buffers and capacities.

With B, c >= k = Theta(log n) the algorithm reduces to online path packing
on the capacity-scaled space-time graph, is non-preemptive, and is
O(log n)-competitive.  The bench sweeps n with B = c = 4 ceil(log2 n) and
checks the ratio stays a small constant while the scaled load bound holds.
"""

from __future__ import annotations

import math

from conftest import emit

from repro.analysis.metrics import evaluate_plan
from repro.analysis.tables import format_table
from repro.core.deterministic.variants import LargeCapacityRouter
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def run_sweep():
    rows = []
    for n in (16, 32, 64):
        caps = 4 * max(4, math.ceil(math.log2(n)) + 10)  # comfortably >= k
        net = LineNetwork(n, buffer_size=caps, capacity=caps)
        router = LargeCapacityRouter(net, 3 * n)
        # caps must clear the paper's k for the theorem to apply
        assert caps >= router.k
        ratios = []
        preempted = 0
        for rng in spawn_generators(3, 3):
            reqs = uniform_requests(net, 4 * n, n, rng=rng)
            router = LargeCapacityRouter(net, 3 * n)
            plan = router.route(reqs)
            preempted += len(plan.truncated)
            ev = evaluate_plan(net, plan, reqs, 3 * n)
            ratios.append(ev.ratio)
        rows.append([n, caps, router.k, sum(ratios) / len(ratios), preempted])
    return rows


def test_theorem13_sweep(once):
    rows = once(run_sweep)
    emit(
        "E5_theorem13",
        format_table(
            ["n", "B=c", "k", "mean ratio", "preemptions"],
            rows,
            title="E5/Theorem 13 -- large buffers & capacities via scaled IPP "
            "(paper: O(log n)-competitive, non-preemptive)",
        ),
    )
    assert all(r[4] == 0 for r in rows)  # never preempts
    assert all(r[3] < 4.0 for r in rows)  # small-constant ratio at this load
