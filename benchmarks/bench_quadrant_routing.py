"""E13 -- Figures 8-10 / Section 7.4: quadrant detailed routing.

Validates the Far+ detailed-routing invariants on random instances:

* T-/X-routing failures stay a small measured fraction: the paper proves
  zero under dataflow conflict resolution; the sequential reservation here
  (bend columns fixed at arrival) can lose a path to a later straight
  climb, which becomes an ordinary rejection (documented in DESIGN.md);
* every committed path respects the quadrant discipline: enters tiles only
  through the right half of south / upper half of west sides (invariant 3);
* the I-routing success fraction is consistent with Lemma 23's
  ``lambda/2`` floor.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.core.randomized import FarPlusRouter, RandomizedParams
from repro.network.topology import LineNetwork
from repro.util.rng import spawn_generators
from repro.workloads.uniform import uniform_requests


def check_invariant3(router, plan):
    """Count tile-boundary crossings violating invariant 3."""
    bad = 0
    tiling = router.tiling
    Q, tau = router.params.Q, router.params.tau
    for path in plan.paths.values():
        v = path.start
        d = 1
        for move in path.moves:
            head = (v[0] + 1, v[1]) if move == 0 else (v[0], v[1] + 1)
            if tiling.tile_of(head) != tiling.tile_of(v):
                loc = tiling.local(head)
                if move == 0:  # entering through the south side
                    if loc[1] < tau // 2:
                        bad += 1
                else:  # entering through the west side
                    if loc[0] < Q // 2:
                        bad += 1
            v = head
    return bad


def run_quadrant_audit():
    rows = []
    for n, lam in ((64, 1.0), (64, 0.25), (128, 0.5)):
        net = LineNetwork(n, buffer_size=1, capacity=1)
        params = RandomizedParams.for_network(net, lam=lam)
        transit_fails = lasttile_fails = 0
        invariant_bad = 0
        iroute_attempts = 0
        iroute_success = 0
        for rng in spawn_generators(int(n * 100 * lam), 4):
            router = FarPlusRouter(net, 4 * n, params, phases=(0, 0), rng=rng)
            reqs = uniform_requests(net, 4 * n, n, rng=rng)
            plan = router.route(reqs)
            transit_fails += router.counters["transit_rejected"]
            lasttile_fails += router.counters["lasttile_rejected"]
            invariant_bad += check_invariant3(router, plan)
            coin_pass = (
                router.ipp.stats.accepted
                - router.counters["coin_rejected"]
                - router.counters["load_rejected"]
            )
            iroute_attempts += max(0, coin_pass)
            iroute_success += router.counters["delivered"]
        rows.append([
            n, lam, iroute_attempts, iroute_success,
            transit_fails, lasttile_fails, invariant_bad,
            iroute_success / max(1, iroute_attempts),
        ])
    return rows


def test_quadrant_routing_invariants(once):
    rows = once(run_quadrant_audit)
    emit(
        "E13_quadrants",
        format_table(
            ["n", "lambda", "post-coin", "routed", "T/X fails",
             "last-tile fails", "invariant-3 violations", "success frac"],
            rows,
            title="E13/Figs 8-10 -- Far+ quadrant routing audit.  The paper's "
            "dataflow resolution never fails; the sequential reservation "
            "here converts a small fraction into rejections (DESIGN.md)",
        ),
    )
    for row in rows:
        assert row[6] == 0, "invariant 3 must hold on every crossing"
        # sequential-reservation T/X losses stay a small fraction
        assert (row[4] + row[5]) <= 0.2 * max(1, row[2])
        # Lemma 23-flavoured floor: a constant fraction of post-coin
        # requests complete I-routing and detailed routing
        assert row[7] >= 0.25
