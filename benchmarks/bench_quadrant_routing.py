"""E13 -- Figures 8-10 / Section 7.4: quadrant detailed routing.

Validates the Far+ detailed-routing invariants on random instances:

* T-/X-routing failures stay a small measured fraction: the paper proves
  zero under dataflow conflict resolution; the sequential reservation here
  (bend columns fixed at arrival) can lose a path to a later straight
  climb, which becomes an ordinary rejection (documented in DESIGN.md);
* every committed path respects the quadrant discipline: enters tiles only
  through the right half of south / upper half of west sides (invariant 3)
  -- audited *inside* the router at commit time and surfaced as the
  ``invariant3_violations`` counter;
* the I-routing success fraction is consistent with Lemma 23's
  ``lambda/2`` floor.

Ported to the :mod:`repro.api` Scenario layer: the registered ``rand``
algorithm (class pinned to Far+) runs through ``run_batch`` with random
phase shifts per seed -- the paper's actual setting -- and every counter
comes from ``RunReport.meta["far_plus"]``.
"""

from __future__ import annotations

from conftest import emit, seeds, trim

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch

CONFIGS = trim(((64, 1.0), (64, 0.25), (128, 0.5)))


def run_quadrant_audit():
    trials = list(seeds(4))
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 1, 1),
                 WorkloadSpec("uniform", {"num": 4 * n, "horizon": n}),
                 AlgorithmSpec("rand", {"lam": lam, "force_class": "far"}),
                 horizon=4 * n, seed=seed)
        for n, lam in CONFIGS
        for seed in trials
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, (n, lam) in enumerate(CONFIGS):
        batch = reports[i * len(trials):(i + 1) * len(trials)]
        transit_fails = lasttile_fails = invariant_bad = 0
        iroute_attempts = iroute_success = 0
        for report in batch:
            counters = report.meta["far_plus"]
            transit_fails += counters["transit_rejected"]
            lasttile_fails += counters["lasttile_rejected"]
            invariant_bad += counters["invariant3_violations"]
            coin_pass = (
                counters["ipp_accepted"]
                - counters["coin_rejected"]
                - counters["load_rejected"]
            )
            iroute_attempts += max(0, coin_pass)
            iroute_success += counters["delivered"]
        rows.append([
            n, lam, iroute_attempts, iroute_success,
            transit_fails, lasttile_fails, invariant_bad,
            iroute_success / max(1, iroute_attempts),
        ])
    return rows


def test_quadrant_routing_invariants(once):
    rows = once(run_quadrant_audit)
    emit(
        "E13_quadrants",
        format_table(
            ["n", "lambda", "post-coin", "routed", "T/X fails",
             "last-tile fails", "invariant-3 violations", "success frac"],
            rows,
            title="E13/Figs 8-10 -- Far+ quadrant routing audit.  The paper's "
            "dataflow resolution never fails; the sequential reservation "
            "here converts a small fraction into rejections (DESIGN.md)",
        ),
    )
    for row in rows:
        assert row[6] == 0, "invariant 3 must hold on every crossing"
        # sequential-reservation T/X losses stay a small fraction (random
        # phase shifts run slightly hotter than the old pinned-phase
        # instances, especially at lambda = 1)
        assert (row[4] + row[5]) <= 0.3 * max(1, row[2])
        # Lemma 23-flavoured floor: a constant fraction of post-coin
        # requests complete I-routing and detailed routing
        assert row[7] >= 0.25
