"""E10 -- algorithm frontier: improved deterministic routing + C+D bound.

Old-vs-new competitiveness across the deterministic-feasible Table 2
regimes, with one ratio column per offline-bound method:

* algorithms: ``det`` (the source paper's Algorithm 1) vs ``det2``
  (arXiv:1501.06140 -- saturation-aware path packing on the space-time
  graph with true per-edge capacities);
* bounds: ``maxflow`` (the suite's default denominator) vs ``cd`` (the
  congestion + dilation cut analysis of arXiv:1206.3718).

Two frontier claims are asserted: ``det2`` never trails ``det`` (same
instances, same bound), and the ``cd`` bound is never looser than
``maxflow`` -- strictly tighter on the congested deadline regime in a
full run, where per-request crossing windows bind.  The per-regime sums
are archived into ``BENCH_engine.json`` (the record CI asserts).
"""

from __future__ import annotations

import math

from conftest import SMOKE, dispatch_batch, emit, seeds

from bench_engine import _merge_bench_record
from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec
from repro.baselines.offline import offline_bound

N = 32
SEEDS = 8
LOGN = math.ceil(math.log2(N))
ALGOS = ("det", "det2")

#: (label, B, c, workload) -- deterministic-feasible Table 2 regimes plus
#: the congested zero-slack deadline regime where the C+D windows bind
REGIMES = (
    ("congested uniform: B = c = 3", 3, 3,
     WorkloadSpec("uniform", {"num": 6 * N, "horizon": N})),
    ("large buffers: B = 8 log n", 8 * LOGN, 3,
     WorkloadSpec("uniform", {"num": 6 * N, "horizon": N})),
    ("large capacity: c = 2 log n", 3, 2 * LOGN,
     WorkloadSpec("uniform", {"num": 6 * N, "horizon": N})),
    ("congested deadlines: slack 0", 3, 3,
     WorkloadSpec("deadline", {"num": 6 * N, "horizon": N // 2,
                               "slack": 0, "jitter": 4})),
)

#: the regime the full-mode strict cd < maxflow assertion targets
DEADLINE_REGIME = REGIMES[-1][0]


def run_frontier():
    trials = list(seeds(SEEDS))
    scenarios = [
        Scenario(NetworkSpec("line", (N,), B, c), workload,
                 AlgorithmSpec(algo, {}), horizon=4 * N, seed=seed)
        for _, B, c, workload in REGIMES
        for algo in ALGOS
        for seed in trials
    ]
    reports = dispatch_batch(scenarios, workers=2, name="E10_frontier")
    by_key = {(r.scenario.algorithm.name, r.scenario.network.buffer_size,
               r.scenario.network.capacity, r.scenario.workload.name,
               r.scenario.seed): r for r in reports}

    rows, record_rows = [], []
    for label, B, c, workload in REGIMES:
        # the cd bound is a pure function of (seed, instance): one
        # evaluation per (regime, seed) serves both algorithms
        cds = {}
        for seed in trials:
            scenario = Scenario(NetworkSpec("line", (N,), B, c), workload,
                                AlgorithmSpec("det", {}), horizon=4 * N,
                                seed=seed)
            network = scenario.network.build()
            _, requests = scenario.build_instance(network)
            cds[seed] = offline_bound(network, requests, scenario.horizon,
                                      method="cd")
        for algo in ALGOS:
            batch = [by_key[(algo, B, c, workload.name, seed)]
                     for seed in trials]
            tp = sum(r.throughput for r in batch)
            mf = sum(r.bound for r in batch)
            cd = sum(cds[seed] for seed in trials)
            assert cd <= mf, (label, algo, cd, mf)
            assert tp <= cd, (label, algo, tp, cd)
            ratio_mf = mf / max(1e-9, tp)
            ratio_cd = cd / max(1e-9, tp)
            rows.append([label, algo, tp, round(ratio_mf, 3),
                         round(ratio_cd, 3)])
            record_rows.append({
                "regime": label, "algorithm": algo, "throughput": tp,
                "maxflow": mf, "cd": cd,
                "ratio_maxflow": round(ratio_mf, 4),
                "ratio_cd": round(ratio_cd, 4),
            })
    return rows, record_rows


def test_frontier(once):
    rows, record_rows = once(run_frontier)
    emit(
        "E10_frontier",
        format_table(
            ["regime", "algorithm", "throughput", "ratio/maxflow",
             "ratio/cd"],
            rows,
            title=f"E10 -- deterministic frontier on the line, n = {N} "
            "(det vs det2, maxflow vs cd denominators)",
        ),
    )
    _merge_bench_record("frontier", {
        "n": N, "seeds": len(seeds(SEEDS)), "smoke": SMOKE,
        "rows": record_rows,
    })
    by_algo = {(r["regime"], r["algorithm"]): r for r in record_rows}
    for label, *_ in REGIMES:
        det, det2 = by_algo[(label, "det")], by_algo[(label, "det2")]
        # the frontier claim: det2 never trails det on the same instances
        assert det2["throughput"] >= det["throughput"], (label, det, det2)
        # the cd ratio column is a valid competitive ratio (cd >= tp)
        assert det2["ratio_cd"] >= 1.0 and det["ratio_cd"] >= 1.0
    if not SMOKE:
        # full run: the C+D analysis is *strictly* tighter than max-flow
        # where zero-slack deadline windows couple on the congested line
        tight = by_algo[(DEADLINE_REGIME, "det")]
        assert tight["cd"] < tight["maxflow"], tight
