"""E1 -- Table 1: prior-art baselines (greedy, nearest-to-go).

The paper's Table 1 summarises the known competitive ratios: greedy is
Omega(sqrt n) on lines (B >= 2), NTG is O~(sqrt n) on lines and
Theta~(n^{2/3}) on 2-d grids with 1-bend routing.  This bench measures both
policies on the published adversarial shapes and checks the *direction* of
the separations: greedy degrades with n while NTG resists the clogging
instance, and NTG's grid ratio exceeds its line ratio.

Ported to the :mod:`repro.api` Scenario layer: the line experiment runs
the registered ``clogging`` workload, the grid experiment the registered
``congestion-mix`` workload (crossfire + dense box + uniform background),
all through ``run_batch`` -- every algorithm sees the identical instance
at each point by the seeding contract.
"""

from __future__ import annotations

from conftest import emit, trim

from repro.analysis.tables import format_table
from repro.api import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec, run_batch

LINE_SIZES = trim((16, 32, 64))
GRID_SIDES = trim((6, 8, 10))

LINE_ALGOS = (
    AlgorithmSpec("greedy", {"priority": "fifo"}),
    AlgorithmSpec("greedy", {"priority": "longest"}),
    AlgorithmSpec("ntg"),
)


def run_line_experiment():
    scenarios = [
        Scenario(NetworkSpec("line", (n,), 2, 1),
                 WorkloadSpec("clogging",
                              {"duration": n // 2, "shorts_per_node": 1}),
                 algo, horizon=4 * n)
        for n in LINE_SIZES
        for algo in LINE_ALGOS
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, n in enumerate(LINE_SIZES):
        fifo, longest, ntg = reports[3 * i:3 * i + 3]
        rows.append([
            n, fifo.requests, fifo.bound,
            fifo.ratio, longest.ratio, ntg.ratio,
        ])
    return rows


def run_grid_experiment():
    scenarios = [
        Scenario(NetworkSpec("grid", (side, side), 2, 1),
                 WorkloadSpec("congestion-mix",
                              {"width": side // 2, "area_side": side // 3,
                               "per_node": 3, "num": 4 * side,
                               "horizon": 2 * side}),
                 algo, horizon=8 * side, seed=side)
        for side in GRID_SIDES
        for algo in ("greedy", "ntg")
    ]
    reports = run_batch(scenarios, workers=2)
    rows = []
    for i, side in enumerate(GRID_SIDES):
        greedy, ntg = reports[2 * i:2 * i + 2]
        rows.append([
            f"{side}x{side}", greedy.requests, greedy.bound,
            greedy.ratio, ntg.ratio,
        ])
    return rows


def test_table1_line_baselines(once):
    rows = once(run_line_experiment)
    emit(
        "E1_table1_line",
        format_table(
            ["n", "requests", "bound", "greedy(fifo)", "greedy(longest)", "ntg"],
            rows,
            title="E1/Table 1 -- baseline competitive ratios on the clogging line "
            "(paper: greedy Omega(sqrt n), NTG O~(sqrt n))",
        ),
    )
    # shape: greedy's ratio grows with n ...
    greedy_ratios = [r[3] for r in rows]
    assert greedy_ratios[-1] > greedy_ratios[0]
    # ... and NTG beats greedy at the largest size (Table 1 separation)
    assert rows[-1][5] <= rows[-1][3]


def test_table1_grid_ntg(once):
    rows = once(run_grid_experiment)
    emit(
        "E1_table1_grid",
        format_table(
            ["grid", "requests", "bound", "greedy ratio", "ntg ratio"],
            rows,
            title="E1/Table 1 -- greedy vs NTG with 1-bend routing on 2-d "
            "congestion mix (paper: NTG Theta~(n^{2/3}))",
        ),
    )
    assert all(r[3] >= 1.0 and r[4] >= 1.0 for r in rows)
    # NTG does not lose to greedy on the congestion mix
    assert rows[-1][4] <= rows[-1][3] * 1.5
