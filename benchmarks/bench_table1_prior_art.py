"""E1 -- Table 1: prior-art baselines (greedy, nearest-to-go).

The paper's Table 1 summarises the known competitive ratios: greedy is
Omega(sqrt n) on lines (B >= 2), NTG is O~(sqrt n) on lines and
Theta~(n^{2/3}) on 2-d grids with 1-bend routing.  This bench measures both
policies on the published adversarial shapes and checks the *direction* of
the separations: greedy degrades with n while NTG resists the clogging
instance, and NTG's grid ratio exceeds its line ratio.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.nearest_to_go import run_nearest_to_go
from repro.baselines.offline import offline_bound
from repro.network.topology import GridNetwork, LineNetwork
from repro.workloads.adversarial import clogging_instance, grid_crossfire_instance

LINE_SIZES = (16, 32, 64)


def run_line_experiment():
    rows = []
    for n in LINE_SIZES:
        net = LineNetwork(n, buffer_size=2, capacity=1)
        reqs = clogging_instance(net, duration=n // 2, shorts_per_node=1)
        horizon = 4 * n
        bound = offline_bound(net, reqs, horizon)
        g = run_greedy(net, reqs, horizon, priority="fifo").throughput
        lng = run_greedy(net, reqs, horizon, priority="longest").throughput
        ntg = run_nearest_to_go(net, reqs, horizon).throughput
        rows.append([
            n, len(reqs), bound,
            bound / max(1, g), bound / max(1, lng), bound / max(1, ntg),
        ])
    return rows


def run_grid_experiment():
    from repro.workloads.adversarial import dense_area_instance
    from repro.workloads.uniform import uniform_requests

    rows = []
    for side in (6, 8, 10):
        net = GridNetwork((side, side), buffer_size=2, capacity=1)
        # crossing streams + a dense source block + background traffic:
        # the congestion mix where 1-bend routing pays (Section 1.3)
        reqs = (
            grid_crossfire_instance(net, width=side // 2)
            + dense_area_instance(net, area_side=side // 3, per_node=3)
            + uniform_requests(net, 4 * side, 2 * side, rng=side)
        )
        horizon = 8 * side
        bound = offline_bound(net, reqs, horizon)
        g = run_greedy(net, reqs, horizon).throughput
        ntg = run_nearest_to_go(net, reqs, horizon).throughput
        rows.append([
            f"{side}x{side}", len(reqs), bound,
            bound / max(1, g), bound / max(1, ntg),
        ])
    return rows


def test_table1_line_baselines(once):
    rows = once(run_line_experiment)
    emit(
        "E1_table1_line",
        format_table(
            ["n", "requests", "bound", "greedy(fifo)", "greedy(longest)", "ntg"],
            rows,
            title="E1/Table 1 -- baseline competitive ratios on the clogging line "
            "(paper: greedy Omega(sqrt n), NTG O~(sqrt n))",
        ),
    )
    # shape: greedy's ratio grows with n ...
    greedy_ratios = [r[3] for r in rows]
    assert greedy_ratios[-1] > greedy_ratios[0]
    # ... and NTG beats greedy at the largest size (Table 1 separation)
    assert rows[-1][5] <= rows[-1][3]


def test_table1_grid_ntg(once):
    rows = once(run_grid_experiment)
    emit(
        "E1_table1_grid",
        format_table(
            ["grid", "requests", "bound", "greedy ratio", "ntg ratio"],
            rows,
            title="E1/Table 1 -- greedy vs NTG with 1-bend routing on 2-d "
            "congestion mix (paper: NTG Theta~(n^{2/3}))",
        ),
    )
    assert all(r[3] >= 1.0 and r[4] >= 1.0 for r in rows)
    # NTG does not lose to greedy on the congestion mix
    assert rows[-1][4] <= rows[-1][3] * 1.5
