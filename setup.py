"""Legacy setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
(or a ``.pth`` file pointing at ``src/``) provides the same result.  All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
