"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library:

* ``demo``    -- the quickstart scoreboard on a line;
* ``route``   -- run one algorithm on a generated workload, print stats;
* ``compare`` -- algorithms side by side on the same instance;
* ``figures`` -- the paper's figures as ASCII art.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.tables import format_table
from repro.baselines.greedy import run_greedy
from repro.baselines.nearest_to_go import run_nearest_to_go
from repro.baselines.offline import offline_bound
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import BufferlessLineRouter, LargeCapacityRouter
from repro.core.randomized import RandomizedLineRouter
from repro.network.simulator import execute_plan
from repro.network.topology import GridNetwork, LineNetwork
from repro.workloads import clogging_instance, uniform_requests

ALGORITHMS = ("det", "rand", "greedy", "ntg", "bufferless", "theorem13")


def _build_network(args):
    dims = [int(x) for x in str(args.dims).split("x")]
    if len(dims) == 1:
        return LineNetwork(dims[0], buffer_size=args.B, capacity=args.c)
    return GridNetwork(tuple(dims), buffer_size=args.B, capacity=args.c)


def _build_workload(net, args):
    if args.workload == "uniform":
        return uniform_requests(net, args.requests, args.arrival_window, rng=args.seed)
    if args.workload == "clogging":
        return clogging_instance(net, duration=net.n // 2)
    raise SystemExit(f"unknown workload {args.workload!r}")


def _run_algorithm(name, net, reqs, horizon, seed, engine=None):
    if name == "greedy":
        return run_greedy(net, reqs, horizon, engine=engine).throughput
    if name == "ntg":
        return run_nearest_to_go(net, reqs, horizon, engine=engine).throughput
    if name == "det":
        router = DeterministicRouter(net, horizon)
    elif name == "rand":
        router = RandomizedLineRouter(net, horizon, rng=seed, lam=0.5)
    elif name == "bufferless":
        router = BufferlessLineRouter(net, horizon)
    elif name == "theorem13":
        router = LargeCapacityRouter(net, horizon)
    else:
        raise SystemExit(f"unknown algorithm {name!r}")
    plan = router.route(reqs)
    result = execute_plan(net, plan.all_executable_paths(), reqs, horizon,
                          engine=engine)
    if not plan.consistent_with_simulation(result):
        raise SystemExit("internal error: plan/simulation mismatch")
    return plan.throughput


def cmd_demo(args) -> int:
    net = LineNetwork(args.n, buffer_size=args.B, capacity=args.c)
    reqs = uniform_requests(net, 3 * args.n, args.n, rng=args.seed)
    horizon = 4 * args.n
    rows = []
    for name in ("rand", "greedy", "ntg"):
        try:
            rows.append([name, _run_algorithm(name, net, reqs, horizon,
                                              args.seed, engine=args.engine)])
        except Exception as exc:  # e.g. det needs B, c >= 3
            rows.append([name, f"n/a ({exc})"])
    rows.append(["offline bound", offline_bound(net, reqs, horizon)])
    print(format_table(["algorithm", "throughput"], rows,
                       title=f"demo on {net} ({len(reqs)} requests)"))
    return 0


def cmd_route(args) -> int:
    net = _build_network(args)
    reqs = _build_workload(net, args)
    tput = _run_algorithm(args.algorithm, net, reqs, args.horizon, args.seed,
                          engine=args.engine)
    bound = offline_bound(net, reqs, args.horizon)
    print(format_table(
        ["algorithm", "requests", "throughput", "bound", "ratio"],
        [[args.algorithm, len(reqs), tput, bound, bound / max(1, tput)]],
        title=f"{net}",
    ))
    return 0


def cmd_compare(args) -> int:
    net = _build_network(args)
    reqs = _build_workload(net, args)
    rows = []
    for name in args.algorithms:
        try:
            tput = _run_algorithm(name, net, reqs, args.horizon, args.seed,
                                  engine=args.engine)
        except Exception as exc:
            rows.append([name, f"n/a: {exc}"])
            continue
        rows.append([name, tput])
    rows.append(["offline bound", offline_bound(net, reqs, args.horizon)])
    print(format_table(["algorithm", "throughput"], rows, title=f"{net}"))
    return 0


def cmd_figures(args) -> int:
    from repro.analysis.viz import render_spacetime, render_tile_quadrants
    from repro.spacetime.graph import SpaceTimeGraph, STPath
    from repro.spacetime.tiling import Tiling

    net = LineNetwork(8, buffer_size=2, capacity=2)
    graph = SpaceTimeGraph(net, 16)
    path = STPath((1, -1), (0, 1, 0, 1, 1, 0, 0), rid=0)
    print("Figure 3 (untilted space-time graph, one detailed path, tiles):\n")
    print(render_spacetime(graph, [path], tiling=Tiling((4, 4)),
                           col_lo=-4, col_hi=12))
    print("\nFigure 8/9 (tile quadrants and routing roles):\n")
    print(render_tile_quadrants(8, 8))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Even & Medina, SPAA 2011 -- online packet routing in "
        "grids with bounded buffers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    engine_kwargs = dict(
        choices=("reference", "fast"), default=None,
        help="simulation engine (default: REPRO_ENGINE env var or reference)",
    )

    p = sub.add_parser("demo", help="quick scoreboard on a line")
    p.add_argument("-n", type=int, default=64)
    p.add_argument("-B", type=int, default=1)
    p.add_argument("-c", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", **engine_kwargs)
    p.set_defaults(fn=cmd_demo)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dims", default="32", help="e.g. 64 or 8x8")
    common.add_argument("-B", type=int, default=3)
    common.add_argument("-c", type=int, default=3)
    common.add_argument("--requests", type=int, default=100)
    common.add_argument("--arrival-window", type=int, default=32)
    common.add_argument("--horizon", type=int, default=128)
    common.add_argument("--workload", default="uniform",
                        choices=("uniform", "clogging"))
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--engine", **engine_kwargs)

    p = sub.add_parser("route", parents=[common], help="run one algorithm")
    p.add_argument("algorithm", choices=ALGORITHMS)
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("compare", parents=[common], help="compare algorithms")
    p.add_argument("algorithms", nargs="+", choices=ALGORITHMS)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("figures", help="paper figures as ASCII")
    p.set_defaults(fn=cmd_figures)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
