"""Command-line interface: ``python -m repro <command>``.

Small, scriptable entry points over the library, all driven by the
:mod:`repro.api` Scenario layer -- algorithm and workload choices come
from the registries, capability checks replace try/except ladders, and
any run can be expressed as (or replayed from) a JSON scenario spec:

* ``demo``    -- the quickstart scoreboard on a line;
* ``route``   -- run one algorithm (or a ``--spec`` file), print stats;
* ``compare`` -- algorithms side by side on the same instance;
* ``sweep``   -- run a batch of scenarios from a spec file, optionally
  over a process pool (``--workers``) and/or sharded for multi-host
  execution (``--shards``/``--shard-index``/``--out``, or
  ``--emit-shards`` to write the manifests; ``--spec`` also accepts a
  shard manifest directly);
* ``merge``   -- reassemble shard result files (or a directory of them)
  into the batch result;
* ``enqueue`` / ``work`` / ``status`` / ``collect`` -- the elastic
  sweep service: enqueue a batch as chunks into a shared queue
  directory, pull-execute it with any number of ``work`` processes
  (crashed workers' chunks are requeued via lease expiry), watch
  progress, and merge the results;
* ``figures`` -- the paper's figures as ASCII art.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys

from repro.analysis.tables import format_table
from repro.util.errors import ValidationError
from repro.api import (
    ALGORITHMS,
    WORKLOADS,
    AlgorithmSpec,
    NetworkSpec,
    Scenario,
    WorkloadSpec,
    algorithm_names,
    load_scenarios,
    run,
    run_batch,
    topology_names,
    unavailable_reason,
    workload_names,
)

#: single source of truth for the common flag defaults (build_parser and
#: the ignored-flag warnings both read it, so the two cannot drift)
_COMMON_DEFAULTS = {
    "dims": "32",
    "topology": None,
    "B": 3,
    "c": 3,
    "requests": 100,
    "arrival_window": 32,
    "horizon": 128,
    "workload": "uniform",
    "seed": 0,
}

#: (flag, args attribute, generator parameter it maps onto)
_WORKLOAD_FLAGS = (
    ("--requests", "requests", "num"),
    ("--arrival-window", "arrival_window", "horizon"),
)

#: practical parameter defaults the CLI applies to registered algorithms --
#: the paper-exact sparsification lambda = 1/(200 k) rejects nearly
#: everything at CLI scale (see bench E6); override via --algorithm-arg
_ALGO_CLI_DEFAULTS = {
    "rand": (("lam", 0.5),),
    "rand-large-buffers": (("lam", 0.5),),
    "rand-small-buffers": (("lam", 0.5),),
}

#: flags that cannot override a --spec file (scenarios are self-contained)
_SPEC_FIXED_FLAGS = (
    ("--dims", "dims"),
    ("--topology", "topology"),
    ("-B", "B"),
    ("-c", "c"),
    ("--requests", "requests"),
    ("--arrival-window", "arrival_window"),
    ("--horizon", "horizon"),
    ("--workload", "workload"),
    ("--seed", "seed"),
)


def _parse_kv(item: str, flag: str) -> tuple:
    key, sep, raw = item.partition("=")
    if not sep:
        raise SystemExit(f"{flag} expects KEY=VALUE, got {item!r}")
    try:
        return key, json.loads(raw)
    except json.JSONDecodeError:
        return key, raw


def _algorithm_spec(args, name: str) -> AlgorithmSpec:
    """Build the AlgorithmSpec, applying only parameters ``name`` accepts.

    ``compare``/``demo`` pass one ``--algorithm-arg`` list to several
    algorithms; each takes what it understands (with a warning for the
    rest) instead of aborting the whole command.
    """
    entry = ALGORITHMS.get(name)
    params = {k: v for k, v in _ALGO_CLI_DEFAULTS.get(name, ())
              if k in entry.params}
    ignored = []
    for item in getattr(args, "algorithm_arg", None) or ():
        key, value = _parse_kv(item, "--algorithm-arg")
        if key in entry.params:
            params[key] = value
        else:
            ignored.append(key)
    if ignored:
        print(
            f"warning: algorithm {name!r} ignores --algorithm-arg "
            f"{', '.join(ignored)} (it accepts: {sorted(entry.params)})",
            file=sys.stderr,
        )
    return AlgorithmSpec(name, params)


def _warn_spec_overrides(args) -> None:
    """``--spec`` scenarios are self-contained; report flags they ignore."""
    ignored = [flag for flag, attr in _SPEC_FIXED_FLAGS
               if getattr(args, attr) != _COMMON_DEFAULTS[attr]]
    if args.workload_arg:
        ignored.append("--workload-arg")
    if getattr(args, "algorithm_arg", None):
        ignored.append("--algorithm-arg")
    if ignored:
        print(
            f"warning: --spec scenarios are self-contained; ignoring "
            f"{', '.join(ignored)} (only --engine overrides a spec)",
            file=sys.stderr,
        )


def _workload_spec(args, network: NetworkSpec) -> WorkloadSpec:
    """Map CLI flags onto the registered generator's parameters.

    Flags the generator does not accept are *reported*, not silently
    dropped (the pre-registry CLI lost ``--requests``/``--arrival-window``
    /``--seed`` on the clogging workload without a word).
    """
    entry = WORKLOADS.get(args.workload)
    params: dict = {}
    if args.workload == "clogging":
        # preserve the pre-registry CLI's instance shape (duration = n/2;
        # the generator's own default is a full-length n stream)
        params["duration"] = math.prod(network.dims) // 2
    ignored = []
    for flag, attr, param in _WORKLOAD_FLAGS:
        value = getattr(args, attr)
        if param in entry.params:
            params[param] = value
        elif value != _COMMON_DEFAULTS[attr]:
            ignored.append(flag)
    for item in args.workload_arg or ():
        key, value = _parse_kv(item, "--workload-arg")
        params[key] = value
    if ignored:
        print(
            f"warning: the {args.workload!r} workload ignores "
            f"{', '.join(ignored)} (it accepts: {sorted(entry.params)})",
            file=sys.stderr,
        )
    if not entry.takes_rng and args.seed != 0:
        print(
            f"warning: the {args.workload!r} generator is deterministic; "
            "--seed only affects randomized algorithms",
            file=sys.stderr,
        )
    return WorkloadSpec(args.workload, params)


def _scenario(args, algorithm: str) -> Scenario:
    network = NetworkSpec.parse(args.dims, args.B, args.c,
                                kind=args.topology)
    return Scenario(
        network=network,
        workload=_workload_spec(args, network),
        algorithm=_algorithm_spec(args, algorithm),
        horizon=args.horizon,
        seed=args.seed,
        engine=args.engine,
    )


def _scoreboard_rows(scenarios, network, cache=None,
                     bound_method: str = "maxflow") -> list:
    """``[name, throughput | "n/a (reason)"]`` rows plus the bound row.

    Capability checks from the registry decide the n/a rows; anything
    else raised by a run is a genuine bug and propagates.
    """
    rows, bound = [], None
    for scenario in scenarios:
        reason = unavailable_reason(scenario, network)
        if reason is not None:
            rows.append([scenario.algorithm.name, f"n/a ({reason})"])
            continue
        report = run(scenario, cache=cache, bound_method=bound_method)
        rows.append([scenario.algorithm.name, report.throughput])
        bound = report.bound
    if bound is None:  # every algorithm was unavailable
        scenario = scenarios[0]
        workload_ok = WORKLOADS.get(scenario.workload.name).unavailable(
            network, scenario.horizon) is None
        if workload_ok:
            from repro.baselines.offline import offline_bound

            _, requests = scenario.build_instance(network)
            bound = offline_bound(network, requests, scenario.horizon,
                                  method=bound_method)
    rows.append(["offline bound", bound if bound is not None else "n/a"])
    return rows


def cmd_demo(args) -> int:
    net_spec = NetworkSpec("line", (args.n,), args.B, args.c)
    workload = WorkloadSpec("uniform", {"num": 3 * args.n, "horizon": args.n})
    network = net_spec.build()
    scenarios = [
        Scenario(net_spec, workload, _algorithm_spec(args, name),
                 horizon=4 * args.n, seed=args.seed, engine=args.engine)
        for name in ("rand", "greedy", "ntg")
    ]
    print(format_table(["algorithm", "throughput"],
                       _scoreboard_rows(scenarios, network, cache=args.cache,
                                        bound_method=args.bound),
                       title=f"demo on {network} ({workload})"))
    return 0


def cmd_route(args) -> int:
    if args.spec:
        if args.algorithm:
            raise SystemExit("route: pass an algorithm or --spec, not both")
        _warn_spec_overrides(args)
        scenarios = load_scenarios(args.spec)
        if len(scenarios) != 1:
            raise SystemExit(
                f"route --spec expects exactly one scenario, found "
                f"{len(scenarios)} (use 'sweep --spec' for batches)"
            )
        scenario = scenarios[0]
        if args.engine is not None:
            scenario = scenario.replace(engine=args.engine)
    elif args.algorithm:
        scenario = _scenario(args, args.algorithm)
    else:
        raise SystemExit("route: an algorithm name or --spec is required")
    report = run(scenario, cache=args.cache, bound_method=args.bound)
    print(format_table(
        ["algorithm", "requests", "throughput", "bound", "ratio", "engine"],
        [[scenario.algorithm.name, report.requests, report.throughput,
          report.bound, report.ratio, report.engine]],
        title=f"{scenario.network} / {scenario.workload}",
    ))
    return 0


def cmd_compare(args) -> int:
    scenarios = [_scenario(args, name) for name in args.algorithms]
    network = scenarios[0].network.build()
    print(format_table(["algorithm", "throughput"],
                       _scoreboard_rows(scenarios, network, cache=args.cache,
                                        bound_method=args.bound),
                       title=f"{network}"))
    return 0


_SWEEP_COLUMNS = ["algorithm", "network", "workload", "seed", "throughput",
                  "bound", "ratio", "engine", "wall_s"]


def _report_row(report) -> list:
    scenario = report.scenario
    return [scenario.algorithm.name, str(scenario.network),
            str(scenario.workload), scenario.seed, report.throughput,
            report.bound, report.ratio, report.engine,
            f"{report.wall_time:.3f}"]


def _validate_sweep_flags(args) -> None:
    """Reject inconsistent sweep flags with one clear line (exit 2), not a
    traceback (or, worse, a silently serial run for ``--workers 0``)."""
    if args.workers is not None and args.workers < 1:
        raise ValidationError(
            f"sweep: --workers must be a positive integer, got {args.workers}")
    if args.shards is not None and args.shards < 1:
        raise ValidationError(
            f"sweep: --shards must be a positive integer, got {args.shards}")
    if args.shard_index is not None:
        if args.shards is None:
            raise ValidationError(
                "sweep: --shard-index needs --shards (the plan it indexes)")
        if not 0 <= args.shard_index < args.shards:
            raise ValidationError(
                f"sweep: --shard-index must satisfy 0 <= index < --shards, "
                f"got index {args.shard_index} with {args.shards} shard(s)")
        if args.emit_shards:
            raise ValidationError(
                "sweep: --emit-shards writes manifests instead of running; "
                "drop --shard-index")
        if not args.out:
            raise ValidationError(
                "sweep: a shard run needs --out FILE for its JSONL result "
                "(merge the files with 'python -m repro merge')")
    elif args.out and not args.spec_is_manifest:
        raise ValidationError(
            "sweep: --out only applies to shard runs (--shard-index, or a "
            "shard-manifest --spec)")
    if args.emit_shards and args.shards is None:
        raise ValidationError("sweep: --emit-shards needs --shards")
    if args.shards is not None and args.shard_index is None \
            and not args.emit_shards and not args.spec_is_manifest:
        raise ValidationError(
            "sweep: --shards needs --shard-index i --out FILE (run one "
            "shard) or --emit-shards DIR (write the manifests)")


def _runnable_scenarios(scenarios) -> tuple:
    """Split a batch into runnable scenarios and preformatted n/a rows."""
    rows = [None] * len(scenarios)
    runnable = []
    for i, scenario in enumerate(scenarios):
        reason = unavailable_reason(scenario)
        if reason is not None:
            rows[i] = [scenario.algorithm.name, str(scenario.network),
                       str(scenario.workload), scenario.seed,
                       f"n/a ({reason})", "", "", "", ""]
        else:
            runnable.append((i, scenario))
    return runnable, rows


def cmd_sweep(args) -> int:
    from repro.api import load_manifest, plan_shards, run_shard, write_manifest
    from repro.api.dispatch import MANIFEST_KIND

    try:
        spec_data = json.loads(pathlib.Path(args.spec).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(f"sweep: cannot read --spec {args.spec}: {exc}")
    args.spec_is_manifest = (isinstance(spec_data, dict)
                             and spec_data.get("kind") == MANIFEST_KIND)
    _validate_sweep_flags(args)

    if args.spec_is_manifest:
        # the spec *is* one shard of an already-planned batch (the file a
        # coordinating host emitted with --emit-shards)
        if args.shards is not None or args.shard_index is not None:
            raise ValidationError(
                "sweep: the --spec file is already a shard manifest; "
                "--shards/--shard-index do not apply")
        if args.engine is not None:
            raise ValidationError(
                "sweep: a shard manifest pins its scenarios (including the "
                "engine); re-plan with --emit-shards to change them")
        manifest = load_manifest(spec_data)
        reports = run_shard(manifest, out=args.out, workers=args.workers,
                            cache=args.cache, bound_method=args.bound)
        if args.out:
            print(f"shard {manifest['shard_index']}/{manifest['n_shards']} "
                  f"of batch {manifest['batch_digest']}: "
                  f"{len(reports)} report(s) -> {args.out}")
        else:
            print(format_table(
                _SWEEP_COLUMNS, [_report_row(r) for r in reports],
                title=f"shard {manifest['shard_index']}/"
                      f"{manifest['n_shards']} of batch "
                      f"{manifest['batch_digest']}"))
        if reports.cache_stats is not None:
            print(reports.cache_stats.summary())
        return 0

    from repro.api.run import parse_scenarios

    scenarios = parse_scenarios(spec_data, f"spec file {args.spec}")
    if args.engine is not None:
        scenarios = [s.replace(engine=args.engine) for s in scenarios]

    if args.shards is not None:
        # sharding covers the runnable scenarios: capability checks are
        # deterministic, so every host planning the same spec agrees
        runnable, rows = _runnable_scenarios(scenarios)
        skipped = len(scenarios) - len(runnable)
        if skipped:
            print(f"note: excluding {skipped} unavailable scenario(s) from "
                  "the shard plan", file=sys.stderr)
        manifests = plan_shards([s for _, s in runnable], args.shards)
        if args.emit_shards:
            out_dir = pathlib.Path(args.emit_shards)
            for manifest in manifests:
                path = out_dir / f"shard_{manifest['shard_index']}.json"
                write_manifest(manifest, path)
                print(f"shard {manifest['shard_index']}/{args.shards}: "
                      f"{len(manifest['scenarios'])} scenario(s) -> {path}")
            print(f"batch {manifests[0]['batch_digest']}: run each manifest "
                  "with 'repro sweep --spec shard_i.json --out shard_i.jsonl'"
                  ", then 'repro merge shard_*.jsonl'")
            return 0
        manifest = manifests[args.shard_index]
        reports = run_shard(manifest, out=args.out, workers=args.workers,
                            cache=args.cache, bound_method=args.bound)
        print(f"shard {args.shard_index}/{args.shards} of batch "
              f"{manifest['batch_digest']}: {len(reports)} report(s) "
              f"-> {args.out}")
        if reports.cache_stats is not None:
            print(reports.cache_stats.summary())
        return 0

    runnable, rows = _runnable_scenarios(scenarios)
    reports = run_batch([s for _, s in runnable], workers=args.workers,
                        cache=args.cache, bound_method=args.bound)
    for (i, scenario), report in zip(runnable, reports):
        rows[i] = _report_row(report)
    print(format_table(
        _SWEEP_COLUMNS,
        rows,
        title=f"sweep over {len(scenarios)} scenarios "
              f"(workers={args.workers or 1})",
    ))
    if reports.cache_stats is not None:
        print(reports.cache_stats.summary())
    return 0


def _emit_batch(reports, out, message: str, title: str) -> None:
    """Shared output path for ``merge`` and ``collect``: the ``--out``
    JSON is canonical and byte-identical across the two commands (the CI
    chaos job diffs a ``collect --out`` against a ``merge --out``)."""
    if out:
        payload = json.dumps([r.to_dict() for r in reports],
                             sort_keys=True, indent=2) + "\n"
        pathlib.Path(out).write_text(payload)
        print(f"{message} -> {out}")
    else:
        print(format_table(
            _SWEEP_COLUMNS, [_report_row(r) for r in reports], title=title))
    if reports.cache_stats is not None:
        print(reports.cache_stats.summary())


def cmd_merge(args) -> int:
    from repro.api import merge

    reports = merge(args.files)
    _emit_batch(
        reports, args.out,
        f"merged {len(reports)} report(s) from {len(args.files)} "
        f"shard file(s)",
        f"merged batch ({len(reports)} scenarios, "
        f"{len(args.files)} shard files)")
    return 0


def cmd_enqueue(args) -> int:
    from repro.api.queue import WorkQueue
    from repro.api.run import parse_scenarios

    try:
        spec_data = json.loads(pathlib.Path(args.spec).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ValidationError(
            f"enqueue: cannot read --spec {args.spec}: {exc}")
    scenarios = parse_scenarios(spec_data, f"spec file {args.spec}")
    if args.engine is not None:
        scenarios = [s.replace(engine=args.engine) for s in scenarios]
    # same capability pre-check as 'sweep --shards': unavailable scenarios
    # never enter the queue (a chunk that fails deterministically would
    # bounce between pending and claimed forever -- see api/queue.py)
    runnable, _ = _runnable_scenarios(scenarios)
    skipped = len(scenarios) - len(runnable)
    if skipped:
        print(f"note: excluding {skipped} unavailable scenario(s) from "
              "the queue", file=sys.stderr)
    if not runnable:
        raise ValidationError("enqueue: no runnable scenarios in the spec")
    queue = WorkQueue.create(args.queue, [s for _, s in runnable],
                             chunk_size=args.chunk_size)
    header = queue.header()
    print(f"enqueued batch {header['batch_digest']}: "
          f"{header['batch_size']} scenario(s) as {header['n_chunks']} "
          f"chunk(s) -> {queue.root}")
    print(f"start workers with 'repro work {queue.root}' (any number, "
          "any host sharing the directory)")
    return 0


def cmd_work(args) -> int:
    from repro.api.queue import WorkQueue
    from repro.api.service import QueueWorker

    crash_env = os.environ.get("REPRO_QUEUE_CRASH_AFTER")
    crash_after = None
    if crash_env is not None:
        try:
            crash_after = int(crash_env)
        except ValueError:
            raise ValidationError(
                "work: REPRO_QUEUE_CRASH_AFTER must be an integer, got "
                f"{crash_env!r}")
    worker = QueueWorker(
        WorkQueue(args.queue),
        args.worker_id,
        ttl=args.ttl,
        poll=args.poll,
        workers=args.workers,
        cache=args.cache,
        bound_method=args.bound,
        crash_after=crash_after,
        crash_mode="exit",
        log=lambda message: print(message, flush=True),
    )
    ran = worker.run(max_chunks=args.max_chunks)
    drained = worker.queue.is_drained()
    print(f"worker {worker.worker_id}: executed {ran} chunk(s); queue "
          f"{'drained' if drained else 'still has work'}")
    return 0


def cmd_status(args) -> int:
    from repro.api.queue import WorkQueue

    status = WorkQueue(args.queue).status(args.ttl)
    for line in status.lines():
        print(line)
    return 0


def cmd_collect(args) -> int:
    from repro.api.queue import WorkQueue

    queue = WorkQueue(args.queue)
    reports = queue.collect()
    _emit_batch(
        reports, args.out,
        f"collected {len(reports)} report(s) from queue {queue.root}",
        f"collected queue {queue.root} ({len(reports)} scenarios)")
    return 0


def cmd_list(args) -> int:
    """Print the registries: what can be named in scenarios and flags."""
    from repro.api import TOPOLOGIES
    from repro.network.kernel import active_kernel, numba_available

    print(format_table(
        ["algorithm", "fast engine", "batch", "kernel", "description"],
        [[e.name, e.fast_engine, e.batch_engine, e.kernel, e.description]
         for e in ALGORITHMS.entries()],
        title="registered algorithms",
    ))
    print(f"step kernel: {active_kernel()} "
          f"(numba {'available' if numba_available() else 'not installed'}; "
          f"select with REPRO_KERNEL=auto|numba|numpy)")
    print()
    print(format_table(
        ["workload", "parameters", "seeded", "description"],
        [[e.name, " ".join(e.params), "yes" if e.takes_rng else "no",
          e.description]
         for e in WORKLOADS.entries()],
        title="registered workloads",
    ))
    print()
    print(format_table(
        ["topology", "description"],
        [[e.name, e.description] for e in TOPOLOGIES.entries()],
        title="registered topologies",
    ))
    return 0


def cmd_figures(args) -> int:
    from repro.analysis.viz import render_spacetime, render_tile_quadrants
    from repro.network.topology import LineNetwork
    from repro.spacetime.graph import SpaceTimeGraph, STPath
    from repro.spacetime.tiling import Tiling

    net = LineNetwork(8, buffer_size=2, capacity=2)
    graph = SpaceTimeGraph(net, 16)
    path = STPath((1, -1), (0, 1, 0, 1, 1, 0, 0), rid=0)
    print("Figure 3 (untilted space-time graph, one detailed path, tiles):\n")
    print(render_spacetime(graph, [path], tiling=Tiling((4, 4)),
                           col_lo=-4, col_hi=12))
    print("\nFigure 8/9 (tile quadrants and routing roles):\n")
    print(render_tile_quadrants(8, 8))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Even & Medina, SPAA 2011 -- online packet routing in "
        "grids with bounded buffers",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    engine_kwargs = dict(
        choices=("reference", "fast", "batch"), default=None,
        help="simulation engine (default: REPRO_ENGINE env var or "
        "reference); 'batch' stacks eligible sweep scenarios into one "
        "array program and falls back per-scenario otherwise",
    )
    cache_kwargs = dict(
        choices=("off", "read", "readwrite"), default=None,
        help="result-cache mode; the cache directory comes from the "
        "REPRO_CACHE env var (default ~/.cache/repro).  Default mode: "
        "readwrite when REPRO_CACHE is set, else off",
    )
    from repro.api.run import BOUND_METHODS

    bound_kwargs = dict(
        choices=BOUND_METHODS, default="maxflow",
        help="offline bound the ratios divide by (default maxflow; see "
        "benchmarks/README.md for tightness vs cost)",
    )

    p = sub.add_parser("demo", help="quick scoreboard on a line")
    p.add_argument("-n", type=int, default=64)
    p.add_argument("-B", type=int, default=1)
    p.add_argument("-c", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--algorithm-arg", action="append", metavar="KEY=VALUE")
    p.add_argument("--engine", **engine_kwargs)
    p.add_argument("--cache", **cache_kwargs)
    p.add_argument("--bound", **bound_kwargs)
    p.set_defaults(fn=cmd_demo)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dims", default=_COMMON_DEFAULTS["dims"],
                        help="e.g. 64 or 8x8")
    common.add_argument("--topology", default=_COMMON_DEFAULTS["topology"],
                        choices=topology_names(),
                        help="network family (default: line for one "
                        "dimension, grid otherwise)")
    common.add_argument("-B", type=int, default=_COMMON_DEFAULTS["B"])
    common.add_argument("-c", type=int, default=_COMMON_DEFAULTS["c"])
    common.add_argument("--requests", type=int,
                        default=_COMMON_DEFAULTS["requests"])
    common.add_argument("--arrival-window", type=int,
                        default=_COMMON_DEFAULTS["arrival_window"])
    common.add_argument("--horizon", type=int,
                        default=_COMMON_DEFAULTS["horizon"])
    common.add_argument("--workload", default=_COMMON_DEFAULTS["workload"],
                        choices=workload_names())
    common.add_argument("--workload-arg", action="append", metavar="KEY=VALUE",
                        help="extra generator parameter (repeatable); values "
                        "parse as JSON scalars")
    common.add_argument("--algorithm-arg", action="append", metavar="KEY=VALUE",
                        help="extra algorithm parameter (repeatable), e.g. "
                        "lam=0.1 or priority=longest")
    common.add_argument("--seed", type=int, default=_COMMON_DEFAULTS["seed"])
    common.add_argument("--engine", **engine_kwargs)
    common.add_argument("--cache", **cache_kwargs)
    common.add_argument("--bound", **bound_kwargs)

    p = sub.add_parser("route", parents=[common],
                       help="run one algorithm or a --spec file")
    p.add_argument("algorithm", nargs="?", choices=algorithm_names())
    p.add_argument("--spec", help="JSON scenario spec file")
    p.set_defaults(fn=cmd_route)

    p = sub.add_parser("compare", parents=[common], help="compare algorithms")
    p.add_argument("algorithms", nargs="+", choices=algorithm_names())
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("sweep", help="run a batch of scenarios from a spec")
    p.add_argument("--spec", required=True,
                   help="JSON scenario spec file (or a shard manifest "
                   "emitted by --emit-shards)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool width (results are bit-identical to "
                   "serial for any value)")
    p.add_argument("--shards", type=int, default=None,
                   help="partition the batch into N deterministic shards "
                   "(merged output is bit-identical to the unsharded sweep)")
    p.add_argument("--shard-index", type=int, default=None,
                   help="run only shard i of the --shards plan (needs --out)")
    p.add_argument("--out", default=None,
                   help="JSONL result file for a shard run (input to "
                   "'repro merge')")
    p.add_argument("--emit-shards", default=None, metavar="DIR",
                   help="write the --shards manifests to DIR instead of "
                   "running (one JSON file per shard, for other hosts)")
    p.add_argument("--engine", **engine_kwargs)
    p.add_argument("--cache", **cache_kwargs)
    p.add_argument("--bound", **bound_kwargs)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "merge",
        help="reassemble shard result files into the batch result")
    p.add_argument("files", nargs="+", metavar="SHARD_JSONL_OR_DIR",
                   help="shard JSONL result files and/or directories of "
                   "them (a directory stands for every *.jsonl directly "
                   "inside it; any order)")
    p.add_argument("--out", default=None,
                   help="write the merged reports as canonical JSON instead "
                   "of printing the table")
    p.set_defaults(fn=cmd_merge)

    p = sub.add_parser(
        "enqueue",
        help="enqueue a sweep spec as chunks into a work-queue directory")
    p.add_argument("queue", metavar="QUEUE_DIR",
                   help="fresh queue directory (shared between workers, "
                   "e.g. on a network filesystem)")
    p.add_argument("--spec", required=True, help="JSON scenario spec file")
    p.add_argument("--chunk-size", type=int, default=8,
                   help="scenarios per chunk (default 8): the unit of "
                   "leasing, crash loss, and rebalancing")
    p.add_argument("--engine", **engine_kwargs)
    p.set_defaults(fn=cmd_enqueue)

    p = sub.add_parser(
        "work",
        help="pull and execute chunks from a queue until it drains")
    p.add_argument("queue", metavar="QUEUE_DIR")
    p.add_argument("--worker-id", default=None,
                   help="lease owner label (default: hostname-pid)")
    p.add_argument("--ttl", type=float, default=60.0,
                   help="lease seconds without a heartbeat before a chunk "
                   "is considered abandoned and requeued (default 60)")
    p.add_argument("--poll", type=float, default=1.0,
                   help="idle sleep between claim attempts (default 1s)")
    p.add_argument("--max-chunks", type=int, default=None,
                   help="exit after executing this many chunks (default: "
                   "run until the queue drains)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool width inside each chunk")
    p.add_argument("--cache", **cache_kwargs)
    p.add_argument("--bound", **bound_kwargs)
    p.set_defaults(fn=cmd_work)

    p = sub.add_parser(
        "status", help="live queue progress: chunks, leases, cache stats")
    p.add_argument("queue", metavar="QUEUE_DIR")
    p.add_argument("--ttl", type=float, default=60.0,
                   help="lease TTL used to classify leases as live or "
                   "expired (match the workers' --ttl)")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser(
        "collect",
        help="merge a drained queue's results into the batch result")
    p.add_argument("queue", metavar="QUEUE_DIR")
    p.add_argument("--out", default=None,
                   help="write the merged reports as canonical JSON "
                   "(byte-identical to 'repro merge --out' of the same "
                   "batch) instead of printing the table")
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser("list", help="registered algorithms/workloads/topologies")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("figures", help="paper figures as ASCII")
    p.set_defaults(fn=cmd_figures)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ValidationError as exc:
        # invalid input (bad spec, unsatisfied workload params, topology
        # mismatch): one clean line, not a traceback.  Only the
        # invalid-input subclass is caught -- CapacityError/RoutingError
        # and other ReproErrors indicate bugs and still propagate loudly
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
