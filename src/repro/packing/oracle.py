"""Lightest-path oracles for online path packing.

Algorithm 3 (Appendix E) assumes "an oracle that, given edge weights and a
connection request, finds a lightest legal path from the source to the
destination", where a path is legal when it has at most ``p_max`` edges.

Two oracles are provided:

* :func:`lightest_path` -- Dijkstra with lexicographic cost
  ``(weight, hops)``.  On the monotone grid DAGs used here, all paths
  between fixed endpoints have (nearly) equal hop counts, so breaking
  weight ties by hops and verifying the cap afterwards is exact in
  practice; a violation is reported to the caller, which rejects the
  request (a conservative outcome).
* :func:`hop_bounded_lightest_path` -- exact label-correcting DP over
  ``(node, hops)`` states; exponential state count is avoided because hops
  are bounded.  Used by tests as ground truth on small graphs.

Graph protocol: ``graph.out_edges(u) -> iterable[(edge_key, head)]``.
Weights are supplied by a callable ``weight(edge_key) -> float``.  Sink
nodes other than the target are skipped when the graph exposes
``is_sink`` (they are dead ends belonging to other requests).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass


@dataclass(frozen=True)
class OraclePath:
    """A path found by an oracle: edge keys, node sequence, total weight."""

    edges: tuple
    nodes: tuple
    weight: float

    @property
    def hops(self) -> int:
        return len(self.edges)


def lightest_path(graph, source, target, weight, max_hops=None):
    """Lightest ``source -> target`` path by Dijkstra, ties broken by hops.

    Returns an :class:`OraclePath` or ``None`` when the target is
    unreachable or the lightest path exceeds ``max_hops`` (the conservative
    rejection described in the module docstring).
    """
    skip_sinks = getattr(graph, "is_sink", None)
    # entries: (weight, hops, tiebreak, node); parent map for reconstruction
    counter = 0
    heap = [(0.0, 0, counter, source)]
    best: dict = {}
    parent: dict = {source: None}
    settled = set()
    while heap:
        w, h, _, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if u == target:
            break
        for edge_key, v in graph.out_edges(u):
            if v in settled:
                continue
            if skip_sinks is not None and v != target and skip_sinks(v):
                continue
            nw, nh = w + weight(edge_key), h + 1
            cur = best.get(v)
            if cur is None or (nw, nh) < cur:
                best[v] = (nw, nh)
                parent[v] = (u, edge_key)
                counter += 1
                heapq.heappush(heap, (nw, nh, counter, v))
    if target not in settled:
        return None
    edges, nodes = [], [target]
    node = target
    while parent[node] is not None:
        prev, edge_key = parent[node]
        edges.append(edge_key)
        nodes.append(prev)
        node = prev
    edges.reverse()
    nodes.reverse()
    w, h = best.get(target, (0.0, 0))
    if max_hops is not None and h > max_hops:
        return None
    return OraclePath(tuple(edges), tuple(nodes), w)


def hop_bounded_lightest_path(graph, source, target, weight, max_hops):
    """Exact lightest path using at most ``max_hops`` edges.

    Dijkstra over the layered state space ``(node, hops)``.  Ground-truth
    oracle for tests; prefer :func:`lightest_path` in production code.
    """
    skip_sinks = getattr(graph, "is_sink", None)
    counter = 0
    heap = [(0.0, 0, counter, source)]
    best = {(source, 0): 0.0}
    parent = {(source, 0): None}
    goal = None
    while heap:
        w, h, _, u = heapq.heappop(heap)
        if w > best.get((u, h), float("inf")):
            continue
        if u == target:
            goal = (u, h)
            break
        if h == max_hops:
            continue
        for edge_key, v in graph.out_edges(u):
            if skip_sinks is not None and v != target and skip_sinks(v):
                continue
            nw, state = w + weight(edge_key), (v, h + 1)
            if nw < best.get(state, float("inf")):
                best[state] = nw
                parent[state] = ((u, h), edge_key)
                counter += 1
                heapq.heappush(heap, (nw, h + 1, counter, v))
    if goal is None:
        return None
    edges, nodes = [], [goal[0]]
    state = goal
    while parent[state] is not None:
        prev_state, edge_key = parent[state]
        edges.append(edge_key)
        nodes.append(prev_state[0])
        state = prev_state
    edges.reverse()
    nodes.reverse()
    return OraclePath(tuple(edges), tuple(nodes), best[goal])
