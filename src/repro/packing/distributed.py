"""Distributed simulation of the online interval packing (Section 5.2.1).

The paper notes that the GLL82-based online rule "can be executed in a
distributed fashion in a line": processor ``a_i`` holds its local interval
``(a_i, b_i)`` (or nothing), receives the running accepted set ``I'`` from
its left neighbour, applies the accept/preempt rule locally, and forwards
``I'`` to the right.  This module simulates that protocol message by
message and is tested to produce exactly the accepted set of the
centralized :class:`~repro.packing.interval.OnlineIntervalPacker` -- the
equivalence the paper's detailed routing of special segments relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packing.interval import Interval, OnlineIntervalPacker


@dataclass
class ProtocolTrace:
    """What happened at each processor (for tests and teaching)."""

    messages: int = 0  # I' forwardings
    decisions: list = field(default_factory=list)  # (pos, action, owner)


class DistributedLinePacker:
    """One left-to-right pass of the distributed interval-packing protocol.

    ``inputs[p]`` is the list of intervals whose left endpoint is processor
    ``p`` (the packets injected there, in arrival order).  The returned
    accepted set is the protocol's final ``I'``.
    """

    def __init__(self, n: int):
        self.n = int(n)
        self.trace = ProtocolTrace()

    def run(self, inputs: dict) -> list:
        accepted: list = []  # the travelling I', kept sorted by lo

        def conflicting(iv):
            return [x for x in accepted if x.overlaps(iv)]

        for p in range(self.n):
            # the message from the left neighbour is `accepted` itself
            if p > 0:
                self.trace.messages += 1
            for iv in inputs.get(p, ()):  # local decision at processor p
                if iv.lo != p:
                    raise ValueError(
                        f"interval {iv} offered at the wrong processor {p}"
                    )
                conf = conflicting(iv)
                if not conf:
                    accepted.append(iv)
                    accepted.sort(key=lambda x: x.lo)
                    self.trace.decisions.append((p, "accept", iv.owner))
                    continue
                victim = min(conf, key=lambda x: (x.hi, x.lo))
                if iv.hi > victim.hi:
                    self.trace.decisions.append((p, "reject", iv.owner))
                else:
                    accepted.remove(victim)
                    accepted.append(iv)
                    accepted.sort(key=lambda x: x.lo)
                    self.trace.decisions.append((p, "preempt", victim.owner))
        return accepted


def centralized_reference(intervals) -> list:
    """The centralized packer run over the same left-endpoint order."""
    packer = OnlineIntervalPacker()
    for iv in sorted(intervals, key=lambda iv: (iv.lo, iv.owner)):
        packer.offer(iv)
    return sorted(packer.accepted, key=lambda iv: iv.lo)


def distribute(intervals, n: int) -> dict:
    """Group ``intervals`` by their left endpoint (the processors' local
    inputs), preserving the given order within a processor."""
    inputs: dict = {}
    for iv in intervals:
        if not (0 <= iv.lo < n and iv.hi <= n):
            raise ValueError(f"interval {iv} outside the line [0, {n}]")
        inputs.setdefault(iv.lo, []).append(iv)
    return inputs
