"""Fractional multicommodity path packing (the paper's ``opt_f``).

The optimal fractional packing (Section 3.5) is a multicommodity flow and is
computed here as a sparse LP solved with scipy's HiGHS backend.  Because the
untilted space-time graph is a monotone DAG, the per-request variable set is
restricted to the request's *window* -- vertices both reachable from the
source event and able to reach a valid destination copy -- which keeps the
LP small.

Path-length bounds (Lemma 2): every monotone path between fixed endpoints
has the same hop count, so bounding path lengths by ``p_max`` is exactly a
restriction on which destination copies are allowed:

    ``hops = dist(a, b) + (col' - col_src) <= p_max``.

:func:`fractional_opt` therefore accepts ``pmax`` and implements
``opt_f(R | p_max)`` with no extra LP machinery, which is how bench E9
validates Lemma 2.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.network.topology import Network
from repro.util.errors import ValidationError

#: refuse to build LPs beyond this many variables (guards sweep mistakes)
MAX_VARIABLES = 400_000


def _window_vertices(network, request, horizon, pmax):
    """Untilted window of ``request``: vertices on some legal path."""
    a, b = request.source, request.dest
    col_src = request.arrival - sum(a)
    t_hi = horizon if request.deadline is None else min(request.deadline, horizon)
    col_dest_hi = t_hi - sum(b)
    if pmax is not None:
        col_dest_hi = min(col_dest_hi, col_src + pmax - request.distance)
    if col_dest_hi < col_src:
        return [], col_src, col_dest_hi
    verts = []
    space_ranges = [range(lo, hi + 1) for lo, hi in zip(a, b)]

    def rec(axis, prefix):
        if axis == len(a):
            for col in range(col_src, col_dest_hi + 1):
                t = col + sum(prefix)
                if 0 <= t <= horizon:
                    verts.append((*prefix, col))
            return
        for x in space_ranges[axis]:
            rec(axis + 1, prefix + (x,))

    rec(0, ())
    return verts, col_src, col_dest_hi


def fractional_opt(network: Network, requests, horizon: int,
                   pmax: int | None = None, return_details: bool = False):
    """Optimal fractional path packing ``opt_f(R)`` (or ``opt_f(R | pmax)``).

    Returns the throughput value; with ``return_details=True`` also a per-
    request array of served fractions.
    """
    if network.any_wrap:
        # the window construction encodes the closed-form grid metric
        raise ValidationError(
            "fractional_opt requires grid geometry (no wraparound axes); "
            "use throughput_upper_bound on rings and tori"
        )
    requests = [r for r in requests if r.arrival <= horizon]
    for r in requests:
        network.check_request(r)
    d = network.d
    B = network.buffer_size

    # variable layout: per request, per window edge, plus one delivery
    # variable per destination copy.
    var_lo = []  # start index of each request's block
    var_edges = []  # per request: list of (tail, move) edges
    var_deliv = []  # per request: list of dest-copy vertices
    nvar = 0
    windows = []
    for r in requests:
        verts, col_src, col_hi = _window_vertices(network, r, horizon, pmax)
        vset = set(verts)
        edges = []
        for v in verts:
            # space moves
            for axis in range(d):
                head = list(v)
                head[axis] += 1
                head = tuple(head)
                if head in vset:
                    edges.append((v, axis))
            # buffer move
            if B > 0:
                head = (*v[:-1], v[-1] + 1)
                if head in vset:
                    edges.append((v, d))
        copies = [
            (*r.dest, col)
            for col in range(col_src, col_hi + 1)
            if (*r.dest, col) in vset
        ]
        windows.append((verts, vset))
        var_lo.append(nvar)
        var_edges.append(edges)
        var_deliv.append(copies)
        nvar += len(edges) + len(copies)
    if nvar > MAX_VARIABLES:
        raise ValidationError(
            f"LP too large ({nvar} variables > {MAX_VARIABLES}); "
            "shrink the instance or use throughput_upper_bound"
        )
    if nvar == 0:
        return (0.0, np.zeros(len(requests))) if return_details else 0.0

    rows, cols, data = [], [], []
    rhs_ub = []
    nrow = 0

    # shared capacity constraints: sum_i f_{i,e} <= cap(e)
    cap_row: dict = {}
    for i, r in enumerate(requests):
        base = var_lo[i]
        for j, (tail, move) in enumerate(var_edges[i]):
            key = (tail, move)
            row = cap_row.get(key)
            if row is None:
                row = nrow
                cap_row[key] = row
                nrow += 1
                rhs_ub.append(B if move == d
                              else network.capacity_of(tail[:-1], move))
            rows.append(row)
            cols.append(base + j)
            data.append(1.0)

    # per-request demand: total delivered <= 1
    for i, r in enumerate(requests):
        base = var_lo[i] + len(var_edges[i])
        if not var_deliv[i]:
            continue
        row = nrow
        nrow += 1
        rhs_ub.append(1.0)
        for j in range(len(var_deliv[i])):
            rows.append(row)
            cols.append(base + j)
            data.append(1.0)

    # conservation (equality): per request, per window vertex:
    #   inflow - outflow - delivery = 0 at non-source vertices;
    #   at the source event: outflow + delivery - 1 <= ... handled by demand,
    #   conservation there is: inflow(=0) + injection - outflow - delivery = 0
    #   with injection implicit; we instead write outflow + delivery <= 1 via
    #   flow-balance: treat source as supplying up to 1 unit.
    erows, ecols, edata = [], [], []
    rhs_eq = []
    neq = 0
    for i, r in enumerate(requests):
        verts, vset = windows[i]
        base = var_lo[i]
        src = (*r.source, r.arrival - sum(r.source))
        # index edges by endpoint for this request
        out_at: dict = {}
        in_at: dict = {}
        for j, (tail, move) in enumerate(var_edges[i]):
            out_at.setdefault(tail, []).append(base + j)
            if move == d:
                head = (*tail[:-1], tail[-1] + 1)
            else:
                head = list(tail)
                head[move] += 1
                head = tuple(head)
            in_at.setdefault(head, []).append(base + j)
        dbase = base + len(var_edges[i])
        deliv_at = {v: dbase + j for j, v in enumerate(var_deliv[i])}
        for v in verts:
            if v == src:
                continue  # source supply handled by the demand row
            terms = []
            for var in in_at.get(v, ()):  # +inflow
                terms.append((var, 1.0))
            for var in out_at.get(v, ()):  # -outflow
                terms.append((var, -1.0))
            if v in deliv_at:  # -delivery
                terms.append((deliv_at[v], -1.0))
            if not terms:
                continue
            for var, coeff in terms:
                erows.append(neq)
                ecols.append(var)
                edata.append(coeff)
            rhs_eq.append(0.0)
            neq += 1
        # No explicit source row: conservation over the window DAG forces
        # source outflow to equal total deliveries, which the demand row
        # already caps at 1.

    A_ub = csr_matrix((data, (rows, cols)), shape=(nrow, nvar))
    b_ub = np.array(rhs_ub)
    A_eq = (
        csr_matrix((edata, (erows, ecols)), shape=(neq, nvar)) if neq else None
    )
    b_eq = np.array(rhs_eq) if neq else None

    # objective: maximize total delivery
    obj = np.zeros(nvar)
    for i in range(len(requests)):
        dbase = var_lo[i] + len(var_edges[i])
        for j in range(len(var_deliv[i])):
            obj[dbase + j] = -1.0

    res = linprog(
        obj, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
        bounds=(0, None), method="highs",
    )
    if not res.success:
        raise ValidationError(f"LP solve failed: {res.message}")
    value = -float(res.fun)
    if not return_details:
        return value
    served = np.zeros(len(requests))
    for i in range(len(requests)):
        dbase = var_lo[i] + len(var_edges[i])
        served[i] = res.x[dbase : dbase + len(var_deliv[i])].sum()
    return value, served
