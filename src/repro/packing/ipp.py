"""Online integral path packing -- Algorithm 3 of Appendix E.

The primal-dual online path packing algorithm of Awerbuch-Azar-Plotkin /
Buchbinder-Naor, as listed in the paper.  Upon a request ``(a_i, b_i)``:

1. find a lightest path ``p`` from ``a_i`` to ``b_i`` under the current edge
   weights ``x_e`` (at most ``p_max`` edges);
2. if ``alpha(p) = sum_{e in p} x_e >= 1`` reject; otherwise route along
   ``p`` and update every edge ``e in p``:

   ``x_e <- x_e * 2^(1/c(e)) + (2^(1/c(e)) - 1) / p_max``.

Theorem 1: the algorithm is ``(2, log(1 + 3 p_max))``-competitive -- its
throughput is at least half the optimal *fractional* packing, and the load
of every edge is at most ``log2(1 + 3 p_max) * c(e)``.

The implementation also maintains the primal variables ``z_i`` and the
primal/dual objective values so tests can check the invariants of the
Theorem 1 proof (``Delta P <= 2 Delta D``, weak duality, the load bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.api.registry import register_algorithm
from repro.packing.oracle import OraclePath, lightest_path
from repro.util.errors import ValidationError


@dataclass
class IPPStats:
    """Running accounting of an :class:`OnlinePathPacking` instance."""

    accepted: int = 0
    rejected: int = 0
    primal_cost: float = 0.0  # sum_e x_e c(e) + sum_i z_i
    dual_value: float = 0.0  # number of routed requests (unit flows)
    z: list = field(default_factory=list)  # per-request primal z_i

    @property
    def total(self) -> int:
        return self.accepted + self.rejected


class OnlinePathPacking:
    """Algorithm 3 over any digraph exposing ``out_edges``/``capacity``.

    Parameters
    ----------
    graph:
        Digraph protocol object (e.g. a sketch graph or a space-time graph
        adapter).
    pmax:
        Maximum number of edges of a legal path; also the denominator of the
        weight-update additive term.
    oracle:
        Lightest-path function with the signature of
        :func:`repro.packing.oracle.lightest_path`; injectable for tests.
    strict_caps:
        When True (default), edges of infinite capacity keep weight zero
        (their update is a no-op), matching the sink edges of Section 5.1.
    """

    def __init__(self, graph, pmax: int, oracle=lightest_path):
        if pmax < 1:
            raise ValidationError(f"pmax must be >= 1, got {pmax}")
        self.graph = graph
        self.pmax = int(pmax)
        self.oracle = oracle
        self.x: dict = {}  # edge weights, default 0.0
        self.flow: dict = {}  # integral loads per edge
        self.stats = IPPStats()

    # -- weights --------------------------------------------------------------

    def weight(self, edge_key) -> float:
        return self.x.get(edge_key, 0.0)

    def load(self, edge_key) -> int:
        return self.flow.get(edge_key, 0)

    def load_bound(self) -> float:
        """Theorem 1's guaranteed bound: ``log2(1 + 3 p_max)`` times capacity."""
        return math.log2(1 + 3 * self.pmax)

    # -- the online step --------------------------------------------------------

    def route(self, source, target) -> OraclePath | None:
        """Process one request; returns the packed path or ``None`` (reject).

        Mirrors Algorithm 3: oracle call, the ``alpha(p, i) < 1`` test, the
        multiplicative weight update and the primal bookkeeping.
        """
        path = self.oracle(self.graph, source, target, self.weight, self.pmax)
        if path is None or path.weight >= 1.0:
            self.stats.rejected += 1
            self.stats.z.append(0.0)
            return None
        # accept: route along path (f(i, p) <- 1)
        for edge_key in path.edges:
            cap = self.graph.capacity(edge_key)
            self.flow[edge_key] = self.flow.get(edge_key, 0) + 1
            if math.isinf(cap):
                continue  # sink edges: 2^(1/inf) = 1, additive term 0
            factor = 2.0 ** (1.0 / cap)
            old = self.x.get(edge_key, 0.0)
            new = old * factor + (factor - 1.0) / self.pmax
            self.stats.primal_cost += (new - old) * cap
            self.x[edge_key] = new
        z_i = 1.0 - path.weight
        self.stats.z.append(z_i)
        self.stats.primal_cost += z_i
        self.stats.accepted += 1
        self.stats.dual_value += 1.0
        return path

    # -- verification helpers (used by tests and benches) ------------------------

    def max_load_ratio(self) -> float:
        """Maximum ``flow(e) / c(e)`` over all edges (the packing's beta)."""
        worst = 0.0
        for edge_key, f in self.flow.items():
            cap = self.graph.capacity(edge_key)
            if math.isinf(cap):
                continue
            worst = max(worst, f / cap)
        return worst

    def check_theorem1_invariants(self) -> None:
        """Raise when a Theorem 1 invariant is violated.

        Checks (i) primal cost <= 2 * dual value (the per-step
        ``Delta P <= 2 Delta D`` summed), and (ii) every edge load is at
        most ``log2(1 + 3 p_max) * c(e)``.
        """
        if self.stats.primal_cost > 2.0 * self.stats.dual_value + 1e-9:
            raise AssertionError(
                f"primal {self.stats.primal_cost} exceeds twice the dual "
                f"{self.stats.dual_value}"
            )
        bound = self.load_bound()
        for edge_key, f in self.flow.items():
            cap = self.graph.capacity(edge_key)
            if math.isinf(cap):
                continue
            if f > bound * cap + 1e-9:
                raise AssertionError(
                    f"edge {edge_key}: load {f} exceeds {bound} * capacity {cap}"
                )


def _ipp_sketch_requires(network, horizon) -> str | None:
    from repro.network.topology import grid_geometry_reason

    if network.d != 1:
        return "targets lines (d = 1)"
    return grid_geometry_reason(network)


@register_algorithm(
    "ipp-sketch",
    description="Theorem 1 audit: online integral path packing on the tiled "
    "sketch graph (accept/reject only; no packet-level replay).  meta "
    "carries opt_f, max_load_ratio, load_bound",
    requires=_ipp_sketch_requires,
)
def _run_ipp_sketch(network, requests, horizon, *, rng=None, engine=None,
                    tile: int = 4, pmax: int | None = None):
    """Run Algorithm 3 over the plain sketch of ``network``'s space-time
    graph and report acceptances as a synthetic simulation result.

    The throughput is the number of IPP-accepted sketch paths -- the
    quantity Theorem 1 bounds against half the fractional optimum -- not a
    replayed packet count, so reported ratios may drop below 1 (the sketch
    capacities are inflated by the load bound).  Theorem 1's primal-dual
    and load invariants are asserted on every run.
    """
    from repro.network.packet import DeliveryStatus
    from repro.network.stats import NetworkStats
    from repro.network.simulator import SimulationResult
    from repro.network.trace import TraceRecorder
    from repro.packing.lp import fractional_opt
    from repro.spacetime.graph import SpaceTimeGraph
    from repro.spacetime.sketch import PlainSketchGraph
    from repro.spacetime.tiling import Tiling

    graph = SpaceTimeGraph(network, horizon)
    sketch = PlainSketchGraph(graph, Tiling((tile, tile)))
    ipp = OnlinePathPacking(sketch, pmax=network.pmax() if pmax is None else pmax)
    stats = NetworkStats()
    status = {}
    for r in requests:
        sink = sketch.register_sink(("d", r.dest), r.dest, 0, horizon)
        accepted = (sink is not None
                    and ipp.route(sketch.source_node(r), sink) is not None)
        status[r.rid] = (DeliveryStatus.DELIVERED if accepted
                         else DeliveryStatus.REJECTED)
        stats.delivered += accepted
        stats.rejected += not accepted
    ipp.check_theorem1_invariants()
    result = SimulationResult(stats=stats, status=status,
                              trace=TraceRecorder(enabled=False),
                              engine="reference")
    result.plan_meta = {
        "opt_f": float(fractional_opt(network, requests, horizon)),
        "max_load_ratio": ipp.max_load_ratio(),
        "load_bound": ipp.load_bound(),
        "ipp": {"accepted": ipp.stats.accepted, "rejected": ipp.stats.rejected},
    }
    return result
