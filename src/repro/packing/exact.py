"""Exact integral optimum for tiny instances (test anchor).

Computing ``opt(sigma)`` exactly is integral multicommodity flow; the
branch-and-bound here is exponential and deliberately guarded, existing only
to anchor the polynomial surrogates (:func:`repro.packing.maxflow.
throughput_upper_bound`, :func:`repro.packing.lp.fractional_opt`) and the
online algorithms on instances small enough to verify by hand.
"""

from __future__ import annotations

from repro.network.topology import Network
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.util.errors import ValidationError

#: hard cap on candidate paths per request
DEFAULT_PATH_LIMIT = 2_000
#: hard cap on requests
DEFAULT_REQUEST_LIMIT = 12


def enumerate_paths(graph: SpaceTimeGraph, request, limit: int = DEFAULT_PATH_LIMIT):
    """All monotone space-time paths serving ``request``.

    Paths start at the source event and end the first time every coordinate
    reaches the destination (a packet is removed on arrival, Section 2.1),
    no later than the deadline/horizon.
    """
    src = graph.source_vertex(request)
    if not graph.valid_vertex(src):
        return []
    b = request.dest
    t_hi = graph.horizon if request.deadline is None else min(request.deadline, graph.horizon)
    d = graph.d
    out: list = []

    def rec(v, moves):
        if len(out) >= limit:
            raise ValidationError(
                f"more than {limit} candidate paths for {request}; "
                "instance too large for exact_opt_small"
            )
        if v[:-1] == b:
            out.append(STPath(src, tuple(moves), rid=request.rid))
            return
        if graph.vertex_time(v) >= t_hi:
            return
        for move in graph.moves_from(v):
            head = graph.move_head(v, move)
            # prune moves that overshoot the destination or the deadline
            if move < d and head[move] > b[move]:
                continue
            if graph.vertex_time(head) + sum(
                bb - hh for bb, hh in zip(b, head[:-1])
            ) > t_hi:
                continue
            moves.append(move)
            rec(head, moves)
            moves.pop()

    rec(src, [])
    return out


def exact_opt_small(network: Network, requests, horizon: int,
                    path_limit: int = DEFAULT_PATH_LIMIT,
                    request_limit: int = DEFAULT_REQUEST_LIMIT):
    """Exact maximum throughput by branch and bound.

    Returns ``(value, chosen)`` where ``chosen`` maps request ids to the
    selected :class:`STPath` (an optimal routing witness).
    """
    requests = [r for r in requests if r.arrival <= horizon]
    if len(requests) > request_limit:
        raise ValidationError(
            f"{len(requests)} requests exceed the exact-solver limit "
            f"{request_limit}"
        )
    graph = SpaceTimeGraph(network, horizon)
    candidates = [enumerate_paths(graph, r, path_limit) for r in requests]
    # order requests by fewest candidates first: fail fast
    order = sorted(range(len(requests)), key=lambda i: len(candidates[i]))
    ledger = graph.ledger()
    best = {"value": -1, "chosen": {}}
    chosen: dict = {}

    def rec(pos: int, served: int):
        remaining = len(order) - pos
        if served + remaining <= best["value"]:
            return
        if pos == len(order):
            if served > best["value"]:
                best["value"] = served
                best["chosen"] = dict(chosen)
            return
        i = order[pos]
        r = requests[i]
        for path in candidates[i]:
            if ledger.path_fits(path):
                ledger.add_path(path)
                chosen[r.rid] = path
                rec(pos + 1, served + 1)
                del chosen[r.rid]
                ledger.remove_path(path)
        rec(pos + 1, served)  # skip this request

    rec(0, 0)
    return best["value"], best["chosen"]
