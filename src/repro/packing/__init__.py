"""Path- and interval-packing algorithms.

* :mod:`repro.packing.ipp` -- Algorithm 3 (Appendix E): the online
  primal-dual integral path packing algorithm, ``(2, log(1+3 p_max))``-
  competitive (Theorem 1).
* :mod:`repro.packing.oracle` -- lightest-path oracles used by IPP.
* :mod:`repro.packing.interval` -- interval packing on a line: the optimal
  offline algorithm and the paper's online preemptive simulation of GLL82
  (Section 5.2.1).
* :mod:`repro.packing.maxflow` -- Dinic max-flow and the single-commodity
  throughput upper bound.
* :mod:`repro.packing.lp` -- fractional multicommodity LP (the paper's
  ``opt_f``), with the path-length-bounded variant of Lemma 2.
* :mod:`repro.packing.exact` -- exact integral optimum for tiny instances.
"""

from repro.packing.interval import Interval, OnlineIntervalPacker, max_disjoint_intervals
from repro.packing.ipp import IPPStats, OnlinePathPacking
from repro.packing.oracle import lightest_path
from repro.packing.maxflow import Dinic, throughput_upper_bound
from repro.packing.lp import fractional_opt
from repro.packing.exact import exact_opt_small
from repro.packing.distributed import DistributedLinePacker

__all__ = [
    "Dinic",
    "DistributedLinePacker",
    "IPPStats",
    "Interval",
    "OnlineIntervalPacker",
    "OnlinePathPacking",
    "exact_opt_small",
    "fractional_opt",
    "lightest_path",
    "max_disjoint_intervals",
    "throughput_upper_bound",
]
