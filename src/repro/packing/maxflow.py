"""Max-flow machinery and the single-commodity throughput upper bound.

``opt(sigma)`` -- the offline optimal throughput -- is an integral
multicommodity flow and NP-hard in general, so experiments use computable
surrogates.  The cheapest is the *single-commodity relaxation*: forget which
request each packet serves.  Any feasible routing of ``m`` packets induces a
feasible flow of value ``m`` from a super-source (fanning out to the
requests' source events) to a super-sink (collecting per-request destination
windows), hence the max flow upper-bounds ``opt``.  On lines the bound is
usually tight for monotone instances (crossing paths can be uncrossed); the
test-suite compares it against :func:`repro.packing.exact.exact_opt_small`.

The solver is a self-contained Dinic implementation (BFS level graph +
blocking-flow DFS with the current-arc optimisation), adequate for the
space-time graphs used in the benches (tens of thousands of edges).
"""

from __future__ import annotations

from collections import deque

from repro.network.topology import Network
from repro.util.errors import ValidationError


class Dinic:
    """Dinic's max-flow on a graph with ``n`` integer-id nodes."""

    def __init__(self, n: int):
        self.n = n
        self.head: list = [[] for _ in range(n)]  # node -> list of edge ids
        self.to: list = []
        self.cap: list = []

    def add_edge(self, u: int, v: int, cap: int) -> int:
        """Add directed edge ``u -> v``; returns the edge id (the reverse
        edge is ``id ^ 1``)."""
        if cap < 0:
            raise ValidationError(f"negative capacity {cap}")
        eid = len(self.to)
        self.head[u].append(eid)
        self.to.append(v)
        self.cap.append(cap)
        self.head[v].append(eid + 1)
        self.to.append(u)
        self.cap.append(0)
        return eid

    def _bfs(self, s: int, t: int) -> bool:
        self.level = [-1] * self.n
        self.level[s] = 0
        dq = deque([s])
        while dq:
            u = dq.popleft()
            for eid in self.head[u]:
                v = self.to[eid]
                if self.cap[eid] > 0 and self.level[v] < 0:
                    self.level[v] = self.level[u] + 1
                    dq.append(v)
        return self.level[t] >= 0

    def _dfs(self, s: int, t: int, limit: int) -> int:
        """Iterative augmenting DFS (paths in space-time graphs can exceed
        Python's recursion limit)."""
        path: list = []  # edge ids along the current partial path
        u = s
        while True:
            if u == t:
                f = limit
                for eid in path:
                    f = min(f, self.cap[eid])
                for eid in path:
                    self.cap[eid] -= f
                    self.cap[eid ^ 1] += f
                return f
            advanced = False
            while self.it[u] < len(self.head[u]):
                eid = self.head[u][self.it[u]]
                v = self.to[eid]
                if self.cap[eid] > 0 and self.level[v] == self.level[u] + 1:
                    path.append(eid)
                    u = v
                    advanced = True
                    break
                self.it[u] += 1
            if advanced:
                continue
            # dead end: retreat
            self.level[u] = -1
            if not path:
                return 0
            eid = path.pop()
            u = self.to[eid ^ 1]
            self.it[u] += 1

    def max_flow(self, s: int, t: int) -> int:
        if s == t:
            raise ValidationError("source equals sink")
        flow = 0
        while self._bfs(s, t):
            self.it = [0] * self.n
            while True:
                f = self._dfs(s, t, 1 << 60)
                if f == 0:
                    break
                flow += f
        return flow

    def flow_on(self, eid: int, original_cap: int) -> int:
        """Flow currently routed on edge ``eid`` given its original capacity."""
        return original_cap - self.cap[eid]


def throughput_upper_bound(network: Network, requests, horizon: int) -> int:
    """Single-commodity max-flow upper bound on offline throughput.

    Builds the (tilted) space-time flow network over times ``0..horizon``:
    transmit edges of capacity ``c``, buffer edges of capacity ``B``, a
    super-source fanning into the requests' source events, and per-request
    unit sinks collecting the valid destination copies
    ``(b_i, t')`` for ``t_i <= t' <= min(d_i, horizon)``.
    """
    requests = list(requests)
    T = int(horizon)
    n = network.n
    nt = T + 1

    def vid(node, t):
        return network.node_index(node) * nt + t

    num_st = n * nt
    S = num_st
    TT = num_st + 1
    first_sink = num_st + 2
    dinic = Dinic(first_sink + len(requests))

    B = network.buffer_size
    for node in network.nodes():
        base = network.node_index(node) * nt
        caps = [(axis, nbr, network.capacity_of(node, axis))
                for axis, nbr in network.out_neighbors(node)]
        for t in range(T):
            if B > 0:
                dinic.add_edge(base + t, base + t + 1, B)
            for axis, nbr, c in caps:
                dinic.add_edge(base + t, vid(nbr, t + 1), c)

    # super-source fan-out, aggregated per source event
    src_count: dict = {}
    for r in requests:
        network.check_request(r)
        if r.arrival > T:
            continue
        key = (r.source, r.arrival)
        src_count[key] = src_count.get(key, 0) + 1
    for (node, t), cnt in src_count.items():
        dinic.add_edge(S, vid(node, t), cnt)

    # per-request sinks over the destination window
    for i, r in enumerate(requests):
        if r.arrival > T:
            continue
        sink = first_sink + i
        hi = T if r.deadline is None else min(r.deadline, T)
        # network.dist, not the closed-form r.distance: wrapping axes
        # shorten the earliest possible arrival
        lo = r.arrival + network.dist(r.source, r.dest)
        for t in range(lo, hi + 1):
            dinic.add_edge(vid(r.dest, t), sink, 1)
        dinic.add_edge(sink, TT, 1)

    return dinic.max_flow(S, TT)
