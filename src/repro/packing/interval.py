"""Interval packing on a line (Section 5.2.1).

Detailed routing of special segments reduces to packing open intervals on a
line: keep a maximum pairwise-disjoint subset of intervals arriving in order
of left endpoints.  The paper simulates the optimal interval-scheduling rule
of Gupta-Lee-Leung [GLL82] online with preemption:

* if the new interval is disjoint from the accepted set, accept it;
* otherwise let ``p_j`` be the accepted interval overlapping it with the
  smallest right endpoint: if ``b_i > b_j`` reject the new interval, else
  accept it and *preempt* ``p_j``.

This keeps the accepted set optimal for the prefix seen so far (tested
against :func:`max_disjoint_intervals`).  Intervals are open, so sharing an
endpoint is not a conflict.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Interval:
    """An open interval ``(lo, hi)`` tagged with an owner id.

    ``owner`` participates in equality: two requests can hold
    identical-bounds intervals at different times on the same line, and
    owner-blind equality once let a victim's cleanup delete the
    *preemptor's* freshly accepted interval (leaving its committed moves
    on the line with no reservation -- a capacity violation downstream).
    """

    lo: int
    hi: int
    owner: int = field(default=-1)

    def __post_init__(self):
        if self.hi <= self.lo:
            raise ValueError(f"empty interval ({self.lo}, {self.hi})")

    def overlaps(self, other: "Interval") -> bool:
        """Open-interval overlap: touching endpoints do not conflict."""
        return self.lo < other.hi and other.lo < self.hi


def max_disjoint_intervals(intervals) -> list:
    """Optimal offline packing: greedy by earliest right endpoint [GLL82]."""
    chosen: list = []
    last_hi = None
    for iv in sorted(intervals, key=lambda i: (i.hi, i.lo)):
        if last_hi is None or iv.lo >= last_hi:
            chosen.append(iv)
            last_hi = iv.hi
    return chosen


class OnlineIntervalPacker:
    """Online preemptive interval packing for one line (row or column).

    ``offer`` processes intervals in nondecreasing left-endpoint order (the
    order in which detailed-routing requests reach the line, Section 5.2.1)
    and returns the preempted interval, ``None`` on plain acceptance, or the
    rejected interval itself.

    The accepted set is kept sorted by left endpoint in parallel arrays for
    O(log m) conflict lookup.
    """

    def __init__(self, name=None):
        self.name = name
        self._los: list = []  # sorted left endpoints of accepted intervals
        self._accepted: list = []  # Interval objects, parallel to _los
        self.preempted: list = []  # history of preempted intervals
        self.rejected: list = []  # history of rejected intervals

    # -- queries ---------------------------------------------------------------

    @property
    def accepted(self) -> list:
        return list(self._accepted)

    def conflicting(self, iv: Interval) -> list:
        """Accepted intervals overlapping ``iv`` (in left-endpoint order)."""
        # candidates: accepted intervals with lo < iv.hi whose hi > iv.lo
        idx = bisect.bisect_left(self._los, iv.hi)
        out = []
        for j in range(idx - 1, -1, -1):
            cand = self._accepted[j]
            if cand.hi <= iv.lo:
                # accepted intervals are pairwise disjoint and sorted, but an
                # earlier one may still overlap if this one ends early; since
                # disjoint+sorted implies his are increasing, we can stop.
                break
            out.append(cand)
        out.reverse()
        return out

    # -- the online rule ----------------------------------------------------------

    def would_accept(self, iv: Interval) -> bool:
        """Dry-run of :meth:`offer` (used to pick bend positions without
        mutating state)."""
        conflicts = self.conflicting(iv)
        if not conflicts:
            return True
        return iv.hi <= min(c.hi for c in conflicts)

    def offer(self, iv: Interval):
        """Process one interval with the GLL82 preemptive rule.

        Returns ``(accepted, victims)``: ``victims`` lists the preempted
        intervals (empty on plain acceptance; on rejection ``accepted`` is
        False).  With left-endpoint-sorted input at most one victim exists
        (the paper's setting); out-of-order offers may preempt several --
        acceptance then requires dominating them all.
        """
        conflicts = self.conflicting(iv)
        if not conflicts:
            self._insert(iv)
            return True, []
        if iv.hi > min(c.hi for c in conflicts):
            self.rejected.append(iv)
            return False, []
        for victim in conflicts:
            self._remove(victim)
            self.preempted.append(victim)
        self._insert(iv)
        return True, list(conflicts)

    def replace(self, old: Interval, new: Interval | None) -> None:
        """Shrink ``old`` to ``new`` (or drop it when ``new`` is None).

        Used when a bend position is fixed and the conservatively reserved
        tail of a special segment is released (Section 5.2.2)."""
        self._remove(old)
        if new is not None:
            self._insert(new)

    def insert_raw(self, iv: Interval) -> None:
        """Insert without the online rule (prefixes of preempted paths keep
        occupying the line up to the preemption point)."""
        self._insert(iv)

    def holds(self, iv: Interval) -> bool:
        idx = bisect.bisect_left(self._los, iv.lo)
        while idx < len(self._accepted) and self._accepted[idx].lo == iv.lo:
            if self._accepted[idx] == iv:
                return True
            idx += 1
        return False

    def _insert(self, iv: Interval) -> None:
        idx = bisect.bisect_left(self._los, iv.lo)
        self._los.insert(idx, iv.lo)
        self._accepted.insert(idx, iv)

    def _remove(self, iv: Interval) -> None:
        idx = bisect.bisect_left(self._los, iv.lo)
        while idx < len(self._accepted) and self._accepted[idx] != iv:
            idx += 1
        if idx == len(self._accepted):
            raise ValueError(f"interval {iv} not in accepted set")
        del self._los[idx]
        del self._accepted[idx]

    def release(self, owner: int) -> bool:
        """Drop the accepted interval owned by ``owner`` (the request was
        preempted elsewhere); returns True when one was removed."""
        for iv in self._accepted:
            if iv.owner == owner:
                self._remove(iv)
                return True
        return False
