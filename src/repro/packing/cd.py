"""Congestion + dilation throughput bound (arXiv:1206.3718).

Rothvoss's simpler proof of the O(congestion + dilation) packet-routing
theorem pairs two quantities: the *dilation* ``D`` (longest path a packet
must travel) and the *congestion* ``C`` (most loaded edge).  Read as a
converse, the same two quantities upper-bound what any offline schedule
can deliver by a horizon ``T``:

* **Dilation:** a request arriving at ``t`` with hop distance ``dist``
  and deadline ``D_r`` can only be delivered when
  ``t + dist <= min(D_r, T)``.  Infeasible requests never count.
* **Congestion:** on a uni-directional grid the per-axis planes a packet
  crosses are fixed by its endpoints -- a request from ``a`` to ``b``
  must cross the axis-``i`` cut at plane ``v`` (all edges from
  ``x_i = v`` to ``x_i = v + 1``) whenever its axis-``i`` travel passes
  ``v``, and the crossing step is confined to a window derived from its
  arrival and deadline.  The cut forwards at most its total edge
  capacity per step, so the deliverable subset of crossing requests is a
  unit-job scheduling problem with release times and deadlines, solved
  exactly by capacity-respecting EDF.

The exported :func:`cd_throughput_bound` takes the minimum of the
dilation count, every cut-congestion bound, and the single-commodity
max-flow relaxation (:func:`repro.packing.maxflow.throughput_upper_bound`).
Each term is a valid upper bound on the offline optimum, so the minimum
is too -- by construction never looser than max-flow, and strictly
tighter whenever a cut's per-request crossing windows rule out the
request/packet swaps that single-commodity flow cannot see (a unit of
flow may depart one request's source event yet be credited to another
request's deadline window; the cut argument pins every crossing to the
owning request's own window).
"""

from __future__ import annotations

import heapq

__all__ = ["cd_cut_bound", "cd_throughput_bound", "edf_max_scheduled"]


def edf_max_scheduled(jobs, cap: int) -> int:
    """Max number of unit jobs ``(release, deadline)`` schedulable on a
    ``cap``-capacity resource, one slot per job, both endpoints inclusive.

    Earliest-deadline-first over slots in increasing order is exact for
    unit-length jobs: at any slot, serving the waiting job with the
    smallest deadline never hurts (the standard exchange argument).
    """
    if cap <= 0 or not jobs:
        return 0
    jobs = sorted(jobs)  # by release, then deadline
    n, i, scheduled = len(jobs), 0, 0
    heap: list = []  # deadlines of released, still-waiting jobs
    t = jobs[0][0]
    while i < n or heap:
        if not heap:
            t = max(t, jobs[i][0])  # idle: jump to the next release
        while i < n and jobs[i][0] <= t:
            heapq.heappush(heap, jobs[i][1])
            i += 1
        while heap and heap[0] < t:
            heapq.heappop(heap)  # lapsed before a slot freed up
        served = 0
        while heap and served < cap:
            heapq.heappop(heap)
            scheduled += 1
            served += 1
        t += 1
    return scheduled


def _feasible(network, requests, horizon: int):
    """Dilation-feasible requests as ``(request, dist, latest)`` triples."""
    out = []
    for r in requests:
        if r.arrival > horizon:
            continue
        dist = network.dist(r.source, r.dest)
        latest = horizon if r.deadline is None else min(r.deadline, horizon)
        if r.arrival + dist > latest:
            continue
        out.append((r, dist, latest))
    return out


def _axis_travel(network, a, b, axis: int) -> int:
    """Axis-``axis`` hops of the monotone travel ``a -> b``."""
    if network.wrap[axis]:
        return (b[axis] - a[axis]) % network.dims[axis]
    return b[axis] - a[axis]


def _cut_capacity(network, axis: int, plane: int) -> int:
    """Total per-step capacity of the axis-``axis`` cut at ``plane``."""
    return sum(
        network.capacity_of(node, axis)
        for node in network.nodes()
        if node[axis] == plane
    )


def cd_cut_bound(network, requests, horizon: int) -> int:
    """The pure congestion + dilation bound (no max-flow term).

    Minimum over the dilation-feasible count and, for every axis cut,
    ``(#feasible requests avoiding the cut) + EDF(crossing windows)``.

    A request crossing the cut at plane ``v`` must do so during a step
    ``t`` with ``arrival + steps <= t <= latest - (travel - steps)``
    where ``steps`` is its axis travel before the cut and ``travel`` its
    total axis travel: the crossing cannot happen before the packet has
    covered the axis distance to the plane, and enough time must remain
    after it for the rest of the axis distance.  Both ends are implied
    by any delivering schedule, so the EDF maximum upper-bounds the
    deliverable crossing subset.
    """
    feasible = _feasible(network, requests, horizon)
    if not feasible:
        return 0
    best = len(feasible)
    for axis in range(network.d):
        l = network.dims[axis]
        planes = range(l) if (network.wrap[axis] and l > 1) else range(l - 1)
        for plane in planes:
            jobs = []
            for r, dist, latest in feasible:
                travel = _axis_travel(network, r.source, r.dest, axis)
                steps = (plane - r.source[axis]) % l if network.wrap[axis] \
                    else plane - r.source[axis]
                if not 0 <= steps < travel:
                    continue  # this request never crosses the cut
                jobs.append((r.arrival + steps, latest - (travel - steps)))
            if not jobs:
                continue
            cap = _cut_capacity(network, axis, plane)
            crossed = edf_max_scheduled(jobs, cap)
            best = min(best, len(feasible) - len(jobs) + crossed)
    return best


def cd_throughput_bound(network, requests, horizon: int) -> int:
    """Offline throughput upper bound: C+D cut analysis sharpening max-flow.

    Returns ``min(cd_cut_bound, maxflow)`` -- never looser than the
    single-commodity max-flow relaxation, strictly tighter when a cut's
    per-request crossing windows bind.
    """
    from repro.packing.maxflow import throughput_upper_bound

    requests = list(requests)
    cut = cd_cut_bound(network, requests, horizon)
    if cut == 0:
        return 0
    return min(cut, throughput_upper_bound(network, requests, horizon))
