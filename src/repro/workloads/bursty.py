"""Bursty traffic: hotspots in space and time.

Motivated by the paper's "dense area" discussion (Section 1.3, Random
Sparsification): the number of packets wanting to leave a region scales
with its volume while the escape capacity scales with its perimeter, so
bursts concentrated at few nodes are the regime separating clever admission
control from greedy behaviour.
"""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator


@register_workload(
    "bursty",
    description="bursts at random (node, time) hotspots (dense-area regime, "
    "Section 1.3)",
)
def bursty_requests(network: Network, bursts: int, burst_size: int,
                    horizon: int, rng=None, spread: int = 0) -> list:
    """``bursts`` bursts at random (node, time) hotspots; each burst emits
    ``burst_size`` requests from nodes within ``spread`` hops of the
    hotspot, with independent random destinations."""
    rng = as_generator(rng)
    out = []
    dims = network.dims
    for _ in range(bursts):
        center = tuple(int(rng.integers(0, l)) for l in dims)
        t0 = int(rng.integers(0, max(1, horizon)))
        for _ in range(burst_size):
            src = tuple(
                int(min(l - 1, max(0, x + rng.integers(-spread, spread + 1))))
                for x, l in zip(center, dims)
            )
            dst = tuple(int(rng.integers(s, l)) for s, l in zip(src, dims))
            if src == dst:
                dst = tuple(min(s + 1, l - 1) for s, l in zip(src, dims))
                if src == dst:
                    continue
            out.append(Request(src, dst, t0))
    return out
