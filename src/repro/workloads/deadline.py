"""Deadline workloads (Section 5.4 / experiment E12)."""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator
from repro.workloads.uniform import uniform_requests


def with_deadlines(requests, slack: int, rng=None, jitter: int = 0) -> list:
    """Copy ``requests`` with deadlines ``t_i + dist + slack (+- jitter)``.

    ``slack = 0`` forces delivery along a shortest schedule (no buffering
    allowed anywhere); larger slack admits buffering.
    """
    rng = as_generator(rng)
    out = []
    for r in requests:
        extra = slack if jitter == 0 else slack + int(rng.integers(0, jitter + 1))
        out.append(
            Request(r.source, r.dest, r.arrival,
                    deadline=r.arrival + r.distance + extra, rid=r.rid)
        )
    return out


@register_workload(
    "deadline",
    description="uniform requests with feasible deadlines arrival + distance "
    "+ slack (+- jitter)",
)
def deadline_requests(network: Network, num: int, horizon: int, slack: int,
                      rng=None, jitter: int = 0) -> list:
    """Uniform requests with feasible deadlines of the given slack."""
    rng = as_generator(rng)
    base = uniform_requests(network, num, horizon, rng)
    return with_deadlines(base, slack, rng, jitter)
