"""Deadline workloads (Section 5.4 / experiment E12)."""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator
from repro.workloads.uniform import uniform_requests


def with_deadlines(requests, slack: int, rng=None, jitter: int = 0,
                   network: Network | None = None) -> list:
    """Copy ``requests`` with deadlines ``t_i + dist + slack (+- jitter)``.

    ``slack = 0`` forces delivery along a shortest schedule (no buffering
    allowed anywhere); larger slack admits buffering.

    ``network`` selects the distance metric: when given, ``network.dist``
    is used (required for wraparound topologies, where the closed-form
    coordinate difference overstates the distance); otherwise the
    closed-form ``r.distance`` applies.  On dominating draws over
    non-wrapping axes the two agree, so omitting ``network`` is safe for
    the built-in grid workloads.
    """
    rng = as_generator(rng)
    out = []
    for r in requests:
        extra = slack if jitter == 0 else slack + int(rng.integers(0, jitter + 1))
        dist = r.distance if network is None else network.dist(r.source, r.dest)
        out.append(
            Request(r.source, r.dest, r.arrival,
                    deadline=r.arrival + dist + extra, rid=r.rid)
        )
    return out


@register_workload(
    "deadline",
    description="uniform requests with feasible deadlines arrival + distance "
    "+ slack (+- jitter)",
)
def deadline_requests(network: Network, num: int, horizon: int, slack: int,
                      rng=None, jitter: int = 0) -> list:
    """Uniform requests with feasible deadlines of the given slack."""
    rng = as_generator(rng)
    base = uniform_requests(network, num, horizon, rng)
    return with_deadlines(base, slack, rng, jitter, network=network)
