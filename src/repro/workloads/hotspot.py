"""Hotspot workload: funnel traffic across a single hot link.

Every request crosses the axis-0 edge whose tail sits at the middle of the
axis (``m = (l - 1) // 2``, off-axis coordinates 0).  Sources are drawn up
to ``span`` hops behind the hot tail, destinations up to ``span`` hops past
the hot head, so the per-step demand on the hot link is roughly
``num / horizon`` regardless of its capacity.  Combined with a
``link_caps`` override on that edge this exercises per-edge capacity
enforcement: the hot link saturates while the rest of the network idles.

On wrapping axes (rings, tori) the offsets are taken modulo the axis
length, so the workload is well-defined on every registered topology; on
non-wrapping axes the span is clamped so draws stay inside the grid.
"""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.errors import ValidationError
from repro.util.rng import as_generator


def hot_edge(network: Network) -> tuple:
    """The ``(tail, axis)`` of the workload's hot link (axis 0, middle of
    the axis, off-axis coordinates 0)."""
    l = network.dims[0]
    m = (l - 1) // 2
    tail = (m,) + (0,) * (network.d - 1)
    return tail, 0


@register_workload(
    "hotspot",
    description="all requests cross one middle axis-0 edge (sources up to "
    "span hops behind it, destinations up to span hops past it); pair with "
    "link_caps on that edge to stress per-edge capacity",
)
def hotspot_requests(network: Network, num: int, horizon: int, rng=None,
                     span: int = 2) -> list:
    """``num`` requests that all traverse the hot edge of ``network``.

    Each request's source lies ``back in [0, span]`` hops before the hot
    tail along axis 0 and its destination ``fwd in [0, span]`` hops past
    the hot head; arrivals are uniform in ``[0, horizon)``.  Offsets wrap
    on wrapping axes and are clamped to the grid otherwise.
    """
    if span < 0:
        raise ValidationError(f"span must be >= 0, got {span}")
    rng = as_generator(rng)
    l = network.dims[0]
    if l < 2:
        raise ValidationError(
            f"hotspot workload needs axis 0 length >= 2, got {l}")
    (m, *rest), axis = hot_edge(network)
    wrap0 = network.wrap[axis]
    if wrap0:
        # keep src strictly behind dst around the ring: back + fwd <= l - 2
        max_back = min(span, l - 2)
    else:
        max_back = min(span, m)
    out = []
    for _ in range(num):
        back = int(rng.integers(0, max_back + 1))
        if wrap0:
            max_fwd = min(span, l - 2 - back)
        else:
            max_fwd = min(span, l - 2 - m)
        fwd = int(rng.integers(0, max_fwd + 1))
        s0 = (m - back) % l if wrap0 else m - back
        d0 = (m + 1 + fwd) % l if wrap0 else m + 1 + fwd
        src = (s0, *rest)
        dst = (d0, *rest)
        t = int(rng.integers(0, max(1, horizon)))
        out.append(Request(src, dst, t))
    return out
