"""Adversarial instances behind the published lower bounds (Table 1 / E1).

* :func:`clogging_instance` -- the [AKOR03]-style greedy killer on a line:
  a sustained stream of maximum-distance packets saturates every link,
  after which each intermediate node offers single-hop packets.  The
  optimum rejects the long stream and serves ~``n`` short packets per
  step; greedy (which cannot decline work) keeps forwarding the long
  packets and drops the short ones.  Greedy's ratio grows polynomially
  with ``n``; nearest-to-go fares better (short packets win contention),
  matching the Omega(sqrt n) vs O~(sqrt n) separation's direction.
* :func:`distance_cascade_instance` -- geometric distance classes
  (1, 2, 4, ..., n/2) injected so that serving a longer class always blocks
  geometrically many shorter ones; stresses NTG as well, in the spirit of
  the Omega(sqrt n) constructions.
* :func:`dense_area_instance` -- many sources packed in a small region all
  wanting to leave it (Section 1.3's perimeter-vs-area obstruction; the
  motivation for random sparsification).
* :func:`grid_crossfire_instance` -- on a 2-d grid, row traffic and column
  traffic cross in a central block, the regime of [AKK09]'s
  Theta~(n^{2/3}) bound for 1-bend NTG.
"""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import GridNetwork, LineNetwork, Network
from repro.util.errors import ValidationError
from repro.util.rng import as_generator


def _line_only(network, horizon) -> str | None:
    return None if network.d == 1 else "targets lines (d = 1)"


def _grid2d_only(network, horizon) -> str | None:
    return None if network.d == 2 else "targets 2-d grids"


@register_workload(
    "clogging",
    description="[AKOR03]-style greedy killer on a line: a long saturating "
    "stream plus per-node one-hop packets (deterministic)",
    requires=_line_only,
)
def clogging_instance(network: LineNetwork, duration: int | None = None,
                      shorts_per_node: int | None = None) -> list:
    """Long-stream-plus-shorts greedy killer on a line.

    For ``duration`` steps, ``c`` packets ``0 -> n-1`` are injected at node
    0 per step.  While the stream passes node ``i``, the node offers
    ``shorts_per_node`` one-hop packets ``i -> i+1`` per step.
    """
    n, c = network.length, network.capacity
    if n < 4:
        raise ValidationError("clogging instance needs n >= 4")
    duration = duration if duration is not None else n
    shorts = shorts_per_node if shorts_per_node is not None else c
    out = []
    for t in range(duration):
        for _ in range(c):
            out.append(Request.line(0, n - 1, t))
    # the long wave front reaches node i at time ~i and keeps the link
    # (i, i+1) busy until ~i + duration
    for i in range(1, n - 1):
        for t in range(i, i + duration):
            for _ in range(shorts):
                out.append(Request.line(i, i + 1, t))
    return out


@register_workload(
    "distance-cascade",
    description="geometric distance classes: serving a longer class blocks "
    "geometrically many shorter ones",
    requires=_line_only,
)
def distance_cascade_instance(network: LineNetwork, rng=None,
                              per_class: int | None = None) -> list:
    """Geometric distance classes: 2^j-hop packets, injected at multiples
    of 2^j, so each class saturates the links the next shorter class
    needs."""
    rng = as_generator(rng)
    n, c = network.length, network.capacity
    out = []
    j = 0
    while (1 << j) < n:
        dist = 1 << j
        count = per_class if per_class is not None else c
        for start in range(0, n - dist, dist):
            for _ in range(count):
                t = int(rng.integers(0, max(1, j + 1)))
                out.append(Request.line(start, start + dist, t))
        j += 1
    return out


@register_workload(
    "dense-area",
    description="a low-corner box floods the far corner: volume-vs-perimeter "
    "obstruction (Section 1.3, deterministic)",
)
def dense_area_instance(network: Network, area_side: int, per_node: int,
                        t0: int = 0) -> list:
    """All nodes of the low-corner ``area_side``-box inject ``per_node``
    packets at time ``t0`` destined to the far corner of the grid.

    The number of injected packets scales with the box volume while the
    escape capacity scales with its surface -- Section 1.3's motivation
    for random sparsification."""
    dims = network.dims
    if any(area_side > l for l in dims):
        raise ValidationError(f"area side {area_side} exceeds grid {dims}")
    far = tuple(l - 1 for l in dims)
    out = []
    import itertools

    for src in itertools.product(*(range(area_side) for _ in dims)):
        for _ in range(per_node):
            out.append(Request(src, far, t0))
    return out


@register_workload(
    "crossfire",
    description="row and column streams crossing in the centre of a 2-d grid "
    "([AKK09] n^{2/3} regime)",
    requires=_grid2d_only,
)
def grid_crossfire_instance(network: GridNetwork, width: int | None = None,
                            rng=None) -> list:
    """Row streams and column streams crossing in the centre of a 2-d grid
    (the contention pattern of the [AKK09] n^{2/3} analysis)."""
    if network.d != 2:
        raise ValidationError("crossfire instance is for 2-d grids")
    rng = as_generator(rng)
    lx, ly = network.dims
    width = width if width is not None else max(1, min(lx, ly) // 4)
    out = []
    y0 = ly // 2 - width // 2
    x0 = lx // 2 - width // 2
    for y in range(y0, min(ly, y0 + width)):
        for t in range(width):
            out.append(Request((0, y), (lx - 1, y), t))
    for x in range(x0, min(lx, x0 + width)):
        for t in range(width):
            out.append(Request((x, 0), (x, ly - 1), t))
    return out


@register_workload(
    "separation",
    description="Appendix F remark 1: a transit packet meets a local "
    "injection at one node (the B = c = 1 node-model separation instance)",
    requires=_line_only,
)
def separation_requests(network: LineNetwork) -> list:
    """The two-request instance separating the node models at ``B = c = 1``.

    One packet travels ``0 -> 2``; a second is injected at node 1 exactly
    when the first arrives there.  Model 1 keeps both (forward one, store
    the other); Model 2 must funnel both through the single buffer slot
    and drops one.
    """
    if network.length < 3:
        raise ValidationError("separation instance needs a line of length >= 3")
    return [Request.line(0, 2, 0), Request.line(1, 2, 1)]


@register_workload(
    "congestion-mix",
    description="crossfire streams + a dense low-corner box + uniform "
    "background: the Section 1.3 congestion mix where 1-bend routing pays",
    requires=_grid2d_only,
)
def congestion_mix_instance(network: GridNetwork, area_side: int,
                            per_node: int, num: int, horizon: int,
                            rng=None, width: int | None = None) -> list:
    """Crossing streams, a dense source block, and background traffic on a
    2-d grid -- the workload of the Table 1 grid baseline bench (E1)."""
    from repro.workloads.uniform import uniform_requests

    rng = as_generator(rng)
    return (
        grid_crossfire_instance(network, width=width, rng=rng)
        + dense_area_instance(network, area_side=area_side, per_node=per_node)
        + uniform_requests(network, num, horizon, rng=rng)
    )
