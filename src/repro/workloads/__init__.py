"""Request-sequence generators: synthetic traffic and the published
adversarial constructions the lower bounds are built on."""

from repro.workloads.uniform import uniform_requests
from repro.workloads.poisson import poisson_requests
from repro.workloads.bursty import bursty_requests
from repro.workloads.permutation import permutation_requests
from repro.workloads.deadline import with_deadlines, deadline_requests
from repro.workloads.hotspot import hotspot_requests
from repro.workloads.adversarial import (
    clogging_instance,
    dense_area_instance,
    distance_cascade_instance,
    grid_crossfire_instance,
)

__all__ = [
    "bursty_requests",
    "clogging_instance",
    "deadline_requests",
    "dense_area_instance",
    "distance_cascade_instance",
    "grid_crossfire_instance",
    "hotspot_requests",
    "permutation_requests",
    "poisson_requests",
    "uniform_requests",
    "with_deadlines",
]
