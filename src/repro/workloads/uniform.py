"""Uniform random request generation."""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator


@register_workload(
    "uniform",
    description="num requests with uniform source, dominating destination, "
    "and arrival in [0, horizon]",
)
def uniform_requests(network: Network, num: int, horizon: int, rng=None,
                     min_distance: int = 1) -> list:
    """``num`` requests with uniformly random source, destination
    (dominating the source by at least ``min_distance`` hops in total) and
    arrival time in ``[0, horizon]``.

    Sources/destinations are drawn by sampling the source uniformly, then
    each destination coordinate uniformly from ``[source_i, l_i)``;
    degenerate draws below ``min_distance`` are resampled (bounded retries,
    then the farthest corner is used).
    """
    rng = as_generator(rng)
    out = []
    dims = network.dims
    for _ in range(num):
        for _attempt in range(64):
            src = tuple(int(rng.integers(0, l)) for l in dims)
            dst = tuple(int(rng.integers(s, l)) for s, l in zip(src, dims))
            if sum(d - s for s, d in zip(src, dst)) >= min_distance:
                break
        else:
            src = tuple(0 for _ in dims)
            dst = tuple(l - 1 for l in dims)
        t = int(rng.integers(0, max(1, horizon)))
        out.append(Request(src, dst, t))
    return out
