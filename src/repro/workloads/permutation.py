"""Permutation traffic: each node sends to a distinct random target.

Classic crossbar workload (the paper's Section 1.1 notes 2-d grids serve
as crossbars): node ``i`` of the first half sends to a random node of the
second half, all injected in a short window.
"""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator


@register_workload(
    "permutation",
    description="low-half sources send to a random permutation of high-half "
    "targets, one permutation per round",
)
def permutation_requests(network: Network, rng=None, window: int = 1,
                         rounds: int = 1) -> list:
    """For each round, sources in the "low" half of the grid send to a
    random permutation of targets in the "high" half (componentwise
    dominance is guaranteed by the half split); arrivals are uniform in
    ``[r * window, (r+1) * window)``."""
    rng = as_generator(rng)
    dims = network.dims
    lows = [n for n in network.nodes() if all(x < l // 2 for x, l in zip(n, dims))]
    highs = [n for n in network.nodes() if all(x >= l // 2 for x, l in zip(n, dims))]
    out = []
    if not lows or not highs:
        return out
    for r in range(rounds):
        perm = rng.permutation(len(highs))
        for i, src in enumerate(lows):
            dst = highs[perm[i % len(highs)]]
            t = r * window + int(rng.integers(0, max(1, window)))
            out.append(Request(src, dst, t))
    return out
