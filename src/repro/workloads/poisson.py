"""Poisson-arrival traffic (open-loop load model)."""

from __future__ import annotations

from repro.api.registry import register_workload
from repro.network.packet import Request
from repro.network.topology import Network
from repro.util.rng import as_generator


@register_workload(
    "poisson",
    description="Poisson(rate) arrivals per step (open-loop load model)",
)
def poisson_requests(network: Network, rate: float, horizon: int, rng=None,
                     max_requests: int | None = None) -> list:
    """Per time step, a Poisson(``rate``) number of requests arrive, each
    with a uniform source and a uniform dominating destination.

    ``rate`` is the network-wide arrival intensity per step; ``rate / n``
    per node.  Use ``max_requests`` to cap the sequence length in sweeps.
    """
    rng = as_generator(rng)
    out = []
    dims = network.dims
    for t in range(horizon + 1):
        k = int(rng.poisson(rate))
        for _ in range(k):
            src = tuple(int(rng.integers(0, l)) for l in dims)
            dst = tuple(int(rng.integers(s, l)) for s, l in zip(src, dims))
            if src == dst:
                continue
            out.append(Request(src, dst, t))
            if max_requests is not None and len(out) >= max_requests:
                return out
    return out
