"""Section 7.8: small buffers, large link capacities (``B <= log n <= c``).

Tiles are single-column slivers of height ``Q ~ log n / B``; each tile is
split into a lower and an upper half.  ``R+`` holds the requests whose
source lies in the lower half.  I-routing climbs the first ``3c/4``
requests of a tile vertically (the remaining ``c/4`` of each column's
capacity stays reserved for paths entering from the south); horizontal
(buffer) crossings are confined to the upper half, where the paper places
a single-column X-routing.
"""

from __future__ import annotations

import math

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.deterministic.geometry import plain_sketch_tiles, tile_moves
from repro.core.randomized.combined import proposition14_filter
from repro.network.topology import Network
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError
from repro.util.rng import as_generator

NORTH, EAST = 0, 1


class SmallBufferLineRouter(Router):
    """Theorem 31: O(log n)-competitive routing when ``B <= log n <= c``."""

    def __init__(self, network: Network, horizon: int, rng=None,
                 gamma: float = 200.0, lam: float | None = None,
                 strict: bool = True):
        if network.d != 1:
            raise ValidationError("SmallBufferLineRouter targets lines")
        n, B, c = network.n, network.buffer_size, network.min_capacity
        logn = max(1.0, math.log2(n))
        if strict and (B > logn or c < logn):
            raise ValidationError(
                f"Section 7.8 requires B <= log n <= c; got B={B}, c={c}, n={n}"
            )
        self.network = network
        self.graph = SpaceTimeGraph(network, horizon)
        self.rng = as_generator(rng)
        self.Q = 2 * max(1, math.ceil(logn / (2 * max(1, B))))
        # Section 7.8: p_max = 2 (n-1)(1 + B/c), polynomial without tiling
        self.pmax = max(1, math.ceil(2 * (n - 1) * (1 + B / c)))
        self.k = max(1, math.ceil(math.log2(1 + 3 * self.pmax)))
        self.lam = lam if lam is not None else 1.0 / (gamma * self.k)
        phase = int(self.rng.integers(0, self.Q))
        self.tiling = Tiling((self.Q, 1), (phase, 0))
        self.sketch = PlainSketchGraph(self.graph, self.tiling)
        self.ipp = OnlinePathPacking(self.sketch, pmax=self.pmax)
        self.ledger = self.graph.ledger()
        self.sparse_load: dict = {}
        self.iroute_exits: dict = {}  # tile -> vertically I-routed count
        self.iroute_cap = max(1, (3 * c) // 4)
        self.counters = {
            "not_rplus": 0, "ipp_rejected": 0, "coin_rejected": 0,
            "load_rejected": 0, "detail_rejected": 0, "delivered": 0,
        }

    def in_r_plus(self, request) -> bool:
        """Source in the lower half of its tile (Section 7.8)."""
        v = self.graph.source_vertex(request)
        return self.tiling.local(v)[0] < self.Q // 2

    def route(self, requests) -> Plan:
        plan = Plan()
        kept, dropped = proposition14_filter(
            list(requests), self.network.buffer_size + self.network.min_capacity
        )
        for r in self.arrival_order(kept):
            if r.is_trivial():
                src = self.graph.source_vertex(r)
                if self.graph.valid_vertex(src):
                    plan.record(r.rid, RouteOutcome.DELIVERED, STPath(src, (), rid=r.rid))
                else:
                    plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            if not self.in_r_plus(r):
                self.counters["not_rplus"] += 1
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            outcome, path = self._route_one(r)
            plan.record(r.rid, outcome, path)
        for r in dropped:
            plan.record(r.rid, RouteOutcome.REJECTED)
        plan.meta["small_buffers"] = dict(self.counters)
        return plan

    def _route_one(self, request):
        src = self.graph.source_vertex(request)
        if not self.graph.valid_vertex(src):
            return RouteOutcome.REJECTED, None
        sink = self.sketch.register_sink(
            ("dest", request.dest), request.dest, 0, self.graph.horizon
        )
        if sink is None:
            return RouteOutcome.REJECTED, None
        sketch_path = self.ipp.route(self.sketch.source_node(request), sink)
        if sketch_path is None:
            self.counters["ipp_rejected"] += 1
            return RouteOutcome.REJECTED, None
        if self.rng.random() >= self.lam:
            self.counters["coin_rejected"] += 1
            return RouteOutcome.REJECTED, None
        edges = [e for e in sketch_path.edges if e[0] == "e"]
        for e in edges:
            if (self.sparse_load.get(e, 0) + 1) >= self.sketch.capacity(e) / 4.0:
                self.counters["load_rejected"] += 1
                return RouteOutcome.REJECTED, None
        tiles = plain_sketch_tiles(sketch_path)
        path = self._detailed(request, src, tiles)
        if path is None:
            self.counters["detail_rejected"] += 1
            return RouteOutcome.REJECTED, None
        for e in edges:
            self.sparse_load[e] = self.sparse_load.get(e, 0) + 1
        self.counters["delivered"] += 1
        return RouteOutcome.DELIVERED, path

    # -- detailed routing over single-column tiles --------------------------

    def _try_run(self, cells, pos, axis, length):
        v = pos
        for _ in range(length):
            if not self.graph.valid_move(v, axis) or self.ledger.residual(axis, v) < 1:
                return None
            cells.append((axis, v))
            v = (v[0] + 1, v[1]) if axis == NORTH else (v[0], v[1] + 1)
        return v

    def _detailed(self, request, src, tiles):
        moves = tile_moves(tiles)
        cells: list = []
        b = request.dest[0]
        tile0 = tiles[0]
        r0, _ = self.tiling.origin(tile0)
        mid_r = r0 + self.Q // 2
        if self.iroute_exits.get(tile0, 0) >= self.iroute_cap:
            return None
        if len(tiles) == 1:
            # near-like: the destination's row lies inside the source tile
            pos = self._try_run(cells, src, NORTH, b - src[0])
        else:
            # I-routing: climb out of the lower half
            pos = self._try_run(cells, src, NORTH, mid_r - src[0])
            if pos is None:
                return None
            entry = "south_own"
            for idx, tile in enumerate(tiles):
                if idx == len(tiles) - 1:
                    if pos[0] > b:
                        return None
                    pos = self._try_run(cells, pos, NORTH, b - pos[0])
                    break
                pos = self._through_tile(cells, pos, tile, entry, moves[idx])
                if pos is None:
                    return None
                entry = "south" if moves[idx] == NORTH else "west"
        if pos is None:
            return None
        t = self.graph.vertex_time(pos)
        if request.deadline is not None and t > request.deadline:
            return None
        for axis, tail in cells:
            self.ledger.add_edge(axis, tail)
        self.iroute_exits[tile0] = self.iroute_exits.get(tile0, 0) + 1
        return STPath(src, tuple(a for a, _ in cells), rid=request.rid)

    def _through_tile(self, cells, pos, tile, entry, exit_axis):
        r0, _ = self.tiling.origin(tile)
        mid_r, hi_r = r0 + self.Q // 2, r0 + self.Q
        if entry == "west" and pos[0] < mid_r:
            return None  # invariant: buffer crossings in the upper half
        if exit_axis == NORTH:
            return self._try_run(cells, pos, NORTH, hi_r - pos[0])
        # exit east: climb into the upper half, buffer east at the first
        # feasible row (single-column X-routing)
        start = max(pos[0], mid_r)
        lead = self._try_run(cells, pos, NORTH, start - pos[0])
        if lead is None:
            return None
        for r in range(start, hi_r):
            probe: list = []
            p = self._try_run(probe, lead, NORTH, r - lead[0])
            if p is None:
                return None
            p2 = self._try_run(probe, p, EAST, 1)
            if p2 is not None:
                cells.extend(probe)
                return p2
        return None
