"""Tiling and sparsification parameters of the randomized algorithm.

Definition 15 (for ``B, c in [1, log n]``):

* if ``B * c < log n``: ``tau = 2 ceil(log n / c)``, ``Q = 2 ceil(log n / B)``;
* else ``tau = 2B``, ``Q = 2c``.

Proposition 16 consequences: ``tau + Q = O(log n)``, every sketch edge has
capacity at least ``log n`` and the max/min capacity ratio is at most 2.
The sketch path length bound is ``p_max = 4n`` (Section 7.4.1), giving
``k = ceil(log2(1 + 3 p_max))`` and the sparsification probability
``lambda = 1 / (gamma k)`` with ``gamma = 200`` in the paper's analysis.
``gamma`` is exposed because the Chernoff-driven constant is far larger
than needed in practice (ablation bench E16 sweeps it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.topology import Network
from repro.util.errors import ValidationError

#: the paper's sparsification constant (proof of Lemma 21)
PAPER_GAMMA = 200.0


@dataclass(frozen=True)
class RandomizedParams:
    """Resolved parameters for one run of the randomized algorithm."""

    n: int
    B: int
    c: int
    tau: int  # tile length (column axis)
    Q: int  # tile height (space axis)
    pmax: int  # sketch path length bound (4n)
    k: int  # ceil(log2(1 + 3 pmax))
    lam: float  # sparsification probability
    gamma: float

    @classmethod
    def for_network(cls, network: Network, gamma: float = PAPER_GAMMA,
                    lam: float | None = None) -> "RandomizedParams":
        """Definition 15 parameters for ``network`` (a line)."""
        if network.d != 1:
            raise ValidationError("the randomized algorithm targets lines (d = 1)")
        n = network.n
        B, c = network.buffer_size, network.min_capacity
        if B < 1:
            raise ValidationError("randomized algorithm requires B >= 1")
        logn = max(1.0, math.log2(n))
        if B > logn or c > logn:
            raise ValidationError(
                f"Definition 15 covers B, c in [1, log n] = [1, {logn:.1f}]; "
                f"got B={B}, c={c}.  Use the large/small-buffer variants."
            )
        if B * c < logn:
            tau = 2 * math.ceil(logn / c)
            Q = 2 * math.ceil(logn / B)
        else:
            tau = 2 * B
            Q = 2 * c
        pmax = 4 * n
        k = max(1, math.ceil(math.log2(1 + 3 * pmax)))
        lam_val = lam if lam is not None else 1.0 / (gamma * k)
        return cls(n=n, B=B, c=c, tau=tau, Q=Q, pmax=pmax, k=k,
                   lam=lam_val, gamma=gamma)

    @property
    def sketch_capacity(self) -> int:
        """``c_S``: capacity of sketch edges (the smaller of the two kinds;
        Prop. 16 bounds their ratio by 2 and the text equalises them)."""
        return min(self.Q * self.B, self.tau * self.c)

    @property
    def side_cap(self) -> int:
        """Per-side SW-quadrant exit cap ``c_S / 4`` (invariant 6)."""
        return max(1, self.sketch_capacity // 4)

    def check_proposition16(self) -> None:
        """Raise unless the Prop. 16 guarantees hold (used in tests)."""
        logn = max(1.0, math.log2(self.n))
        if self.tau + self.Q > 16 * logn + 8:
            raise AssertionError(f"tau + Q = {self.tau + self.Q} not O(log n)")
        if self.n >= 4:
            if min(self.Q * self.B, self.tau * self.c) < logn:
                raise AssertionError("sketch capacity below log n")
        hi = max(self.Q * self.B, self.tau * self.c)
        lo = min(self.Q * self.B, self.tau * self.c)
        if hi > 2 * lo:
            raise AssertionError(
                f"capacity ratio {hi}/{lo} exceeds 2 (Prop. 16(3))"
            )
