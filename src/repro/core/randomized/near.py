"""The Near algorithm (Section 7.5): greedy vertical routing.

A near request can reach a copy of its destination inside its own tile; the
algorithm simply attempts the straight vertical path -- transmit on every
step, no buffering -- from ``(a_i, t_i)`` to ``(b_i, t_i + b_i - a_i)``,
rejecting when any edge on it is saturated.  Theorem 27: per tile this is
within ``O(Q c / c) = O(log n)`` of the optimum restricted to near
requests.
"""

from __future__ import annotations

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.randomized.params import RandomizedParams
from repro.network.topology import Network
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.tiling import Tiling

NORTH = 0


class NearRouter(Router):
    """Greedy vertical routing for the Near class."""

    def __init__(self, network: Network, horizon: int, params: RandomizedParams,
                 phases=(0, 0)):
        self.network = network
        self.params = params
        self.graph = SpaceTimeGraph(network, horizon)
        self.tiling = Tiling((params.Q, params.tau), tuple(phases))
        self.ledger = self.graph.ledger()
        self.counters = {"delivered": 0, "saturated": 0, "invalid": 0}

    def is_near(self, request) -> bool:
        a, b = request.source[0], request.dest[0]
        return self.tiling.tile_of_axis(0, a) == self.tiling.tile_of_axis(0, b)

    def route(self, requests) -> Plan:
        plan = Plan()
        for r in self.arrival_order(requests):
            if not self.is_near(r) and not r.is_trivial():
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            outcome, path = self.route_one(r)
            plan.record(r.rid, outcome, path)
        plan.meta["near"] = dict(self.counters)
        return plan

    def route_one(self, request):
        src = self.graph.source_vertex(request)
        if not self.graph.valid_vertex(src):
            self.counters["invalid"] += 1
            return RouteOutcome.REJECTED, None
        b = request.dest[0]
        length = b - src[0]
        arrive = request.arrival + length
        if request.deadline is not None and arrive > request.deadline:
            return RouteOutcome.REJECTED, None
        v = src
        cells = []
        for _ in range(length):
            if not self.graph.valid_move(v, NORTH) or self.ledger.residual(NORTH, v) < 1:
                self.counters["saturated" if self.graph.valid_move(v, NORTH) else "invalid"] += 1
                return RouteOutcome.REJECTED, None
            cells.append(v)
            v = (v[0] + 1, v[1])
        for tail in cells:
            self.ledger.add_edge(NORTH, tail)
        self.counters["delivered"] += 1
        return RouteOutcome.DELIVERED, STPath(src, (NORTH,) * length, rid=request.rid)
