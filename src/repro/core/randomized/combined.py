"""Classify-and-select: the complete randomized algorithm (Section 7.6).

1. choose the tiling parameters ``tau, Q`` (Definition 15);
2. draw phase shifts ``phi_tau, phi_Q`` uniformly at random;
3. flip a fair coin ``b``;
4. serve only ``Far+`` requests (with the Far+ algorithm) when ``b = 1``,
   only ``Near`` requests (greedy vertical routing) when ``b = 0``.

Theorem 29: for ``B, c in [1, log n]`` the expected competitive ratio is
``O(log n)``.  The per-source-event cap of Proposition 14 (at most the
``B + c`` closest requests per node and time step) is applied up front.
"""

from __future__ import annotations

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.randomized.far_plus import FarPlusRouter
from repro.core.randomized.near import NearRouter
from repro.core.randomized.params import PAPER_GAMMA, RandomizedParams
from repro.network.topology import Network
from repro.util.rng import as_generator


def proposition14_filter(requests, cap: int):
    """Keep, per source event ``(node, t)``, only the ``cap`` requests with
    the closest destinations (Proposition 14); returns (kept, dropped)."""
    groups: dict = {}
    for r in requests:
        groups.setdefault((r.source, r.arrival), []).append(r)
    kept, dropped = [], []
    for group in groups.values():
        group.sort(key=lambda r: (r.distance, r.rid))
        kept.extend(group[:cap])
        dropped.extend(group[cap:])
    return kept, dropped


class RandomizedLineRouter(Router):
    """The full classify-and-select router (Theorem 29).

    Parameters
    ----------
    network:
        A line with ``B, c in [1, log n]``.
    horizon:
        Simulation horizon.
    rng:
        Seedable randomness source (phase shifts, class coin, sparsification
        coins).
    gamma / lam:
        Sparsification constant (paper: 200) or a direct override of the
        probability ``lambda``; see :class:`RandomizedParams`.
    force_class:
        ``"far"`` or ``"near"`` pins the class coin (used by the analysis
        benches that study one class); ``None`` flips fairly.
    """

    def __init__(self, network: Network, horizon: int, rng=None,
                 gamma: float = PAPER_GAMMA, lam: float | None = None,
                 force_class: str | None = None):
        self.network = network
        self.horizon = int(horizon)
        self.rng = as_generator(rng)
        self.params = RandomizedParams.for_network(network, gamma=gamma, lam=lam)
        self.force_class = force_class
        # step 2: random phase shifts
        self.phases = (
            int(self.rng.integers(0, self.params.Q)),
            int(self.rng.integers(0, self.params.tau)),
        )
        # step 3: fair class coin
        if force_class is None:
            self.serve_far = bool(self.rng.integers(0, 2))
        else:
            self.serve_far = force_class == "far"
        self.far_router = FarPlusRouter(
            network, horizon, self.params, phases=self.phases, rng=self.rng
        )
        self.near_router = NearRouter(
            network, horizon, self.params, phases=self.phases
        )

    def plan_class(self) -> str:
        """Which class this instance's coin selected ("far+" or "near")."""
        return "far+" if self.serve_far else "near"

    def route(self, requests) -> Plan:
        requests = list(requests)
        kept, dropped = proposition14_filter(
            requests, self.params.B + self.params.c
        )
        active = self.far_router if self.serve_far else self.near_router
        plan = active.route(kept)
        for r in dropped:
            plan.record(r.rid, RouteOutcome.REJECTED)
        plan.meta["class"] = "far+" if self.serve_far else "near"
        plan.meta["phases"] = self.phases
        plan.meta["prop14_dropped"] = len(dropped)
        return plan
