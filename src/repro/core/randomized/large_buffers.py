"""Section 7.7: large buffers (``log n <= B/c <= poly(n)``).

Tiling degenerates to ``Q = 1`` (every tile is a single row of length
``tau ~ B/c``), so there are no near requests.  ``R+`` is the set of
requests whose source lies in the *left half* of its tile; the phase shift
``phi_tau`` makes ``E[opt(R+)] >= opt/2``.  I-routing is horizontal only
(buffering at the source node); vertical crossings happen in the right
half of each tile; T-routing degenerates to "buffer east, climb at the
first feasible column".
"""

from __future__ import annotations

import math

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.deterministic.geometry import plain_sketch_tiles, tile_moves
from repro.core.randomized.combined import proposition14_filter
from repro.network.topology import Network
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError
from repro.util.rng import as_generator

NORTH, EAST = 0, 1


class LargeBufferLineRouter(Router):
    """Theorem 30: O(log n)-competitive routing when ``B/c >= log n``."""

    def __init__(self, network: Network, horizon: int, rng=None,
                 gamma: float = 200.0, lam: float | None = None,
                 strict: bool = True):
        if network.d != 1:
            raise ValidationError("LargeBufferLineRouter targets lines")
        n, B, c = network.n, network.buffer_size, network.min_capacity
        logn = max(1.0, math.log2(n))
        if strict and B < logn * c:
            raise ValidationError(
                f"Section 7.7 requires B/c >= log n; got B={B}, c={c}, n={n}"
            )
        self.network = network
        self.graph = SpaceTimeGraph(network, horizon)
        self.rng = as_generator(rng)
        # tau ~ B/c, forced even so halves are well defined
        self.tau = 2 * max(1, math.ceil(B / (2 * c)))
        self.pmax = 4 * n
        self.k = max(1, math.ceil(math.log2(1 + 3 * self.pmax)))
        self.lam = lam if lam is not None else 1.0 / (gamma * self.k)
        phase = int(self.rng.integers(0, self.tau))
        self.tiling = Tiling((1, self.tau), (0, phase))
        self.sketch = PlainSketchGraph(self.graph, self.tiling)
        self.ipp = OnlinePathPacking(self.sketch, pmax=self.pmax)
        self.ledger = self.graph.ledger()
        self.sparse_load: dict = {}
        self.east_exits: dict = {}  # tile -> count of I-routed exits
        self.side_cap = max(1, min(B, self.tau * c) // 4)
        self.counters = {
            "not_rplus": 0, "ipp_rejected": 0, "coin_rejected": 0,
            "load_rejected": 0, "detail_rejected": 0, "delivered": 0,
        }

    def in_r_plus(self, request) -> bool:
        """Source in the left half of its tile (Section 7.7)."""
        v = self.graph.source_vertex(request)
        return self.tiling.local(v)[1] < self.tau // 2

    def route(self, requests) -> Plan:
        plan = Plan()
        kept, dropped = proposition14_filter(
            list(requests), self.network.buffer_size + self.network.min_capacity
        )
        for r in self.arrival_order(kept):
            if r.is_trivial():
                src = self.graph.source_vertex(r)
                if self.graph.valid_vertex(src):
                    plan.record(r.rid, RouteOutcome.DELIVERED, STPath(src, (), rid=r.rid))
                else:
                    plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            if not self.in_r_plus(r):
                self.counters["not_rplus"] += 1
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            outcome, path = self._route_one(r)
            plan.record(r.rid, outcome, path)
        for r in dropped:
            plan.record(r.rid, RouteOutcome.REJECTED)
        plan.meta["large_buffers"] = dict(self.counters)
        return plan

    def _route_one(self, request):
        src = self.graph.source_vertex(request)
        if not self.graph.valid_vertex(src):
            return RouteOutcome.REJECTED, None
        sink = self.sketch.register_sink(
            ("dest", request.dest), request.dest, 0, self.graph.horizon
        )
        if sink is None:
            return RouteOutcome.REJECTED, None
        sketch_path = self.ipp.route(self.sketch.source_node(request), sink)
        if sketch_path is None:
            self.counters["ipp_rejected"] += 1
            return RouteOutcome.REJECTED, None
        if self.rng.random() >= self.lam:
            self.counters["coin_rejected"] += 1
            return RouteOutcome.REJECTED, None
        edges = [e for e in sketch_path.edges if e[0] == "e"]
        for e in edges:
            if (self.sparse_load.get(e, 0) + 1) >= self.sketch.capacity(e) / 4.0:
                self.counters["load_rejected"] += 1
                return RouteOutcome.REJECTED, None
        tiles = plain_sketch_tiles(sketch_path)
        path = self._detailed(request, src, tiles)
        if path is None:
            self.counters["detail_rejected"] += 1
            return RouteOutcome.REJECTED, None
        for e in edges:
            self.sparse_load[e] = self.sparse_load.get(e, 0) + 1
        self.counters["delivered"] += 1
        return RouteOutcome.DELIVERED, path

    # -- detailed routing over 1-row tiles ---------------------------------

    def _try_run(self, cells, pos, axis, length):
        v = pos
        for _ in range(length):
            if not self.graph.valid_move(v, axis) or self.ledger.residual(axis, v) < 1:
                return None
            cells.append((axis, v))
            v = (v[0] + 1, v[1]) if axis == NORTH else (v[0], v[1] + 1)
        return v

    def _detailed(self, request, src, tiles):
        if len(tiles) < 2:
            return None  # Q = 1: a non-trivial request always crosses tiles
        moves = tile_moves(tiles)
        cells: list = []
        tile0 = tiles[0]
        _, c0 = self.tiling.origin(tile0)
        mid_c = c0 + self.tau // 2
        if self.east_exits.get(tile0, 0) >= self.side_cap:
            return None
        # I-routing: buffer east out of the left half
        pos = self._try_run(cells, src, EAST, mid_c - src[1])
        if pos is None:
            return None
        entry = "lhalf"
        b = request.dest[0]
        for idx, tile in enumerate(tiles):
            if idx == len(tiles) - 1:
                if pos[0] != b:
                    return None  # Q = 1: the last tile *is* the dest row
                break
            exit_axis = moves[idx]
            pos = self._through_tile(cells, pos, tile, entry, exit_axis)
            if pos is None:
                return None
            entry = "south" if exit_axis == NORTH else "west"
        t = self.graph.vertex_time(pos)
        if request.deadline is not None and t > request.deadline:
            return None
        for axis, tail in cells:
            self.ledger.add_edge(axis, tail)
        self.east_exits[tile0] = self.east_exits.get(tile0, 0) + 1
        return STPath(src, tuple(a for a, _ in cells), rid=request.rid)

    def _through_tile(self, cells, pos, tile, entry, exit_axis):
        _, c0 = self.tiling.origin(tile)
        mid_c, hi_c = c0 + self.tau // 2, c0 + self.tau
        if entry == "south" and pos[1] < mid_c:
            return None  # invariant: vertical crossings in the right half
        if exit_axis == EAST:
            return self._try_run(cells, pos, EAST, hi_c - pos[1])
        # exit north: buffer east to the first column (right half) with a
        # feasible vertical edge, then climb one row
        start = max(pos[1], mid_c)
        lead = self._try_run(cells, pos, EAST, start - pos[1])
        if lead is None:
            return None
        for x in range(start, hi_c):
            probe: list = []
            p = self._try_run(probe, lead, EAST, x - lead[1])
            if p is None:
                return None
            p2 = self._try_run(probe, p, NORTH, 1)
            if p2 is not None:
                cells.extend(probe)
                return p2
        return None
