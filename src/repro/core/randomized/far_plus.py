"""The Far+ algorithm (Algorithm 2, Section 7.4).

Per request in ``Far+`` (far requests with source in the SW quadrant):

1. online integral path packing over the (plain) sketch graph with sketch
   paths of length at most ``p_max = 4n``;
2. biased coin ``X_i`` with ``Pr[X_i = 1] = lambda``: reject on 0 (random
   sparsification);
3. reject if adding the sketch path would make any sketch edge at least
   1/4-loaded;
4. detailed routing: I-routing out of the SW quadrant (over ``B + c``
   planes, at most ``c_S/4`` exits per quadrant side), then alternating
   T-routing (NW/SE quadrants) and X-routing (NE quadrant) along the sketch
   path, and a straight climb in the last tile.  Failure rejects the
   request *before* injection -- the algorithm is non-preemptive
   (Section 7.4.1).

Detailed routing maintains the invariants of Section 7.4.2: paths enter a
tile only through the right half of its south side or the upper half of its
west side, exit only through the right half of north / upper half of east,
bend only where the sketch path bends (plus the initial bend), and respect
every space-time capacity (checked cell-by-cell against a load ledger).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.deterministic.geometry import plain_sketch_tiles, tile_moves
from repro.core.randomized.params import RandomizedParams
from repro.network.topology import Network
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.sketch import PlainSketchGraph
from repro.spacetime.tiling import Quadrant, Tiling
from repro.util.errors import RoutingError
from repro.util.rng import as_generator

#: move indices on a line (untilted axes)
NORTH, EAST = 0, 1


@dataclass
class _QuadrantState:
    """Per-tile SW-quadrant bookkeeping for I-routing (Section 7.4.2)."""

    arrivals: dict = field(default_factory=dict)  # vertex -> count
    rows_used: dict = field(default_factory=dict)  # plane -> set of rows
    cols_used: dict = field(default_factory=dict)  # plane -> set of cols
    east_exits: int = 0
    north_exits: int = 0


class FarPlusRouter(Router):
    """Algorithm 2 over a fixed tiling (phases supplied by the caller)."""

    def __init__(self, network: Network, horizon: int, params: RandomizedParams,
                 phases=(0, 0), rng=None):
        self.network = network
        self.params = params
        self.graph = SpaceTimeGraph(network, horizon)
        self.tiling = Tiling((params.Q, params.tau), tuple(phases))
        self.sketch = PlainSketchGraph(self.graph, self.tiling)
        self.ipp = OnlinePathPacking(self.sketch, pmax=params.pmax)
        self.rng = as_generator(rng)
        self.ledger = self.graph.ledger()
        self.sparse_load: dict = {}  # sketch edge -> post-sparsification load
        self.quadrants: dict = {}  # tile -> _QuadrantState
        # "transit_rejected"/"lasttile_rejected" count T-/X-routing and
        # last-tile failures.  Under the paper's dataflow conflict
        # resolution these are provably zero; the sequential reservation
        # implemented here (bend columns fixed at arrival) can lose a small
        # fraction to later straight paths -- they become ordinary
        # rejections, preserving soundness and non-preemption (measured in
        # bench E13, documented in DESIGN.md).
        self.counters = {
            "ipp_accepted": 0,
            "ipp_rejected": 0,
            "coin_rejected": 0,
            "load_rejected": 0,
            "iroute_rejected": 0,
            "transit_rejected": 0,
            "lasttile_rejected": 0,
            "delivered": 0,
            "no_sink": 0,
            # invariant 3 (Section 7.4): every committed path enters tiles
            # only through the right half of south sides / upper half of
            # west sides.  Audited at commit time; the paper proves 0.
            "invariant3_violations": 0,
        }

    # -- classification helpers (shared with the combined router) -----------

    def is_near(self, request) -> bool:
        """Near = the source tile contains a copy of the destination, i.e.
        source and destination share a space band (Section 7.2)."""
        a, b = request.source[0], request.dest[0]
        return self.tiling.tile_of_axis(0, a) == self.tiling.tile_of_axis(0, b)

    def in_sw(self, request) -> bool:
        v = self.graph.source_vertex(request)
        return self.tiling.quadrant_of(v) == Quadrant.SW

    def is_far_plus(self, request) -> bool:
        return (not request.is_trivial()) and (not self.is_near(request)) and self.in_sw(request)

    # -- the online pipeline --------------------------------------------------

    def route(self, requests) -> Plan:
        plan = Plan()
        for r in self.arrival_order(requests):
            if not self.is_far_plus(r):
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            outcome, path = self.route_one(r)
            plan.record(r.rid, outcome, path)
        plan.meta["far_plus"] = dict(self.counters)
        plan.meta["params"] = self.params
        return plan

    def route_one(self, request):
        """Run steps 1-4 of Algorithm 2 for a single Far+ request."""
        src = self.graph.source_vertex(request)
        if not self.graph.valid_vertex(src):
            return RouteOutcome.REJECTED, None
        sink = self.sketch.register_sink(
            ("dest", request.dest), request.dest, 0, self.graph.horizon
        )
        if sink is None:
            self.counters["no_sink"] += 1
            return RouteOutcome.REJECTED, None

        # step 1: online integral path packing
        sketch_path = self.ipp.route(self.sketch.source_node(request), sink)
        if sketch_path is None:
            self.counters["ipp_rejected"] += 1
            return RouteOutcome.REJECTED, None
        self.counters["ipp_accepted"] += 1
        # plane index: i-th IPP-accepted request at this source event
        qstate = self._qstate(self.tiling.tile_of(src))
        qstate.arrivals[src] = qstate.arrivals.get(src, 0) + 1
        plane = qstate.arrivals[src]

        # step 2: biased coin (random sparsification)
        if self.rng.random() >= self.params.lam:
            self.counters["coin_rejected"] += 1
            return RouteOutcome.REJECTED, None

        # step 3: quarter-load cap on sketch edges
        edges = [e for e in sketch_path.edges if e[0] == "e"]
        for e in edges:
            if (self.sparse_load.get(e, 0) + 1) >= self.sketch.capacity(e) / 4.0:
                self.counters["load_rejected"] += 1
                return RouteOutcome.REJECTED, None

        # step 4: detailed routing (all-or-nothing; non-preemptive)
        tiles = plain_sketch_tiles(sketch_path)
        path = self._detailed_route(request, src, tiles, plane, qstate)
        if path is None:
            return RouteOutcome.REJECTED, None
        for e in edges:
            self.sparse_load[e] = self.sparse_load.get(e, 0) + 1
        self.counters["delivered"] += 1
        return RouteOutcome.DELIVERED, path

    # -- detailed routing ---------------------------------------------------------

    def _qstate(self, tile) -> _QuadrantState:
        state = self.quadrants.get(tile)
        if state is None:
            state = self.quadrants[tile] = _QuadrantState()
        return state

    def _try_run(self, cells, pos, axis, length):
        """Extend the tentative cell list by a straight run; None if any
        cell is invalid or saturated."""
        v = pos
        for _ in range(length):
            if not self.graph.valid_move(v, axis) or self.ledger.residual(axis, v) < 1:
                return None
            cells.append((axis, v))
            v = (v[0] + 1, v[1]) if axis == NORTH else (v[0], v[1] + 1)
        return v

    def _detailed_route(self, request, src, tiles, plane, qstate):
        params = self.params
        B, c = params.B, params.c
        moves = tile_moves(tiles)
        if len(tiles) < 2:
            raise RoutingError("a Far+ sketch path spans at least two tiles")
        cells: list = []
        pos = src
        tile0 = tiles[0]
        r0, c0 = self.tiling.origin(tile0)
        mid_r, mid_c = r0 + params.Q // 2, c0 + params.tau // 2

        # ---- I-routing (planes; Section 7.4.2)
        quota = None
        if plane <= B:
            row = pos[0]
            used = qstate.rows_used.setdefault(plane, set())
            if row in used or qstate.east_exits >= params.side_cap:
                self.counters["iroute_rejected"] += 1
                return None
            pos = self._try_run(cells, pos, EAST, mid_c - pos[1])
            mode = "se_west"
            quota = ("row", plane, row)
        elif plane <= B + c:
            col = pos[1]
            used = qstate.cols_used.setdefault(plane, set())
            if col in used or qstate.north_exits >= params.side_cap:
                self.counters["iroute_rejected"] += 1
                return None
            pos = self._try_run(cells, pos, NORTH, mid_r - pos[0])
            mode = "nw_south"
            quota = ("col", plane, col)
        else:
            # Proposition 14: beyond the closest B + c requests per source
            # event even the optimum cannot do better; reject.
            self.counters["iroute_rejected"] += 1
            return None
        if pos is None:
            self.counters["iroute_rejected"] += 1
            return None

        # ---- tile traversal: T-routing, X-routing, last tile
        for idx, tile in enumerate(tiles):
            if idx == 0:
                entry = mode
            if idx == len(tiles) - 1:
                pos = self._last_tile(cells, pos, tile, entry, request)
                if pos is None:
                    self.counters["lasttile_rejected"] += 1
                    return None
                break
            exit_axis = moves[idx]
            pos = self._through_tile(cells, pos, tile, entry, exit_axis)
            if pos is None:
                self.counters["transit_rejected"] += 1
                return None
            entry = "south" if exit_axis == NORTH else "west"

        # ---- commit
        for axis, tail in cells:
            self.ledger.add_edge(axis, tail)
        if quota is not None:
            kind, pl, coord = quota
            if kind == "row":
                qstate.rows_used[pl].add(coord)
                qstate.east_exits += 1
            else:
                qstate.cols_used[pl].add(coord)
                qstate.north_exits += 1
        start = src
        path_moves = tuple(axis for axis, _ in cells)
        path = STPath(start, path_moves, rid=request.rid)
        self.counters["invariant3_violations"] += self._audit_invariant3(path)
        return path

    def _audit_invariant3(self, path: STPath) -> int:
        """Tile-boundary crossings of ``path`` violating invariant 3.

        A committed path may enter a tile only through the right half of
        its south side (northward moves) or the upper half of its west
        side (eastward moves); Section 7.4 proves the quadrant discipline
        keeps this exact.  Counted here, at commit time, so every
        consumer of the plan meta (bench E13) sees the audit without
        re-walking paths.
        """
        Q, tau = self.params.Q, self.params.tau
        bad = 0
        v = path.start
        for move in path.moves:
            head = (v[0] + 1, v[1]) if move == NORTH else (v[0], v[1] + 1)
            if self.tiling.tile_of(head) != self.tiling.tile_of(v):
                loc = self.tiling.local(head)
                if move == NORTH:  # entering through the south side
                    bad += loc[1] < tau // 2
                else:  # entering through the west side
                    bad += loc[0] < Q // 2
            v = head
        return bad

    def _through_tile(self, cells, pos, tile, entry, exit_axis):
        """Route across one (non-final) tile; returns the position inside
        the next tile, or None on failure."""
        Q, tau = self.params.Q, self.params.tau
        r0, c0 = self.tiling.origin(tile)
        mid_r, mid_c = r0 + Q // 2, c0 + tau // 2
        hi_r, hi_c = r0 + Q, c0 + tau

        # -- reach the NE quadrant
        if entry == "se_west":
            # T-routing in SE: travel east, bend north at the first feasible
            # column, exit into NE from the south
            pos = self._bend_run(cells, pos, EAST, hi_c, NORTH, mid_r)
            if pos is None:
                return None
            ne_entry = "south"
        elif entry == "south":
            if pos[1] < mid_c:
                raise RoutingError("invariant: south entries use the right half")
            pos = self._try_run(cells, pos, NORTH, mid_r - pos[0])
            if pos is None:
                return None
            ne_entry = "south"
        elif entry == "nw_south":
            # T-routing in NW: climb, bend east at the first feasible row
            pos = self._bend_run(cells, pos, NORTH, hi_r, EAST, mid_c)
            if pos is None:
                return None
            ne_entry = "west"
        elif entry == "west":
            if pos[0] < mid_r:
                raise RoutingError("invariant: west entries use the upper half")
            pos = self._try_run(cells, pos, EAST, mid_c - pos[1])
            if pos is None:
                return None
            ne_entry = "west"
        else:
            raise RoutingError(f"unknown entry mode {entry}")

        # -- X-routing in NE (superposition of two T-routings, Fig. 10)
        if ne_entry == "south" and exit_axis == NORTH:
            return self._try_run(cells, pos, NORTH, hi_r - pos[0])
        if ne_entry == "west" and exit_axis == EAST:
            return self._try_run(cells, pos, EAST, hi_c - pos[1])
        if ne_entry == "west" and exit_axis == NORTH:
            return self._bend_run(cells, pos, EAST, hi_c, NORTH, hi_r)
        if ne_entry == "south" and exit_axis == EAST:
            return self._bend_run(cells, pos, NORTH, hi_r, EAST, hi_c)
        raise RoutingError(f"unhandled X-routing case {ne_entry}/{exit_axis}")

    def _bend_run(self, cells, pos, run_axis, run_hi, bend_axis, bend_hi):
        """Advance along ``run_axis``; at each offset try to bend onto
        ``bend_axis`` and go straight to coordinate ``bend_hi``.  This is
        the "turn at the first free crossing" rule of T-/X-routing."""
        for offset in range(run_hi - pos[run_axis]):
            probe: list = []
            p = self._try_run(probe, pos, run_axis, offset)
            if p is None:
                return None  # cannot even advance this far
            p2 = self._try_run(probe, p, bend_axis, bend_hi - p[bend_axis])
            if p2 is not None:
                cells.extend(probe)
                return p2
        return None

    def _last_tile(self, cells, pos, tile, entry, request):
        """Straight climb to the destination copy (Section 7.4.2, Last Tile).

        Only south entries occur: a sketch path entering the destination's
        band from the west would have ended one tile earlier (that tile
        already contains copies of the destination)."""
        if entry != "south":
            return None
        b = request.dest[0]
        if pos[0] > b:
            return None
        pos = self._try_run(cells, pos, NORTH, b - pos[0])
        if pos is None:
            return None
        t = self.graph.vertex_time(pos)
        if request.deadline is not None and t > request.deadline:
            return None
        return pos
