"""The randomized O(log n)-competitive algorithm for lines (Section 7).

Classify-and-select: random phase shifts split requests into ``Near``
(deliverable inside their own tile) and ``Far+`` (far requests whose source
lies in the SW quadrant); a fair coin picks which class to serve.  Far+
requests go through online path packing on the sketch graph, random
sparsification with a biased coin, a 1/4-load cap, and quadrant detailed
routing (I-, T- and X-routing); Near requests are routed greedily along a
vertical (transmit-every-step) path.  The algorithm is non-preemptive.
"""

from repro.core.randomized.combined import RandomizedLineRouter
from repro.core.randomized.far_plus import FarPlusRouter
from repro.core.randomized.near import NearRouter
from repro.core.randomized.params import RandomizedParams
from repro.core.randomized.large_buffers import LargeBufferLineRouter
from repro.core.randomized.small_buffers import SmallBufferLineRouter

__all__ = [
    "FarPlusRouter",
    "LargeBufferLineRouter",
    "NearRouter",
    "RandomizedLineRouter",
    "RandomizedParams",
    "SmallBufferLineRouter",
]
