"""The randomized O(log n)-competitive algorithm for lines (Section 7).

Classify-and-select: random phase shifts split requests into ``Near``
(deliverable inside their own tile) and ``Far+`` (far requests whose source
lies in the SW quadrant); a fair coin picks which class to serve.  Far+
requests go through online path packing on the sketch graph, random
sparsification with a biased coin, a 1/4-load cap, and quadrant detailed
routing (I-, T- and X-routing); Near requests are routed greedily along a
vertical (transmit-every-step) path.  The algorithm is non-preemptive.
"""

import math

from repro.api.registry import planner_adapter, register_algorithm
from repro.core.randomized.combined import RandomizedLineRouter
from repro.core.randomized.far_plus import FarPlusRouter
from repro.core.randomized.near import NearRouter
from repro.core.randomized.params import RandomizedParams
from repro.core.randomized.large_buffers import LargeBufferLineRouter
from repro.core.randomized.small_buffers import SmallBufferLineRouter
from repro.network.topology import grid_geometry_reason

__all__ = [
    "FarPlusRouter",
    "LargeBufferLineRouter",
    "NearRouter",
    "RandomizedLineRouter",
    "RandomizedParams",
    "SmallBufferLineRouter",
]


def _logn(network) -> float:
    return max(1.0, math.log2(network.n))


def _rand_requires(network, horizon) -> str | None:
    if network.d != 1:
        return "targets lines (d = 1)"
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    B, c = network.buffer_size, network.min_capacity
    logn = _logn(network)
    if B < 1:
        return "requires B >= 1"
    if B > logn or c > logn:
        return f"Definition 15 covers B, c in [1, log n = {logn:.1f}]"
    return None


def _rand_large_requires(network, horizon) -> str | None:
    if network.d != 1:
        return "targets lines (d = 1)"
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    B, c = network.buffer_size, network.min_capacity
    if B < _logn(network) * c:
        return f"Section 7.7 requires B/c >= log n = {_logn(network):.1f}"
    return None


def _rand_small_requires(network, horizon) -> str | None:
    if network.d != 1:
        return "targets lines (d = 1)"
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    B, c = network.buffer_size, network.min_capacity
    logn = _logn(network)
    if B > logn or c < logn:
        return f"Section 7.8 requires B <= log n <= c (log n = {logn:.1f})"
    return None


register_algorithm(
    "rand",
    description="the randomized O(log n) classify-and-select algorithm "
    "(Theorem 29; B, c in [1, log n])",
    requires=_rand_requires,
    fast_engine="plan",
)(planner_adapter(RandomizedLineRouter, "rand", takes_rng=True))

register_algorithm(
    "rand-large-buffers",
    description="Theorem 30 regime: B/c >= log n (half-tile horizontal "
    "I-routing, Section 7.7)",
    requires=_rand_large_requires,
    fast_engine="plan",
)(planner_adapter(LargeBufferLineRouter, "rand-large-buffers", takes_rng=True))

register_algorithm(
    "rand-small-buffers",
    description="Theorem 31 regime: B <= log n <= c (column slivers, "
    "Section 7.8)",
    requires=_rand_small_requires,
    fast_engine="plan",
)(planner_adapter(SmallBufferLineRouter, "rand-small-buffers", takes_rng=True))
