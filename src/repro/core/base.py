"""Router interfaces and plan containers shared by all algorithms.

The centralized algorithms of the paper decide, online, a complete
space-time path per accepted packet; a :class:`Plan` collects those paths
(full ones for delivered packets, truncated prefixes for preempted ones)
together with rejection bookkeeping.  Plans can be validated against numpy
load ledgers and replayed through the step simulator
(:func:`repro.network.simulator.execute_plan`) -- the two must agree, which
the integration tests assert.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.network.packet import DeliveryStatus
from repro.spacetime.graph import STPath


class RouteOutcome(enum.Enum):
    """Per-request outcome of a planning router."""

    DELIVERED = "delivered"  # full path reserved, ends at a destination copy
    REJECTED = "rejected"  # refused at arrival (no resources consumed)
    PREEMPTED = "preempted"  # injected, later dropped (prefix path consumed)


@dataclass
class Plan:
    """Result of running a planning router over a request sequence."""

    paths: dict = field(default_factory=dict)  # rid -> STPath (full)
    truncated: dict = field(default_factory=dict)  # rid -> STPath (prefix)
    outcome: dict = field(default_factory=dict)  # rid -> RouteOutcome
    meta: dict = field(default_factory=dict)  # per-router diagnostics

    @property
    def throughput(self) -> int:
        return len(self.paths)

    def delivered_ids(self) -> set:
        return set(self.paths)

    def all_executable_paths(self) -> dict:
        """Full plus truncated paths -- what the simulator replays."""
        merged = dict(self.truncated)
        merged.update(self.paths)
        return merged

    def record(self, rid: int, outcome: RouteOutcome, path: STPath | None = None) -> None:
        self.outcome[rid] = outcome
        if outcome == RouteOutcome.DELIVERED:
            if path is None:
                raise ValueError("delivered outcome requires a path")
            self.paths[rid] = path
            self.truncated.pop(rid, None)
        elif outcome == RouteOutcome.PREEMPTED:
            self.paths.pop(rid, None)
            if path is not None and len(path.moves) > 0:
                self.truncated[rid] = path
            else:
                self.truncated.pop(rid, None)
        else:
            self.paths.pop(rid, None)
            self.truncated.pop(rid, None)

    def consistent_with_simulation(self, result) -> bool:
        """True when the simulator delivered exactly the planned set."""
        sim_delivered = {
            rid
            for rid, st in result.status.items()
            if st == DeliveryStatus.DELIVERED
        }
        return sim_delivered == self.delivered_ids()


class Router:
    """Interface of a planning router.

    Implementations process ``requests`` online (sorted by arrival, ties by
    id -- the adversary's presentation order) and return a :class:`Plan`.
    """

    def route(self, requests) -> Plan:
        raise NotImplementedError

    @staticmethod
    def arrival_order(requests) -> list:
        return sorted(requests, key=lambda r: (r.arrival, r.rid))
