"""The d-dimensional knock-knee rules (Section 6, item (5)).

Every space-time node of a (d+1)-dimensional tile has ``d + 1`` incoming
and ``d + 1`` outgoing edges.  Writing ``in_j.r`` for the request entering
on axis ``j`` and ``l_j`` for its required exit axis in this tile, the
rules are, for every ``j``:

(a) *straight*: if ``l_j = j`` then ``out_j = in_j``;
(b) *try next crossing*: else if ``in_{l_j}.r`` exists and does not want
    ``j``, then ``out_j = in_j`` (keep going, look for a later crossing);
(c) else if ``in_{l_j}.r`` wants ``j`` (a knock-knee swap) or
    (``in_{l_j}`` is free and ``j`` is the smallest axis whose path wants
    ``l_j``), then ``out_{l_j} = in_j`` and ``out_j = in_{l_j}``;
(d) else ``out_j = in_j``.

The paper's observation: a path that fails to turn at a node crosses a
*different* request that exits the tile successfully, and since at most
``k`` requests share a sketch edge, every path finds its turn within the
tile.  This module executes the rules verbatim as a dataflow over the
tile's nodes, generalizing :mod:`repro.core.deterministic.knockknee` to
any dimension, so the d-dimensional claim is testable (Theorem 10's
detailed-routing step).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError


@dataclass
class DPath:
    """A path crossing a ``side^(d+1)`` tile.

    ``entry_axis`` is the axis along which it enters (its position on the
    entry face is ``entry_pos``, a full coordinate tuple with
    ``entry_pos[entry_axis] == 0``); ``exit_axis`` is the axis whose far
    face it must leave through.
    """

    name: object
    entry_axis: int
    entry_pos: tuple
    exit_axis: int
    cells: list = field(default_factory=list)
    out_pos: tuple | None = None
    failed: bool = False


class KnockKneeCube:
    """Section 6 rules (a)-(d) over one (d+1)-dimensional tile."""

    def __init__(self, naxes: int, side: int):
        if naxes < 2 or side < 1:
            raise ValidationError("need >= 2 axes and side >= 1")
        self.naxes = naxes
        self.side = side

    def route(self, paths) -> list:
        naxes, side = self.naxes, self.side
        # incoming[axis][pos] = path arriving at pos along axis
        incoming = [dict() for _ in range(naxes)]
        for p in paths:
            p.cells, p.out_pos, p.failed = [], None, False
            if len(p.entry_pos) != naxes:
                raise ValidationError(f"bad position arity for {p.name}")
            if p.entry_pos[p.entry_axis] != 0:
                raise ValidationError(
                    f"{p.name}: entry position must sit on the entry face"
                )
            if p.entry_pos in incoming[p.entry_axis]:
                raise ValidationError(f"duplicate entry at {p.entry_pos}")
            incoming[p.entry_axis][p.entry_pos] = p

        def nodes_in_topo_order():
            import itertools

            all_nodes = itertools.product(*(range(side) for _ in range(naxes)))
            return sorted(all_nodes, key=sum)

        def send(p, pos, axis):
            nxt = list(pos)
            nxt[axis] += 1
            if nxt[axis] >= side:
                p.out_pos = tuple(nxt)
                p.failed = axis != p.exit_axis
            else:
                incoming[axis][tuple(nxt)] = p

        for node in nodes_in_topo_order():
            arr = [incoming[a].pop(node, None) for a in range(naxes)]
            if not any(arr):
                continue
            for p in arr:
                if p is not None:
                    p.cells.append(node)
            out = [None] * naxes
            for j in range(naxes):
                p = arr[j]
                if p is None or out[j] is not None and out[j] is p:
                    continue
                lj = p.exit_axis
                if lj == j:  # (a) straight
                    if out[j] is None:
                        out[j] = p
                    continue
                partner = arr[lj]
                if partner is not None and partner.exit_axis != j:
                    # (b) the crossing path continues toward its own exit;
                    # try the next crossing
                    if out[j] is None:
                        out[j] = p
                    continue
                if partner is not None and partner.exit_axis == j:
                    # (c) knock-knee swap
                    if out[lj] is None and out[j] is None:
                        out[lj] = p
                        out[j] = partner
                    elif out[j] is None:
                        out[j] = p
                    continue
                # partner is None: (c) lowest-index path wanting l_j turns
                smallest = min(
                    (jj for jj in range(naxes)
                     if arr[jj] is not None and arr[jj].exit_axis == lj
                     and jj != lj),
                    default=None,
                )
                if smallest == j and out[lj] is None:
                    out[lj] = p
                elif out[j] is None:
                    out[j] = p  # (d)
            for axis, p in enumerate(out):
                if p is not None:
                    send(p, node, axis)
        return list(paths)


def feasible_random_demand(naxes: int, side: int, rng, max_paths: int | None = None):
    """Generate a random demand respecting the per-face load guarantee:
    entry positions unique per face, at most ``side^(naxes-1)`` exits per
    axis (the sketch-edge capacity analogue)."""
    import itertools

    max_paths = max_paths if max_paths is not None else side
    paths = []
    used_exit = {a: 0 for a in range(naxes)}
    face_cap = side ** (naxes - 1)
    taken = set()
    for i in range(max_paths):
        axis = int(rng.integers(0, naxes))
        pos = [int(rng.integers(0, side)) for _ in range(naxes)]
        pos[axis] = 0
        pos = tuple(pos)
        if (axis, pos) in taken:
            continue
        taken.add((axis, pos))
        exit_axis = int(rng.integers(0, naxes))
        if used_exit[exit_axis] >= face_cap:
            exit_axis = axis  # fall back to straight
        used_exit[exit_axis] += 1
        paths.append(DPath(f"p{i}", axis, pos, exit_axis))
    return paths
