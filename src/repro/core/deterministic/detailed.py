"""Detailed routing: sketch paths to space-time paths (Section 5.2).

The translation reserves capacity on three *tracks* -- disjoint units of
capacity on every space-time edge (Section 5.2.1, "Reservation of
Capacities"; this is why the deterministic algorithm needs ``B, c >= 3``):

* **track 1** (special segments): the first segment runs straight from the
  source vertex into the first bend tile, the last segment straight from
  the last bend tile to the entry of the last tile.  Contention is resolved
  by online preemptive interval packing per grid line (Section 5.2.2);
  the first segment conservatively reserves through the whole bend tile and
  is shrunk once the bend position is fixed.
* **track 2** (internal segments): between the first and last bends the
  path crosses tiles, bending inside *bend tiles*.  The paper resolves
  conflicts with the knock-knee automaton (Section 5.2.3); this
  implementation chooses, equivalently at the reservation level, the first
  bend offset ``s`` inside the bend tile for which the pre-bend cells and
  the entire post-bend straight run to the next bend tile are free --
  the "try next crossing" rule executed eagerly.  A request with no
  feasible bend is preempted (the paper proves this never happens under
  the IPP load guarantee; the benches count occurrences).
* **track 3** (last tile): a straight climb from the entry point to the
  destination's coordinates; on conflicts the path with the *nearest*
  destination preempts the others (Section 5.2.4).

A packet is delivered the moment its space coordinates equal the
destination (packets are removed on arrival, Section 2.1), so every
straight run is checked for destination touches and truncated there.

Preemption bookkeeping: every committed move of a request is tagged with
its track so a preempted request can be truncated at the exact conflict
cell -- its prefix stays reserved (the packet physically travelled that
far) and is replayed by the simulator as a dropped packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import Plan, RouteOutcome
from repro.packing.interval import Interval, OnlineIntervalPacker
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import RoutingError


def line_key(vertex: tuple, axis: int) -> tuple:
    """Identifier of the grid line through ``vertex`` along ``axis``: the
    axis plus every other coordinate."""
    return (axis, vertex[:axis] + vertex[axis + 1 :])


def advance(vertex: tuple, axis: int, steps: int) -> tuple:
    out = list(vertex)
    out[axis] += steps
    return tuple(out)


@dataclass
class IntervalRecord:
    """One track-1 interval held by a request, with its path alignment.

    Path moves ``start_idx .. start_idx + used - 1`` sit on coordinates
    ``iv.lo .. iv.lo + used - 1`` of the line; the interval may extend past
    ``used`` while a bend position is still undecided."""

    key: tuple
    iv: Interval
    start_idx: int

    def move_index_of(self, coord: int) -> int:
        return self.start_idx + (coord - self.iv.lo)


@dataclass
class Build:
    """Mutable per-request routing state."""

    request: object
    start: tuple
    moves: list = field(default_factory=list)
    tracks: list = field(default_factory=list)  # track id per move
    tails: list = field(default_factory=list)  # tail vertex per move
    records: list = field(default_factory=list)  # IntervalRecord list
    status: RouteOutcome | None = None
    delivered_time: int | None = None

    @property
    def rid(self) -> int:
        return self.request.rid

    @property
    def pos(self) -> tuple:
        if not self.moves:
            return self.start
        return advance_path_end(self)

    def path(self) -> STPath:
        return STPath(self.start, tuple(self.moves), rid=self.rid)


def advance_path_end(build: Build) -> tuple:
    v = list(build.start)
    d = len(build.start) - 1
    for m in build.moves:
        if m == d:
            v[-1] += 1
        else:
            v[m] += 1
    return tuple(v)


class DetailedRouting:
    """Shared detailed-routing state across all requests of one run."""

    TRACK_SPECIAL = 1
    TRACK_INTERNAL = 2
    TRACK_LAST = 3

    def __init__(self, graph: SpaceTimeGraph, tiling: Tiling):
        self.graph = graph
        self.tiling = tiling
        self.d = graph.d
        self.track2 = graph.ledger(capacity_override=1)
        self.track3 = graph.ledger(capacity_override=1)
        self.packers: dict = {}  # line_key -> OnlineIntervalPacker
        self.owner3: dict = {}  # (move, tail) -> rid, for track-3 preemption
        self.builds: dict = {}  # rid -> Build
        self.counters: dict = {
            "delivered": 0,
            "preempt_first_segment": 0,
            "preempt_last_segment": 0,
            "preempt_internal": 0,
            "preempt_last_tile": 0,
            "preempt_by_interval": 0,
            "preempt_by_climb": 0,
            "deadline_miss": 0,
            "horizon_miss": 0,
        }

    # ------------------------------------------------------------------ utils

    def _packer(self, key) -> OnlineIntervalPacker:
        packer = self.packers.get(key)
        if packer is None:
            packer = self.packers[key] = OnlineIntervalPacker(key)
        return packer

    def _valid_extent(self, pos: tuple, axis: int, want: int) -> int:
        """Number of consecutive valid cells along ``axis`` from ``pos``
        (at most ``want``)."""
        v = pos
        ext = 0
        while ext < want and self.graph.valid_move(v, axis):
            v = advance(v, axis, 1)
            ext += 1
        return ext

    def _touch_offset(self, pos: tuple, axis: int, length: int, dest: tuple):
        """Offset ``o in [0, length]`` at which the run touches ``dest``
        (space coordinates equal), or None."""
        d = self.d
        for i in range(d):
            if i != axis and pos[i] != dest[i]:
                return None
        if axis >= d:  # buffer run: space coordinates don't change
            return 0 if pos[:-1] == dest else None
        off = dest[axis] - pos[axis]
        if 0 <= off <= length:
            return off
        return None

    def _cells_free(self, ledger, pos: tuple, axis: int, length: int) -> bool:
        v = pos
        for _ in range(length):
            if not self.graph.valid_move(v, axis) or ledger.residual(axis, v) < 1:
                return False
            v = advance(v, axis, 1)
        return True

    def _commit_run(self, build: Build, track: int, ledger, axis: int, length: int) -> None:
        """Append ``length`` moves along ``axis`` to the build, charging
        ``ledger`` when given (track-1 cells are owned by the packers)."""
        v = build.pos
        for _ in range(length):
            if ledger is not None:
                ledger.add_edge(axis, v)
                if track == self.TRACK_LAST:
                    self.owner3[(axis, v)] = build.rid
            build.moves.append(axis)
            build.tracks.append(track)
            build.tails.append(v)
            v = advance(v, axis, 1)

    # -------------------------------------------------------------- preemption

    def truncate(self, rid: int, idx: int, reason: str) -> None:
        """Preempt request ``rid`` at move index ``idx``: free everything it
        reserved from that move on; the prefix stays (physically consumed)."""
        build = self.builds[rid]
        if build.status == RouteOutcome.PREEMPTED and len(build.moves) <= idx:
            return
        for i in range(idx, len(build.moves)):
            track, move, tail = build.tracks[i], build.moves[i], build.tails[i]
            if track == self.TRACK_INTERNAL:
                self.track2.add_edge(move, tail, -1, strict=False)
            elif track == self.TRACK_LAST:
                self.track3.add_edge(move, tail, -1, strict=False)
                self.owner3.pop((move, tail), None)
        # shrink / drop track-1 intervals past the truncation point
        kept_records = []
        for rec in build.records:
            end_idx = rec.start_idx + (rec.iv.hi - rec.iv.lo)
            packer = self._packer(rec.key)
            if rec.start_idx >= idx:
                if packer.holds(rec.iv):
                    packer.replace(rec.iv, None)
                continue
            if end_idx > idx:
                keep = idx - rec.start_idx
                new_iv = Interval(rec.iv.lo, rec.iv.lo + keep, owner=rid) if keep > 0 else None
                if packer.holds(rec.iv):
                    packer.replace(rec.iv, new_iv)
                elif new_iv is not None:
                    packer.insert_raw(new_iv)
                if new_iv is not None:
                    rec.iv = new_iv
                    kept_records.append(rec)
            else:
                kept_records.append(rec)
        build.records = kept_records
        del build.moves[idx:]
        del build.tracks[idx:]
        del build.tails[idx:]
        build.status = RouteOutcome.PREEMPTED
        build.delivered_time = None
        self.counters[reason] = self.counters.get(reason, 0) + 1

    # ---------------------------------------------------------------- track 1

    def _offer_interval(self, build: Build, key: tuple, iv: Interval) -> bool:
        """Offer a special-segment interval; on acceptance, preempt victims
        at the exact conflict coordinate (Section 5.2.2 / Prop. 8)."""
        packer = self._packer(key)
        accepted, victims = packer.offer(iv)
        if not accepted:
            return False
        for victim in victims:
            conflict = max(iv.lo, victim.lo)
            vb = self.builds.get(victim.owner)
            if vb is None:
                continue
            rec = next(
                (r for r in vb.records if r.key == key and r.iv == victim), None
            )
            if rec is None:
                # victim interval no longer maps to a live record
                continue
            # re-insert the physically consumed prefix of the victim
            cut = rec.move_index_of(conflict)
            cut = max(0, min(cut, len(vb.moves)))
            self.truncate(victim.owner, cut, "preempt_by_interval")
        build.records.append(IntervalRecord(key=key, iv=iv, start_idx=len(build.moves)))
        return True

    def _shrink_first_interval(self, build: Build, rec: IntervalRecord, used: int) -> None:
        """Fix the first-segment reservation to its actual use (bend chosen)."""
        packer = self._packer(rec.key)
        if used == rec.iv.hi - rec.iv.lo:
            return
        new_iv = Interval(rec.iv.lo, rec.iv.lo + used, owner=build.rid) if used > 0 else None
        if packer.holds(rec.iv):
            packer.replace(rec.iv, new_iv)
        if new_iv is None:
            build.records.remove(rec)
        else:
            rec.iv = new_iv

    # -------------------------------------------------------------- main entry

    def route_request(self, request, tiles, moves) -> RouteOutcome:
        """Translate one accepted sketch path into a space-time path."""
        from repro.core.deterministic.geometry import runs_of

        src = self.graph.source_vertex(request)
        build = Build(request=request, start=src)
        self.builds[request.rid] = build
        runs = runs_of(moves)

        if not runs:
            outcome = self._route_last_tile(build, tiles[-1])
        else:
            outcome = self._route_runs(build, tiles, runs)
            if outcome is None:
                outcome = self._route_last_tile(build, tiles[-1])
        build.status = outcome
        if outcome == RouteOutcome.DELIVERED:
            self.counters["delivered"] += 1
        return outcome

    # ------------------------------------------------------------ the segments

    def _route_runs(self, build: Build, tiles, runs):
        """Reserve the first segment, internal bends, and last segment.

        Returns None when routing should continue into the last tile, or a
        terminal :class:`RouteOutcome`."""
        request = build.request
        dest = request.dest
        graph, tiling = self.graph, self.tiling

        # ---- first segment (track 1, Section 5.2.2)
        a0 = runs[0].axis
        multi = len(runs) >= 2
        bend_tile = tiles[runs[0].end]
        lo_b1, hi_b1 = tiling.ranges(bend_tile)[a0]
        p0 = build.start[a0]
        need = lo_b1 - p0  # cells to reach the entry of the bend/last tile
        reserve = (hi_b1 - p0) if multi else need
        touch = self._touch_offset(build.start, a0, need, dest)
        if touch is not None:
            need = reserve = touch
        ext = self._valid_extent(build.start, a0, reserve)
        if ext < need:
            self.counters["horizon_miss"] += 1
            return RouteOutcome.PREEMPTED
        key = line_key(build.start, a0)
        if ext > 0:
            iv = Interval(p0, p0 + ext, owner=build.rid)
            if not self._offer_interval(build, key, iv):
                self.counters["preempt_first_segment"] += 1
                return RouteOutcome.PREEMPTED
        first_rec = build.records[-1] if ext > 0 else None
        self._commit_run(build, self.TRACK_SPECIAL, None, a0, need)
        if touch is not None:
            if first_rec is not None:
                self._shrink_first_interval(build, first_rec, need)
            return self._finish_delivery(build)

        # ---- bends: runs[1..] (Sections 5.2.3 and 5.2.2 for the last one)
        for j in range(1, len(runs)):
            run_prev, run = runs[j - 1], runs[j]
            a_prev, a_j = run_prev.axis, run.axis
            bend_tile = tiles[run.start]
            target_tile = tiles[run.end]
            is_last_seg = j == len(runs) - 1
            pos = build.pos
            lo_t = tiling.ranges(target_tile)[a_j][0]
            lo_bt, hi_bt = tiling.ranges(bend_tile)[a_prev]
            max_s = hi_bt - 1 - pos[a_prev]
            if j == 1 and first_rec is not None:
                # pre-bend cells must stay inside the reserved interval
                max_s = min(max_s, first_rec.iv.hi - 1 - pos[a_prev])
            chosen = None
            for s in range(0, max_s + 1):
                p_s = advance(pos, a_prev, s)
                if j > 1:
                    if not self._cells_free(self.track2, pos, a_prev, s):
                        # pre-bend run blocked; larger s only adds cells
                        break
                pre_touch = self._touch_offset(pos, a_prev, s, dest)
                if pre_touch is not None and pre_touch < s:
                    s = pre_touch
                    chosen = (s, None, True)
                    break
                post_len = lo_t - p_s[a_j]
                post_touch = self._touch_offset(p_s, a_j, post_len, dest)
                eff_len = post_touch if post_touch is not None else post_len
                if self._valid_extent(p_s, a_j, eff_len) < eff_len:
                    continue
                if is_last_seg:
                    ivk = line_key(p_s, a_j)
                    if eff_len > 0 and not self._packer(ivk).would_accept(
                        Interval(p_s[a_j], p_s[a_j] + eff_len, owner=build.rid)
                    ):
                        continue
                else:
                    if not self._cells_free(self.track2, p_s, a_j, eff_len):
                        continue
                chosen = (s, (eff_len, post_touch is not None), False)
                break
            if chosen is None:
                reason = (
                    "preempt_last_segment" if is_last_seg else "preempt_internal"
                )
                self.truncate(build.rid, len(build.moves), reason)
                return RouteOutcome.PREEMPTED
            s, post, pre_touched = chosen
            # commit pre-bend cells
            pre_track = self.TRACK_SPECIAL if j == 1 else self.TRACK_INTERNAL
            pre_ledger = None if j == 1 else self.track2
            self._commit_run(build, pre_track, pre_ledger, a_prev, s)
            if j == 1 and first_rec is not None:
                used = build.pos[a_prev] - first_rec.iv.lo
                self._shrink_first_interval(build, first_rec, used)
            if pre_touched:
                return self._finish_delivery(build)
            eff_len, touched = post
            if is_last_seg and not touched:
                pos2 = build.pos
                ivk = line_key(pos2, a_j)
                iv = Interval(pos2[a_j], pos2[a_j] + eff_len, owner=build.rid)
                if eff_len > 0 and not self._offer_interval(build, ivk, iv):
                    self.truncate(build.rid, len(build.moves), "preempt_last_segment")
                    return RouteOutcome.PREEMPTED
                self._commit_run(build, self.TRACK_SPECIAL, None, a_j, eff_len)
            else:
                track = self.TRACK_SPECIAL if is_last_seg else self.TRACK_INTERNAL
                ledger = None if is_last_seg else self.track2
                if is_last_seg and eff_len > 0:
                    # delivery touch on the last segment: still interval-packed
                    ivk = line_key(build.pos, a_j)
                    iv = Interval(
                        build.pos[a_j], build.pos[a_j] + eff_len, owner=build.rid
                    )
                    if not self._offer_interval(build, ivk, iv):
                        self.truncate(
                            build.rid, len(build.moves), "preempt_last_segment"
                        )
                        return RouteOutcome.PREEMPTED
                    ledger = None
                self._commit_run(build, track, ledger, a_j, eff_len)
                if touched:
                    return self._finish_delivery(build)
        return None

    # ------------------------------------------------------------- last tile

    def _route_last_tile(self, build: Build, last_tile) -> RouteOutcome:
        """Track-3 climb to the destination (Section 5.2.4), dimension order
        for d > 1, nearest-destination preemption on conflicts."""
        request = build.request
        dest = request.dest
        for axis in range(self.d):
            pos = build.pos
            gap = dest[axis] - pos[axis]
            if gap < 0:
                self.truncate(build.rid, len(build.moves), "preempt_last_tile")
                return RouteOutcome.PREEMPTED
            if gap == 0:
                continue
            if self._valid_extent(pos, axis, gap) < gap:
                self.counters["horizon_miss"] += 1
                self.truncate(build.rid, len(build.moves), "preempt_last_tile")
                return RouteOutcome.PREEMPTED
            # collect climbing conflicts along the run
            blockers: set = set()
            v = pos
            for _ in range(gap):
                if self.track3.residual(axis, v) < 1:
                    owner = self.owner3.get((axis, v))
                    if owner is None:
                        blockers.add(-1)
                    else:
                        blockers.add(owner)
                v = advance(v, axis, 1)
            if blockers:
                # nearest destination wins (Section 5.2.4)
                if -1 in blockers or any(
                    self.builds[o].request.dest[axis] <= dest[axis]
                    for o in blockers
                ):
                    self.truncate(build.rid, len(build.moves), "preempt_last_tile")
                    return RouteOutcome.PREEMPTED
                for o in sorted(blockers):
                    idx = self._first_conflict_index(o, axis, pos, gap)
                    self.truncate(o, idx, "preempt_by_climb")
            self._commit_run(build, self.TRACK_LAST, self.track3, axis, gap)
        return self._finish_delivery(build)

    def _first_conflict_index(self, victim_rid: int, axis: int, pos: tuple, gap: int) -> int:
        vb = self.builds[victim_rid]
        cells = set()
        v = pos
        for _ in range(gap):
            cells.add((axis, v))
            v = advance(v, axis, 1)
        for i, (m, tail) in enumerate(zip(vb.moves, vb.tails)):
            if (m, tail) in cells:
                return i
        return len(vb.moves)

    # ------------------------------------------------------------- delivery

    def _finish_delivery(self, build: Build) -> RouteOutcome:
        pos = build.pos
        if pos[:-1] != build.request.dest:
            raise RoutingError(
                f"request {build.rid} finished at {pos}, not its destination"
            )
        t = self.graph.vertex_time(pos)
        deadline = build.request.deadline
        if deadline is not None and t > deadline:
            # cut strictly before the first spatial arrival at the
            # destination: truncating at len(moves) would keep the full
            # path and the replay would deliver the packet *late*,
            # violating the Section 5.4 invariant (delivered => on time)
            dest = build.request.dest
            v = build.start
            cut = len(build.moves)
            for i, axis in enumerate(build.moves):
                v = advance(v, axis, 1)
                if v[:-1] == dest:
                    cut = i
                    break
            self.truncate(build.rid, cut, "deadline_miss")
            return RouteOutcome.PREEMPTED
        build.delivered_time = t
        return RouteOutcome.DELIVERED

    # ------------------------------------------------------------- plan export

    def finalize(self, plan: Plan) -> Plan:
        for rid, build in self.builds.items():
            if build.status == RouteOutcome.DELIVERED:
                plan.record(rid, RouteOutcome.DELIVERED, build.path())
            elif build.status == RouteOutcome.PREEMPTED:
                plan.record(rid, RouteOutcome.PREEMPTED, build.path())
        plan.meta.setdefault("detailed", {}).update(self.counters)
        return plan
