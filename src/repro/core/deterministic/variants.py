"""Special-case deterministic routers (Section 6).

* :class:`BufferlessLineRouter` -- ``B = 0`` on a line: the space-time
  graph decomposes into independent diagonals, each request is an interval
  on its diagonal, and online preemptive interval packing is *optimal*
  per diagonal -- this is exactly the nearest-to-go policy, Proposition 12.
* :class:`LargeCapacityRouter` -- Theorem 13 (``B, c >= k``): scale the
  capacities down by ``k``, run IPP directly on the space-time graph, and
  the ``(2, k)``-competitive packing for the scaled capacities is an
  ``(O(k), 1)``-packing for the true ones.  Packets are rejected or routed,
  never preempted.
"""

from __future__ import annotations

import math

from repro.core.base import Plan, RouteOutcome, Router
from repro.network.topology import LineNetwork, Network
from repro.packing.interval import Interval, OnlineIntervalPacker
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.util.errors import ValidationError

INF = math.inf


class BufferlessLineRouter(Router):
    """Nearest-to-go as an optimal planner for ``B = 0`` lines.

    With no buffers a packet injected at ``(a, t)`` must move every step:
    its only possible path is the diagonal ``(a, t) -> (b, t + b - a)``,
    i.e. the interval ``(a, b)`` on the line with untilted column
    ``t - a``.  Per column the instance is interval packing; the online
    preemptive GLL82 rule is optimal (Proposition 12).  Capacity ``c > 1``
    is handled with ``c`` independent channels per column.
    """

    def __init__(self, network: LineNetwork, horizon: int):
        if network.buffer_size != 0:
            raise ValidationError("BufferlessLineRouter requires B = 0")
        if network.d != 1:
            raise ValidationError("BufferlessLineRouter is for lines")
        self.network = network
        self.horizon = int(horizon)
        # (column, channel) -> packer
        self.packers: dict = {}
        self.assignment: dict = {}  # rid -> (column, channel, Interval)

    def _packer(self, col: int, channel: int) -> OnlineIntervalPacker:
        key = (col, channel)
        packer = self.packers.get(key)
        if packer is None:
            packer = self.packers[key] = OnlineIntervalPacker(key)
        return packer

    def route(self, requests) -> Plan:
        plan = Plan()
        n = self.network.length
        for r in self.arrival_order(requests):
            self.network.check_request(r)
            a, b, t = r.source[0], r.dest[0], r.arrival
            arrive_at = t + (b - a)
            if r.is_trivial():
                plan.record(r.rid, RouteOutcome.DELIVERED,
                            STPath((a, t - a), (), rid=r.rid))
                continue
            if arrive_at > self.horizon or (
                r.deadline is not None and arrive_at > r.deadline
            ):
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            col = t - a
            iv = Interval(a, b, owner=r.rid)
            routed = False
            # prefer a conflict-free channel; preempt only when forced
            channels = sorted(
                range(self.network.min_capacity),
                key=lambda ch: bool(self._packer(col, ch).conflicting(iv)),
            )
            for channel in channels:
                packer = self._packer(col, channel)
                if not packer.would_accept(iv):
                    continue
                accepted, victims = packer.offer(iv)
                assert accepted
                for victim in victims:
                    # preempted packet is dropped where the new one starts
                    vcol, vch, viv = self.assignment[victim.owner]
                    cut = max(iv.lo, victim.lo) - victim.lo
                    prefix = (
                        Interval(victim.lo, victim.lo + cut, owner=victim.owner)
                        if cut > 0
                        else None
                    )
                    if prefix is not None:
                        packer.insert_raw(prefix)
                    plan.record(
                        victim.owner,
                        RouteOutcome.PREEMPTED,
                        STPath((victim.lo, vcol), (0,) * cut, rid=victim.owner),
                    )
                self.assignment[r.rid] = (col, channel, iv)
                plan.record(
                    r.rid,
                    RouteOutcome.DELIVERED,
                    STPath((a, col), (0,) * (b - a), rid=r.rid),
                )
                routed = True
                break
            if not routed:
                plan.record(r.rid, RouteOutcome.REJECTED)
        plan.meta["algorithm"] = "bufferless-ntg"
        return plan


class SpaceTimeDigraph:
    """Digraph adapter exposing a space-time graph to the IPP algorithm.

    Nodes are ``("v", vertex)`` plus per-request sinks; edge keys are
    ``("e", tail, move)`` with the *scaled* capacities of Theorem 13 and
    ``("k", vertex, rid)`` sink edges of infinite capacity.
    """

    def __init__(self, graph: SpaceTimeGraph, buffer_cap: int, link_cap: int):
        self.graph = graph
        self.buffer_cap = int(buffer_cap)
        self.link_cap = int(link_cap)
        self._sink_edges: dict = {}  # vertex -> [(edge_key, sink_node)]

    def register_sink(self, request):
        rid = request.rid
        node = ("sink", rid)
        count = 0
        for col in self.graph.dest_columns(request):
            v = (*request.dest, col)
            if not self.graph.valid_vertex(v):
                continue
            if self.graph.vertex_time(v) < request.arrival + \
                    self.graph.network.dist(request.source, request.dest):
                continue  # unreachable copies: arrival time physics
            self._sink_edges.setdefault(v, []).append((("k", v, rid), node))
            count += 1
        return node if count else None

    def out_edges(self, node):
        if node[0] == "sink":
            return
        v = node[1]
        for move in range(self.graph.d + 1):
            cap = self.buffer_cap if move == self.graph.d else self.link_cap
            if cap <= 0:
                continue
            head = self.graph.move_head(v, move)
            if self.graph.valid_vertex(head):
                yield ("e", v, move), ("v", head)
        yield from self._sink_edges.get(v, ())

    def capacity(self, edge_key) -> float:
        if edge_key[0] == "k":
            return INF
        move = edge_key[2]
        return self.buffer_cap if move == self.graph.d else self.link_cap

    def is_sink(self, node) -> bool:
        return node[0] == "sink"


class LargeCapacityRouter(Router):
    """Theorem 13: ``O(log n)``-competitive routing for large ``B`` and
    ``c`` via online path packing on the space-time graph with capacities
    scaled down by the tile side ``k``.  Non-preemptive."""

    def __init__(self, network: Network, horizon: int, k: int | None = None,
                 pmax: int | None = None, strict: bool = True):
        self.network = network
        self.graph = SpaceTimeGraph(network, horizon)
        self.pmax = network.pmax() if pmax is None else int(pmax)
        self.k = network.tile_side_k(self.pmax) if k is None else int(k)
        B, c = network.buffer_size, network.min_capacity
        if strict and (B < self.k or c < self.k):
            raise ValidationError(
                f"Theorem 13 requires B, c >= k = {self.k}; got B={B}, c={c}"
            )
        self.digraph = SpaceTimeDigraph(
            self.graph, buffer_cap=B // self.k, link_cap=c // self.k
        )
        self.ipp = OnlinePathPacking(self.digraph, pmax=self.pmax)

    def route(self, requests) -> Plan:
        plan = Plan()
        for r in self.arrival_order(requests):
            self.network.check_request(r)
            src = self.graph.source_vertex(r)
            if r.is_trivial():
                if self.graph.valid_vertex(src):
                    plan.record(r.rid, RouteOutcome.DELIVERED, STPath(src, (), rid=r.rid))
                else:
                    plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            sink = self.digraph.register_sink(r)
            if sink is None or not self.graph.valid_vertex(src):
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            path = self.ipp.route(("v", src), sink)
            if path is None:
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            moves = tuple(
                edge_key[2] for edge_key in path.edges if edge_key[0] == "e"
            )
            plan.record(r.rid, RouteOutcome.DELIVERED, STPath(src, moves, rid=r.rid))
        plan.meta["algorithm"] = "theorem13-large-capacity"
        plan.meta["k"] = self.k
        plan.meta["ipp"] = {
            "accepted": self.ipp.stats.accepted,
            "rejected": self.ipp.stats.rejected,
            "max_load_ratio": self.ipp.max_load_ratio(),
        }
        return plan


# -- registry entries -------------------------------------------------------

from repro.api.registry import planner_adapter, register_algorithm  # noqa: E402
from repro.network.topology import grid_geometry_reason  # noqa: E402


def _bufferless_requires(network, horizon) -> str | None:
    if network.d != 1:
        return "targets lines (d = 1)"
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    if network.buffer_size != 0:
        return "requires B = 0 (bufferless)"
    return None


def _theorem13_requires(network, horizon) -> str | None:
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    # the minimum edge capacity is the binding constraint
    B, c = network.buffer_size, network.min_capacity
    k = network.tile_side_k()
    if B < k or c < k:
        return f"Theorem 13 requires B, c >= k = {k}"
    return None


register_algorithm(
    "bufferless",
    description="optimal planner for B = 0 lines via per-diagonal online "
    "interval packing (Proposition 12)",
    requires=_bufferless_requires,
    fast_engine="plan",
)(planner_adapter(BufferlessLineRouter, "bufferless"))

register_algorithm(
    "theorem13",
    description="Theorem 13: IPP on the space-time graph with capacities "
    "scaled by the tile side k (needs B, c >= k)",
    requires=_theorem13_requires,
    fast_engine="plan",
)(planner_adapter(LargeCapacityRouter, "theorem13"))
