"""The knock-knee tile automaton (Section 5.2.3, Figure 6), d = 1.

Detailed routing of internal segments resolves conflicts with three
node-local rules.  At every space-time node inside a tile, with ``horzin``
the path arriving on the horizontal (buffer) edge and ``vertin`` the path
arriving on the vertical (transmit) edge:

1. if one incoming edge is free, the other path moves toward its exit side;
2. (*precedence to straight traffic*) if ``horzin`` exits east or
   ``vertin`` exits north, both continue without bending;
3. otherwise a *knock-knee* bend: they swap directions (Figure 6).

The paper proves that with at most ``k`` paths per tile side (the IPP load
guarantee) every path reaches its required exit side.  The production
pipeline in :mod:`repro.core.deterministic.detailed` uses an equivalent
reservation-time rule; this module implements the automaton verbatim as a
dataflow over the tile's nodes so the claim itself can be tested and
benchmarked (experiment E11), and to serve as ground truth for the bend
mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError

WEST, SOUTH = "W", "S"
EAST, NORTH = "E", "N"


@dataclass
class TilePath:
    """One path crossing a ``k x k`` tile.

    ``entry`` is ``(side, lane)`` -- entering from the west at row ``lane``
    or from the south at column ``lane`` -- or ``("I", (row, col))`` for a
    path that starts inside the tile (a first segment bending here).
    ``exit_side`` is ``"E"`` or ``"N"``.
    """

    name: object
    entry: tuple
    exit_side: str
    cells: list = field(default_factory=list)  # visited (row, col) nodes
    out: tuple | None = None  # (side, lane) on success
    failed: bool = False


class KnockKneeTile:
    """Run the Section 5.2.3 automaton over one tile."""

    def __init__(self, k: int):
        if k < 1:
            raise ValidationError("tile side must be >= 1")
        self.k = k

    def route(self, paths) -> list:
        """Compute every path's route through the tile.

        Nodes are processed in topological (dataflow) order; each node
        applies rules 1-3.  Returns the input list with ``cells``, ``out``
        and ``failed`` filled in.
        """
        k = self.k
        # incoming occupancy per node: horz[r][c] = path entering (r, c)
        # from the west; vert[r][c] = from the south
        horz = [[None] * (k + 1) for _ in range(k + 1)]
        vert = [[None] * (k + 1) for _ in range(k + 1)]
        starts = {}
        for p in paths:
            p.cells, p.out, p.failed = [], None, False
            side, lane = p.entry
            if side == WEST:
                if not 0 <= lane < k:
                    raise ValidationError(f"bad west lane {lane}")
                if horz[lane][0] is not None:
                    raise ValidationError(f"duplicate west entry at row {lane}")
                horz[lane][0] = p
            elif side == SOUTH:
                if not 0 <= lane < k:
                    raise ValidationError(f"bad south lane {lane}")
                if vert[0][lane] is not None:
                    raise ValidationError(f"duplicate south entry at col {lane}")
                vert[0][lane] = p
            elif side == "I":
                starts.setdefault(tuple(lane), []).append(p)
            else:
                raise ValidationError(f"unknown entry side {side}")

        def send(p, r, c, direction):
            """Forward path p out of node (r, c)."""
            if direction == EAST:
                if c + 1 >= k:
                    p.out = (EAST, r)
                    p.failed = p.exit_side != EAST
                else:
                    horz[r][c + 1] = p
            else:
                if r + 1 >= k:
                    p.out = (NORTH, c)
                    p.failed = p.exit_side != NORTH
                else:
                    vert[r + 1][c] = p

        # dataflow order: a node's inputs come from the west and south
        for diag in range(2 * k - 1):
            for r in range(max(0, diag - k + 1), min(k, diag + 1)):
                c = diag - r
                h, v = horz[r][c], vert[r][c]
                for p in starts.get((r, c), ()):  # interior starts
                    if h is None:
                        h = p
                    elif v is None:
                        v = p
                    else:
                        p.failed = True
                        continue
                    p.cells.append((r, c))
                if h is not None:
                    h.cells.append((r, c))
                if v is not None:
                    v.cells.append((r, c))
                if h is not None and v is None:
                    send(h, r, c, EAST if h.exit_side == EAST else NORTH)
                elif v is not None and h is None:
                    send(v, r, c, NORTH if v.exit_side == NORTH else EAST)
                elif h is not None and v is not None:
                    if h.exit_side == EAST or v.exit_side == NORTH:
                        # rule 2: precedence to straight traffic
                        send(h, r, c, EAST)
                        send(v, r, c, NORTH)
                    else:
                        # rule 3: knock-knee (Figure 6)
                        send(h, r, c, NORTH)
                        send(v, r, c, EAST)
                horz[r][c] = vert[r][c] = None
        return list(paths)

    def count_bends(self, paths) -> int:
        """Total direction changes across a routed path set (knock-knee
        partners contribute two: one bend each, Figure 6)."""
        bends = 0
        for p in paths:
            d_prev = None
            for a, b in zip(p.cells, p.cells[1:]):
                d = NORTH if b[0] > a[0] else EAST
                if d_prev is not None and d != d_prev:
                    bends += 1
                d_prev = d
        return bends


def always_succeeds(k: int, paths) -> bool:
    """Convenience wrapper: route and report whether every path exited on
    its required side (the Section 5.2.3 claim)."""
    routed = KnockKneeTile(k).route(paths)
    return all(not p.failed for p in routed)
