"""The deterministic online algorithm (Algorithm 1, Sections 4-6).

Pipeline per request (Section 4): reduce to a path request on the
``{1, d+1, inf}``-sketch graph, run online integral path packing (ipp),
then *detailed routing* translates the sketch path into a space-time path
using three capacity tracks (Section 5.2.1):

* track 1 -- special (first/last) segments, resolved by online interval
  packing per row/column (Section 5.2.2);
* track 2 -- internal segments, bends inside bend tiles (Section 5.2.3);
* track 3 -- routing inside the last tile with nearest-destination
  preemption (Section 5.2.4).

Requiring one unit of capacity per track is why the algorithm needs
``B, c >= 3``.
"""

from repro.core.deterministic.framework import DeterministicRouter

__all__ = ["DeterministicRouter"]
