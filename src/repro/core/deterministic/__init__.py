"""The deterministic online algorithm (Algorithm 1, Sections 4-6).

Pipeline per request (Section 4): reduce to a path request on the
``{1, d+1, inf}``-sketch graph, run online integral path packing (ipp),
then *detailed routing* translates the sketch path into a space-time path
using three capacity tracks (Section 5.2.1):

* track 1 -- special (first/last) segments, resolved by online interval
  packing per row/column (Section 5.2.2);
* track 2 -- internal segments, bends inside bend tiles (Section 5.2.3);
* track 3 -- routing inside the last tile with nearest-destination
  preemption (Section 5.2.4).

Requiring one unit of capacity per track is why the algorithm needs
``B, c >= 3``.
"""

from repro.api.registry import planner_adapter, register_algorithm
from repro.core.deterministic.framework import DeterministicRouter
from repro.core.deterministic import variants as _variants  # registers itself
from repro.core.deterministic import frontier as _frontier  # registers det2
from repro.network.topology import grid_geometry_reason

__all__ = ["DeterministicRouter"]


def _det_requires(network, horizon) -> str | None:
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    # the minimum edge capacity is the binding constraint on
    # heterogeneous networks
    B, c = network.buffer_size, network.min_capacity
    if (B >= 3 and c >= 3) or (B == 0 and c >= 3):
        return None
    return "requires B, c >= 3 (or B = 0, c >= 3)"


register_algorithm(
    "det",
    description="the deterministic algorithm (Algorithm 1, Sections 4-6); "
    "polylog-competitive on lines and grids",
    requires=_det_requires,
    fast_engine="plan",  # plans replay on the fast engine
)(planner_adapter(DeterministicRouter, "det"))
