"""Improved deterministic grid routing (arXiv:1501.06140).

*Better Online Deterministic Packet Routing on Grids* improves the
source paper's deterministic algorithm by dropping the lossy
intermediate layers: instead of reducing each request to a sketch path
over tiles (paying the tiling constants) or splitting every capacity
``k``-fold (Theorem 13, paying a ``1/k`` throughput factor), the
improved router runs the online primal-dual path packing *directly on
the space-time graph with the true per-edge capacities*.

Two changes relative to :class:`~repro.core.deterministic.variants.
LargeCapacityRouter` implement that frontier here:

* **True capacities.** Edge capacities come from
  :meth:`~repro.network.topology.Network.capacity_of` per tail node and
  axis (buffer edges carry the full ``B``), so heterogeneous links are
  priced individually instead of through the global minimum, and no
  ``k``-fold scaling discards capacity up front.
* **Saturation awareness.** The digraph adapter exposes only *residual*
  edges -- an edge whose integral load has reached its capacity simply
  disappears from ``out_edges`` -- so the packing's ``beta`` is 1 by
  construction: every plan the router emits replays on the simulator
  without preemption or capacity violations, for any ``B >= 0`` and
  ``c >= 1`` (no ``B, c >= 3`` side condition).

The primal-dual admission rule (reject when the lightest residual path
has weight ``>= 1``) is unchanged, so the Theorem 1 competitiveness
machinery still applies -- now against the *unscaled* fractional
optimum, which is where the improvement over ``det``/``theorem13``
comes from.
"""

from __future__ import annotations

import math

from repro.core.base import Plan, RouteOutcome, Router
from repro.network.topology import Network
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph

INF = math.inf


class ResidualSpaceTimeDigraph:
    """Digraph adapter over a space-time graph with true per-edge
    capacities and saturation-aware edge enumeration.

    Nodes are ``("v", vertex)`` plus per-request ``("sink", rid)``
    targets; edge keys are ``("e", tail, move)`` and infinite-capacity
    ``("k", vertex, rid)`` sink edges, matching the protocol of
    :class:`~repro.packing.ipp.OnlinePathPacking`.  ``flow`` is bound to
    the packer's integral load dict after construction; ``out_edges``
    consults it so saturated edges vanish from the oracle's view.
    """

    def __init__(self, graph: SpaceTimeGraph):
        self.graph = graph
        self.flow: dict = {}  # bound to OnlinePathPacking.flow by the router
        self._sink_edges: dict = {}  # vertex -> [(edge_key, sink_node)]

    def register_sink(self, request):
        rid = request.rid
        node = ("sink", rid)
        count = 0
        for col in self.graph.dest_columns(request):
            v = (*request.dest, col)
            if not self.graph.valid_vertex(v):
                continue
            if self.graph.vertex_time(v) < request.arrival + \
                    self.graph.network.dist(request.source, request.dest):
                continue  # unreachable copies: arrival time physics
            self._sink_edges.setdefault(v, []).append((("k", v, rid), node))
            count += 1
        return node if count else None

    def out_edges(self, node):
        if node[0] == "sink":
            return
        v = node[1]
        for move in range(self.graph.d + 1):
            key = ("e", v, move)
            cap = self.capacity(key)
            if cap <= 0 or self.flow.get(key, 0) >= cap:
                continue  # absent or saturated: invisible to the oracle
            head = self.graph.move_head(v, move)
            if self.graph.valid_vertex(head):
                yield key, ("v", head)
        yield from self._sink_edges.get(v, ())

    def capacity(self, edge_key) -> float:
        if edge_key[0] == "k":
            return INF
        v, move = edge_key[1], edge_key[2]
        if move == self.graph.buffer_move:
            return self.graph.network.buffer_size
        return self.graph.network.capacity_of(v[:-1], move)

    def is_sink(self, node) -> bool:
        return node[0] == "sink"


class ImprovedDeterministicRouter(Router):
    """arXiv:1501.06140: saturation-aware primal-dual path packing on
    the space-time graph with true per-edge capacities.  Non-preemptive;
    emitted plans are feasible by construction (``beta = 1``)."""

    def __init__(self, network: Network, horizon: int,
                 pmax: int | None = None):
        self.network = network
        self.graph = SpaceTimeGraph(network, horizon)
        self.pmax = network.pmax() if pmax is None else int(pmax)
        self.digraph = ResidualSpaceTimeDigraph(self.graph)
        self.ipp = OnlinePathPacking(self.digraph, pmax=self.pmax)
        # the adapter reads the packer's own integral loads: acceptance
        # immediately hides any edge it saturates
        self.digraph.flow = self.ipp.flow

    def route(self, requests) -> Plan:
        plan = Plan()
        for r in self.arrival_order(requests):
            self.network.check_request(r)
            src = self.graph.source_vertex(r)
            if r.is_trivial():
                if self.graph.valid_vertex(src):
                    plan.record(r.rid, RouteOutcome.DELIVERED,
                                STPath(src, (), rid=r.rid))
                else:
                    plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            sink = self.digraph.register_sink(r)
            if sink is None or not self.graph.valid_vertex(src):
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            path = self.ipp.route(("v", src), sink)
            if path is None:
                plan.record(r.rid, RouteOutcome.REJECTED)
                continue
            moves = tuple(
                edge_key[2] for edge_key in path.edges if edge_key[0] == "e"
            )
            plan.record(r.rid, RouteOutcome.DELIVERED,
                        STPath(src, moves, rid=r.rid))
        plan.meta["algorithm"] = "det2-frontier"
        plan.meta["ipp"] = {
            "accepted": self.ipp.stats.accepted,
            "rejected": self.ipp.stats.rejected,
            "max_load_ratio": self.ipp.max_load_ratio(),
        }
        return plan


# -- registry entry ---------------------------------------------------------

from repro.api.registry import planner_adapter, register_algorithm  # noqa: E402
from repro.network.topology import grid_geometry_reason  # noqa: E402


def _det2_requires(network, horizon) -> str | None:
    # the space-time construction is the only constraint: any B >= 0 and
    # c >= 1 works (saturated edges simply vanish from the residual graph)
    return grid_geometry_reason(network)


register_algorithm(
    "det2",
    description="improved deterministic router (arXiv:1501.06140): "
    "saturation-aware path packing on the space-time graph with true "
    "per-edge capacities; any B >= 0, c >= 1",
    requires=_det2_requires,
    fast_engine="plan",
)(planner_adapter(ImprovedDeterministicRouter, "det2"))
