"""Algorithm 1: the deterministic framework (Section 4).

Upon arrival of request ``r_i = (a_i, b_i, t_i, d_i)``:

1. reduce it to a path request on the ``{1, d+1, inf}``-sketch graph: source
   is the half-tile ``s_in`` of the tile containing ``(a_i, t_i)``,
   destination is a per-request sink wired to every tile holding a copy
   ``(b_i, t')`` with ``t_i <= t' <= d_i`` (Sections 5.1, 5.4);
2. run online integral path packing; a rejection there rejects the request;
3. perform detailed routing of the sketch path in the space-time graph;
   failures preempt the request (Section 5.2).

Parameters follow the paper: ``p_max = 2n(1 + n(B/c + 1))`` on a line
(Section 3.6.1), tile side ``k = ceil(log2(1 + 3 p_max))``, and the packing
bound ``p_max <- 2 p_max + 1`` after node splitting (Section 5.1).  Both are
overridable for the ablation benches (E16) -- the defaults reproduce the
theorems, smaller ``k`` explores the practical trade-off.
"""

from __future__ import annotations

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.deterministic.detailed import DetailedRouting
from repro.core.deterministic.geometry import sketch_tiles, tile_moves
from repro.network.topology import Network
from repro.packing.ipp import OnlinePathPacking
from repro.spacetime.graph import STPath, SpaceTimeGraph
from repro.spacetime.sketch import SplitSketchGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError


class DeterministicRouter(Router):
    """Centralized deterministic online packet routing for uni-directional
    grids (Theorem 4 for ``d = 1``, Theorem 10 in general, Theorem 11 with
    ``B = 0``).

    Parameters
    ----------
    network:
        Grid with ``B, c in [3, log n]`` (Theorem 4/10) or ``B = 0, c >= 3``
        (Theorem 11).  ``strict=False`` disables the range check for
        exploratory runs.
    horizon:
        Simulation horizon ``T``; all deadlines are truncated to it.
    k, pmax:
        Tile side and path-length bound; default to the paper's formulas.
    """

    def __init__(self, network: Network, horizon: int, k: int | None = None,
                 pmax: int | None = None, strict: bool = True):
        B, c = network.buffer_size, network.min_capacity
        if strict:
            ok = (B >= 3 and c >= 3) or (B == 0 and c >= 3)
            if not ok:
                raise ValidationError(
                    f"deterministic algorithm requires B, c >= 3 (or B = 0, "
                    f"c >= 3); got B={B}, c={c}.  Pass strict=False to "
                    f"experiment outside the theorem's range."
                )
        self.network = network
        self.graph = SpaceTimeGraph(network, horizon)
        self.pmax = network.pmax() if pmax is None else int(pmax)
        self.k = network.tile_side_k(self.pmax) if k is None else int(k)
        self.tiling = Tiling.cubes(network.d, self.k)
        self.sketch = SplitSketchGraph(self.graph, self.tiling)
        # Section 5.1: node splitting doubles path lengths (plus the sink hop)
        self.ipp = OnlinePathPacking(self.sketch, pmax=2 * self.pmax + 1)
        self.detail = DetailedRouting(self.graph, self.tiling)

    def route(self, requests) -> Plan:
        plan = Plan()
        counters = {"trivial": 0, "ipp_rejected": 0, "no_sink": 0, "accepted": 0}
        for request in self.arrival_order(requests):
            self.network.check_request(request)
            if request.is_trivial():
                # source == destination: delivered at injection
                src = self.graph.source_vertex(request)
                if self.graph.valid_vertex(src):
                    plan.record(
                        request.rid,
                        RouteOutcome.DELIVERED,
                        STPath(src, (), rid=request.rid),
                    )
                    counters["trivial"] += 1
                else:
                    plan.record(request.rid, RouteOutcome.REJECTED)
                continue
            sink = self.sketch.register_sink(
                request.rid, request.dest, request.arrival, request.deadline
            )
            if sink is None:
                plan.record(request.rid, RouteOutcome.REJECTED)
                counters["no_sink"] += 1
                continue
            source = self.sketch.source_node(request)
            sketch_path = self.ipp.route(source, sink)
            if sketch_path is None:
                plan.record(request.rid, RouteOutcome.REJECTED)
                counters["ipp_rejected"] += 1
                continue
            counters["accepted"] += 1
            tiles = sketch_tiles(sketch_path)
            moves = tile_moves(tiles)
            self.detail.route_request(request, tiles, moves)
        self.detail.finalize(plan)
        plan.meta["framework"] = counters
        plan.meta["k"] = self.k
        plan.meta["pmax"] = self.pmax
        plan.meta["ipp"] = {
            "accepted": self.ipp.stats.accepted,
            "rejected": self.ipp.stats.rejected,
            "max_load_ratio": self.ipp.max_load_ratio(),
        }
        return plan
