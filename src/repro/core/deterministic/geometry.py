"""Sketch-path geometry: tiles, moves and segment runs.

A sketch path returned by IPP over the split sketch graph visits nodes
``("in", T0), ("out", T0), ("in", T1), ..., ("out", TL), ("sink", key)``.
Detailed routing needs (i) the tile sequence ``T0..TL``, (ii) the axis of
each tile-to-tile move, and (iii) the decomposition of the move sequence
into maximal same-axis *runs*: the first run is the first special segment,
the last run the last special segment, and the runs in between are the
internal segments (Section 5.2.1, "Partitioning of Detailed Routing").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import RoutingError


def sketch_tiles(oracle_path) -> list:
    """Tile sequence of a split-sketch oracle path (sink node dropped)."""
    tiles = []
    for node in oracle_path.nodes:
        kind = node[0]
        if kind == "sink":
            continue
        if kind == "in":
            tiles.append(node[1])
        elif kind == "out":
            if not tiles or tiles[-1] != node[1]:
                raise RoutingError(f"malformed sketch path near {node}")
    if not tiles:
        raise RoutingError("sketch path visits no tiles")
    return tiles


def plain_sketch_tiles(oracle_path) -> list:
    """Tile sequence of a plain-sketch oracle path (randomized algorithm)."""
    return [node[1] for node in oracle_path.nodes if node[0] == "t"]


def tile_moves(tiles) -> list:
    """Axis of each tile-to-tile step (must differ in exactly one axis)."""
    moves = []
    for a, b in zip(tiles, tiles[1:]):
        diff = [i for i, (x, y) in enumerate(zip(a, b)) if x != y]
        if len(diff) != 1 or b[diff[0]] - a[diff[0]] != 1:
            raise RoutingError(f"non-adjacent sketch tiles {a} -> {b}")
        moves.append(diff[0])
    return moves


@dataclass(frozen=True)
class Run:
    """A maximal same-axis run of sketch moves.

    ``start``/``end`` index tiles: the run leaves ``tiles[start]`` and,
    after ``count`` boundary crossings along ``axis``, arrives in
    ``tiles[end]`` (``end = start + count``).
    """

    axis: int
    count: int
    start: int
    end: int


def runs_of(moves) -> list:
    """Group ``moves`` into maximal same-axis :class:`Run` objects."""
    runs: list = []
    i = 0
    while i < len(moves):
        j = i
        while j < len(moves) and moves[j] == moves[i]:
            j += 1
        runs.append(Run(axis=moves[i], count=j - i, start=i, end=j))
        i = j
    return runs
