"""The paper's contribution: online packet-routing algorithms for grids.

* :mod:`repro.core.base` -- router interfaces and plan containers.
* :mod:`repro.core.deterministic` -- the deterministic algorithm
  (Algorithm 1, Sections 4-6) with deadline support and the bufferless /
  large-capacity variants.
* :mod:`repro.core.randomized` -- the randomized O(log n) algorithm for
  uni-directional lines (Section 7) and its large/small buffer variants.
"""

from repro.core.base import Plan, RouteOutcome, Router
from repro.core.deterministic import DeterministicRouter
from repro.core.deterministic.variants import (
    BufferlessLineRouter,
    LargeCapacityRouter,
)
from repro.core.randomized import RandomizedLineRouter

__all__ = [
    "BufferlessLineRouter",
    "DeterministicRouter",
    "LargeCapacityRouter",
    "Plan",
    "RandomizedLineRouter",
    "RouteOutcome",
    "Router",
]
