"""Execute :class:`~repro.api.spec.Scenario` objects, serially or batched.

:func:`run` materializes the scenario (network, requests), dispatches to
the registered algorithm, replays/validates through the selected
simulation engine, computes the offline bound, and returns a
:class:`RunReport` -- the self-describing result record every CLI command
and bench prints from.

:func:`run_batch` is the fan-out primitive: it shards whole scenarios over
a process pool (the same machinery as ``analysis.runner.sweep``).  Because
every scenario derives all of its randomness from its own ``(seed,
digest)`` -- see :mod:`repro.api.spec` -- batch output is bit-identical to
the serial run for any worker count.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.api.registry import ALGORITHMS, WORKLOADS
from repro.api.spec import Scenario
from repro.network.engine import resolve_engine_name
from repro.util.errors import ValidationError


class ScenarioError(ValidationError):
    """A scenario names an algorithm that cannot run on its network."""


#: per-process memo of offline bounds keyed by (seed, instance key) --
#: the bound is a pure function of the instance, and comparing k algorithms
#: on one instance would otherwise recompute the same max-flow k times.
#: Keys use the exact tuple, not the 32-bit digest (which is for seeding,
#: not identity: a crc collision here would serve a wrong bound)
_bound_cache: dict = {}


def _instance_bound(scenario: Scenario, network, requests) -> float:
    from repro.baselines.offline import offline_bound  # heavy; import late

    key = (scenario.seed, scenario.instance_key())
    value = _bound_cache.get(key)
    if value is None:
        value = float(offline_bound(network, requests, scenario.horizon))
        if len(_bound_cache) > 4096:
            _bound_cache.clear()
        _bound_cache[key] = value
    return value


@dataclass(frozen=True)
class RunReport:
    """Self-describing outcome of one scenario run.

    ``wall_time`` is excluded from equality so that reports from reruns
    (or from serial-vs-pooled execution) compare bit-identical whenever
    the measured quantities agree.
    """

    scenario: Scenario
    requests: int
    throughput: int
    bound: float
    late: int
    rejected: int
    preempted: int
    latency_mean: float  # mean delivery latency (nan when nothing delivered)
    latency_max: float  # worst delivery latency (nan when nothing delivered)
    steps: int
    engine: str  # engine actually used (after capability fallback)
    wall_time: float = field(compare=False, default=0.0)

    @property
    def ratio(self) -> float:
        """Competitive-ratio estimate ``bound / throughput``."""
        if self.throughput > 0:
            return self.bound / self.throughput
        return math.inf if self.bound > 0 else 1.0

    @property
    def goodput(self) -> float:
        """Fraction of the offline bound achieved."""
        return self.throughput / self.bound if self.bound > 0 else 1.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "requests": self.requests,
            "throughput": self.throughput,
            "bound": self.bound,
            "ratio": self.ratio,
            "late": self.late,
            "rejected": self.rejected,
            "preempted": self.preempted,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
            "steps": self.steps,
            "engine": self.engine,
            "wall_time": self.wall_time,
        }

    def summary(self) -> str:
        return (
            f"{self.scenario.algorithm} on {self.scenario.network}: "
            f"throughput={self.throughput}/{self.requests} "
            f"bound={self.bound:.1f} ratio={self.ratio:.3f} "
            f"engine={self.engine} wall={self.wall_time:.3f}s"
        )


def unavailable_reason(scenario: Scenario, network=None) -> str | None:
    """Capability check: why ``scenario`` cannot run (``None`` when it can).

    Consults both the workload's and the algorithm's registered
    requirements.  This is the registry-metadata replacement for
    try/except ladders: consumers report ``"n/a (requires B, c >= 3)"``
    rows without swallowing real bugs.
    """
    entry = ALGORITHMS.get(scenario.algorithm.name)
    entry.validate_params(scenario.algorithm.kwargs())
    if network is None:
        network = scenario.network.build()
    reason = WORKLOADS.get(scenario.workload.name).unavailable(
        network, scenario.horizon)
    if reason is not None:
        return f"workload {scenario.workload.name!r} {reason}"
    return entry.unavailable(network, scenario.horizon)


def run(scenario: Scenario) -> RunReport:
    """Run one scenario and measure it against the offline bound.

    Raises :class:`ScenarioError` when the algorithm's registered
    requirements are not met (use :func:`unavailable_reason` to pre-check),
    and lets genuine algorithm bugs propagate.
    """
    t0 = time.perf_counter()
    entry = ALGORITHMS.get(scenario.algorithm.name)
    network = scenario.network.build()
    reason = unavailable_reason(scenario, network)
    if reason is not None:
        raise ScenarioError(
            f"{scenario.algorithm.name!r} on {scenario.network}: {reason}")
    params = scenario.algorithm.kwargs()
    _, requests = scenario.build_instance(network)
    result = entry.fn(network, requests, scenario.horizon,
                      rng=scenario.rngs()[1], engine=scenario.engine,
                      **params)
    bound = _instance_bound(scenario, network, requests)

    arrivals = {r.rid: r.arrival for r in requests}
    latencies = [t - arrivals[rid] for rid, t in result.stats.delivery_times.items()]
    latency_mean = float(sum(latencies) / len(latencies)) if latencies else math.nan
    latency_max = float(max(latencies)) if latencies else math.nan

    # ground truth from the result itself: make_engine may have fallen
    # back (unsupported policy, tracing), and metadata can be stale
    engine = getattr(result, "engine", None) or resolve_engine_name(scenario.engine)

    return RunReport(
        scenario=scenario,
        requests=len(requests),
        throughput=result.throughput,
        bound=float(bound),
        late=result.stats.late,
        rejected=result.stats.rejected,
        preempted=result.stats.preempted,
        latency_mean=latency_mean,
        latency_max=latency_max,
        steps=result.stats.steps,
        engine=engine,
        wall_time=time.perf_counter() - t0,
    )


def _run_chunk(scenarios) -> list:
    """Run one worker's chunk serially; module-level so it pickles."""
    return [run(s) for s in scenarios]


def run_batch(scenarios, workers: int | None = None) -> list:
    """Run many scenarios, optionally over a process pool.

    Results come back in input order and are bit-identical to the serial
    run for any ``workers`` (each scenario is self-seeded; no state is
    shared across shards).  Scenarios must therefore be fully declarative
    -- which :class:`Scenario` guarantees by construction.

    Chunks never split a same-instance group: scenarios that differ only
    in the algorithm land in one worker, so the per-process offline-bound
    memo computes each instance's max-flow bound once instead of once per
    algorithm.
    """
    scenarios = [
        s if isinstance(s, Scenario) else Scenario.from_dict(s)
        for s in scenarios
    ]
    if workers is None or workers <= 1 or len(scenarios) <= 1:
        return [run(s) for s in scenarios]

    groups: dict = {}  # (seed, instance digest) -> input indices
    for i, scenario in enumerate(scenarios):
        groups.setdefault((scenario.seed, scenario.instance_digest()),
                          []).append(i)
    target = max(1, len(scenarios) // (4 * workers))
    chunks, current = [], []
    for indices in groups.values():
        current.extend(indices)
        if len(current) >= target:
            chunks.append(current)
            current = []
    if current:
        chunks.append(current)

    results = [None] * len(scenarios)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        chunk_results = pool.map(
            _run_chunk, [[scenarios[i] for i in chunk] for chunk in chunks])
        for chunk, reports in zip(chunks, chunk_results):
            for i, report in zip(chunk, reports):
                results[i] = report
    return results


def load_scenarios(path) -> list:
    """Load scenarios from a JSON spec file.

    Accepts a single scenario object, a list of scenarios, or a mapping
    with a ``"scenarios"`` list -- so one format serves ``route --spec``
    and ``sweep --spec`` alike.
    """
    import json
    import pathlib

    data = json.loads(pathlib.Path(path).read_text())
    if isinstance(data, dict) and "scenarios" in data:
        data = data["scenarios"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list) or not data:
        raise ValidationError(
            f"spec file {path} must hold a scenario object, a list of them, "
            "or {'scenarios': [...]}"
        )
    return [Scenario.from_dict(item) for item in data]
