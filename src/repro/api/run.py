"""Execute :class:`~repro.api.spec.Scenario` objects, serially or batched.

:func:`run` materializes the scenario (network, requests), dispatches to
the registered algorithm, replays/validates through the selected
simulation engine, computes the offline bound, and returns a
:class:`RunReport` -- the self-describing result record every CLI command
and bench prints from.

:func:`run_batch` is the fan-out primitive: it shards whole scenarios over
a process pool (the same machinery as ``analysis.runner.sweep``).  Because
every scenario derives all of its randomness from its own ``(seed,
digest)`` -- see :mod:`repro.api.spec` -- batch output is bit-identical to
the serial run for any worker count.

Scenarios that resolve to the ``"batch"`` engine take a third path:
eligible ones (see :func:`_batch_reason`) are *stacked* -- the whole
group runs as one fused array program in the parent process through
:class:`~repro.network.fast_batch_engine.FastBatchEngine`, which
amortizes the per-step numpy overhead across the group instead of
paying it once per scenario.  Ineligible scenarios fall back to the
per-scenario path; the measured quantities are bit-identical either
way (fuzz-enforced by ``tests/test_differential.py``).

Both accept ``cache="off" | "read" | "readwrite"`` (default: ``"off"``,
or ``"readwrite"`` when the ``REPRO_CACHE`` environment variable names a
cache directory): repeated sweeps then replay identical points from the
content-addressed store in :mod:`repro.api.cache` instead of recomputing
them.  ``run_batch`` resolves every hit in the parent process *before*
sharding, so a fully warmed batch spawns no workers, builds no instances,
and computes no offline bounds at all.
"""

from __future__ import annotations

import dataclasses
import math
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.api.cache import CacheStats, ResultCache, resolve_mode
from repro.api.registry import ALGORITHMS, WORKLOADS
from repro.api.spec import Scenario
from repro.network import kernel
from repro.network.engine import resolve_engine_name
from repro.util.errors import ValidationError


class ScenarioError(ValidationError):
    """A scenario names an algorithm that cannot run on its network."""


#: per-process memo of offline bounds keyed by (method, seed, instance key) --
#: the bound is a pure function of the instance, and comparing k algorithms
#: on one instance would otherwise recompute the same max-flow k times.
#: Keys use the exact tuple, not the 32-bit digest (which is for seeding,
#: not identity: a crc collision here would serve a wrong bound)
_bound_cache: dict = {}

#: the accepted offline-bound surrogates (mirrors
#: ``repro.baselines.offline.BOUND_METHODS``, which stays the single
#: enforcement point; duplicated here so run/run_batch/CLI can validate
#: without importing the heavy bound modules)
BOUND_METHODS = ("maxflow", "cd", "lp", "exact")

#: (cache root or None, writes enabled, call-scoped memo or None, bound
#: method) -- the on-disk tier below the memo.  Module state rather than
#: an ``_execute`` parameter so the worker entry point and every
#: monkeypatched ``_execute`` keep their signatures; set via
#: :func:`_bound_io` in the parent and from the chunk args in workers.
_BOUND_IO: tuple = (None, False, None, "maxflow")


def _check_bound_method(method: str) -> str:
    if method not in BOUND_METHODS:
        raise ValidationError(
            f"unknown offline bound {method!r}; choose one of {BOUND_METHODS}"
        )
    return method


@contextmanager
def _bound_io(store, mode: str, method: str = "maxflow"):
    """Scope the on-disk bound cache to one run/run_batch call.

    With a store present the memo is *call-scoped* (a fresh dict per
    run/run_batch/chunk), not the process-global ``_bound_cache``: bound
    hit/miss accounting must be a function of the batch and the cache
    directory alone, never of what earlier calls in this process happened
    to compute -- that determinism is what lets the dispatch and queue
    layers assert cache-stat equality against the serial run.

    ``method`` names the offline-bound surrogate for the scope; it joins
    every memo and on-disk key, so ``"cd"`` and ``"maxflow"`` values can
    never shadow each other.
    """
    global _BOUND_IO
    previous = _BOUND_IO
    _BOUND_IO = (store, mode == "readwrite", {}, method) if store is not None \
        else (None, False, None, method)
    try:
        yield
    finally:
        _BOUND_IO = previous


def _instance_bound(scenario: Scenario, network, requests) -> float:
    store, write, memo, method = _BOUND_IO
    key = (method, scenario.seed, scenario.instance_key())
    if store is None:
        value = _bound_cache.get(key)
        if value is not None:
            return value
        value = None
    else:
        value = memo.get(key)
        if value is not None:
            store.stats.bound_hits += 1
            return value
        value = store.load_bound(scenario, method)  # counts bound_hits/misses
    if value is None:
        from repro.baselines.offline import offline_bound  # heavy; import late

        value = float(offline_bound(network, requests, scenario.horizon,
                                    method=method))
        if store is not None and write:
            store.store_bound(scenario, value, method)
    if memo is not None:
        memo[key] = value
    if len(_bound_cache) > 4096:
        _bound_cache.clear()
    _bound_cache[key] = value
    return value


def _jsonable(value):
    """Strip ``value`` down to what survives a JSON round-trip unchanged.

    Plan metadata is arbitrarily rich (counters, phases, parameter
    objects); a :class:`RunReport` must compare equal to its own
    cache-replayed copy, so ``meta`` keeps only JSON-representable data
    -- tuples become lists, non-representable objects are dropped.

    Dict keys: JSON objects only have string keys, so int and bool keys
    (router histograms, per-tile counters) are coerced with ``str()``
    rather than dropped -- dropping them would erase the counter on
    *both* sides of the live-vs-replay comparison and hide the loss from
    the equality check.  Other key types still drop the entry.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if isinstance(k, (bool, int)):
                k = str(k)  # deterministic: 5 -> "5", True -> "True"
            elif not isinstance(k, str):
                continue
            v = _jsonable(v)
            if v is not _DROP:
                out[k] = v
        return out
    if isinstance(value, (list, tuple)):
        items = [_jsonable(v) for v in value]
        return [v for v in items if v is not _DROP]
    return _DROP


_DROP = object()


def _nan_safe_eq(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    return a == b


#: fields compared by RunReport.__eq__ -- every measured quantity, but not
#: the wall-clock timings (reruns and cache replays must compare equal)
_COMPARED_FIELDS = (
    "scenario", "requests", "throughput", "bound", "late", "rejected",
    "preempted", "latency_mean", "latency_max", "steps", "engine", "meta",
)


@dataclass(frozen=True, eq=False)
class RunReport:
    """Self-describing outcome of one scenario run.

    ``wall_time``/``engine_time`` are excluded from equality so that
    reports from reruns (or from serial-vs-pooled execution, or replayed
    from the result cache) compare bit-identical whenever the measured
    quantities agree; nan-valued fields (empty latency, skipped bound)
    compare equal to nan rather than poisoning the comparison.
    """

    scenario: Scenario
    requests: int
    throughput: int
    bound: float
    late: int
    rejected: int
    preempted: int
    latency_mean: float  # mean delivery latency (nan when nothing delivered)
    latency_max: float  # worst delivery latency (nan when nothing delivered)
    steps: int
    engine: str  # engine actually used (after capability fallback)
    wall_time: float = field(compare=False, default=0.0)
    engine_time: float = field(compare=False, default=0.0)  # algorithm+replay only
    meta: dict = field(default_factory=dict)  # JSON-safe algorithm metadata

    def __eq__(self, other):
        if not isinstance(other, RunReport):
            return NotImplemented
        return all(
            _nan_safe_eq(getattr(self, name), getattr(other, name))
            for name in _COMPARED_FIELDS
        )

    def replace(self, **changes) -> "RunReport":
        return dataclasses.replace(self, **changes)

    @property
    def ratio(self) -> float:
        """Competitive-ratio estimate ``bound / throughput``."""
        if self.throughput > 0:
            return self.bound / self.throughput
        return math.inf if self.bound > 0 else 1.0

    @property
    def goodput(self) -> float:
        """Fraction of the offline bound achieved.

        A zero bound with positive throughput reports ``inf``, not 1.0:
        delivering packets against a bound that claims nothing was
        deliverable means the bound is broken, and the signal must be
        loud rather than masquerading as a perfect score.
        """
        if self.bound > 0:
            return self.throughput / self.bound
        return math.inf if self.throughput > 0 else 1.0

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario.to_dict(),
            "requests": self.requests,
            "throughput": self.throughput,
            "bound": self.bound,
            "ratio": self.ratio,
            "late": self.late,
            "rejected": self.rejected,
            "preempted": self.preempted,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
            "steps": self.steps,
            "engine": self.engine,
            "wall_time": self.wall_time,
            "engine_time": self.engine_time,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        """Inverse of :meth:`to_dict` (``ratio`` is derived and ignored)."""
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            requests=int(data["requests"]),
            throughput=int(data["throughput"]),
            bound=float(data["bound"]),
            late=int(data["late"]),
            rejected=int(data["rejected"]),
            preempted=int(data["preempted"]),
            latency_mean=float(data["latency_mean"]),
            latency_max=float(data["latency_max"]),
            steps=int(data["steps"]),
            engine=data["engine"],
            wall_time=float(data.get("wall_time", 0.0)),
            engine_time=float(data.get("engine_time", 0.0)),
            meta=dict(data.get("meta", {})),
        )

    def summary(self) -> str:
        return (
            f"{self.scenario.algorithm} on {self.scenario.network}: "
            f"throughput={self.throughput}/{self.requests} "
            f"bound={self.bound:.1f} ratio={self.ratio:.3f} "
            f"engine={self.engine} wall={self.wall_time:.3f}s"
        )


def unavailable_reason(scenario: Scenario, network=None) -> str | None:
    """Capability check: why ``scenario`` cannot run (``None`` when it can).

    Consults both the workload's and the algorithm's registered
    requirements.  This is the registry-metadata replacement for
    try/except ladders: consumers report ``"n/a (requires B, c >= 3)"``
    rows without swallowing real bugs.
    """
    entry = ALGORITHMS.get(scenario.algorithm.name)
    entry.validate_params(scenario.algorithm.kwargs())
    if network is None:
        network = scenario.network.build()
    reason = WORKLOADS.get(scenario.workload.name).unavailable(
        network, scenario.horizon)
    if reason is not None:
        return f"workload {scenario.workload.name!r} {reason}"
    return entry.unavailable(network, scenario.horizon)


def _open_cache(cache, cache_dir) -> tuple:
    """``(mode, ResultCache | None)`` for the ``cache=`` arguments."""
    mode = resolve_mode(cache)
    if mode == "off":
        return mode, None
    return mode, ResultCache(cache_dir)


def _execute(scenario: Scenario, compute_bound: bool) -> RunReport:
    """The uncached core of :func:`run`."""
    t0 = time.perf_counter()
    entry = ALGORITHMS.get(scenario.algorithm.name)
    network = scenario.network.build()
    reason = unavailable_reason(scenario, network)
    if reason is not None:
        raise ScenarioError(
            f"{scenario.algorithm.name!r} on {scenario.network}: {reason}")
    params = scenario.algorithm.kwargs()
    _, requests = scenario.build_instance(network)
    t1 = time.perf_counter()
    result = entry.fn(network, requests, scenario.horizon,
                      rng=scenario.rngs()[1], engine=scenario.engine,
                      **params)
    engine_time = time.perf_counter() - t1
    if compute_bound:
        bound = _instance_bound(scenario, network, requests)
    else:
        bound = math.nan

    arrivals = {r.rid: r.arrival for r in requests}
    latencies = [t - arrivals[rid] for rid, t in result.stats.delivery_times.items()]
    latency_mean = float(sum(latencies) / len(latencies)) if latencies else math.nan
    latency_max = float(max(latencies)) if latencies else math.nan

    # ground truth from the result itself: make_engine may have fallen
    # back (unsupported policy, tracing), and metadata can be stale
    engine = getattr(result, "engine", None) or resolve_engine_name(scenario.engine)

    meta = _jsonable(getattr(result, "plan_meta", {}) or {})
    # the session's step-kernel selection (numba/numpy).  Deliberately
    # engine-independent -- reference runs record it too -- because
    # RunReport equality includes meta and engines share cache entries;
    # kernels are bit-identical by contract, so the digest excludes this
    # exactly like it excludes the engine
    meta["kernel"] = kernel.active_kernel()
    if compute_bound:
        # which surrogate the bound column divides by -- cache replays
        # must only serve reports whose bound method matches the request
        meta["bound_method"] = _BOUND_IO[3]

    return RunReport(
        scenario=scenario,
        requests=len(requests),
        throughput=result.throughput,
        bound=float(bound),
        late=result.stats.late,
        rejected=result.stats.rejected,
        preempted=result.stats.preempted,
        latency_mean=latency_mean,
        latency_max=latency_max,
        steps=result.stats.steps,
        engine=engine,
        wall_time=time.perf_counter() - t0,
        engine_time=engine_time,
        meta=meta,
    )


def run(scenario: Scenario, *, cache: str | None = None,
        compute_bound: bool = True,
        bound_method: str = "maxflow") -> RunReport:
    """Run one scenario and measure it against the offline bound.

    Raises :class:`ScenarioError` when the algorithm's registered
    requirements are not met (use :func:`unavailable_reason` to pre-check),
    and lets genuine algorithm bugs propagate.

    ``cache`` selects the result-cache mode (see :mod:`repro.api.cache`);
    ``compute_bound=False`` skips the offline bound and reports
    ``bound=nan`` -- for timing comparisons and bound-free audits.
    ``bound_method`` picks the surrogate the bound column divides by
    (one of :data:`BOUND_METHODS`); it is recorded in
    ``meta["bound_method"]`` and joins every bound-cache key.
    """
    _check_bound_method(bound_method)
    mode, store = _open_cache(cache, None)
    if store is not None:
        report = store.load(scenario, require_bound=compute_bound,
                            bound_method=bound_method)
        if report is not None:
            store.flush_stats()
            return report
    with _bound_io(store, mode, bound_method):
        report = _execute(scenario, compute_bound)
    if store is not None:
        if mode == "readwrite":
            store.store(report)
        store.flush_stats()
    return report


def _run_chunk(args) -> tuple:
    """Run one worker's chunk serially; module-level so it pickles.

    Returns ``(reports, bound_stats)``.  Workers never consult the
    *report* cache: the parent resolved every hit before sharding and
    performs the stores itself (single writer).  They do share the
    *bound* tier -- offline bounds are instance-keyed,
    algorithm-independent values whose recomputation across processes is
    exactly what the on-disk entries exist to avoid (atomic writes make
    concurrent writers safe: last identical payload wins).  The worker's
    bound hit/miss accounting rides back to the parent, which folds it
    into the batch's ``cache_stats``; chunks never split a same-instance
    group, so the totals are identical to the serial run's.

    The parent's *active* step kernel rides along too (not just the
    ``REPRO_KERNEL`` environment): pooled output -- including
    ``meta["kernel"]`` -- must be bit-identical to the serial run even
    when the parent activated a kernel programmatically
    (:func:`repro.network.kernel.using`) and the pool start method does
    not inherit process state (spawn)."""
    (scenarios, compute_bound, bound_root, bound_write, kernel_name,
     bound_method) = args
    kernel.activate(kernel_name)
    store = ResultCache(bound_root) if bound_root is not None else None
    with _bound_io(store, "readwrite" if bound_write else "read",
                   bound_method):
        reports = [_execute(s, compute_bound) for s in scenarios]
    return reports, (store.stats if store is not None else CacheStats())


def _batch_reason(scenario: Scenario) -> str | None:
    """Why ``scenario`` cannot join a stacked batch execution (``None``
    when it can) -- the run-level eligibility predicate for the
    ``"batch"`` engine.

    Checks, in order: the algorithm registers a ``batch_policy`` factory,
    the factory accepts this parameterization (it may return ``None``,
    e.g. ``edd(adapter=true)``), and
    :meth:`~repro.network.fast_batch_engine.FastBatchEngine.unsupported_reason`
    accepts the resulting policy.  Ineligible scenarios fall back to the
    per-scenario path; :func:`run_batch` raises only when every
    explicitly ``engine="batch"`` scenario is ineligible.
    """
    from repro.network.fast_batch_engine import FastBatchEngine

    entry = ALGORITHMS.get(scenario.algorithm.name)
    params = scenario.algorithm.kwargs()
    entry.validate_params(params)  # genuine spec errors still raise
    if entry.metadata.get("batch_policy") is None:
        return (f"algorithm {scenario.algorithm.name!r} has no batch "
                "policy (RegistryEntry.batch_engine == 'no')")
    policy = entry.batch_policy(params)
    if policy is None:
        return (f"{scenario.algorithm} is parameterized for the "
                "per-scenario path")
    return FastBatchEngine.unsupported_reason(policy)


def _execute_stacked(scenarios, compute_bound: bool) -> list:
    """Run a batch-eligible group as *one* stacked array execution.

    Runs in the parent process (the stacked engine already amortizes the
    per-step numpy overhead that the pool exists to parallelize around).
    Every scenario must have passed :func:`_batch_reason`; capability
    violations still raise :class:`ScenarioError` exactly like
    :func:`_execute`.  ``engine_time`` is the stacked wall time divided
    evenly across the group (per-scenario attribution inside one fused
    array program is not meaningful).
    """
    from repro.network.fast_batch_engine import FastBatchEngine

    t0 = time.perf_counter()
    jobs = []
    for scenario in scenarios:
        entry = ALGORITHMS.get(scenario.algorithm.name)
        network = scenario.network.build()
        reason = unavailable_reason(scenario, network)
        if reason is not None:
            raise ScenarioError(
                f"{scenario.algorithm.name!r} on {scenario.network}: {reason}")
        policy = entry.batch_policy(scenario.algorithm.kwargs())
        _, requests = scenario.build_instance(network)
        jobs.append((network, policy, requests, scenario.horizon))
    t1 = time.perf_counter()
    stacked = FastBatchEngine(jobs).run_many()
    engine_time = (time.perf_counter() - t1) / len(jobs)

    reports = []
    for scenario, (network, _policy, requests, _h), result in zip(
            scenarios, jobs, stacked):
        meta = {"kernel": kernel.active_kernel()}
        if compute_bound:
            bound = _instance_bound(scenario, network, requests)
            meta["bound_method"] = _BOUND_IO[3]  # parity with _execute
        else:
            bound = math.nan
        arrivals = {r.rid: r.arrival for r in requests}
        latencies = [t - arrivals[rid]
                     for rid, t in result.stats.delivery_times.items()]
        latency_mean = (float(sum(latencies) / len(latencies))
                        if latencies else math.nan)
        latency_max = float(max(latencies)) if latencies else math.nan
        reports.append(RunReport(
            scenario=scenario,
            requests=len(requests),
            throughput=result.throughput,
            bound=float(bound),
            late=result.stats.late,
            rejected=result.stats.rejected,
            preempted=result.stats.preempted,
            latency_mean=latency_mean,
            latency_max=latency_max,
            steps=result.stats.steps,
            engine=result.engine,
            wall_time=time.perf_counter() - t0,
            engine_time=engine_time,
            meta=meta,
        ))
    return reports


class BatchResult(list):
    """``run_batch`` output: a plain list of reports, in input order, plus
    the batch's cache accounting (``None`` when the cache was off)."""

    cache_stats: CacheStats | None = None


def run_batch(scenarios, workers: int | None = None, *,
              cache: str | None = None, cache_dir=None,
              compute_bound: bool = True,
              bound_method: str = "maxflow") -> BatchResult:
    """Run many scenarios, optionally over a process pool.

    Results come back in input order and are bit-identical to the serial
    run for any ``workers`` (each scenario is self-seeded; no state is
    shared across shards).  Scenarios must therefore be fully declarative
    -- which :class:`Scenario` guarantees by construction.

    With the cache on (``cache="read"``/``"readwrite"``, or the
    ``REPRO_CACHE`` environment variable set), every hit is resolved in
    the parent process before any sharding happens: warmed points never
    reach a worker, never materialize their instance, and never trigger
    an offline-bound (max-flow) computation.  The returned
    :class:`BatchResult` carries the hit/miss accounting in
    ``.cache_stats``.

    Chunks never split a same-instance group: scenarios that differ only
    in the algorithm land in one worker, so the per-process offline-bound
    memo computes each instance's max-flow bound once instead of once per
    algorithm.

    Duplicate scenarios are handled deterministically: identical
    scenarios execute **once** and every duplicate position receives the
    same report (previously the duplicates raced each other into the
    cache -- bit-identical by contract, but wasteful and with
    nondeterministic store accounting).  The cache counts one lookup per
    position and one store per *unique* scenario.

    Scenarios resolving to ``engine="batch"`` (explicitly or via
    ``REPRO_ENGINE=batch``) are partitioned: the batch-eligible subset
    runs as one stacked array execution in the parent, the rest fall
    back per-scenario.  A batch where *every* explicitly
    ``engine="batch"`` scenario is ineligible raises a clean
    :class:`ScenarioError` listing the reasons; env-derived selection
    always degrades gracefully.  With the cache on, the offline-bound
    tier (``bound_*.json`` entries keyed by ``(seed, instance)``) is
    shared across algorithms, workers, and sessions, so each instance's
    max-flow bound is computed once ever, not once per algorithm.
    """
    scenarios = [
        s if isinstance(s, Scenario) else Scenario.from_dict(s)
        for s in scenarios
    ]
    _check_bound_method(bound_method)
    mode, store = _open_cache(cache, cache_dir)
    results: list = [None] * len(scenarios)
    pending = list(range(len(scenarios)))
    if store is not None:
        pending = []
        for i, scenario in enumerate(scenarios):
            report = store.load(scenario, require_bound=compute_bound,
                                bound_method=bound_method)
            if report is not None:
                results[i] = report
            else:
                pending.append(i)

    # duplicate positions collapse onto their first occurrence (Scenario
    # is frozen and hashable); only primaries execute and store
    duplicates: dict = {}
    unique_pending: list = []
    primary_of: dict = {}
    for i in pending:
        first = primary_of.setdefault(scenarios[i], i)
        if first == i:
            unique_pending.append(i)
        else:
            duplicates.setdefault(first, []).append(i)
    pending = unique_pending

    # partition: scenarios that resolve to the "batch" engine and pass the
    # eligibility predicate run as ONE stacked array execution in the
    # parent; everything else takes the per-scenario serial/pool path
    stacked: list = []
    requested = [i for i in pending
                 if resolve_engine_name(scenarios[i].engine) == "batch"]
    if requested:
        reasons: dict = {}
        for i in requested:
            reason = _batch_reason(scenarios[i])
            if reason is None:
                stacked.append(i)
            else:
                reasons[i] = reason
        explicit = [i for i in requested if scenarios[i].engine == "batch"]
        if explicit and not stacked:
            # explicit engine="batch" with nothing to stack is a
            # capability error, reported cleanly (env-derived selection
            # falls back silently, like REPRO_ENGINE=fast does)
            lines = [f"  {scenarios[i].algorithm}: {reasons[i]}"
                     for i in explicit[:5]]
            raise ScenarioError(
                "engine 'batch': no scenario in this batch is eligible "
                "for stacked execution; per-scenario reasons:\n"
                + "\n".join(lines))

    bound_root = str(store.root) if store is not None else None
    bound_write = mode == "readwrite"
    with _bound_io(store, mode, bound_method):
        if stacked:
            for i, report in zip(
                    stacked,
                    _execute_stacked([scenarios[i] for i in stacked],
                                     compute_bound)):
                results[i] = report
            rest = [i for i in pending if results[i] is None]
        else:
            rest = pending

        if workers is None or workers <= 1 or len(rest) <= 1:
            for i in rest:
                results[i] = _execute(scenarios[i], compute_bound)
        else:
            groups: dict = {}  # (seed, instance digest) -> pending indices
            for i in rest:
                scenario = scenarios[i]
                groups.setdefault(
                    (scenario.seed, scenario.instance_digest()),
                    []).append(i)
            target = max(1, len(rest) // (4 * workers))
            chunks, current = [], []
            for indices in groups.values():
                current.extend(indices)
                if len(current) >= target:
                    chunks.append(current)
                    current = []
            if current:
                chunks.append(current)

            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_results = pool.map(
                    _run_chunk,
                    [([scenarios[i] for i in chunk], compute_bound,
                      bound_root, bound_write, kernel.active_kernel(),
                      bound_method)
                     for chunk in chunks])
                for chunk, (reports, bound_stats) in zip(chunks,
                                                         chunk_results):
                    for i, report in zip(chunk, reports):
                        results[i] = report
                    if store is not None:
                        store.stats.add(bound_stats)

    for first, copies in duplicates.items():
        for i in copies:
            results[i] = results[first]

    batch = BatchResult(results)
    if store is not None:
        if mode == "readwrite":
            for i in pending:
                store.store(results[i])
        batch.cache_stats = store.flush_stats()
    return batch


def parse_scenarios(data, source="spec") -> list:
    """Interpret already-parsed spec JSON as a scenario list.

    Accepts a single scenario object, a list of scenarios, or a mapping
    with a ``"scenarios"`` list -- so one format serves ``route --spec``
    and ``sweep --spec`` alike (``source`` only labels error messages).
    """
    if isinstance(data, dict) and "scenarios" in data:
        data = data["scenarios"]
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list) or not data:
        raise ValidationError(
            f"{source} must hold a scenario object, a list of them, "
            "or {'scenarios': [...]}"
        )
    return [Scenario.from_dict(item) for item in data]


def load_scenarios(path) -> list:
    """Load scenarios from a JSON spec file (see :func:`parse_scenarios`)."""
    import json
    import pathlib

    return parse_scenarios(json.loads(pathlib.Path(path).read_text()),
                           f"spec file {path}")
