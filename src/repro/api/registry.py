"""Decorator-based registries for algorithms, workloads, and topologies.

Three process-wide registries map stable string names to runnable entries:

* :data:`ALGORITHMS` -- ``fn(network, requests, horizon, *, rng, engine,
  **params) -> SimulationResult``.  Planning routers are wrapped by
  :func:`planner_adapter`, which routes, replays the plan through the
  simulation engine, and cross-checks consistency.
* :data:`WORKLOADS` -- request generators ``fn(network, **params) -> list``;
  ``rng`` is threaded through only when the generator's signature accepts
  it (recorded as :attr:`RegistryEntry.takes_rng`).
* :data:`TOPOLOGIES` -- network builders ``fn(dims, buffer_size, capacity)
  -> Network``.

Entries carry metadata -- most importantly ``requires``, a callable
``(network, horizon) -> str | None`` returning a human-readable reason when
the algorithm cannot run on that network (e.g. ``"requires B, c >= 3"``).
Consumers use :meth:`RegistryEntry.unavailable` as a *capability check*
instead of try/except ladders, so real bugs keep their tracebacks.

Providers (``repro.baselines``, ``repro.core``, ``repro.workloads``)
register themselves at import time; :func:`ensure_providers` lazily imports
the built-in provider modules the first time a registry is queried, so
``repro.api`` works no matter which corner of the package was imported
first.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field

from repro.util.errors import ReproError, ValidationError

#: modules whose import populates the built-in registries
_PROVIDER_MODULES = (
    "repro.api.builtin",
    "repro.baselines.edd",
    "repro.baselines.greedy",
    "repro.baselines.nearest_to_go",
    "repro.core.deterministic",
    "repro.core.randomized",
    "repro.packing.ipp",
    "repro.workloads",
)

_providers_loaded = False


def ensure_providers() -> None:
    """Import the built-in provider modules once (idempotent).

    A failed provider import resets the flag so the next query retries
    and re-raises the original error instead of serving a silently
    partial registry.  Retrying is safe without any registry rollback:
    modules that imported fully stay cached in ``sys.modules`` (their
    registrations are kept), and the *failed* module -- which Python
    drops from the cache -- re-runs its decorators, which
    :meth:`Registry.add` accepts as same-origin re-registrations.
    """
    global _providers_loaded
    if _providers_loaded:
        return
    _providers_loaded = True  # set first: providers import this module back
    try:
        for module in _PROVIDER_MODULES:
            importlib.import_module(module)
    except BaseException:
        _providers_loaded = False
        raise


@dataclass(frozen=True)
class RegistryEntry:
    """One registered name: the callable plus introspected capabilities."""

    name: str
    kind: str  # which registry this entry belongs to
    fn: object
    metadata: dict = field(default_factory=dict)
    params: tuple = ()  # keyword parameters the callable accepts
    required: tuple = ()  # the subset without defaults
    takes_rng: bool = False

    @property
    def description(self) -> str:
        return self.metadata.get("description", "")

    @property
    def fast_engine(self) -> str:
        """How the algorithm's *default* configuration runs under
        ``REPRO_ENGINE=fast``.

        One of ``"vector"`` (a vectorized decision path: a native
        decision-ABI policy, a built-in greedy priority, or the dedicated
        Model 2 vector engine), ``"plan"`` (space-time plan replay),
        ``"adapter"`` (scalar policy lifted by the batched adapter),
        ``"yes"`` (legacy boolean metadata) or ``"no"``
        (engine-independent or reference-only).  Parameters may move an
        algorithm between paths (e.g. ``edd(adapter=true)`` forces the
        adapter); the label describes the default.
        """
        label = self.metadata.get("fast_engine")
        if label:
            return str(label)
        return "yes" if self.metadata.get("supports_fast_engine") else "no"

    @property
    def supports_fast_engine(self) -> bool:
        return self.fast_engine != "no"

    @property
    def kernel(self) -> str:
        """Whether the algorithm's array path resolves its ticks in the
        compiled step kernel (:mod:`repro.network.kernel`).

        ``"step"`` when the default configuration's fast/batch path runs
        the grouped-admission kernel each tick (the vector-decision
        family: greedy priorities, native ABI policies, the Model 2
        vector engine); ``"no"`` for plan replay (table lookups, no
        per-tick ranking), the scalar adapter, and reference-only
        algorithms.  Derived from the ``fast_engine`` label unless the
        registration overrides it with explicit ``kernel=`` metadata.
        """
        label = self.metadata.get("kernel")
        if label:
            return str(label)
        return "step" if self.fast_engine == "vector" else "no"

    @property
    def batch_engine(self) -> str:
        """How the algorithm runs under the stacked ``"batch"`` engine:
        ``"stack"`` when it registers a ``batch_policy`` factory (its
        scenarios join one stacked array execution in ``run_batch``),
        ``"no"`` when it falls back to the per-scenario path.  Parameters
        may still force the fallback (the factory returns ``None``, e.g.
        ``edd(adapter=true)``); the label describes the default."""
        return "stack" if self.metadata.get("batch_policy") else "no"

    def batch_policy(self, params: dict):
        """The scenario-level policy for stacked batch execution, or
        ``None`` when this algorithm (or this parameterization) cannot
        join a stacked batch and must run per-scenario."""
        factory = self.metadata.get("batch_policy")
        if factory is None:
            return None
        return factory(**params)

    def unavailable(self, network, horizon: int) -> str | None:
        """Why this algorithm cannot run on ``network`` (``None`` when ok)."""
        requires = self.metadata.get("requires")
        return requires(network, horizon) if requires is not None else None

    def validate_params(self, params: dict) -> None:
        """Reject unknown parameter names and missing required ones."""
        unknown = sorted(set(params) - set(self.params))
        if unknown:
            raise ValidationError(
                f"{self.kind} {self.name!r} does not accept {unknown}; "
                f"accepted parameters: {sorted(self.params)}"
            )
        missing = sorted(set(self.required) - set(params))
        if missing:
            raise ValidationError(
                f"{self.kind} {self.name!r} requires parameters {missing}"
            )


def _introspect(fn, skip: tuple) -> tuple:
    """``(params, required, takes_rng)`` from ``fn``'s keyword signature."""
    params, required, takes_rng = [], [], False
    for i, p in enumerate(inspect.signature(fn).parameters.values()):
        if i < len(skip) or p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            continue
        if p.name == "engine":
            continue  # engine selection lives on the Scenario, not in params
        if p.name == "rng":
            takes_rng = True
            continue
        params.append(p.name)
        if p.default is p.empty:
            required.append(p.name)
    return tuple(params), tuple(required), takes_rng


class Registry:
    """A named collection of :class:`RegistryEntry` objects."""

    def __init__(self, kind: str, skip_params: tuple = ()):
        self.kind = kind
        self._skip_params = skip_params
        self._entries: dict = {}

    def add(self, name: str, fn, **metadata) -> RegistryEntry:
        existing = self._entries.get(name)
        if existing is not None:
            same_origin = (
                getattr(fn, "__module__", None)
                == getattr(existing.fn, "__module__", None)
                and getattr(fn, "__qualname__", None)
                == getattr(existing.fn, "__qualname__", None)
            )
            if not same_origin:
                raise ReproError(f"{self.kind} {name!r} registered twice")
            # same definition re-executing (module re-imported after a
            # failed provider load): refresh the entry instead of failing
        params, required, takes_rng = _introspect(fn, self._skip_params)
        entry = RegistryEntry(
            name=name, kind=self.kind, fn=fn, metadata=metadata,
            params=params, required=required, takes_rng=takes_rng,
        )
        self._entries[name] = entry
        return entry

    def register(self, name: str, **metadata):
        """Decorator form of :meth:`add`; returns ``fn`` unchanged."""

        def decorate(fn):
            self.add(name, fn, **metadata)
            return fn

        return decorate

    def get(self, name: str) -> RegistryEntry:
        ensure_providers()
        entry = self._entries.get(name)
        if entry is None:
            raise ValidationError(
                f"unknown {self.kind} {name!r}; registered: {self.names()}"
            )
        return entry

    def names(self) -> tuple:
        ensure_providers()
        return tuple(sorted(self._entries))

    def entries(self) -> tuple:
        ensure_providers()
        return tuple(self._entries[name] for name in sorted(self._entries))

    def __contains__(self, name) -> bool:
        ensure_providers()
        return name in self._entries


#: the three public registries
ALGORITHMS = Registry("algorithm", skip_params=("network", "requests", "horizon"))
WORKLOADS = Registry("workload", skip_params=("network",))
TOPOLOGIES = Registry("topology", skip_params=("dims", "buffer_size", "capacity", "link_caps"))


def register_algorithm(name: str, **metadata):
    """``@register_algorithm("det", requires=..., fast_engine="plan")``

    The decorated callable must have the uniform signature
    ``fn(network, requests, horizon, *, rng=None, engine=None, **params)``
    and return a :class:`~repro.network.simulator.SimulationResult`.

    ``fast_engine`` labels how the algorithm runs under
    ``REPRO_ENGINE=fast`` (``"vector"``, ``"plan"``, ``"adapter"`` or
    ``"no"`` -- see :attr:`RegistryEntry.fast_engine`); the legacy
    boolean ``supports_fast_engine=True`` is still accepted.

    ``batch_policy`` (optional) is a factory ``(**params) -> Policy |
    None`` producing the scenario policy for the stacked ``"batch"``
    engine; registering one marks the algorithm batch-eligible (see
    :attr:`RegistryEntry.batch_engine`).  Return ``None`` for
    parameterizations that must run per-scenario.
    """
    return ALGORITHMS.register(name, **metadata)


def register_workload(name: str, **metadata):
    """``@register_workload("uniform")`` over a request generator."""
    return WORKLOADS.register(name, **metadata)


def register_topology(name: str, **metadata):
    """``@register_topology("line")`` over a network builder."""
    return TOPOLOGIES.register(name, **metadata)


def algorithm_names() -> tuple:
    return ALGORITHMS.names()


def workload_names() -> tuple:
    return WORKLOADS.names()


def topology_names() -> tuple:
    return TOPOLOGIES.names()


def planner_adapter(factory, label: str, takes_rng: bool = False):
    """Wrap a planning-:class:`~repro.core.base.Router` factory into the
    uniform algorithm signature.

    The adapter routes the requests, replays the plan through the selected
    simulation engine, and raises :class:`~repro.util.errors.ReproError`
    when the plan and the simulation disagree -- the same cross-check the
    integration tests perform.
    """

    def runner(network, requests, horizon, *, rng=None, engine=None, **params):
        from repro.network.simulator import execute_plan

        if takes_rng:
            params = dict(params, rng=rng)
        router = factory(network, horizon, **params)
        plan = router.route(requests)
        result = execute_plan(network, plan.all_executable_paths(), requests,
                              horizon, engine=engine)
        if not plan.consistent_with_simulation(result):
            raise ReproError(f"{label}: plan/simulation mismatch")
        # surface the router's accounting (framework/detailed counters,
        # tile side k, ...) to RunReport.meta -- what lets the benches
        # read per-part breakdowns without re-running the router
        result.plan_meta = plan.meta
        return result

    runner.__name__ = f"run_{label}"
    # embed the factory's identity: two adapters wrapping different routers
    # under one label must NOT look same-origin to Registry.add
    runner.__qualname__ = (
        f"run_{label}[{getattr(factory, '__module__', '?')}."
        f"{getattr(factory, '__qualname__', '?')}]"
    )
    runner.__doc__ = f"Route with {label!r} and replay the plan (adapter)."
    # expose the factory's tunables (lam, gamma, k, ...) through the
    # adapter's signature so registry introspection records them
    P = inspect.Parameter
    base = [
        P("network", P.POSITIONAL_OR_KEYWORD),
        P("requests", P.POSITIONAL_OR_KEYWORD),
        P("horizon", P.POSITIONAL_OR_KEYWORD),
        P("rng", P.KEYWORD_ONLY, default=None),
        P("engine", P.KEYWORD_ONLY, default=None),
    ]
    extras = [
        P(p.name, P.KEYWORD_ONLY, default=p.default)
        for i, p in enumerate(inspect.signature(factory).parameters.values())
        if i >= 2 and p.name != "rng"
    ]
    runner.__signature__ = inspect.Signature(base + extras)
    return runner
