"""Content-addressed on-disk cache of :class:`~repro.api.run.RunReport`.

Large parameter sweeps re-run thousands of identical ``(network,
workload, algorithm, seed)`` points across benches and sessions.  Every
such point is a :class:`~repro.api.spec.Scenario`, every scenario has a
stable cross-process digest, and the engine contract (enforced by
``tests/test_differential.py``) makes the digest *content-addressing*:
two scenarios with equal digests produce bit-identical reports no matter
which engine or worker count runs them.  So a report computed once can
be replayed forever -- this module is that store.

Layout and key
--------------
One JSON file per report under ``<root>/v<SCHEMA_VERSION>/``, named by
the scenario digest (zero-padded hex).  The payload embeds the schema
version *and* the full serialized report; on read the stored scenario's
:meth:`~repro.api.spec.Scenario.key` is compared against the requested
one, so a CRC-32 digest collision degrades to a cache miss, never to a
wrong result.  Because :meth:`Scenario.digest` excludes the ``engine``
field by design, a fast-engine run hits an entry written by a
reference-engine run (and vice versa) -- that is the point.

Entries that fail to parse, carry a different schema version, or belong
to a colliding scenario are *ignored* (counted in
:attr:`CacheStats.invalid` / treated as misses) and overwritten on the
next ``readwrite`` run; corruption can cost time, never correctness.

Besides full reports the store also keeps *offline-bound* entries
(:meth:`ResultCache.load_bound` / :meth:`ResultCache.store_bound`): the
(max-flow) bound is a pure function of ``(seed, instance)`` --
independent of the algorithm -- so one entry serves every algorithm
swept over that instance, across processes and sessions.  Bound entries
are keyed by ``(seed, instance_digest)`` with the full
:meth:`~repro.api.spec.Scenario.instance_key` embedded as a collision
guard, and are deliberately *not* counted in :class:`CacheStats` (which
accounts report replays; the bound is an implementation detail of
computing one).

Configuration
-------------
* ``REPRO_CACHE`` (environment) -- cache directory; when set, ``run`` /
  ``run_batch`` default to ``"readwrite"`` instead of ``"off"``, which is
  how CI warms and replays the bench suite without touching every call
  site.  Default directory otherwise: ``~/.cache/repro``.
* ``cache="off" | "read" | "readwrite"`` -- threaded through
  :func:`repro.api.run.run`, :func:`repro.api.run.run_batch`, and the CLI
  (``--cache``).  ``"off"`` never touches the filesystem.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass

from repro.util.errors import ValidationError

#: bump when the RunReport JSON layout changes incompatibly; old entries
#: are then ignored (recomputed and rewritten), not misread
SCHEMA_VERSION = 1

MODES = ("off", "read", "readwrite")

#: environment variable naming the cache directory (and, by being set,
#: switching the default mode from "off" to "readwrite")
ENV_DIR = "REPRO_CACHE"


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one batch (or one process).

    ``hits``/``misses``/``stores``/``invalid`` account *report* replays;
    ``bound_hits``/``bound_misses`` account the offline-bound tier (one
    event per executed scenario that needed a bound: served from the
    call-scoped memo or the on-disk ``bound_*.json`` entries vs computed
    from scratch).  Bound events are deterministic for a given batch and
    cache state -- see :func:`repro.api.run._instance_bound` -- which is
    what lets the dispatch/queue layers assert that any execution history
    aggregates to the serial totals.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # corrupted / legacy-schema / colliding entries seen
    bound_hits: int = 0  # offline bounds served from memo/disk
    bound_misses: int = 0  # offline bounds computed (max-flow ran)

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.invalid += other.invalid
        self.bound_hits += other.bound_hits
        self.bound_misses += other.bound_misses

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"cache: hits={self.hits} misses={self.misses} "
            f"stores={self.stores} invalid={self.invalid} "
            f"bound_hits={self.bound_hits} bound_misses={self.bound_misses} "
            f"hit_rate={self.hit_rate:.1%}"
        )


#: process-wide aggregate over every cache-enabled run/run_batch call --
#: what the bench conftest prints at session end so CI can assert the
#: warmed second pass actually replayed from disk
GLOBAL_STATS = CacheStats()


def default_root() -> pathlib.Path:
    env = os.environ.get(ENV_DIR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def resolve_mode(cache: str | None) -> str:
    """Normalize the ``cache=`` argument of run/run_batch.

    ``None`` means "default": ``"readwrite"`` when the ``REPRO_CACHE``
    environment variable selects a directory, ``"off"`` otherwise -- so
    explicitly configured environments (CI, sweep boxes) get caching for
    free while bare test runs never touch the user's home directory.
    """
    if cache is None:
        return "readwrite" if os.environ.get(ENV_DIR) else "off"
    if cache not in MODES:
        raise ValidationError(
            f"cache mode must be one of {MODES}, got {cache!r}")
    return cache


class ResultCache:
    """The on-disk store; one instance per directory.

    All methods are safe against concurrent readers and (best-effort)
    concurrent writers: entries are written to a temporary file and
    atomically renamed into place.
    """

    def __init__(self, root=None):
        self.root = pathlib.Path(root) if root is not None else default_root()
        self.stats = CacheStats()

    def entry_path(self, scenario) -> pathlib.Path:
        return (self.root / f"v{SCHEMA_VERSION}"
                / f"{scenario.digest():08x}.json")

    def load(self, scenario, require_bound: bool = True,
             bound_method: str = "maxflow"):
        """Return the cached :class:`RunReport` for ``scenario``, or ``None``.

        ``require_bound=False`` accepts entries whose offline bound was
        skipped (``compute_bound=False`` runs); the default insists on a
        finite bound so bound-skipping producers cannot starve
        bound-needing consumers.  When a bound is required it must have
        been produced by ``bound_method`` (``meta["bound_method"]``;
        entries written before the field existed count as ``"maxflow"``)
        -- a report bounded by max-flow must never replay for a ``"cd"``
        request.
        """
        import math

        from repro.api.run import RunReport

        path = self.entry_path(scenario)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        try:
            if not isinstance(payload, dict) \
                    or payload.get("schema") != SCHEMA_VERSION:
                raise ValidationError("unknown cache entry schema")
            report = RunReport.from_dict(payload["report"])
        except (ValidationError, KeyError, TypeError, AttributeError):
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        # digest collision guard: Scenario.key() excludes the engine, so a
        # cross-engine hit passes while a genuine CRC collision misses
        if report.scenario.key() != scenario.key():
            self.stats.invalid += 1
            self.stats.misses += 1
            return None
        if require_bound and not math.isfinite(report.bound):
            self.stats.misses += 1
            return None
        if require_bound and \
                report.meta.get("bound_method", "maxflow") != bound_method:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        # rebind to the *requested* scenario (it may name another engine);
        # report.engine keeps naming the engine that produced the numbers
        if report.scenario != scenario:
            report = report.replace(scenario=scenario)
        return report

    def store(self, report) -> None:
        path = self.entry_path(report.scenario)
        payload = {"schema": SCHEMA_VERSION, "report": report.to_dict()}
        self._write(path, payload)
        self.stats.stores += 1

    def bound_path(self, scenario, method: str = "maxflow") -> pathlib.Path:
        # the method joins the filename so "cd" and "maxflow" entries can
        # never collide; "maxflow" keeps the legacy method-less name, so
        # stores warmed before the method existed stay warm
        tag = "" if method == "maxflow" else f"{method}_"
        return (self.root / f"v{SCHEMA_VERSION}"
                / f"bound_{tag}{scenario.seed}_"
                  f"{scenario.instance_digest():08x}.json")

    def load_bound(self, scenario, method: str = "maxflow") -> float | None:
        """Return the cached ``method`` offline bound for ``scenario``'s
        instance, or ``None``.

        The entry is algorithm-independent: any scenario sharing the
        ``(seed, instance)`` pair hits it.  A digest collision, schema
        mismatch, method mismatch, or non-finite value degrades to
        ``None`` (recompute), never to a wrong bound.  Counted in
        :attr:`stats` as ``bound_hits``/``bound_misses`` (the tier the
        queue's ``status`` metrics surface);
        :func:`repro.api.run._instance_bound` is the single caller and
        guarantees one event per executed scenario.
        """
        import math

        path = self.bound_path(scenario, method)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.bound_misses += 1
            return None
        bound = None
        if isinstance(payload, dict) \
                and payload.get("schema") == SCHEMA_VERSION \
                and payload.get("method", "maxflow") == method:
            # collision guard: compare the full instance key through a JSON
            # round-trip (tuples become lists on disk)
            expected = json.loads(json.dumps(
                [scenario.seed, scenario.instance_key()]))
            if payload.get("instance") == expected:
                bound = payload.get("bound")
        if not isinstance(bound, (int, float)) or not math.isfinite(bound):
            self.stats.bound_misses += 1
            return None
        self.stats.bound_hits += 1
        return float(bound)

    def store_bound(self, scenario, bound: float,
                    method: str = "maxflow") -> None:
        payload = {
            "schema": SCHEMA_VERSION,
            "kind": "offline-bound",
            "method": method,
            "instance": [scenario.seed, scenario.instance_key()],
            "bound": float(bound),
        }
        self._write(self.bound_path(scenario, method), payload)

    def _write(self, path: pathlib.Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)

    def flush_stats(self) -> CacheStats:
        """Fold this instance's counters into :data:`GLOBAL_STATS` and
        return a snapshot (run/run_batch call this once per batch)."""
        snapshot = CacheStats(**vars(self.stats))
        GLOBAL_STATS.add(snapshot)
        self.stats = CacheStats()
        return snapshot
