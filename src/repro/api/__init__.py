"""repro.api: the declarative Scenario layer every consumer sits on.

This package turns ``network x workload x algorithm x engine`` wiring
into data.  Three registries (:data:`ALGORITHMS`, :data:`WORKLOADS`,
:data:`TOPOLOGIES`) map names to implementations with capability
metadata; a :class:`Scenario` is a frozen, JSON-round-trippable
description of one run; :func:`run` executes a scenario into a
:class:`RunReport` and :func:`run_batch` shards many scenarios over a
process pool with bit-identical-to-serial results.

Usage
-----
Run one scenario and inspect the report::

    >>> from repro.api import Scenario, NetworkSpec, WorkloadSpec, run
    >>> sc = Scenario(
    ...     network=NetworkSpec("line", (32,), buffer_size=2, capacity=2),
    ...     workload=WorkloadSpec("uniform", {"num": 60, "horizon": 32}),
    ...     algorithm="ntg",
    ...     horizon=128,
    ...     seed=7,
    ... )
    >>> report = run(sc)
    >>> report.throughput <= report.requests
    True

Scenarios serialize to JSON and back without losing anything that
affects results (``python -m repro route --spec file.json`` runs the
same file)::

    >>> sc2 = Scenario.from_json(sc.to_json())
    >>> run(sc2) == report          # wall_time excluded from equality
    True

Fan a matrix out over a process pool -- same numbers as the serial
loop, per the PR-1 seeding contract::

    >>> from repro.api import run_batch
    >>> grid = [sc.replace(seed=s) for s in range(4)]
    >>> [r.throughput for r in run_batch(grid, workers=4)] == \\
    ...     [r.throughput for r in run_batch(grid)]
    True

Register a new algorithm (here: a planning router) from its home
module and every CLI command, bench, and sweep can name it::

    @register_algorithm(
        "my-router",
        requires=lambda net, horizon: None if net.d == 1 else "line only",
        fast_engine="plan",  # replays space-time plans through the engine
    )
    def _run_my_router(network, requests, horizon, *, rng=None,
                       engine=None):
        ...
"""

from repro.api.registry import (
    ALGORITHMS,
    TOPOLOGIES,
    WORKLOADS,
    Registry,
    RegistryEntry,
    algorithm_names,
    ensure_providers,
    planner_adapter,
    register_algorithm,
    register_topology,
    register_workload,
    topology_names,
    workload_names,
)
from repro.api.cache import CacheStats, ResultCache
from repro.api.dispatch import (
    ShardError,
    batch_digest,
    load_manifest,
    merge,
    plan_shards,
    run_shard,
    write_manifest,
)
from repro.api.queue import QueueError, QueueStatus, WorkQueue
from repro.api.service import QueueWorker, WorkerCrash
from repro.api.spec import AlgorithmSpec, NetworkSpec, Scenario, WorkloadSpec
from repro.api.run import (
    BatchResult,
    RunReport,
    ScenarioError,
    load_scenarios,
    run,
    run_batch,
    unavailable_reason,
)

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "BatchResult",
    "CacheStats",
    "ResultCache",
    "NetworkSpec",
    "QueueError",
    "QueueStatus",
    "QueueWorker",
    "Registry",
    "RegistryEntry",
    "RunReport",
    "WorkQueue",
    "WorkerCrash",
    "Scenario",
    "ScenarioError",
    "ShardError",
    "TOPOLOGIES",
    "WORKLOADS",
    "WorkloadSpec",
    "algorithm_names",
    "batch_digest",
    "ensure_providers",
    "load_manifest",
    "load_scenarios",
    "merge",
    "plan_shards",
    "planner_adapter",
    "register_algorithm",
    "register_topology",
    "register_workload",
    "run",
    "run_batch",
    "run_shard",
    "topology_names",
    "unavailable_reason",
    "workload_names",
    "write_manifest",
]
