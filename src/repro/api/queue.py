"""Elastic sweep service: a filesystem-backed pull queue with leases.

:mod:`repro.api.dispatch` plans shards *ahead of time*; a straggler host
or a mid-run crash parks its whole shard until a human reruns it.  This
module is the elastic layer above the same primitives: a batch is
enqueued once as digest-ordered scenario **chunks** (each chunk is
literally a PR 5 shard manifest, so every downstream format is shared),
and any number of workers -- started at any time, on any host sharing
the queue directory -- *pull* chunks, execute them via ``run_batch``,
and append merge-compatible JSONL results.  Dead workers lose their
lease and their chunks are requeued automatically; the sweep finishes as
long as one worker survives.

Layout (everything under one queue directory)::

    queue.json          immutable batch header (digest, size, chunking)
    pending/chunk_*.json    chunk manifests awaiting a worker
    claimed/chunk_*.json    manifests owned by a worker (claim = rename)
    leases/chunk_*.json     liveness: worker id + heartbeat timestamp
    results/chunk_*.jsonl   completed chunks (shard-result JSONL)

The claim protocol is a single ``os.rename(pending/X, claimed/X)``:
atomic on POSIX, so exactly one of any number of racing workers owns the
chunk and the losers see ``FileNotFoundError`` and move on.  The owner
then writes a lease file and rewrites it on a heartbeat cadence; any
process (typically an idle worker) may call :meth:`WorkQueue.
requeue_expired`, which renames chunks whose lease heartbeat is older
than the TTL back into ``pending/``.  Completion is one atomic
``os.replace`` of the result file followed by removing the claim and
lease markers -- a crash at *any* point leaves either no result (the
chunk is requeued and rerun) or a complete one (the chunk is done).

Why duplicated execution is safe -- the invariant this service inherits
from PR 5 and ``tests/test_queue.py`` chaos-fuzzes: scenario reports are
pure functions of the scenario (bit-identical engines, self-seeded
randomness), so a false lease expiry (slow worker, not dead) at worst
runs a chunk twice and the last atomic result write wins with
equivalent content.  **Any execution history -- any worker count, any
crash/requeue interleaving -- merges bit-identical to the serial
``run_batch``.**  With a shared ``REPRO_CACHE`` the rerun of a
half-finished chunk replays its completed scenarios as cache hits, so
crashes cost at most one chunk's partial work.

Liveness caveat (deliberate): a chunk that *deterministically* raises
(e.g. every scenario explicitly pinned to an engine that rejects it)
will fail on every worker that pulls it and bounce back to ``pending``
forever -- the queue never converts an error into a silent skip.
``enqueue``'s capability pre-check (mirroring ``sweep --shards``) is
the place broken scenarios are meant to be caught.

Command-line wiring: ``repro enqueue`` / ``repro work`` / ``repro
status`` / ``repro collect``; the multi-host recipe lives in
``benchmarks/README.md`` next to the static shard recipe.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import socket
import time
from dataclasses import dataclass, field

from repro.api.cache import CacheStats
from repro.api.dispatch import (
    MANIFEST_KIND,
    SHARD_SCHEMA,
    load_manifest,
    plan_shards,
    write_manifest,
    write_shard_result,
)
from repro.api.run import BatchResult
from repro.util.errors import ValidationError

QUEUE_KIND = "repro-queue"
LEASE_KIND = "repro-queue-lease"

#: default lease TTL (seconds without a heartbeat before a chunk is
#: considered abandoned) and the matching heartbeat cadence divisor
DEFAULT_TTL = 60.0

#: default scenarios per chunk -- small enough that a crash loses little
#: and stragglers rebalance, large enough to amortize per-chunk overhead
DEFAULT_CHUNK_SIZE = 8


class QueueError(ValidationError):
    """A queue directory is malformed, incomplete, or already in use."""


def _chunk_name(index: int) -> str:
    return f"chunk_{index:05d}"


@dataclass
class QueueStatus:
    """Live snapshot of a queue: progress, leases, and cache accounting.

    ``chunks_active``/``chunks_expired`` split the claimed chunks by
    lease freshness against the given TTL; ``cache_stats`` aggregates
    the footers of every completed chunk (report hits/misses *and* the
    offline-bound tier), so ``repro status`` shows how much of the
    remaining work is real computation versus replay.
    """

    batch_digest: str
    batch_size: int
    n_chunks: int
    chunks_pending: int = 0
    chunks_active: int = 0
    chunks_expired: int = 0
    chunks_done: int = 0
    scenarios_done: int = 0
    workers: list = field(default_factory=list)  # (worker, chunk, hb age s)
    cache_stats: CacheStats | None = None

    @property
    def done(self) -> bool:
        return self.chunks_done == self.n_chunks

    def lines(self) -> list:
        """Stable, grep-friendly status lines (CI asserts on them)."""
        out = [
            f"batch {self.batch_digest}: {self.batch_size} scenario(s) in "
            f"{self.n_chunks} chunk(s)",
            f"chunks: total={self.n_chunks} pending={self.chunks_pending} "
            f"leased={self.chunks_active} expired={self.chunks_expired} "
            f"done={self.chunks_done}",
            f"scenarios: done={self.scenarios_done}/{self.batch_size}",
        ]
        for worker, chunk, age in self.workers:
            out.append(f"lease: {chunk} held by {worker} "
                       f"(heartbeat {age:.1f}s ago)")
        if self.cache_stats is not None:
            out.append(self.cache_stats.summary())
        return out


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkQueue:
    """One queue directory; every method is safe to call from any number
    of processes/hosts sharing the directory (atomicity via rename)."""

    def __init__(self, root):
        self.root = pathlib.Path(root)
        self.pending_dir = self.root / "pending"
        self.claimed_dir = self.root / "claimed"
        self.leases_dir = self.root / "leases"
        self.results_dir = self.root / "results"
        self._header: dict | None = None

    # -- creation and loading --------------------------------------------

    @classmethod
    def create(cls, root, scenarios, *, chunk_size: int = DEFAULT_CHUNK_SIZE,
               clock=time.time) -> "WorkQueue":
        """Enqueue a batch: plan digest-ordered chunks and populate the
        queue directory.

        Chunks come from :func:`repro.api.dispatch.plan_shards` with
        ``n_shards = ceil(len(scenarios) / chunk_size)`` -- so chunk
        manifests *are* shard manifests, chunk results *are* shard result
        files, and ``collect`` is a plain :func:`~repro.api.dispatch.
        merge` over the results directory.  Duplicate scenarios are
        rejected exactly like ``plan_shards`` does (``run_batch``
        deduplicates; deduplicate before enqueueing).

        Refuses to reuse a directory that already holds a queue (finished
        or not): requeueing is a new directory, never a silent overwrite.
        """
        if chunk_size < 1:
            raise QueueError(f"chunk_size must be >= 1, got {chunk_size}")
        queue = cls(root)
        if queue.header_path.exists():
            raise QueueError(
                f"{queue.root} already holds a queue (batch "
                f"{queue.header().get('batch_digest')}); enqueue into a "
                "fresh directory")
        scenarios = list(scenarios)
        n_chunks = max(1, math.ceil(len(scenarios) / chunk_size))
        manifests = plan_shards(scenarios, n_chunks)  # validates the batch
        for directory in (queue.pending_dir, queue.claimed_dir,
                          queue.leases_dir, queue.results_dir):
            directory.mkdir(parents=True, exist_ok=True)
        sizes = {}
        for manifest in manifests:
            name = _chunk_name(manifest["shard_index"])
            sizes[name] = len(manifest["scenarios"])
            write_manifest(manifest, queue.pending_dir / f"{name}.json")
        header = {
            "kind": QUEUE_KIND,
            "schema": SHARD_SCHEMA,
            "batch_digest": manifests[0]["batch_digest"],
            "batch_size": len(scenarios),
            "n_chunks": n_chunks,
            "chunk_size": chunk_size,
            "chunk_sizes": sizes,
            "created_at": float(clock()),
        }
        # the header is written last: its presence marks a fully enqueued
        # queue, so a crash mid-enqueue leaves a directory workers reject
        queue._atomic_write_json(queue.header_path, header)
        queue._header = header
        return queue

    @property
    def header_path(self) -> pathlib.Path:
        return self.root / "queue.json"

    def header(self) -> dict:
        """The immutable batch header (cached after the first read)."""
        if self._header is None:
            try:
                header = json.loads(self.header_path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise QueueError(
                    f"{self.root} is not a work queue (cannot read "
                    f"queue.json: {exc})") from None
            if not isinstance(header, dict) \
                    or header.get("kind") != QUEUE_KIND:
                raise QueueError(
                    f"{self.header_path} is not a queue header (expected "
                    f"kind={QUEUE_KIND!r})")
            if header.get("schema") != SHARD_SCHEMA:
                raise QueueError(
                    f"{self.root} uses queue schema "
                    f"{header.get('schema')!r}; this version reads schema "
                    f"{SHARD_SCHEMA}")
            self._header = header
        return self._header

    # -- claim / heartbeat / complete ------------------------------------

    def claim(self, worker: str, *, clock=time.time):
        """Atomically claim the next pending chunk; ``None`` when empty.

        The claim is one ``os.rename`` into ``claimed/`` -- of any number
        of racing workers exactly one wins each chunk; losers skip to the
        next.  The winner's lease is written immediately (heartbeat it
        with :meth:`heartbeat` while executing).
        """
        self.header()  # reject non-queue directories before touching them
        for path in sorted(self.pending_dir.glob("chunk_*.json")):
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except FileNotFoundError:
                continue  # another worker won this chunk
            chunk = path.stem
            now = float(clock())
            self._write_lease(chunk, worker, claimed_at=now, heartbeat_at=now)
            try:
                return load_manifest(target)
            except Exception:
                # never strand a chunk behind a reader error: put it back
                # before propagating (a corrupt manifest then fails loudly
                # on every worker rather than vanishing)
                os.replace(target, self.pending_dir / path.name)
                self._remove(self.leases_dir / f"{chunk}.json")
                raise
        return None

    def heartbeat(self, chunk: str, worker: str, *, clock=time.time) -> bool:
        """Refresh ``worker``'s lease on ``chunk`` (atomic rewrite).

        Returns ``True`` when the lease was refreshed.  When the lease
        is gone or held by *another* worker -- this worker's claim was
        falsely expired, requeued, and possibly reclaimed -- the call is
        a no-op returning ``False``: rewriting would stomp the new
        claimant's lease, corrupting ``status`` ownership lines and
        resetting its expiry clock.  A heartbeat thread should stand
        down for good on ``False`` (see
        :meth:`repro.api.service.QueueWorker._start_heartbeat`).
        """
        lease = self._read_lease(chunk)
        if lease is None or lease.get("worker") != worker:
            return False
        self._write_lease(chunk, worker, claimed_at=lease.get("claimed_at"),
                          heartbeat_at=float(clock()))
        return True

    def complete(self, manifest: dict, reports) -> pathlib.Path:
        """Record a finished chunk: atomic result write, then cleanup.

        The result file lands with one ``os.replace`` *before* the claim
        and lease markers are removed, so every crash window is safe: no
        result yet means the chunk will be requeued and rerun; a result
        present means the chunk is done and the stale markers are swept
        by the next :meth:`requeue_expired`.  Rewriting an existing
        result (duplicated execution after a false lease expiry) is
        harmless by bit-identity.
        """
        chunk = _chunk_name(manifest["shard_index"])
        path = write_shard_result(manifest, reports,
                                  self.results_dir / f"{chunk}.jsonl")
        self._remove(self.claimed_dir / f"{chunk}.json")
        self._remove(self.leases_dir / f"{chunk}.json")
        return path

    def release(self, chunk: str) -> None:
        """Voluntarily return a claimed chunk to ``pending`` (a worker
        hitting an execution error calls this so the chunk is retried
        immediately instead of idling out a full TTL)."""
        try:
            os.rename(self.claimed_dir / f"{chunk}.json",
                      self.pending_dir / f"{chunk}.json")
        except FileNotFoundError:
            pass
        self._remove(self.leases_dir / f"{chunk}.json")

    def requeue_expired(self, ttl: float = DEFAULT_TTL, *,
                        clock=time.time) -> list:
        """Requeue claimed chunks whose lease heartbeat is stale.

        Returns the chunk names moved back to ``pending/``.  A claimed
        chunk whose result file already exists is *finalized* instead
        (its owner died between the result write and the cleanup).  A
        missing lease file (death inside the claim window, which is
        microseconds wide) counts as expired immediately -- requeueing a
        live worker's chunk is safe, merely wasteful (see the module
        docstring).  A *future-dated* heartbeat (the wall clock stepped
        backwards between the write and this read) also counts as
        expired: trusting it would hold a dead worker's lease alive past
        any TTL, and torn/backwards == stale is the documented safe
        direction.
        """
        requeued = []
        now = float(clock())
        for path in sorted(self.claimed_dir.glob("chunk_*.json")):
            chunk = path.stem
            if (self.results_dir / f"{chunk}.jsonl").exists():
                self._remove(path)
                self._remove(self.leases_dir / f"{chunk}.json")
                continue
            lease = self._read_lease(chunk)
            if lease is not None and 0 <= now - lease["heartbeat_at"] <= ttl:
                continue
            try:
                os.rename(path, self.pending_dir / path.name)
            except FileNotFoundError:
                continue  # its owner completed or another process requeued
            self._remove(self.leases_dir / f"{chunk}.json")
            requeued.append(chunk)
        return requeued

    # -- progress --------------------------------------------------------

    def result_path(self, chunk: str) -> pathlib.Path:
        return self.results_dir / f"{chunk}.jsonl"

    def done_chunks(self) -> list:
        """Chunk names with a (complete-by-construction) result file."""
        return sorted(p.stem for p in self.results_dir.glob("chunk_*.jsonl"))

    def is_drained(self) -> bool:
        """True once every chunk has a result file (writes are atomic,
        so presence is completeness)."""
        return len(self.done_chunks()) == self.header()["n_chunks"]

    def status(self, ttl: float = DEFAULT_TTL, *,
               clock=time.time) -> QueueStatus:
        """Cheap live snapshot: counts directory entries and reads only
        each result file's footer (tail line), never the report bodies."""
        header = self.header()
        sizes = header.get("chunk_sizes", {})
        status = QueueStatus(
            batch_digest=header["batch_digest"],
            batch_size=header["batch_size"],
            n_chunks=header["n_chunks"],
        )
        done = self.done_chunks()
        status.chunks_done = len(done)
        status.scenarios_done = sum(sizes.get(chunk, 0) for chunk in done)
        status.chunks_pending = len(list(self.pending_dir.glob(
            "chunk_*.json")))
        now = float(clock())
        for path in sorted(self.claimed_dir.glob("chunk_*.json")):
            chunk = path.stem
            if chunk in done:
                continue  # finished, cleanup pending
            lease = self._read_lease(chunk)
            # a future-dated heartbeat (backwards clock step) is expired,
            # matching requeue_expired -- never report it as live forever
            if lease is None or not 0 <= now - lease["heartbeat_at"] <= ttl:
                status.chunks_expired += 1
            else:
                status.chunks_active += 1
                status.workers.append((lease.get("worker", "?"), chunk,
                                       now - lease["heartbeat_at"]))
        totals: CacheStats | None = None
        for chunk in done:
            stats = self._result_footer_stats(chunk)
            if stats is not None:
                if totals is None:
                    totals = CacheStats()
                totals.add(stats)
        status.cache_stats = totals
        return status

    def collect(self) -> BatchResult:
        """Merge the completed chunks into the batch result.

        Raises :class:`QueueError` naming the unfinished chunks when the
        queue is not drained (run more workers, or wait), and inherits
        :class:`~repro.api.dispatch.ShardError`'s loudness for anything
        wrong with the result files themselves.  The merge streams each
        file (see :func:`~repro.api.dispatch.merge`).
        """
        from repro.api.dispatch import merge

        header = self.header()
        done = set(self.done_chunks())
        missing = [_chunk_name(i) for i in range(header["n_chunks"])
                   if _chunk_name(i) not in done]
        if missing:
            raise QueueError(
                f"queue {self.root} is not drained: chunk(s) "
                f"{', '.join(missing)} have no result yet (pending or "
                "leased); run 'repro work' until 'repro status' shows "
                "done=" + str(header["n_chunks"]))
        return merge(self.results_dir)

    # -- internals -------------------------------------------------------

    def _lease_path(self, chunk: str) -> pathlib.Path:
        return self.leases_dir / f"{chunk}.json"

    def _write_lease(self, chunk: str, worker: str, *, claimed_at,
                     heartbeat_at: float) -> None:
        payload = {
            "kind": LEASE_KIND,
            "chunk": chunk,
            "worker": worker,
            "claimed_at": claimed_at if claimed_at is not None
            else heartbeat_at,
            "heartbeat_at": heartbeat_at,
        }
        self._atomic_write_json(self._lease_path(chunk), payload)

    def _read_lease(self, chunk: str) -> dict | None:
        """A parseable lease dict, or ``None`` (absent *or* torn: lease
        writes are atomic, so anything unreadable is treated as no lease
        -- the safe direction, since requeueing is always sound)."""
        try:
            lease = json.loads(self._lease_path(chunk).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(lease, dict) \
                or not isinstance(lease.get("heartbeat_at"), (int, float)):
            return None
        return lease

    def _result_footer_stats(self, chunk: str) -> CacheStats | None:
        """Parse only the footer (tail line) of one result file."""
        try:
            with open(self.result_path(chunk), "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - 65536))
                tail = handle.read().decode("utf-8", "replace")
        except OSError:
            return None
        lines = [line for line in tail.splitlines() if line.strip()]
        if not lines:
            return None
        try:
            footer = json.loads(lines[-1])
        except json.JSONDecodeError:
            return None
        stats = footer.get("cache_stats") if isinstance(footer, dict) else None
        if not isinstance(stats, dict):
            return None
        try:
            return CacheStats(**stats)
        except TypeError:
            return None

    @staticmethod
    def _atomic_write_json(path: pathlib.Path, payload: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)

    def _remove(self, path: pathlib.Path) -> None:
        try:
            path.unlink()
        except FileNotFoundError:
            pass
