"""Worker loop for the pull-based sweep queue (:mod:`repro.api.queue`).

A :class:`QueueWorker` is the process that ``repro work`` runs: an
idle-loop around ``sweep expired leases -> claim a chunk -> execute via
run_batch -> write the result``.  Workers are fully symmetric -- no
coordinator process exists; any worker sweeps expired leases before
claiming, so a dead worker's chunks are requeued by whichever survivor
looks next.

Everything timing-shaped is injectable (``clock``, ``sleep``,
``heartbeat_interval=0`` disables the background heartbeat thread), so
tests drive workers step-by-step against a fake clock and the chaos
suite can interleave two workers' claims deterministically.  Crash
injection is first-class: ``crash_after=k`` makes the worker execute
``k`` scenarios of its next chunk (caching their reports -- real partial
progress) and then die, either by raising :class:`WorkerCrash`
(in-process tests) or ``os._exit`` (the CLI's ``REPRO_QUEUE_CRASH_AFTER``
knob, used by the CI chaos job), leaving exactly the wreckage a kill -9
would: a claimed chunk, a stale lease, no result file.
"""

from __future__ import annotations

import os
import threading
import time

from repro.api.queue import DEFAULT_TTL, WorkQueue, default_worker_id
from repro.api.spec import Scenario


class WorkerCrash(RuntimeError):
    """Raised by the in-process crash-injection mode (tests); the CLI
    mode uses ``os._exit`` so even ``finally`` blocks don't run --
    matching a real SIGKILL."""


class QueueWorker:
    """One pull worker bound to a queue directory.

    Parameters mirror ``run_batch`` where they overlap (``workers``,
    ``cache``, ``cache_dir``, ``compute_bound``).  ``ttl`` is both the
    expiry this worker applies when sweeping other workers' leases and
    the contract its own heartbeats must beat; ``heartbeat_interval``
    defaults to ``ttl / 4`` and ``0`` disables the heartbeat thread
    (tests; also fine for chunks that finish well inside the TTL).
    """

    def __init__(self, queue, worker_id: str | None = None, *,
                 ttl: float = DEFAULT_TTL, poll: float = 1.0,
                 heartbeat_interval: float | None = None,
                 workers: int | None = None, cache: str | None = None,
                 cache_dir=None, compute_bound: bool = True,
                 bound_method: str = "maxflow",
                 clock=time.time, sleep=time.sleep,
                 crash_after: int | None = None, crash_mode: str = "raise",
                 log=None):
        self.queue = queue if isinstance(queue, WorkQueue) else WorkQueue(queue)
        self.worker_id = worker_id or default_worker_id()
        self.ttl = float(ttl)
        self.poll = float(poll)
        self.heartbeat_interval = (self.ttl / 4 if heartbeat_interval is None
                                   else float(heartbeat_interval))
        self.workers = workers
        self.cache = cache
        self.cache_dir = cache_dir
        self.compute_bound = compute_bound
        self.bound_method = bound_method
        self.clock = clock
        self.sleep = sleep
        self.crash_after = crash_after
        self.crash_mode = crash_mode
        self.log = log or (lambda message: None)
        self.chunks_done = 0
        self._heartbeat_thread = None

    # -- one scheduling round --------------------------------------------

    def step(self) -> str:
        """One round: sweep expired leases, then claim-and-execute one
        chunk.  Returns ``"ran"`` (a chunk was executed), ``"wait"``
        (nothing claimable right now -- some chunks are leased out), or
        ``"drained"`` (every chunk has a result)."""
        for chunk in self.queue.requeue_expired(self.ttl, clock=self.clock):
            self.log(f"worker {self.worker_id}: requeued {chunk} "
                     "(lease expired)")
        manifest = self.queue.claim(self.worker_id, clock=self.clock)
        if manifest is None:
            return "drained" if self.queue.is_drained() else "wait"
        self.execute(manifest)
        return "ran"

    def run(self, max_chunks: int | None = None) -> int:
        """Loop :meth:`step` until the queue drains (or ``max_chunks``
        chunks were executed by *this* worker); returns that count.
        ``"wait"`` rounds sleep ``poll`` seconds -- the idle wait also
        paces the expired-lease sweep that rescues crashed workers'
        chunks."""
        ran = 0
        while max_chunks is None or ran < max_chunks:
            outcome = self.step()
            if outcome == "ran":
                ran += 1
            elif outcome == "drained":
                break
            else:
                self.sleep(self.poll)
        return ran

    # -- chunk execution -------------------------------------------------

    def execute(self, manifest: dict) -> None:
        """Execute one claimed chunk and record its result.

        The heartbeat thread (when enabled) refreshes the lease on a
        real-time cadence while ``run_batch`` computes.  On any
        execution error the chunk is released back to ``pending`` before
        the error propagates -- an unlucky worker never strands a chunk
        for a full TTL, and a deterministically broken chunk fails
        loudly on every worker instead of disappearing.
        """
        from repro.api.run import run_batch

        from repro.api.queue import _chunk_name

        chunk = _chunk_name(manifest["shard_index"])
        scenarios = [Scenario.from_dict(item["scenario"])
                     for item in manifest["scenarios"]]
        self.log(f"worker {self.worker_id}: claimed {chunk} "
                 f"({len(scenarios)} scenario(s))")
        stop = self._start_heartbeat(chunk)
        try:
            if self.crash_after is not None:
                self._crash(scenarios)
            reports = run_batch(scenarios, workers=self.workers,
                                cache=self.cache, cache_dir=self.cache_dir,
                                compute_bound=self.compute_bound,
                                bound_method=self.bound_method)
            self.queue.complete(manifest, reports)
            self.chunks_done += 1
            self.log(f"worker {self.worker_id}: completed {chunk}")
        except WorkerCrash:
            raise  # leave the claim and stale lease behind, like a kill
        except BaseException:
            self.queue.release(chunk)
            self.log(f"worker {self.worker_id}: released {chunk} after error")
            raise
        finally:
            if stop is not None:
                stop.set()

    def _crash(self, scenarios) -> None:
        """Run the first ``crash_after`` scenarios (their reports land in
        the cache -- genuine partial progress), then die mid-chunk."""
        from repro.api.run import run_batch

        count = max(0, int(self.crash_after))
        self.crash_after = None  # one crash per arming, even in raise mode
        if count:
            run_batch(scenarios[:count], workers=self.workers,
                      cache=self.cache, cache_dir=self.cache_dir,
                      compute_bound=self.compute_bound,
                      bound_method=self.bound_method)
        self.log(f"worker {self.worker_id}: crashing after {count} "
                 "scenario(s)")
        if self.crash_mode == "exit":
            os._exit(1)
        raise WorkerCrash(
            f"worker {self.worker_id} crashed after {count} scenario(s)")

    def _start_heartbeat(self, chunk: str):
        if self.heartbeat_interval <= 0:
            return None
        stop = threading.Event()

        def beat():
            while not stop.wait(self.heartbeat_interval):
                try:
                    owned = self.queue.heartbeat(chunk, self.worker_id,
                                                 clock=self.clock)
                except OSError:
                    continue  # disk hiccup: the lease ages one interval
                if not owned:
                    # the lease was requeued (false expiry) and possibly
                    # reclaimed by another worker -- beating on would stomp
                    # the new claimant's lease, so stand down for good
                    break

        thread = threading.Thread(
            target=beat, name=f"heartbeat-{chunk}", daemon=True)
        thread.start()
        self._heartbeat_thread = thread
        return stop
