"""Frozen, serializable run specifications.

A :class:`Scenario` is the declarative description of one experiment
point: *which network*, *which workload*, *which algorithm*, horizon,
seed, and (optionally) which simulation engine.  Scenarios round-trip
through plain dicts and JSON (``to_dict``/``from_dict``, ``to_json``/
``from_json``), hash to a stable cross-process digest (via
:func:`repro.analysis.runner.point_digest`), and are cheap, picklable
values -- which is what lets :func:`repro.api.run.run_batch` shard them
over a process pool without losing determinism.

Seeding contract (extends PR 1): all randomness of a run derives from
``(seed, instance_digest)`` where the *instance* digest covers the
network, the workload, and the horizon but **not** the algorithm.  Two
consequences:

* every algorithm run against the same ``(network, workload, horizon,
  seed)`` sees the *identical* request sequence (fair comparisons), and
* randomized algorithms draw from a common, reproducible stream
  (common-random-numbers across algorithm parameter sweeps).

The ``engine`` field is deliberately excluded from the digest: engines
are bit-identical by contract, so it must not change any result.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

from repro.api.registry import TOPOLOGIES, WORKLOADS
from repro.util.errors import ValidationError
from repro.util.rng import spawn_generators


def _point_digest(point) -> int:
    # analysis.runner pulls in the whole analysis package (metrics ->
    # baselines); importing it lazily keeps repro.api importable from the
    # provider modules that register themselves here
    from repro.analysis.runner import point_digest

    return point_digest(point)

_SCALARS = (str, int, float, bool, type(None))


def _check_keys(data: dict, allowed: set, what: str) -> None:
    """Reject unknown keys so a typo in a spec file cannot silently run a
    different experiment (the spec format is a contract; see CI)."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValidationError(
            f"unknown key(s) {unknown} in {what} spec; allowed: "
            f"{sorted(allowed)}"
        )


def _freeze_params(params) -> tuple:
    """Normalize a mapping (or pair iterable) into a sorted tuple of
    ``(name, value)`` pairs with JSON-scalar values only."""
    if params is None:
        return ()
    items = sorted(params.items()) if isinstance(params, dict) else \
        sorted((str(k), v) for k, v in params)
    for key, value in items:
        if not isinstance(key, str):
            raise ValidationError(f"parameter names must be strings, got {key!r}")
        if not isinstance(value, _SCALARS):
            raise ValidationError(
                f"parameter {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(items)


def _parse_dims(dims) -> tuple:
    """Parse ``dims`` (CLI string, int, or iterable) into a tuple of
    positive side lengths, raising :class:`ValidationError` naming the
    offending input on anything malformed."""
    raw = dims
    if isinstance(dims, str):
        parts = dims.split("x")
        if not all(p.isdigit() for p in parts):
            raise ValidationError(
                f"invalid dims string {raw!r}; expected side lengths like "
                f"'64' or '8x8'"
            )
        sides = tuple(int(p) for p in parts)
    elif isinstance(dims, int):
        sides = (dims,)
    else:
        try:
            sides = tuple(int(x) for x in dims)
        except (TypeError, ValueError):
            raise ValidationError(
                f"invalid dims {raw!r}; expected an int, an 'LxW' string, "
                f"or a sequence of ints"
            ) from None
    if not sides or any(l < 1 for l in sides):
        raise ValidationError(f"dims must be positive, got {raw!r}")
    return sides


def _spec_int(value, name: str, minimum: int):
    """Coerce a spec field to int with a clean error (satisfies the
    ``--spec`` JSON contract: wrong-typed fields name themselves)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(
            f"{name} must be an integer, got {value!r} "
            f"({type(value).__name__})"
        )
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def _freeze_link_caps(link_caps, dims: tuple) -> tuple:
    """Normalize per-edge capacity overrides into a sorted tuple of
    ``((tail...), axis, cap)`` triples (hashable, digest-stable)."""
    if not link_caps:
        return ()
    if hasattr(link_caps, "items"):
        entries = [(tail, axis, cap) for (tail, axis), cap in link_caps.items()]
    else:
        entries = list(link_caps)
    out = []
    for entry in entries:
        try:
            tail, axis, cap = entry
            tail = tuple(int(x) for x in tail)
        except (TypeError, ValueError):
            raise ValidationError(
                f"link_caps entries must be [tail, axis, cap] triples, "
                f"got {entry!r}"
            ) from None
        axis = _spec_int(axis, "link_caps axis", 0)
        cap = _spec_int(cap, "link_caps capacity", 1)
        if len(tail) != len(dims) or axis >= len(dims):
            raise ValidationError(
                f"link_caps entry {entry!r} does not fit dims {dims}"
            )
        out.append((tail, axis, cap))
    out.sort()
    for prev, cur in zip(out, out[1:]):
        if prev[:2] == cur[:2]:
            raise ValidationError(
                f"duplicate link_caps entry for edge "
                f"(tail={cur[0]}, axis={cur[1]})"
            )
    return tuple(out)


@dataclass(frozen=True)
class NetworkSpec:
    """A registered topology plus its shape parameters.

    ``link_caps`` is an optional tuple of ``(tail, axis, cap)`` per-edge
    capacity overrides (JSON form: ``[[tail...], axis, cap]`` lists); it
    is omitted from the digest key when empty, so pre-existing scenario
    digests are unchanged.
    """

    kind: str
    dims: tuple
    buffer_size: int = 1
    capacity: int = 1
    link_caps: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "dims", _parse_dims(self.dims))
        object.__setattr__(
            self, "buffer_size", _spec_int(self.buffer_size, "buffer_size", 0))
        object.__setattr__(
            self, "capacity", _spec_int(self.capacity, "capacity", 1))
        object.__setattr__(
            self, "link_caps", _freeze_link_caps(self.link_caps, self.dims))

    @classmethod
    def parse(cls, dims: str, buffer_size: int = 1, capacity: int = 1,
              kind: str | None = None) -> "NetworkSpec":
        """Build from a CLI-style dims string: ``"64"`` or ``"8x8"``.

        ``kind`` overrides the inferred topology (``line`` for one side,
        ``grid`` otherwise) -- e.g. ``"ring"`` or ``"torus"``.
        """
        sides = _parse_dims(str(dims))
        if kind is None:
            kind = "line" if len(sides) == 1 else "grid"
        return cls(kind, sides, buffer_size, capacity)

    def build(self):
        """Instantiate the :class:`~repro.network.topology.Network`."""
        entry = TOPOLOGIES.get(self.kind)
        return entry.fn(self.dims, self.buffer_size, self.capacity,
                        self.link_caps)

    def key(self) -> tuple:
        base = ("network", self.kind, self.dims, self.buffer_size, self.capacity)
        if self.link_caps:
            base += (("link_caps", self.link_caps),)
        return base

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "dims": list(self.dims),
                "buffer_size": self.buffer_size, "capacity": self.capacity}
        if self.link_caps:
            data["link_caps"] = [[list(tail), axis, cap]
                                 for tail, axis, cap in self.link_caps]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "NetworkSpec":
        data = dict(data)
        # accept the paper's B / c shorthand in hand-written spec files
        if "B" in data:
            data["buffer_size"] = data.pop("B")
        if "c" in data:
            data["capacity"] = data.pop("c")
        _check_keys(data, {"kind", "dims", "buffer_size", "capacity",
                           "link_caps"}, "network")
        return cls(**data)

    def __str__(self) -> str:
        dims = "x".join(str(l) for l in self.dims)
        caps = f" +{len(self.link_caps)} link_caps" if self.link_caps else ""
        return f"{self.kind}:{dims} B={self.buffer_size} c={self.capacity}{caps}"


@dataclass(frozen=True)
class _NamedParams:
    """A registered name plus frozen keyword parameters (spec base)."""

    name: str
    params: tuple = ()

    _KIND = ""  # class attribute, not a field; set by subclasses

    def __post_init__(self):
        object.__setattr__(self, "params", _freeze_params(self.params))

    def kwargs(self) -> dict:
        return dict(self.params)

    def key(self) -> tuple:
        return (self._KIND, self.name, self.params)

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data):
        if isinstance(data, str):
            return cls(data)
        _check_keys(data, {"name", "params"}, cls._KIND)
        return cls(data["name"], data.get("params", ()))

    def __str__(self) -> str:
        params = " ".join(f"{k}={v}" for k, v in self.params)
        return self.name + (f"({params})" if params else "")


class WorkloadSpec(_NamedParams):
    """A registered request generator plus its keyword parameters."""

    _KIND = "workload"

    def build(self, network, rng=None) -> list:
        """Generate the request sequence (threading ``rng`` only into
        generators that accept it)."""
        entry = WORKLOADS.get(self.name)
        kwargs = self.kwargs()
        entry.validate_params(kwargs)
        if entry.takes_rng:
            kwargs["rng"] = rng
        return entry.fn(network, **kwargs)


class AlgorithmSpec(_NamedParams):
    """A registered algorithm plus its keyword parameters."""

    _KIND = "algorithm"


def _coerce(value, cls, label: str):
    if isinstance(value, cls):
        return value
    if isinstance(value, str) and cls is not NetworkSpec:
        return cls(value)
    if isinstance(value, dict):
        return cls.from_dict(value)
    raise ValidationError(f"cannot interpret {value!r} as a {label}")


@dataclass(frozen=True)
class Scenario:
    """One declarative experiment point; the unit of :func:`repro.api.run`.

    ``network``/``workload``/``algorithm`` accept spec objects, dicts, or
    (for workload/algorithm) bare registered names.
    """

    network: NetworkSpec
    workload: WorkloadSpec
    algorithm: AlgorithmSpec
    horizon: int
    seed: int = 0
    engine: str | None = None

    def __post_init__(self):
        object.__setattr__(self, "network",
                           _coerce(self.network, NetworkSpec, "NetworkSpec"))
        object.__setattr__(self, "workload",
                           _coerce(self.workload, WorkloadSpec, "WorkloadSpec"))
        object.__setattr__(self, "algorithm",
                           _coerce(self.algorithm, AlgorithmSpec, "AlgorithmSpec"))
        object.__setattr__(self, "horizon", int(self.horizon))
        object.__setattr__(self, "seed", int(self.seed))

    # -- digests and derived randomness ---------------------------------

    def instance_key(self) -> tuple:
        """Identity of the *instance* (everything but the algorithm)."""
        return ("instance", self.network.key(), self.workload.key(), self.horizon)

    def instance_digest(self) -> int:
        return _point_digest(self.instance_key())

    def key(self) -> tuple:
        return ("scenario", self.network.key(), self.workload.key(),
                self.algorithm.key(), self.horizon, self.seed)

    def digest(self) -> int:
        """Stable cross-process digest (excludes the engine by design)."""
        return _point_digest(self.key())

    def rngs(self) -> tuple:
        """``(workload_rng, algorithm_rng)`` derived from the seeding
        contract; both depend only on ``(seed, instance_digest)``."""
        return tuple(spawn_generators((self.seed, self.instance_digest()), 2))

    # -- materialization -------------------------------------------------

    def build_instance(self, network=None) -> tuple:
        """``(network, requests)`` -- the concrete instance every algorithm
        run of this scenario (and its siblings on other algorithms) sees.

        The single materialization path of the seeding contract: pass a
        prebuilt ``network`` to reuse one (capability checks run between
        building the network and generating the requests).
        """
        if network is None:
            network = self.network.build()
        requests = self.workload.build(network, rng=self.rngs()[0])
        return network, requests

    def replace(self, **changes) -> "Scenario":
        return dataclasses.replace(self, **changes)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "network": self.network.to_dict(),
            "workload": self.workload.to_dict(),
            "algorithm": self.algorithm.to_dict(),
            "horizon": self.horizon,
            "seed": self.seed,
        }
        if self.engine is not None:
            data["engine"] = self.engine
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        _check_keys(data, {"network", "workload", "algorithm", "horizon",
                           "seed", "engine"}, "scenario")
        try:
            return cls(
                network=data["network"],
                workload=data["workload"],
                algorithm=data["algorithm"],
                horizon=data["horizon"],
                seed=data.get("seed", 0),
                engine=data.get("engine"),
            )
        except KeyError as exc:
            raise ValidationError(f"scenario spec is missing {exc.args[0]!r}") from None

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def __str__(self) -> str:
        engine = f" engine={self.engine}" if self.engine else ""
        return (f"{self.algorithm} on {self.network} / {self.workload} "
                f"T={self.horizon} seed={self.seed}{engine}")
