"""Built-in topology registrations.

Topologies are registered here rather than in
:mod:`repro.network.topology` so that the network substrate keeps zero
knowledge of the API layer (everything else -- algorithms, workloads --
registers itself in its home module, one import level further up).
"""

from __future__ import annotations

from repro.api.registry import register_topology
from repro.network.topology import GridNetwork, LineNetwork
from repro.util.errors import ValidationError


@register_topology("line", description="uni-directional line 0 -> 1 -> ... -> n-1")
def _build_line(dims, buffer_size, capacity):
    if len(dims) != 1:
        raise ValidationError(f"line topology takes one dimension, got {dims}")
    return LineNetwork(dims[0], buffer_size=buffer_size, capacity=capacity)


@register_topology("grid", description="uni-directional d-dimensional grid")
def _build_grid(dims, buffer_size, capacity):
    return GridNetwork(dims, buffer_size=buffer_size, capacity=capacity)
