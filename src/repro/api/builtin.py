"""Built-in registrations for the network substrate.

Topologies (and the Model 2 node-semantics baseline) are registered here
rather than in :mod:`repro.network` so that the network substrate keeps
zero knowledge of the API layer (everything else -- algorithms,
workloads -- registers itself in its home module, one import level
further up).
"""

from __future__ import annotations

from repro.api.registry import register_algorithm, register_topology
from repro.network.topology import (
    GridNetwork,
    LineNetwork,
    RingNetwork,
    TorusNetwork,
    grid_geometry_reason,
)
from repro.util.errors import ValidationError


@register_topology("line", description="uni-directional line 0 -> 1 -> ... -> n-1")
def _build_line(dims, buffer_size, capacity, link_caps=()):
    if len(dims) != 1:
        raise ValidationError(f"line topology takes one dimension, got {dims}")
    return LineNetwork(dims[0], buffer_size=buffer_size, capacity=capacity,
                       link_caps=link_caps)


@register_topology("grid", description="uni-directional d-dimensional grid")
def _build_grid(dims, buffer_size, capacity, link_caps=()):
    return GridNetwork(dims, buffer_size=buffer_size, capacity=capacity,
                       link_caps=link_caps)


@register_topology(
    "uniline",
    description="unidirectional line as a first-class instance (alias "
    "geometry of 'line'; distinct spec kind)",
)
def _build_uniline(dims, buffer_size, capacity, link_caps=()):
    if len(dims) != 1:
        raise ValidationError(f"uniline topology takes one dimension, got {dims}")
    return LineNetwork(dims[0], buffer_size=buffer_size, capacity=capacity,
                       link_caps=link_caps)


@register_topology(
    "ring",
    description="uni-directional ring: line whose last node feeds node 0",
)
def _build_ring(dims, buffer_size, capacity, link_caps=()):
    if len(dims) != 1:
        raise ValidationError(f"ring topology takes one dimension, got {dims}")
    return RingNetwork(dims[0], buffer_size=buffer_size, capacity=capacity,
                       link_caps=link_caps)


@register_topology(
    "torus",
    description="uni-directional torus: grid wrapping around every axis",
)
def _build_torus(dims, buffer_size, capacity, link_caps=()):
    return TorusNetwork(dims, buffer_size=buffer_size, capacity=capacity,
                        link_caps=link_caps)


def _model2_requires(network, horizon) -> str | None:
    if network.d != 1:
        return "targets lines (d = 1)"
    reason = grid_geometry_reason(network)
    if reason:
        return reason
    if network.min_capacity != 1 or network.capacity != 1:
        return "Model 2 is defined for unit link capacity (c = 1)"
    return None


@register_algorithm(
    "ntg-model2",
    description="nearest-to-go under node Model 2 ([AZ05, AKK09], App. F): "
    "everything transits the buffer, so a node moves <= B packets per step; "
    "'priority' picks the phase-0/phase-1 order",
    requires=_model2_requires,
    fast_engine="vector",
)
def _run_ntg_model2(network, requests, horizon, *, rng=None, engine=None,
                    priority: str = "ntg"):
    from repro.network.engine import make_engine
    from repro.network.node_models import Model2Policy

    sim = make_engine(network, Model2Policy(priority), engine=engine)
    return sim.run(requests, horizon)
