"""Distributed sweep orchestration: shard a batch, run shards, merge.

:func:`repro.api.run.run_batch` saturates one host; this module is the
layer above it.  A batch of :class:`~repro.api.spec.Scenario` objects is
partitioned into **shard manifests** -- plain JSON files, each embedding
its scenarios plus a digest of the whole batch -- that can be copied to
any number of hosts.  Each host executes its manifest with
:func:`run_shard` (which is just ``run_batch`` plus a self-describing
JSONL result file) and the result files are reassembled with
:func:`merge` into a :class:`~repro.api.run.BatchResult` that is
bit-identical to running the whole batch serially on one machine.

Why this is sound: every scenario derives all of its randomness from its
own ``(seed, digest)`` (see :mod:`repro.api.spec`), engines are
bit-identical by contract, and ``run_batch`` is bit-identical to serial
for any worker count -- so *where* a scenario runs cannot change its
report.  ``tests/test_dispatch.py`` enforces the headline guarantee with
hypothesis: for random batches and random partitions, merged output
equals the serial ``run_batch`` report-for-report.

Determinism and accounting:

* :func:`plan_shards` orders scenarios by digest and stripes them across
  shards, so the same batch always yields the same manifests (no
  dependence on input order beyond tie-breaks, dict order, or host).
* Every manifest and result file carries the **batch digest** (a stable
  digest over the ordered scenario digests).  :func:`merge` refuses
  files from a different batch, duplicated shards, and incomplete
  coverage -- every scenario digest must be present exactly once.
* Result files are JSONL: a header line, one ``RunReport.to_dict()``
  line per scenario, and a footer carrying the shard's cache stats.
  A crashed shard simply reruns: with a warmed ``REPRO_CACHE`` the rerun
  is pure cache replay (see the crash-resume test).

Command-line wiring: ``python -m repro sweep --spec f.json --shards N
[--emit-shards DIR | --shard-index i --out shard_i.jsonl]`` and
``python -m repro merge shard_*.jsonl``.  The multi-host recipe lives in
``benchmarks/README.md``.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.api.cache import CacheStats
from repro.api.run import BatchResult, RunReport, run_batch
from repro.api.spec import Scenario
from repro.util.errors import ValidationError

#: bump when the manifest / result-file layout changes incompatibly
SHARD_SCHEMA = 1

MANIFEST_KIND = "repro-shard-manifest"
RESULT_KIND = "repro-shard-result"
FOOTER_KIND = "repro-shard-footer"


class ShardError(ValidationError):
    """A shard manifest or result file is malformed, incomplete,
    duplicated, or belongs to a different batch."""


def _coerce_scenarios(scenarios) -> list:
    return [s if isinstance(s, Scenario) else Scenario.from_dict(s)
            for s in scenarios]


def batch_digest(scenarios) -> str:
    """Stable digest of the *ordered* batch (8-hex, like cache keys).

    Covers the scenario digests in input order, so two hosts planning
    the same spec file agree on it, and a shard produced from a
    different batch (or the same scenarios in a different order) is
    detected at merge time.
    """
    from repro.analysis.runner import point_digest

    scenarios = _coerce_scenarios(scenarios)
    digests = tuple(s.digest() for s in scenarios)
    return f"{point_digest(('batch', digests)):08x}"


def plan_shards(scenarios, n_shards: int) -> list:
    """Partition a batch into ``n_shards`` deterministic shard manifests.

    Scenarios are ordered by digest and striped round-robin across the
    shards, so the plan depends only on the batch content -- every host
    planning the same spec computes identical manifests.  Each manifest
    is a plain JSON-serializable dict embedding its scenarios, their
    original batch positions, and the batch digest.

    Raises :class:`ShardError` on duplicate scenarios: sharding a
    duplicate would run it on several hosts, and the merge contract is
    "every scenario present exactly once" (``run_batch`` itself
    deduplicates identical scenarios, so deduplicate before planning).
    Duplicates are detected by :meth:`Scenario.key` -- content identity,
    not the 32-bit digest, so a CRC collision between genuinely
    different scenarios is *not* rejected (positions, not digests, are
    what ``merge`` accounts for).
    """
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1, got {n_shards}")
    scenarios = _coerce_scenarios(scenarios)
    if not scenarios:
        raise ShardError("cannot shard an empty batch")
    seen: dict = {}
    for i, scenario in enumerate(scenarios):
        key = scenario.key()
        if key in seen:
            raise ShardError(
                f"duplicate scenario in batch (positions {seen[key]} and "
                f"{i}): {scenario}"
            )
        seen[key] = i
    batch = batch_digest(scenarios)
    order = sorted(range(len(scenarios)),
                   key=lambda i: (scenarios[i].digest(), i))
    manifests = []
    for shard_index in range(n_shards):
        assigned = order[shard_index::n_shards]
        manifests.append({
            "kind": MANIFEST_KIND,
            "schema": SHARD_SCHEMA,
            "batch_digest": batch,
            "batch_size": len(scenarios),
            "n_shards": n_shards,
            "shard_index": shard_index,
            "scenarios": [
                {
                    "index": i,
                    "digest": f"{scenarios[i].digest():08x}",
                    "scenario": scenarios[i].to_dict(),
                }
                for i in assigned
            ],
        })
    return manifests


def write_manifest(manifest: dict, path) -> pathlib.Path:
    """Write one shard manifest as canonical JSON (atomically)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    os.replace(tmp, path)
    return path


def load_manifest(source) -> dict:
    """Load and validate a shard manifest (path, JSON text is not accepted:
    pass a dict straight from :func:`plan_shards` instead)."""
    if isinstance(source, dict):
        manifest = source
        label = "manifest"
    else:
        label = str(source)
        try:
            manifest = json.loads(pathlib.Path(source).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardError(f"cannot read shard manifest {label}: {exc}") \
                from None
    if not isinstance(manifest, dict) \
            or manifest.get("kind") != MANIFEST_KIND:
        raise ShardError(f"{label} is not a shard manifest (expected "
                         f"kind={MANIFEST_KIND!r})")
    if manifest.get("schema") != SHARD_SCHEMA:
        raise ShardError(
            f"{label} uses shard schema {manifest.get('schema')!r}; this "
            f"version reads schema {SHARD_SCHEMA}")
    required = {"batch_digest", "batch_size", "n_shards", "shard_index",
                "scenarios"}
    missing = sorted(required - set(manifest))
    if missing:
        raise ShardError(f"{label} is missing key(s) {missing}")
    if not 0 <= manifest["shard_index"] < manifest["n_shards"]:
        raise ShardError(
            f"{label}: shard_index {manifest['shard_index']} out of range "
            f"for n_shards={manifest['n_shards']}")
    for item in manifest["scenarios"]:
        scenario = Scenario.from_dict(item["scenario"])
        if f"{scenario.digest():08x}" != item["digest"]:
            raise ShardError(
                f"{label}: stored digest {item['digest']} does not match "
                f"scenario {scenario} ({scenario.digest():08x}) -- "
                "manifest edited or corrupted")
    return manifest


def run_shard(manifest, out=None, *, workers: int | None = None,
              cache: str | None = None, cache_dir=None,
              compute_bound: bool = True,
              bound_method: str = "maxflow") -> BatchResult:
    """Execute one shard manifest via :func:`run_batch`.

    ``manifest`` is a dict from :func:`plan_shards` or a path to one
    written by :func:`write_manifest`.  When ``out`` is given, the
    reports are written (atomically) as a self-describing JSONL result
    file for :func:`merge`: a header line identifying the shard and its
    batch, one report line per scenario, and a footer with the shard's
    cache stats.

    Crash resume is rerun: the execution is cache-backed (same
    ``cache``/``REPRO_CACHE`` contract as ``run_batch``), so rerunning a
    shard whose previous attempt died mid-write replays every completed
    scenario from the result cache and atomically replaces the partial
    file.

    Engine selection rides along unchanged: a shard whose scenarios
    resolve to ``engine="batch"`` executes its eligible subset as one
    stacked array program inside ``run_batch`` -- sharding composes with
    stacking, and merged output stays bit-identical either way.
    """
    manifest = load_manifest(manifest)
    scenarios = [Scenario.from_dict(item["scenario"])
                 for item in manifest["scenarios"]]
    reports = run_batch(scenarios, workers=workers, cache=cache,
                        cache_dir=cache_dir, compute_bound=compute_bound,
                        bound_method=bound_method)
    if out is not None:
        write_shard_result(manifest, reports, out)
    return reports


def write_shard_result(manifest: dict, reports, out) -> pathlib.Path:
    """Write a shard's reports as the JSONL result file ``merge`` reads."""
    header = {
        "kind": RESULT_KIND,
        "schema": SHARD_SCHEMA,
        "batch_digest": manifest["batch_digest"],
        "batch_size": manifest["batch_size"],
        "n_shards": manifest["n_shards"],
        "shard_index": manifest["shard_index"],
        "indices": [item["index"] for item in manifest["scenarios"]],
    }
    lines = [json.dumps(header, sort_keys=True)]
    for item, report in zip(manifest["scenarios"], reports):
        lines.append(json.dumps(
            {"index": item["index"], "digest": item["digest"],
             "report": report.to_dict()},
            sort_keys=True))
    cache_stats = getattr(reports, "cache_stats", None)
    footer = {
        "kind": FOOTER_KIND,
        "reports": len(manifest["scenarios"]),
        "cache_stats": vars(cache_stats) if cache_stats is not None else None,
    }
    lines.append(json.dumps(footer, sort_keys=True))
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    tmp.write_text("\n".join(lines) + "\n")
    os.replace(tmp, path)
    return path


def _iter_shard_result(path):
    """Stream one result file: yield ``("header", dict)`` once, then one
    ``("report", index, report)`` per body line, then ``("footer", stats)``.

    Memory-bounded by construction: lines are read one at a time from the
    open file and parsed records are yielded (and dropped) immediately --
    the raw text and the parsed JSON of a many-chunk result set never
    coexist in memory, which is what lets :func:`merge` (and the queue's
    ``collect``) scale with the number of *reports*, not with file sizes.

    Fails loudly on anything short of a complete, well-formed shard:
    a missing footer (the crash signature of a truncated write), a
    report-count mismatch, or a report whose recomputed scenario digest
    disagrees with its recorded one.
    """
    label = str(path)
    try:
        handle = open(path, "r")
    except OSError as exc:
        raise ShardError(f"cannot read shard result {label}: {exc}") from None
    with handle:
        header = None
        footer = None
        declared_set: set = set()
        n_declared = 0
        n_reports = 0
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ShardError(
                    f"{label} is truncated or corrupted (bad JSONL line: "
                    f"{exc}); rerun the shard to regenerate it") from None
            if footer is not None:
                raise ShardError(
                    f"{label} has data after its footer -- corrupted "
                    "result file; rerun the shard to regenerate it")
            if header is None:
                header = record
                if not isinstance(header, dict) \
                        or header.get("kind") != RESULT_KIND:
                    raise ShardError(
                        f"{label} is not a shard result file (expected a "
                        f"kind={RESULT_KIND!r} header)")
                if header.get("schema") != SHARD_SCHEMA:
                    raise ShardError(
                        f"{label} uses shard schema {header.get('schema')!r};"
                        f" this version reads schema {SHARD_SCHEMA}")
                declared = header.get("indices", [])
                declared_set = set(declared)
                n_declared = len(declared)
                yield "header", header
                continue
            if isinstance(record, dict) and record.get("kind") == FOOTER_KIND:
                footer = record
                continue
            report = RunReport.from_dict(record["report"])
            if f"{report.scenario.digest():08x}" != record["digest"]:
                raise ShardError(
                    f"{label}: report digest {record['digest']} does not "
                    f"match its scenario ({report.scenario.digest():08x}) -- "
                    "corrupted result file")
            index = record["index"]
            if index not in declared_set:
                raise ShardError(
                    f"{label}: unexpected or repeated batch position {index}")
            declared_set.discard(index)
            n_reports += 1
            yield "report", index, report
        if header is None:
            raise ShardError(f"{label} is empty, not a shard result file")
        if footer is None:
            raise ShardError(
                f"{label} has no footer -- the shard run was interrupted "
                "mid-write; rerun the shard (cache-backed, so completed "
                "scenarios replay for free)")
        if footer.get("reports") != n_reports or n_reports != n_declared:
            raise ShardError(
                f"{label} holds {n_reports} report(s) but declares "
                f"{n_declared} -- truncated shard; rerun it")
        stats = footer.get("cache_stats")
        if stats is not None:
            stats = CacheStats(**stats)
        yield "footer", stats


def _read_shard_result(path) -> tuple:
    """Parse one result file into ``(header, {index: report}, stats)``.

    Convenience wrapper over the streaming :func:`_iter_shard_result`
    (which :func:`merge` consumes directly to stay memory-bounded).
    """
    header = None
    reports: dict = {}
    stats = None
    for item in _iter_shard_result(path):
        if item[0] == "header":
            header = item[1]
        elif item[0] == "report":
            reports[item[1]] = item[2]
        else:
            stats = item[1]
    return header, reports, stats


def _expand_result_files(result_files) -> list:
    """Normalize merge input: paths and/or directories -> result files.

    A directory stands for every ``*.jsonl`` file directly inside it, in
    sorted-name order (deterministic on any host); a directory holding no
    result files is a loud :class:`ShardError`, not an empty merge.  A
    single path (string or ``Path``) is accepted in place of a list.
    """
    if isinstance(result_files, (str, os.PathLike)):
        result_files = [result_files]
    paths: list = []
    for item in result_files:
        path = pathlib.Path(item)
        if path.is_dir():
            found = sorted(p for p in path.iterdir()
                           if p.is_file() and p.suffix == ".jsonl")
            if not found:
                raise ShardError(
                    f"directory {path} holds no .jsonl shard result files")
            paths.extend(found)
        else:
            paths.append(path)
    return paths


def merge(result_files) -> BatchResult:
    """Reassemble shard result files into the original batch order.

    ``result_files`` is a list of result files and/or directories (a
    directory stands for every ``*.jsonl`` file directly inside it --
    the natural form for a queue's ``results/`` directory or a
    collected-from-hosts dropbox), or a single such path.

    The output is the :class:`BatchResult` the serial ``run_batch`` of
    the whole batch would have returned (``tests/test_dispatch.py``
    proves bit-identity), with ``cache_stats`` aggregated across shards
    (``None`` when no shard ran with the cache on).  Merge order does
    not matter: reports are keyed by their recorded batch position.
    Each file is *streamed* (see :func:`_iter_shard_result`): peak
    memory is one report plus the merged output, independent of how the
    batch was chunked.

    Raises :class:`ShardError` when the files do not form exactly one
    complete batch: a shard from a different batch ("foreign"), the same
    shard twice, a missing shard, or a truncated/corrupted file.
    """
    paths = _expand_result_files(result_files)
    if not paths:
        raise ShardError("merge needs at least one shard result file")
    batch = None
    batch_size = None
    n_shards = None
    seen_shards: dict = {}
    reports: dict = {}
    totals: CacheStats | None = None
    for path in paths:
        header = None
        for item in _iter_shard_result(path):
            if item[0] == "header":
                header = item[1]
                if batch is None:
                    batch = header["batch_digest"]
                    batch_size = header["batch_size"]
                    n_shards = header["n_shards"]
                elif header["batch_digest"] != batch:
                    raise ShardError(
                        f"{path} belongs to batch {header['batch_digest']}, "
                        f"not {batch} -- refusing to merge foreign shards")
                elif header["batch_size"] != batch_size \
                        or header["n_shards"] != n_shards:
                    raise ShardError(
                        f"{path} comes from a different plan "
                        f"(batch_size={header['batch_size']}, "
                        f"n_shards={header['n_shards']}; expected "
                        f"{batch_size} and {n_shards})")
                key = header["shard_index"]
                if key in seen_shards:
                    raise ShardError(
                        f"shard {key}/{n_shards} appears twice: "
                        f"{seen_shards[key]} and {path}")
                seen_shards[key] = path
            elif item[0] == "report":
                index, report = item[1], item[2]
                if index in reports:
                    raise ShardError(
                        f"batch position {index} is reported by more than "
                        f"one shard file (second: {path})")
                reports[index] = report
            else:
                stats = item[1]
                if stats is not None:
                    if totals is None:
                        totals = CacheStats()
                    totals.add(stats)
    missing = sorted(set(range(batch_size)) - set(reports))
    if missing:
        raise ShardError(
            f"merge is missing batch position(s) {missing} of {batch_size} "
            f"(batch {batch}) -- supply every shard's result file")
    extra = sorted(set(reports) - set(range(batch_size)))
    if extra:
        raise ShardError(
            f"shard files report position(s) {extra} outside the batch of "
            f"size {batch_size}")
    merged = BatchResult(reports[i] for i in range(batch_size))
    merged.cache_stats = totals
    return merged
