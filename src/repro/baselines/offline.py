"""Offline throughput bounds used as competitive-ratio denominators.

``opt(sigma)`` is NP-hard; the experiments divide by one of four
surrogates, in decreasing tightness / increasing scalability:

* ``"exact"``   -- branch-and-bound integral optimum (tiny instances only);
* ``"lp"``      -- optimal fractional packing ``opt_f`` (what the paper's
  own guarantees are stated against);
* ``"cd"``      -- congestion + dilation cut analysis (arXiv:1206.3718)
  taken jointly with the max-flow relaxation: never looser than
  ``"maxflow"``, strictly tighter when per-request crossing windows on a
  cut bind (see :mod:`repro.packing.cd`);
* ``"maxflow"`` -- single-commodity max-flow relaxation (default; scales to
  the sweep sizes of the benches).

All four upper-bound the true ``opt``, so the measured ratios are
conservative (never flatter than reality).
"""

from __future__ import annotations

from repro.network.topology import Network
from repro.packing.cd import cd_throughput_bound
from repro.packing.exact import exact_opt_small
from repro.packing.lp import fractional_opt
from repro.packing.maxflow import throughput_upper_bound
from repro.util.errors import ValidationError

#: the accepted ``method=`` values, loosest first
BOUND_METHODS = ("maxflow", "cd", "lp", "exact")


def offline_bound(network: Network, requests, horizon: int,
                  method: str = "maxflow") -> float:
    """An upper bound on the offline optimal throughput."""
    requests = list(requests)
    if not requests:
        return 0.0
    if method == "maxflow":
        return float(throughput_upper_bound(network, requests, horizon))
    if method == "cd":
        return float(cd_throughput_bound(network, requests, horizon))
    if method == "lp":
        return float(fractional_opt(network, requests, horizon))
    if method == "exact":
        value, _ = exact_opt_small(network, requests, horizon)
        return float(value)
    raise ValidationError(
        f"unknown offline bound {method!r}; choose exact, lp, maxflow or cd"
    )
