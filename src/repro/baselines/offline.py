"""Offline throughput bounds used as competitive-ratio denominators.

``opt(sigma)`` is NP-hard; the experiments divide by one of three
surrogates, in decreasing tightness / increasing scalability:

* ``"exact"``   -- branch-and-bound integral optimum (tiny instances only);
* ``"lp"``      -- optimal fractional packing ``opt_f`` (what the paper's
  own guarantees are stated against);
* ``"maxflow"`` -- single-commodity max-flow relaxation (default; scales to
  the sweep sizes of the benches).

All three upper-bound the true ``opt``, so the measured ratios are
conservative (never flatter than reality).
"""

from __future__ import annotations

from repro.network.topology import Network
from repro.packing.exact import exact_opt_small
from repro.packing.lp import fractional_opt
from repro.packing.maxflow import throughput_upper_bound
from repro.util.errors import ValidationError


def offline_bound(network: Network, requests, horizon: int,
                  method: str = "maxflow") -> float:
    """An upper bound on the offline optimal throughput."""
    requests = list(requests)
    if not requests:
        return 0.0
    if method == "maxflow":
        return float(throughput_upper_bound(network, requests, horizon))
    if method == "lp":
        return float(fractional_opt(network, requests, horizon))
    if method == "exact":
        value, _ = exact_opt_small(network, requests, horizon)
        return float(value)
    raise ValidationError(
        f"unknown offline bound {method!r}; choose exact, lp or maxflow"
    )
