"""The greedy algorithm ([AKOR03]; Table 1 rows for greedy policies).

Greedy injects a packet whenever it can be stored or forwarded and always
forwards up to ``c`` packets per link.  The priority among contending
packets is a parameter (the lower bounds hold for any greedy priority):

* ``"fifo"`` -- oldest injection first (default);
* ``"lifo"`` -- newest first;
* ``"longest"`` -- farthest-to-go first (the most pessimistic choice on
  the clogging instances).

Packets travel dimension by dimension (1-bend routing on grids, the
scheme analysed by [AKK09]).
"""

from __future__ import annotations

from repro.api.registry import register_algorithm
from repro.network.engine import make_engine
from repro.network.packet import Packet
from repro.network.simulator import Decision, Policy, SimulationResult
from repro.network.topology import Network
from repro.util.errors import ValidationError


def one_bend_axis(pkt: Packet, network: Network | None = None) -> int:
    """First axis on which the packet still has distance to cover
    (dimension-order / 1-bend routing).

    Pass the network on wrapping topologies, where an axis is unfinished
    whenever the coordinates differ (the forward cycle always reaches).
    """
    wrap = network.wrap if network is not None else None
    for axis, (x, dx) in enumerate(zip(pkt.location, pkt.request.dest)):
        if x < dx or (wrap is not None and wrap[axis] and x != dx):
            return axis
    raise ValidationError(f"packet {pkt.rid} already at destination")


_PRIORITIES = {
    "fifo": lambda pkt, network: (pkt.request.arrival, pkt.rid),
    "lifo": lambda pkt, network: (-pkt.request.arrival, -pkt.rid),
    "longest": lambda pkt, network: (-pkt.remaining_distance(network),
                                     pkt.request.arrival, pkt.rid),
}


class GreedyPolicy(Policy):
    """Work-conserving greedy forwarding with a pluggable priority.

    ``fast_priority`` names the equivalent vectorized order of
    :class:`~repro.network.fast_engine.FastEngine`, which replays this
    policy bit-identically.
    """

    def __init__(self, priority: str = "fifo"):
        if priority not in _PRIORITIES:
            raise ValidationError(
                f"unknown priority {priority!r}; choose from {sorted(_PRIORITIES)}"
            )
        self.priority = priority
        self.fast_priority = priority
        self._key = _PRIORITIES[priority]

    def decide(self, node, t, candidates, network: Network) -> Decision:
        B = network.buffer_size
        by_axis: dict = {}
        for pkt in candidates:
            by_axis.setdefault(one_bend_axis(pkt, network), []).append(pkt)
        decision = Decision()
        key = lambda pkt: self._key(pkt, network)
        leftovers: list = []
        for axis, pkts in by_axis.items():
            c = network.capacity_of(node, axis)
            pkts.sort(key=key)
            decision.forward[axis] = pkts[:c]
            leftovers.extend(pkts[c:])
        leftovers.sort(key=key)
        decision.store = leftovers[:B]
        return decision


def run_greedy(network: Network, requests, horizon: int,
               priority: str = "fifo", trace: bool = False,
               engine: str | None = None) -> SimulationResult:
    """Simulate the greedy algorithm on ``requests``.

    ``engine`` picks the implementation (see :mod:`repro.network.engine`);
    the default honours the ``REPRO_ENGINE`` environment variable.
    """
    sim = make_engine(network, GreedyPolicy(priority), engine=engine,
                      trace=trace)
    return sim.run(requests, horizon)


@register_algorithm(
    "greedy",
    description="work-conserving greedy forwarding ([AKOR03]); "
    "'priority' picks the contention order (fifo/lifo/longest)",
    fast_engine="vector",
    batch_policy=lambda priority="fifo": GreedyPolicy(priority),
)
def _greedy_scenario(network, requests, horizon, *, rng=None, engine=None,
                     priority: str = "fifo"):
    return run_greedy(network, requests, horizon, priority=priority,
                      engine=engine)
