"""Baseline algorithms the paper compares against (Table 1).

* :mod:`repro.baselines.greedy` -- the greedy algorithm of [AKOR03]
  (inject whenever buffer space exists, always forward when a link is
  free); Omega(sqrt(n)) lower bound on lines with B >= 2.
* :mod:`repro.baselines.nearest_to_go` -- the nearest-to-go policy
  (contention resolved in favour of the packet with the fewest remaining
  hops): O~(sqrt(n))-competitive on lines, Theta~(n^{2/3}) on
  2-dimensional grids with 1-bend routing [AKK09]; optimal on bufferless
  lines (Proposition 12).
* :mod:`repro.baselines.edd` -- earliest-due-date greedy forwarding, the
  custom-policy exemplar of the vectorized decision ABI (implements both
  the scalar interface and ``decide_vector``).
* :mod:`repro.baselines.offline` -- offline bound wrappers used as
  competitive-ratio denominators.
"""

from repro.baselines.edd import EarliestDeadlinePolicy, run_edd
from repro.baselines.greedy import GreedyPolicy, run_greedy
from repro.baselines.nearest_to_go import NearestToGoPolicy, run_nearest_to_go
from repro.baselines.offline import offline_bound

__all__ = [
    "EarliestDeadlinePolicy",
    "GreedyPolicy",
    "NearestToGoPolicy",
    "offline_bound",
    "run_edd",
    "run_greedy",
    "run_nearest_to_go",
]
