"""Earliest-due-date greedy forwarding (the custom-policy ABI exemplar).

EDD is the deadline-aware cousin of the greedy family ([AKOR03] greedy
structure, earliest-deadline-first contention order -- the policy family
the follow-up papers evaluate on deadline workloads): on contention for a
link or a buffer slot, the packet whose deadline expires first wins;
deadline-free packets rank last.  Packets travel dimension by dimension
(1-bend routing), like :class:`~repro.baselines.greedy.GreedyPolicy`.

It is deliberately *not* one of the fast engine's built-in priorities:
:class:`EarliestDeadlinePolicy` implements both the scalar
:class:`~repro.network.simulator.Policy` interface (reference engine) and
the vectorized decision ABI of :mod:`repro.network.engine` natively, so
it demonstrates -- and its differential tests enforce -- that a custom
policy can run on both engines bit-identically.  ``adapter=True`` hides
the native ``decide_vector`` so the fast engine must lift the scalar
``decide`` through
:class:`~repro.network.fast_engine.BatchedPolicyAdapter` instead: the
knob the differential suite and the adapter benchmarks turn.
"""

from __future__ import annotations

from repro.api.registry import register_algorithm
from repro.baselines.greedy import one_bend_axis
from repro.network.engine import NO_DEADLINE, StepView, VectorDecision
from repro.network.fast_engine import greedy_masks
from repro.network.simulator import Decision, Policy, SimulationResult
from repro.network.topology import Network


def edd_key(pkt):
    """Earliest-due-date priority: tightest deadline, then age, then id."""
    deadline = pkt.request.deadline
    return (NO_DEADLINE if deadline is None else deadline,
            pkt.request.arrival, pkt.rid)


class EarliestDeadlinePolicy(Policy):
    """Greedy forwarding under the earliest-due-date total order.

    Implements the scalar interface and ``decide_vector`` with the same
    key tuples (``rid`` as final tie-break), so both engines compute the
    identical decision -- the ABI contract of
    :mod:`repro.network.engine`, fuzz-enforced by
    ``tests/test_differential.py``.

    ``batch_program`` opts the native vector path into the stacked batch
    engine: the decision is *group-local* (``greedy_masks`` ranks within
    (node, axis) groups only, from per-row keys), so stacking scenarios
    cannot change it -- any two instances with this label decide
    identically on identical rows.
    """

    batch_program = "edd"

    def decide(self, node, t, candidates, network: Network) -> Decision:
        B = network.buffer_size
        by_axis: dict = {}
        for pkt in candidates:
            by_axis.setdefault(one_bend_axis(pkt, network), []).append(pkt)
        decision = Decision()
        leftovers: list = []
        for axis, pkts in by_axis.items():
            c = network.capacity_of(node, axis)
            pkts.sort(key=edd_key)
            decision.forward[axis] = pkts[:c]
            leftovers.extend(pkts[c:])
        leftovers.sort(key=edd_key)
        decision.store = leftovers[:B]
        return decision

    def decide_vector(self, view: StepView) -> VectorDecision:
        # the key tuple is the whole policy; the top-c/top-B contention
        # masks are the shared greedy machinery
        return greedy_masks(view, (view.deadline, view.arrival, view.rid))


class _ScalarOnly(Policy):
    """Delegate that hides ``decide_vector``, forcing the adapter path."""

    def __init__(self, policy: Policy):
        self._policy = policy

    def decide(self, node, t, candidates, network) -> Decision:
        return self._policy.decide(node, t, candidates, network)

    def on_step_begin(self, t: int) -> None:
        self._policy.on_step_begin(t)


def run_edd(network: Network, requests, horizon: int,
            adapter: bool = False, trace: bool = False,
            engine: str | None = None) -> SimulationResult:
    """Simulate earliest-due-date greedy forwarding on ``requests``.

    ``engine`` picks the implementation (see :mod:`repro.network.engine`);
    ``adapter=True`` strips the native vector decision so the fast engine
    exercises the scalar-to-vector batched adapter instead.
    """
    from repro.network.engine import make_engine

    policy = EarliestDeadlinePolicy()
    if adapter:
        policy = _ScalarOnly(policy)
    sim = make_engine(network, policy, engine=engine, trace=trace)
    return sim.run(requests, horizon)


@register_algorithm(
    "edd",
    description="earliest-due-date greedy: tightest deadline wins "
    "contention (custom vector-ABI policy; adapter=true forces the "
    "scalar batched-adapter path on the fast engine)",
    fast_engine="vector",
    batch_policy=lambda adapter=False: (
        None if adapter else EarliestDeadlinePolicy()),
)
def _edd_scenario(network, requests, horizon, *, rng=None, engine=None,
                  adapter: bool = False):
    return run_edd(network, requests, horizon, adapter=adapter,
                   engine=engine)
