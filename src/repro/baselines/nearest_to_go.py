"""The nearest-to-go (NTG) policy ([AKOR03], [AKK09]; Table 1).

On contention -- for a link or for buffer space -- the packet with the
fewest remaining hops wins; the farthest packets are dropped first.  On
2-dimensional grids packets use 1-bend (dimension-order) routing, the
scheme for which [AKK09] prove the Theta~(n^{2/3}) bound.  On bufferless
lines NTG is optimal (Proposition 12): it simulates the optimal online
interval packing of Section 5.2.1.
"""

from __future__ import annotations

from repro.api.registry import register_algorithm
from repro.baselines.greedy import one_bend_axis
from repro.network.engine import make_engine
from repro.network.simulator import Decision, Policy, SimulationResult
from repro.network.topology import Network


def ntg_key(pkt, network=None):
    """Nearest-to-go priority: fewest remaining hops, then age, then id."""
    return (pkt.remaining_distance(network), pkt.request.arrival, pkt.rid)


class NearestToGoPolicy(Policy):
    """Forward the nearest packets first; buffer the nearest leftovers.

    ``fast_priority`` names the equivalent vectorized order of
    :class:`~repro.network.fast_engine.FastEngine`.
    """

    fast_priority = "ntg"

    def decide(self, node, t, candidates, network: Network) -> Decision:
        B = network.buffer_size
        by_axis: dict = {}
        for pkt in candidates:
            by_axis.setdefault(one_bend_axis(pkt, network), []).append(pkt)
        decision = Decision()
        key = lambda pkt: ntg_key(pkt, network)
        leftovers: list = []
        for axis, pkts in by_axis.items():
            c = network.capacity_of(node, axis)
            pkts.sort(key=key)
            decision.forward[axis] = pkts[:c]
            leftovers.extend(pkts[c:])
        leftovers.sort(key=key)
        decision.store = leftovers[:B]
        return decision


def run_nearest_to_go(network: Network, requests, horizon: int,
                      trace: bool = False,
                      engine: str | None = None) -> SimulationResult:
    """Simulate the nearest-to-go policy on ``requests``.

    ``engine`` picks the implementation (see :mod:`repro.network.engine`);
    the default honours the ``REPRO_ENGINE`` environment variable.
    """
    sim = make_engine(network, NearestToGoPolicy(), engine=engine,
                      trace=trace)
    return sim.run(requests, horizon)


@register_algorithm(
    "ntg",
    description="nearest-to-go: fewest remaining hops win contention "
    "([AKOR03], [AKK09]); optimal on bufferless lines (Prop. 12)",
    fast_engine="vector",
    batch_policy=lambda: NearestToGoPolicy(),
)
def _ntg_scenario(network, requests, horizon, *, rng=None, engine=None):
    return run_nearest_to_go(network, requests, horizon, engine=engine)
