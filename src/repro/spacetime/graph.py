"""The finite-horizon space-time graph and its load ledgers.

:class:`SpaceTimeGraph` realises ``G^st`` (Section 3.1) of a uni-directional
grid over a finite time horizon ``[0, T]``, in *untilted* coordinates
(Section 3.2): a (d+1)-dimensional grid DAG in which

* a **space move** along axis ``i < d`` is the transmit edge
  ``(x, col) -> (x + e_i, col)`` (an ``E0`` edge of capacity ``c``), and
* a **buffer move** (``BUFFER == d``) is the edge
  ``(x, col) -> (x, col + 1)`` (an ``E1`` edge of capacity ``B``).

A space-time path is a start vertex plus a sequence of moves
(:class:`STPath`).  All monotone paths between two fixed vertices have the
same number of edges, which is why the paper can treat the path-length bound
``p_max`` as an analysis device (Lemma 2).

Load accounting is done by :class:`LoadLedger`, a set of numpy arrays (one
per move kind) indexed by the tail vertex of each edge; per the
hpc-parallel guides the ledgers are preallocated and updated in place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.topology import Network
from repro.spacetime.coords import time_of
from repro.util.errors import CapacityError, ValidationError

#: Sentinel move index for buffer (E1) edges.  Space moves use the axis
#: index ``0 .. d-1``; ``BUFFER`` is defined per-graph as ``d`` and exposed
#: here as the conventional name for the 1-dimensional case.
BUFFER = -1


@dataclass(frozen=True)
class STPath:
    """A space-time path: ``start`` vertex (untilted) plus ``moves``.

    ``moves[j]`` is an axis index ``0..d-1`` for a transmit step or the
    graph's buffer index ``d`` for a buffering step.  The path for request
    ``r`` starts at the untilted image of ``(a_r, t_r)`` and, when delivered,
    ends on a copy of ``b_r``.
    """

    start: tuple
    moves: tuple
    rid: int | None = None

    def __len__(self) -> int:
        return len(self.moves)

    def vertices(self, d: int):
        """Yield the untilted vertices along the path (``len(moves)+1``)."""
        v = list(self.start)
        yield tuple(v)
        for m in self.moves:
            if m == d:
                v[-1] += 1
            else:
                v[m] += 1
            yield tuple(v)

    def end(self, d: int) -> tuple:
        v = list(self.start)
        for m in self.moves:
            if m == d:
                v[-1] += 1
            else:
                v[m] += 1
        return tuple(v)

    def edges(self, d: int):
        """Yield ``(move, tail_vertex)`` pairs along the path."""
        v = list(self.start)
        for m in self.moves:
            yield m, tuple(v)
            if m == d:
                v[-1] += 1
            else:
                v[m] += 1

    def arrival_time(self, d: int) -> int:
        """Real time at the path's final vertex."""
        return time_of(self.end(d))


class SpaceTimeGraph:
    """Untilted space-time graph of ``network`` over times ``0..horizon``.

    Vertices are tuples ``(x_1..x_d, col)`` with ``x`` a grid node and
    ``0 <= col + sum(x) <= horizon``.  Columns range over
    ``[-sum(dims - 1), horizon]``; :attr:`col_offset` shifts them to
    non-negative array indices.
    """

    def __init__(self, network: Network, horizon: int):
        if horizon < 0:
            raise ValidationError(f"horizon must be >= 0, got {horizon}")
        if network.any_wrap:
            # the tilt/column construction encodes the closed-form grid
            # metric; wraparound axes have no consistent column value
            raise ValidationError(
                "space-time graph requires grid geometry (no wraparound axes)")
        self.network = network
        self.horizon = int(horizon)
        self.d = network.d
        #: move index used for buffer edges
        self.buffer_move = self.d
        self.col_offset = sum(l - 1 for l in network.dims)
        #: number of distinct column values: cols in [-col_offset, horizon]
        self.ncols = self.horizon + self.col_offset + 1

    # -- geometry ---------------------------------------------------------

    def valid_vertex(self, v: tuple) -> bool:
        """True when ``v = (x.., col)`` is inside the grid and the horizon."""
        if len(v) != self.d + 1:
            return False
        space, col = v[:-1], v[-1]
        if not self.network.contains(space):
            return False
        t = col + sum(space)
        return 0 <= t <= self.horizon

    def check_vertex(self, v: tuple) -> None:
        if not self.valid_vertex(v):
            raise ValidationError(f"invalid space-time vertex {v}")

    def vertex_time(self, v: tuple) -> int:
        return v[-1] + sum(v[:-1])

    def move_head(self, v: tuple, move: int) -> tuple:
        """Head vertex of the edge leaving ``v`` with ``move``."""
        if move == self.buffer_move:
            return (*v[:-1], v[-1] + 1)
        head = list(v)
        head[move] += 1
        return tuple(head)

    def edge_capacity(self, move: int) -> int:
        """Capacity of an edge of kind ``move`` (uniform per kind).

        Planners use the *minimum* edge capacity: identical on uniform
        networks, conservative (and hence replay-safe -- the engines
        enforce true per-edge caps) on heterogeneous ones.
        """
        if move == self.buffer_move:
            return self.network.buffer_size
        return self.network.min_capacity

    def valid_move(self, v: tuple, move: int) -> bool:
        """True when edge ``(v, move)`` exists (head valid and capacity > 0)."""
        if not (0 <= move <= self.d):
            return False
        if self.edge_capacity(move) <= 0:
            return False
        return self.valid_vertex(self.move_head(v, move))

    def moves_from(self, v: tuple):
        """All valid moves leaving ``v`` (space axes first, then buffer)."""
        for move in range(self.d + 1):
            if self.valid_move(v, move):
                yield move

    def source_vertex(self, request) -> tuple:
        """Untilted image of the request's source event ``(a_i, t_i)``."""
        a, t = request.source, request.arrival
        return (*a, t - sum(a))

    def dest_columns(self, request, t_lo: int | None = None, t_hi: int | None = None):
        """Columns ``col`` of valid destination copies ``(b_i, col)``.

        The copy at column ``col`` has real time ``t' = col + sum(b)``; valid
        copies satisfy ``t_lo <= t' <= t_hi`` (defaults: arrival and
        min(deadline, horizon))."""
        b = request.dest
        sb = sum(b)
        lo = request.arrival if t_lo is None else t_lo
        hi = self.horizon if request.deadline is None else min(request.deadline, self.horizon)
        if t_hi is not None:
            hi = min(hi, t_hi)
        return range(lo - sb, hi - sb + 1)

    def check_path(self, path: STPath) -> None:
        """Raise unless every edge of ``path`` exists in the graph."""
        v = path.start
        self.check_vertex(v)
        for m in path.moves:
            if not self.valid_move(v, m):
                raise ValidationError(f"path uses invalid move {m} at {v}")
            v = self.move_head(v, m)

    def path_between(self, v_from: tuple, v_to: tuple) -> bool:
        """True when a monotone path ``v_from -> v_to`` exists."""
        return all(a <= b for a, b in zip(v_from, v_to))

    def hops_between(self, v_from: tuple, v_to: tuple) -> int:
        """Hop count of every monotone path ``v_from -> v_to``."""
        if not self.path_between(v_from, v_to):
            raise ValidationError(f"no monotone path {v_from} -> {v_to}")
        return sum(b - a for a, b in zip(v_from, v_to))

    # -- array indexing -----------------------------------------------------

    def array_index(self, v: tuple) -> tuple:
        """Numpy index of vertex ``v`` in a ledger array (space.., col)."""
        return (*v[:-1], v[-1] + self.col_offset)

    def ledger(self, capacity_override: int | None = None) -> "LoadLedger":
        """Create a fresh load ledger for this graph.

        ``capacity_override`` replaces both B and c; used for the unit
        "tracks" of the deterministic detailed routing (Section 5.2.1)."""
        return LoadLedger(self, capacity_override)

    def __repr__(self) -> str:
        return f"SpaceTimeGraph({self.network!r}, horizon={self.horizon})"


class LoadLedger:
    """Per-edge load accounting over a :class:`SpaceTimeGraph`.

    One integer numpy array per move kind, indexed by the *tail* vertex of
    each edge.  ``capacity_override`` makes every edge capacity equal (used
    for the unit-capacity tracks of detailed routing); otherwise space edges
    have capacity ``c`` and buffer edges capacity ``B``.
    """

    def __init__(self, graph: SpaceTimeGraph, capacity_override: int | None = None):
        self.graph = graph
        self.capacity_override = capacity_override
        shape = (*graph.network.dims, graph.ncols)
        self._loads = [np.zeros(shape, dtype=np.int32) for _ in range(graph.d + 1)]

    def capacity(self, move: int) -> int:
        if self.capacity_override is not None:
            return self.capacity_override
        return self.graph.edge_capacity(move)

    def load(self, move: int, tail: tuple) -> int:
        return int(self._loads[move][self.graph.array_index(tail)])

    def residual(self, move: int, tail: tuple) -> int:
        return self.capacity(move) - self.load(move, tail)

    def add_edge(self, move: int, tail: tuple, amount: int = 1, strict: bool = True) -> None:
        idx = self.graph.array_index(tail)
        new = self._loads[move][idx] + amount
        if strict and new > self.capacity(move):
            raise CapacityError(
                f"edge (move={move}, tail={tail}) exceeds capacity "
                f"{self.capacity(move)} (load would be {new})"
            )
        self._loads[move][idx] = new

    def add_path(self, path: STPath, amount: int = 1, strict: bool = True) -> None:
        """Charge every edge of ``path``; raises on violation when strict."""
        for move, tail in path.edges(self.graph.d):
            self.add_edge(move, tail, amount, strict)

    def remove_path(self, path: STPath, amount: int = 1) -> None:
        self.add_path(path, -amount, strict=False)

    def path_fits(self, path: STPath) -> bool:
        """True when adding ``path`` would violate no capacity."""
        return all(
            self.residual(move, tail) >= 1 for move, tail in path.edges(self.graph.d)
        )

    def max_load_ratio(self) -> float:
        """Maximum load divided by capacity over all edges (the beta of a
        beta-packing, Section 3.5)."""
        worst = 0.0
        for move, arr in enumerate(self._loads):
            cap = self.capacity(move)
            if cap <= 0:
                if arr.any():
                    return float("inf")
                continue
            worst = max(worst, float(arr.max()) / cap)
        return worst

    def total_load(self) -> int:
        return int(sum(arr.sum() for arr in self._loads))
