"""Space-time coordinates and the untilting automorphism.

The space-time graph ``G^st`` of a network ``G`` has vertices ``(v, t)``
(Section 3.1).  Its standard drawing is a tilted lattice; the paper
rectifies it with the automorphism (Section 3.2)

    ``q(x_1, ..., x_d, t) = (x_1, ..., x_d, t - sum_i x_i)``

after which transmit edges (``E0``) are axis-parallel steps of +1 along a
space axis and buffer edges (``E1``) are steps of +1 along the last
("column") axis.  We work in untilted coordinates internally: a vertex is
``(x_1, ..., x_d, col)`` with ``col = t - sum_i x_i``.

The functions here convert between the two forms.  They operate on plain
tuples so they can be used on nodes of any dimension.
"""

from __future__ import annotations


def untilt(vertex_t: tuple) -> tuple:
    """Map a tilted space-time vertex ``(x_1..x_d, t)`` to untilted
    ``(x_1..x_d, col)`` with ``col = t - sum(x)``."""
    *space, t = vertex_t
    return (*space, t - sum(space))


def tilt(vertex_c: tuple) -> tuple:
    """Inverse of :func:`untilt`: ``(x_1..x_d, col) -> (x_1..x_d, t)``."""
    *space, col = vertex_c
    return (*space, col + sum(space))


def time_of(vertex_c: tuple) -> int:
    """Real time ``t = col + sum(x)`` of an untilted vertex."""
    *space, col = vertex_c
    return col + sum(space)


def space_of(vertex_c: tuple) -> tuple:
    """Space (network node) part of an untilted vertex."""
    return vertex_c[:-1]


def col_of(vertex_c: tuple) -> int:
    """Column (untilted last axis) of an untilted vertex."""
    return vertex_c[-1]
