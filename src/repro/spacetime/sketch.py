"""Sketch graphs over tiles (Sections 3.4, 5.1, 5.4).

The *sketch graph* coalesces every tile of the space-time graph into a
single node; a directed edge connects tiles that share crossing space-time
edges.  Capacities:

* crossing a space-axis boundary: ``c * prod(other sides)`` (on a line,
  ``c * tau`` -- the paper's "vertical" sketch edge);
* crossing the column-axis boundary: ``B * prod(space sides)`` (on a line,
  ``B * Q`` -- the "horizontal" sketch edge).

Two flavours are provided:

* :class:`PlainSketchGraph` -- used by the randomized algorithm (Section 7):
  tile nodes with the full (summed) capacities above.
* :class:`SplitSketchGraph` -- the ``{1, d+1, inf}``-sketch graph of the
  deterministic algorithm (Section 5.1): every tile is split into ``s_in``
  and ``s_out`` joined by an *interior edge* of capacity ``d + 1`` (2 on a
  line), inter-tile edges are downscaled to capacity 1, and sink edges have
  infinite capacity.

Sink nodes (Sections 3.1 and 5.4): a sink is registered per destination (no
deadlines, shared) or per request (deadlines); it receives an edge from
every tile containing a valid copy of the destination.

Both classes expose the digraph protocol consumed by
:mod:`repro.packing.oracle` / :mod:`repro.packing.ipp`:
``out_edges(node) -> [(edge_key, head)]`` and ``capacity(edge_key)``.
"""

from __future__ import annotations

import math

from repro.spacetime.graph import SpaceTimeGraph
from repro.spacetime.tiling import Tiling
from repro.util.errors import ValidationError

INF = math.inf


class _SketchBase:
    """Shared machinery: tile enumeration and sink registration."""

    def __init__(self, graph: SpaceTimeGraph, tiling: Tiling):
        if tiling.naxes != graph.d + 1:
            raise ValidationError(
                f"tiling has {tiling.naxes} axes but the space-time graph has {graph.d + 1}"
            )
        self.graph = graph
        self.tiling = tiling
        self.d = graph.d
        self._tiles = set(tiling.all_tiles(graph))
        # sink_key -> sink node; tile -> list of (edge_key, sink_node)
        self._sink_edges: dict = {}
        self._sinks: dict = {}

    # -- tiles ----------------------------------------------------------------

    @property
    def tiles(self):
        return self._tiles

    def has_tile(self, tile: tuple) -> bool:
        return tile in self._tiles

    def tile_of_vertex(self, v: tuple) -> tuple:
        return self.tiling.tile_of(v)

    def tile_neighbors(self, tile: tuple):
        """Outgoing tile neighbours ``tile + e_axis`` that exist and are
        reachable (zero-capacity boundaries -- e.g. the column axis when
        ``B = 0`` -- carry no sketch edge)."""
        for axis in range(self.d + 1):
            if self.boundary_capacity(axis) <= 0:
                continue
            nxt = list(tile)
            nxt[axis] += 1
            nxt = tuple(nxt)
            if nxt in self._tiles:
                yield axis, nxt

    def boundary_capacity(self, axis: int) -> float:
        """Capacity of the sketch edge crossing ``axis`` (sum over crossing
        space-time edges, Section 3.4)."""
        per_edge = (
            self.graph.network.buffer_size
            if axis == self.d
            else self.graph.network.min_capacity
        )
        face = 1
        for other, side in enumerate(self.tiling.sides):
            if other != axis:
                face *= side
        return per_edge * face

    def node_capacity(self, tile: tuple) -> float:
        """Node capacity of a tile: ``(d+1) * vol * (B + d*c)``.

        For cube tiles of side ``k`` this is the paper's
        ``2 k^2 (B + c)`` at ``d = 1`` (Section 3.4) and
        ``(d+1) k^{d+1} (B + d c)`` in general (Section 6 item (3))."""
        B = self.graph.network.buffer_size
        c = self.graph.network.min_capacity
        return (self.d + 1) * math.prod(self.tiling.sides) * (B + self.d * c)

    # -- sinks ------------------------------------------------------------------

    def register_sink(self, key, dest: tuple, t_lo: int, t_hi: int | None = None):
        """Create (or return) sink node ``key`` for destination ``dest``.

        The sink receives an infinite-capacity edge from every tile that
        contains a copy ``(dest, t')`` with ``t_lo <= t' <= t_hi`` (Section
        5.4; ``t_hi=None`` means the horizon)."""
        node = ("sink", key)
        if key in self._sinks:
            return node
        hi = self.graph.horizon if t_hi is None else t_hi
        tiles = [
            t
            for t in self.tiling.tiles_with_dest_copies(self.graph, dest, t_lo, hi)
            if t in self._tiles
        ]
        if not tiles:
            return None
        self._sinks[key] = (dest, t_lo, hi, tiles)
        for tile in tiles:
            self._sink_edges.setdefault(tile, []).append(
                (("k", tile, key), node)
            )
        return node

    def sink_tiles(self, key) -> list:
        """Tiles wired to sink ``key`` (the candidate last tiles)."""
        return list(self._sinks[key][3])

    def is_sink(self, node) -> bool:
        return isinstance(node, tuple) and len(node) == 2 and node[0] == "sink"

    def _sink_edges_from(self, tile: tuple):
        return self._sink_edges.get(tile, ())

    def num_tiles(self) -> int:
        return len(self._tiles)


class PlainSketchGraph(_SketchBase):
    """Sketch graph with full summed capacities (randomized algorithm).

    Nodes: ``("t", tile)`` and ``("sink", key)``.  Edge keys:
    ``("e", tile, axis)`` for the boundary edge leaving ``tile`` along
    ``axis`` and ``("k", tile, key)`` for sink edges.
    """

    def node_of_tile(self, tile: tuple):
        return ("t", tile)

    def source_node(self, request):
        """Sketch node holding the request's source event."""
        v = self.graph.source_vertex(request)
        tile = self.tile_of_vertex(v)
        if tile not in self._tiles:
            raise ValidationError(f"source vertex {v} falls outside the tiled region")
        return ("t", tile)

    def out_edges(self, node):
        kind = node[0]
        if kind == "sink":
            return
        tile = node[1]
        for axis, nxt in self.tile_neighbors(tile):
            yield ("e", tile, axis), ("t", nxt)
        yield from self._sink_edges_from(tile)

    def capacity(self, edge_key) -> float:
        kind = edge_key[0]
        if kind == "e":
            return self.boundary_capacity(edge_key[2])
        if kind == "k":
            return INF
        raise ValidationError(f"unknown edge key {edge_key}")

    def min_capacity(self) -> float:
        return min(self.boundary_capacity(axis) for axis in range(self.d + 1))


class SplitSketchGraph(_SketchBase):
    """The ``{1, d+1, inf}``-sketch graph of Section 5.1.

    Nodes: ``("in", tile)``, ``("out", tile)``, ``("sink", key)``.  Edges:

    * interior ``("i", tile)``: ``in -> out``, capacity ``d + 1``;
    * boundary ``("e", tile, axis)``: ``out -> in`` of the next tile,
      capacity 1;
    * sink ``("k", tile, key)``: ``out -> sink``, capacity ``inf``.
    """

    def node_of_tile(self, tile: tuple):
        return ("in", tile)

    def interior_capacity(self) -> int:
        return self.d + 1

    def source_node(self, request):
        """The half-tile ``s_in`` holding the request's source (Alg. 1 step 1a)."""
        v = self.graph.source_vertex(request)
        tile = self.tile_of_vertex(v)
        if tile not in self._tiles:
            raise ValidationError(f"source vertex {v} falls outside the tiled region")
        return ("in", tile)

    def out_edges(self, node):
        kind = node[0]
        if kind == "sink":
            return
        tile = node[1]
        if kind == "in":
            yield ("i", tile), ("out", tile)
            return
        # kind == "out"
        for axis, nxt in self.tile_neighbors(tile):
            yield ("e", tile, axis), ("in", nxt)
        yield from self._sink_edges_from(tile)

    def capacity(self, edge_key) -> float:
        kind = edge_key[0]
        if kind == "i":
            return self.d + 1
        if kind == "e":
            return 1.0
        if kind == "k":
            return INF
        raise ValidationError(f"unknown edge key {edge_key}")

    def min_capacity(self) -> float:
        return 1.0
