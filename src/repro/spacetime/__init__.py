"""Space-time transformation, untilting, tiling and sketch graphs.

Implements Section 3 of the paper:

* :mod:`repro.spacetime.coords` -- the space-time transformation
  ``(v, t)`` and the untilting automorphism ``q`` (Sections 3.1-3.2).
* :mod:`repro.spacetime.graph` -- :class:`SpaceTimeGraph`, the finite-horizon
  (d+1)-dimensional grid DAG with transmit edges (capacity ``c``) and buffer
  edges (capacity ``B``), plus numpy-backed load ledgers.
* :mod:`repro.spacetime.tiling` -- :class:`Tiling`: partition of the untilted
  space-time grid into boxes, with phase shifts and quadrants (Sections 3.3,
  7.2).
* :mod:`repro.spacetime.sketch` -- sketch graphs over tiles: the plain sketch
  graph (Section 3.4) and the split ``{1, d+1, inf}``-sketch graph
  (Section 5.1), both with sink nodes (Sections 3.1, 5.4).
"""

from repro.spacetime.coords import tilt, untilt
from repro.spacetime.graph import BUFFER, LoadLedger, STPath, SpaceTimeGraph
from repro.spacetime.tiling import Quadrant, Tiling
from repro.spacetime.sketch import PlainSketchGraph, SplitSketchGraph

__all__ = [
    "BUFFER",
    "LoadLedger",
    "PlainSketchGraph",
    "Quadrant",
    "STPath",
    "SpaceTimeGraph",
    "SplitSketchGraph",
    "Tiling",
    "tilt",
    "untilt",
]
