"""Tiling of the untilted space-time grid (Sections 3.3 and 7.2).

A tiling partitions ``Z^{d+1}`` into axis-parallel boxes.  The deterministic
algorithm uses cubes of side ``k`` (Section 3.3); the randomized algorithm
uses rectangles of height ``Q`` (space axis) and length ``tau`` (column
axis) positioned by random *phase shifts* ``(phi_Q, phi_tau)``
(Section 7.2).  Tiles may extend past the valid region of the space-time
graph; the paper augments such partial tiles with dummy vertices, which we
model simply by allowing out-of-range coordinates (dummy vertices never
carry packets, Section 3.3).

Axis convention (matching :mod:`repro.spacetime.graph`): axes ``0..d-1`` are
space ("north" = increasing), axis ``d`` is the column axis ("east" =
increasing).  On a line (d = 1) a tile is the paper's rectangle with
``sides = (Q, tau)`` and ``phases = (phi_Q, phi_tau)``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.spacetime.graph import SpaceTimeGraph
from repro.util.errors import ValidationError


class Quadrant(enum.Enum):
    """Quadrants of a 2-axis tile (Section 7.2, Figure 8).

    "South" is the low half of the space axis, "west" the low half of the
    column axis.  Requests whose source lies in the SW quadrant form the
    random subset ``R+`` (Section 7.2).
    """

    SW = (0, 0)
    SE = (0, 1)
    NW = (1, 0)
    NE = (1, 1)


@dataclass(frozen=True)
class Tiling:
    """A box tiling of the untilted space-time lattice.

    Parameters
    ----------
    sides:
        Box side length per axis (length ``d+1``; last entry is the column
        axis).
    phases:
        Phase shift per axis, ``0 <= phases[i] < sides[i]``.  The box with
        index ``(0, ..., 0)`` has lower corner ``phases``.
    """

    sides: tuple
    phases: tuple

    def __init__(self, sides, phases=None):
        sides = tuple(int(s) for s in sides)
        if any(s < 1 for s in sides):
            raise ValidationError(f"tile sides must be >= 1, got {sides}")
        if phases is None:
            phases = (0,) * len(sides)
        phases = tuple(int(p) for p in phases)
        if len(phases) != len(sides):
            raise ValidationError("phases and sides must have equal length")
        if any(not (0 <= p < s) for p, s in zip(phases, sides)):
            raise ValidationError(f"phases {phases} out of range for sides {sides}")
        object.__setattr__(self, "sides", sides)
        object.__setattr__(self, "phases", phases)

    @classmethod
    def cubes(cls, d: int, k: int) -> "Tiling":
        """Side-``k`` cube tiling for a d-dimensional grid (Section 3.3)."""
        return cls((k,) * (d + 1))

    # -- membership ---------------------------------------------------------

    @property
    def naxes(self) -> int:
        return len(self.sides)

    def tile_of(self, v: tuple) -> tuple:
        """Tile index of the lattice point ``v``."""
        if len(v) != self.naxes:
            raise ValidationError(f"vertex {v} has wrong arity for {self}")
        return tuple((x - p) // s for x, p, s in zip(v, self.phases, self.sides))

    def origin(self, tile: tuple) -> tuple:
        """Lower corner of ``tile``."""
        return tuple(p + i * s for i, p, s in zip(tile, self.phases, self.sides))

    def ranges(self, tile: tuple):
        """Per-axis half-open ranges ``[lo, hi)`` of ``tile``."""
        org = self.origin(tile)
        return [(lo, lo + s) for lo, s in zip(org, self.sides)]

    def local(self, v: tuple) -> tuple:
        """Offset of ``v`` inside its tile (componentwise, in ``[0, side)``)."""
        return tuple((x - p) % s for x, p, s in zip(v, self.phases, self.sides))

    def contains(self, tile: tuple, v: tuple) -> bool:
        return self.tile_of(v) == tile

    # -- quadrants (2-axis tilings, Section 7.2) -----------------------------

    def _check_two_axes(self) -> None:
        if self.naxes != 2:
            raise ValidationError("quadrants are defined for 2-axis tilings (d = 1)")
        if any(s % 2 for s in self.sides):
            raise ValidationError(
                f"quadrant geometry requires even tile sides, got {self.sides}"
            )

    def quadrant_of(self, v: tuple) -> Quadrant:
        """Quadrant of ``v`` within its tile (requires even sides)."""
        self._check_two_axes()
        loc = self.local(v)
        return Quadrant(
            (int(loc[0] >= self.sides[0] // 2), int(loc[1] >= self.sides[1] // 2))
        )

    def quadrant_ranges(self, tile: tuple, quadrant: Quadrant):
        """Per-axis ranges of ``quadrant`` inside ``tile``."""
        self._check_two_axes()
        out = []
        for axis, half in enumerate(quadrant.value):
            lo, hi = self.ranges(tile)[axis]
            mid = lo + self.sides[axis] // 2
            out.append((lo, mid) if half == 0 else (mid, hi))
        return out

    # -- enumeration over a space-time graph ---------------------------------

    def tile_bounds(self, graph: SpaceTimeGraph):
        """Inclusive per-axis tile index ranges covering the valid region."""
        bounds = []
        for axis, dim in enumerate(graph.network.dims):
            lo = self.tile_of_axis(axis, 0)
            hi = self.tile_of_axis(axis, dim - 1)
            bounds.append((lo, hi))
        caxis = self.naxes - 1
        lo = self.tile_of_axis(caxis, -graph.col_offset)
        hi = self.tile_of_axis(caxis, graph.horizon)
        bounds.append((lo, hi))
        return bounds

    def tile_of_axis(self, axis: int, coord: int) -> int:
        return (coord - self.phases[axis]) // self.sides[axis]

    def tile_has_valid_vertex(self, graph: SpaceTimeGraph, tile: tuple) -> bool:
        """True when ``tile`` intersects the graph's valid region."""
        rng = self.ranges(tile)
        sx_min = sx_max = 0
        for axis, dim in enumerate(graph.network.dims):
            lo = max(rng[axis][0], 0)
            hi = min(rng[axis][1], dim)
            if lo >= hi:
                return False
            sx_min += lo
            sx_max += hi - 1
        clo, chi = rng[-1]
        # need a col in [clo, chi) with 0 <= col + sx <= horizon for some sx
        return clo <= graph.horizon - sx_min and chi - 1 >= -sx_max

    def all_tiles(self, graph: SpaceTimeGraph):
        """Iterate over tiles intersecting the graph's valid region."""
        bounds = self.tile_bounds(graph)
        for tile in itertools.product(*(range(lo, hi + 1) for lo, hi in bounds)):
            if self.tile_has_valid_vertex(graph, tile):
                yield tile

    def tiles_with_dest_copies(self, graph: SpaceTimeGraph, dest: tuple,
                               t_lo: int, t_hi: int):
        """Tiles containing a copy ``(dest, col)`` with time in [t_lo, t_hi].

        Copies of a grid node ``b`` lie on the lattice line with fixed space
        coordinates ``b`` and column ``col = t' - sum(b)`` (Section 3.1)."""
        sb = sum(dest)
        lo_t = max(t_lo, 0)
        hi_t = min(t_hi, graph.horizon)
        if lo_t > hi_t:
            return []
        caxis = self.naxes - 1
        space_tile = tuple(
            self.tile_of_axis(axis, x) for axis, x in enumerate(dest)
        )
        c_lo = self.tile_of_axis(caxis, lo_t - sb)
        c_hi = self.tile_of_axis(caxis, hi_t - sb)
        return [(*space_tile, c) for c in range(c_lo, c_hi + 1)]

    def __repr__(self) -> str:
        return f"Tiling(sides={self.sides}, phases={self.phases})"
