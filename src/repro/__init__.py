"""repro: Even & Medina, "Online Packet-Routing in Grids with Bounded
Buffers" (SPAA 2011), as a runnable library.

Quickstart
----------
>>> from repro import LineNetwork, Request, RandomizedLineRouter
>>> net = LineNetwork(64, buffer_size=1, capacity=1)
>>> reqs = [Request.line(0, 40, 0), Request.line(3, 50, 1)]
>>> router = RandomizedLineRouter(net, horizon=128, rng=0, lam=1.0)
>>> plan = router.route(reqs)
>>> plan.throughput >= 0
True

Layout
------
* :mod:`repro.network` -- the synchronous store-and-forward substrate.
* :mod:`repro.spacetime` -- space-time graphs, untilting, tiling, sketches.
* :mod:`repro.packing` -- online path packing (IPP), interval packing,
  offline bounds (max-flow, LP, exact).
* :mod:`repro.core` -- the paper's algorithms (deterministic Algorithm 1,
  randomized Section 7, special-case variants).
* :mod:`repro.baselines` -- greedy and nearest-to-go.
* :mod:`repro.workloads` -- synthetic and adversarial request generators.
* :mod:`repro.analysis` -- competitive-ratio measurement harness.
* :mod:`repro.api` -- the declarative Scenario layer: registries of
  algorithms/workloads/topologies, JSON-round-trippable run specs, and
  the batch runner every CLI command and bench sits on.
"""

from repro.core import (
    BufferlessLineRouter,
    DeterministicRouter,
    LargeCapacityRouter,
    Plan,
    RandomizedLineRouter,
    RouteOutcome,
    Router,
)
from repro.core.randomized import (
    FarPlusRouter,
    LargeBufferLineRouter,
    NearRouter,
    SmallBufferLineRouter,
)
from repro.network import (
    GridNetwork,
    LineNetwork,
    Network,
    Request,
    SimulationResult,
    Simulator,
    execute_plan,
)
from repro.baselines import run_greedy, run_nearest_to_go, offline_bound
from repro.api import (
    AlgorithmSpec,
    NetworkSpec,
    RunReport,
    Scenario,
    WorkloadSpec,
    run,
    run_batch,
)

__version__ = "1.1.0"

__all__ = [
    "AlgorithmSpec",
    "BufferlessLineRouter",
    "DeterministicRouter",
    "FarPlusRouter",
    "GridNetwork",
    "LargeBufferLineRouter",
    "LargeCapacityRouter",
    "LineNetwork",
    "NearRouter",
    "Network",
    "NetworkSpec",
    "Plan",
    "RandomizedLineRouter",
    "Request",
    "RouteOutcome",
    "Router",
    "RunReport",
    "Scenario",
    "SimulationResult",
    "Simulator",
    "SmallBufferLineRouter",
    "WorkloadSpec",
    "execute_plan",
    "offline_bound",
    "run",
    "run_batch",
    "run_greedy",
    "run_nearest_to_go",
]
