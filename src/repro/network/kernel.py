"""Compiled step kernel: the per-tick contention resolve as one unit.

Every engine tick of the bounded-buffer grid model ends in the same hot
loop: rank the candidate packets inside each contention group under the
policy's total priority order, admit the top ``c`` per (node, axis) link
onto the links, admit the top ``B`` leftovers per node into the buffers,
and scatter the forward/store outcomes back over the packet rows.  This
module owns that loop for *all* array engines --
:class:`~repro.network.fast_engine.FastEngine`,
:class:`~repro.network.fast_batch_engine.FastBatchEngine` (through the
shared :func:`~repro.network.fast_engine.greedy_masks`), and the Model 2
:class:`~repro.network.node_models.FastModel2Engine` -- so there is
exactly one implementation of the bit-identity-critical ranking logic.

Two interchangeable backends execute the *same function bodies*
(:func:`_rank_impl` / :func:`_admit_impl`, written in the
numba-compilable subset of numpy):

* ``"numba"`` -- the bodies compiled with ``numba.njit(cache=True)``;
  one native call per tick, no Python-level temporaries between the sort
  passes.
* ``"numpy"`` -- the very same bodies executed as plain vectorized
  numpy; this is the always-available fallback and is performance-neutral
  with the pre-kernel ``lexsort`` implementation (stable-argsort
  composition is exactly what ``lexsort`` does internally).

Because both backends run the same body, parity is structural, not
coincidental; ``tests/test_kernel.py`` still enforces it end to end
(byte-identical :class:`~repro.network.simulator.SimulationResult`
objects on the seed scenarios) and ``tests/test_differential.py``
fuzzes the kernel dimension against the reference engine.

Selection mirrors engine selection: an explicit argument beats the
``REPRO_KERNEL`` environment variable (``auto`` | ``numba`` | ``numpy``)
beats the default ``auto``.  ``auto`` resolves to ``numba`` when numba
imports (and its compiled kernels pass a self-check) and to ``numpy``
otherwise; an *explicit* ``numba`` with no working numba raises
:class:`~repro.util.errors.ValidationError` -- never a silent fallback,
mirroring the PR-4 adapter contract.  The active kernel is recorded in
every ``RunReport.meta["kernel"]`` and shown by ``repro list``.

Sort-order contract
-------------------
:func:`grouped_rank` must rank exactly like the historical
``np.lexsort(tuple(reversed(keys)) + (gid,))``: ``gid`` is the primary
key, then ``keys[0]``, ``keys[1]``, ... with ties broken stably by row
position.  The bodies realize this as a composition of stable
(``mergesort``) argsorts from the least significant key upward -- the
textbook LSD construction ``lexsort`` itself uses -- so the permutation
is identical, not merely equivalent.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

import numpy as np

from repro.util.errors import ValidationError

#: environment variable consulted when no explicit kernel is given
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: the valid selector values (``auto`` resolves to a concrete backend)
KERNEL_NAMES = ("auto", "numba", "numpy")

_numba_checked = False
_numba_ok = False
_numba_error: str | None = None


def numba_available() -> bool:
    """True when numba imports in this process (memoized)."""
    global _numba_checked, _numba_ok, _numba_error
    if not _numba_checked:
        _numba_checked = True
        try:
            import numba  # noqa: F401

            _numba_ok = True
        except Exception as exc:  # pragma: no cover - environment-specific
            _numba_ok = False
            _numba_error = f"{type(exc).__name__}: {exc}"
    return _numba_ok


# -- the kernel bodies ----------------------------------------------------
#
# Written once, in the numba-compilable subset of numpy (stable argsort,
# flatnonzero, cumsum, fancy gather/scatter), and dispatched either as
# plain numpy or through ``njit(cache=True)``.  ``_admit_impl`` calls the
# ranking body through the module global ``_RANK`` so that, under numba,
# the compiled admit kernel binds the compiled rank kernel (numba
# resolves globals at compile time; :func:`_activate` installs the
# matched pair before either can compile).


def _rank_impl(gid, keys):
    """Rank of each row within its ``gid`` group under ``keys``.

    ``keys`` is ``(n, k)`` int64, most significant column first;
    ``rank[i]`` is row ``i``'s 0-based position inside its group sorted
    by the key columns (stably, so equal keys keep row order).
    """
    n = gid.shape[0]
    rank = np.empty(n, np.int64)
    if n == 0:
        return rank
    # LSD stable-sort composition == lexsort(reversed(keys) + (gid,))
    order = np.arange(n)
    for j in range(keys.shape[1] - 1, -1, -1):
        col = keys[:, j]
        order = order[np.argsort(col[order], kind="mergesort")]
    order = order[np.argsort(gid[order], kind="mergesort")]
    g = gid[order]
    new_group = np.empty(n, np.bool_)
    new_group[0] = True
    new_group[1:] = g[1:] != g[:-1]
    starts = np.flatnonzero(new_group)
    gnum = np.cumsum(new_group.astype(np.int64)) - 1
    rank_sorted = np.arange(n) - starts[gnum]
    rank[order] = rank_sorted
    return rank


def _admit_impl(node_id, axis, d, keys, B, c):
    """The per-tick admission resolve: one call, both capacity checks.

    Per (node, axis) link the top ``c[i]`` rows under ``keys`` are
    forwarded; per node the top ``B[i]`` leftovers are stored; everything
    else is left for the engine to delete.  ``B``/``c`` are per-row int64
    arrays (scalar networks broadcast before the call), which is what
    lets the stacked batch engine reuse the identical body.
    """
    n = node_id.shape[0]
    store = np.zeros(n, np.bool_)
    if n == 0:
        return np.zeros(n, np.bool_), store
    gid = node_id * d + axis
    fwd = _RANK(gid, keys) < c
    left = np.flatnonzero(~fwd)
    if left.size > 0:
        B_left = B[left]
        if np.any(B_left > 0):
            lrank = _RANK(node_id[left], keys[left])
            store[left[lrank < B_left]] = True
    return fwd, store


# -- dispatch -------------------------------------------------------------

_RANK = _rank_impl
_ADMIT = _admit_impl
_active = "numpy"
_compiled: dict = {}  # backend name -> (rank, admit) pair, built once


def _numba_pair():
    """Compile (once per process) and self-check the numba kernels."""
    if "numba" not in _compiled:
        from numba import njit

        rank = njit(cache=True)(_rank_impl)
        # bind the compiled rank before admit can compile: numba freezes
        # the _RANK global reference at admit's first compilation
        global _RANK
        previous = _RANK
        _RANK = rank
        try:
            admit = njit(cache=True)(_admit_impl)
            _self_check(rank, admit)
        finally:
            _RANK = previous
        _compiled["numba"] = (rank, admit)
    return _compiled["numba"]


def _self_check(rank, admit) -> None:
    """Run the candidate kernels on a fixed case against the plain bodies.

    A compiled kernel that cannot reproduce the numpy bodies exactly must
    never be activated -- bit-identity is the whole contract.
    """
    gid = np.array([2, 0, 2, 0, 1, 2], dtype=np.int64)
    keys = np.array(
        [[3, 0], [1, 5], [3, 1], [1, 2], [0, 0], [2, 9]], dtype=np.int64)
    axis = np.array([0, 1, 0, 1, 0, 0], dtype=np.int64)
    B = np.full(6, 1, dtype=np.int64)
    c = np.full(6, 1, dtype=np.int64)
    if not np.array_equal(rank(gid, keys), _rank_impl(gid, keys)):
        raise ValidationError("compiled grouped-rank kernel diverges from "
                              "the numpy body")
    # call with production argument types: this first call is what
    # triggers (and therefore pins) the lazy numba compilation
    got = admit(gid, axis, np.int64(2), keys, B, c)
    want = _admit_impl(gid, axis, np.int64(2), keys, B, c)
    if not (np.array_equal(got[0], want[0])
            and np.array_equal(got[1], want[1])):
        raise ValidationError("compiled admission kernel diverges from "
                              "the numpy body")


def resolve_kernel_name(name: str | None = None) -> str:
    """Resolve ``name`` > ``REPRO_KERNEL`` > ``auto`` to a concrete
    backend (``"numba"`` or ``"numpy"``).

    Unknown selectors raise; an explicit ``"numba"`` without a working
    numba raises too (the no-silent-fallback contract).  ``"auto"``
    degrades to ``"numpy"`` -- with a warning when numba imports but its
    kernels fail to compile or self-check.
    """
    raw = name if name is not None else \
        (os.environ.get(KERNEL_ENV_VAR) or "auto")
    if raw not in KERNEL_NAMES:
        raise ValidationError(
            f"unknown kernel {raw!r}; choose from {sorted(KERNEL_NAMES)}")
    if raw == "numpy":
        return "numpy"
    if not numba_available():
        if raw == "numba":
            raise ValidationError(
                "kernel 'numba' requested (REPRO_KERNEL or explicit) but "
                f"numba is not importable ({_numba_error}); install numba "
                "or select kernel 'numpy'")
        return "numpy"
    try:
        _numba_pair()
    except ValidationError:
        raise
    except Exception as exc:
        if raw == "numba":
            raise ValidationError(
                f"kernel 'numba' requested but the compiled kernels are "
                f"unusable ({type(exc).__name__}: {exc})") from exc
        warnings.warn(
            f"REPRO_KERNEL=auto: numba imports but its kernels failed to "
            f"compile ({type(exc).__name__}: {exc}); falling back to the "
            f"numpy kernel", RuntimeWarning, stacklevel=2)
        return "numpy"
    return "numba"


def activate(name: str | None = None) -> str:
    """Dispatch the kernel entry points to the resolved backend.

    Called once at import with the environment's choice; callable again
    (tests, :func:`using`) to re-dispatch at runtime.  Returns the
    concrete active name.
    """
    global _RANK, _ADMIT, _active
    concrete = resolve_kernel_name(name)
    if concrete == "numba":
        _RANK, _ADMIT = _numba_pair()
    else:
        _RANK, _ADMIT = _rank_impl, _admit_impl
    _active = concrete
    return concrete


def active_kernel() -> str:
    """The concrete backend currently serving the kernel entry points."""
    return _active


@contextmanager
def using(name: str):
    """Temporarily dispatch to ``name`` (``auto``/``numba``/``numpy``).

    Pooled ``run_batch`` workers re-activate from the kernel name the
    parent threads through the chunk args, so the context extends across
    the process pool; external workers (queue service, multi-host
    shards) are separate processes and read ``REPRO_KERNEL`` themselves.
    """
    previous = _active
    activate(name)
    try:
        yield _active
    finally:
        activate(previous)


# -- public entry points --------------------------------------------------


def _stack_keys(keys, n: int) -> np.ndarray:
    """Pack a key tuple (most significant first) into ``(n, k)`` int64."""
    out = np.empty((n, len(keys)), dtype=np.int64)
    for j, key in enumerate(keys):
        out[:, j] = key
    return out


def grouped_rank(gid, keys) -> np.ndarray:
    """Rank of each element within its ``gid`` group under ``keys``.

    ``keys`` is a tuple of int64 arrays, most significant first; every
    caller's key tuple ends in the unique ``rid``, so the order is total
    and the rank is deterministic.  Replaces the historical per-engine
    ``lexsort`` idiom with the selected kernel backend.
    """
    gid = np.ascontiguousarray(gid, dtype=np.int64)
    return _RANK(gid, _stack_keys(keys, gid.shape[0]))


def admit(node_id, axis, d: int, keys, B, c):
    """Resolve one tick's contention: ``(forward_mask, store_mask)``.

    Top ``c`` per (node, axis) forward, top ``B`` leftovers per node
    store -- the single hot loop of every array engine.  ``B``/``c`` may
    be scalars (per-scenario networks) or per-row arrays (the stacked
    batch facade); scalars are broadcast here so the kernel body is
    uniform.
    """
    node_id = np.ascontiguousarray(node_id, dtype=np.int64)
    axis = np.ascontiguousarray(axis, dtype=np.int64)
    n = node_id.shape[0]
    keys2d = _stack_keys(keys, n)
    B_rows = np.ascontiguousarray(B, dtype=np.int64) \
        if isinstance(B, np.ndarray) else np.full(n, B, dtype=np.int64)
    c_rows = np.ascontiguousarray(c, dtype=np.int64) \
        if isinstance(c, np.ndarray) else np.full(n, c, dtype=np.int64)
    return _ADMIT(node_id, axis, np.int64(d), keys2d, B_rows, c_rows)


def injection_order(arrival) -> np.ndarray:
    """Stable injection order: arrival time, ties by request position.

    The one shared definition of the stable-argsort injection idiom the
    engines used to duplicate (``FastEngine.run``,
    ``FastBatchEngine.run_many``, ``FastModel2Engine.run``).  Stability
    is load-bearing: requests revealed at the same step must enter the
    live set in request order, which every engine's status accounting
    assumes (pinned by ``tests/test_kernel.py``).
    """
    return np.argsort(np.asarray(arrival), kind="stable")


# import-time dispatch from the environment: a bad explicit selector
# fails loudly here, before any engine can run on the wrong kernel
activate()
