"""The two node-functionality models of Appendix F.

**Model 1** ([ARSU02, RR09]) -- adopted by the paper and by
:class:`~repro.network.simulator.Simulator`: in one step a node receives
``c`` packets per incoming link plus its ``B`` buffered packets plus local
inputs, and emits ``c`` per outgoing link plus ``B`` back to the buffer.
A packet can therefore *cut through*: arrive and be forwarded in the same
step without touching the buffer.

**Model 2** ([AKK09, AZ05]) -- two-phase nodes: phase 0 merges the (single,
``c = 1``) link arrival, the buffer contents and local inputs and keeps at
most ``B`` of them *in the buffer*; phase 1 transmits at most one buffered
packet.  Everything passing through a node must occupy a buffer slot, so a
node moves at most ``B`` packets per step (vs ``B + c`` in Model 1).

Appendix F remark 1: with ``B = c = 1``, Model 1 is strictly stronger -- a
node receiving one packet from its neighbour and one local injection keeps
both (store one, forward the other), while Model 2 must drop one.

Model 2 is selected through the ordinary engine machinery: a
:class:`Model2Policy` carries ``node_model = 2``, which
:func:`~repro.network.engine.make_engine` routes to
:class:`Model2LineSimulator` (the per-packet reference loop, with
tracing) or :class:`FastModel2Engine` (the vectorized two-phase loop on
the decision-ABI priority machinery) -- both implement the
:class:`~repro.network.engine.Engine` protocol and return bit-identical
:class:`~repro.network.simulator.SimulationResult` records.
"""

from __future__ import annotations

from repro.network.packet import DeliveryStatus, Packet
from repro.network.simulator import SimulationResult
from repro.network.stats import NetworkStats
from repro.network.topology import LineNetwork
from repro.network.trace import TraceRecorder
from repro.util.errors import ValidationError


def ntg_priority(pkt: Packet):
    """Nearest-to-go ordering key: fewest remaining hops first."""
    return (pkt.remaining_distance(), pkt.request.arrival, pkt.rid)


#: scalar key functions matching the fast engine's ``_priority_keys``
#: orders tuple-for-tuple (every order ends in the unique ``rid``)
_MODEL2_KEYS = {
    "fifo": lambda pkt: (pkt.request.arrival, pkt.rid),
    "lifo": lambda pkt: (-pkt.request.arrival, -pkt.rid),
    "longest": lambda pkt: (-pkt.remaining_distance(),
                            pkt.request.arrival, pkt.rid),
    "ntg": ntg_priority,
}


class Model2Policy:
    """Priority choice under Model 2 node semantics.

    ``priority`` names the total order used both to pick which ``B``
    packets survive phase 0 and which single packet phase 1 transmits
    (``ntg`` -- the default -- ``fifo``, ``lifo`` or ``longest``).  The
    ``node_model = 2`` marker is what routes
    :func:`~repro.network.engine.make_engine` to the Model 2 engines;
    ``fast_priority`` names the equivalent vectorized order used by
    :class:`FastModel2Engine`.
    """

    node_model = 2

    def __init__(self, priority: str = "ntg"):
        if priority not in _MODEL2_KEYS:
            raise ValidationError(
                f"unknown priority {priority!r}; choose from "
                f"{sorted(_MODEL2_KEYS)}"
            )
        self.priority = priority
        self.fast_priority = priority
        self.key = _MODEL2_KEYS[priority]


def _check_model2_network(network) -> None:
    if network.d != 1:
        raise ValidationError("Model 2 is defined on lines (d = 1)")
    if network.any_wrap:
        raise ValidationError(
            "Model 2 requires grid geometry (no wraparound axes)")
    if network.capacity != 1 or network.min_capacity != 1:
        raise ValidationError("Model 2 is defined for unit link capacity")


class Model2LineSimulator:
    """Model 2 dynamics on a uni-directional line with ``c = 1``.

    The reference implementation of the two-phase node semantics: a
    per-packet Python loop that optionally records a full event trace.
    Implements the :class:`~repro.network.engine.Engine` protocol --
    ``run`` returns a plain
    :class:`~repro.network.simulator.SimulationResult`, so consumers need
    no Model 2 special case.
    """

    def __init__(self, network: LineNetwork, policy: Model2Policy | None = None,
                 trace: bool = False):
        _check_model2_network(network)
        self.network = network
        self.policy = policy if policy is not None else Model2Policy()
        self.trace = TraceRecorder(enabled=trace)

    def run(self, requests, horizon: int) -> SimulationResult:
        network, trace = self.network, self.trace
        key = self.policy.key
        B = network.buffer_size
        n = network.length
        stats = NetworkStats()
        status = {r.rid: DeliveryStatus.PENDING for r in requests}
        arrivals: dict = {}
        for r in requests:
            network.check_request(r)
            arrivals.setdefault(r.arrival, []).append(r)

        buffers: list = [[] for _ in range(n)]
        link_in: list = [None] * n  # packet arriving at node i this step
        last_arrival = max(arrivals, default=-1)

        for t in range(horizon + 1):
            if (
                t > last_arrival
                and all(not b for b in buffers)
                and all(p is None for p in link_in)
            ):
                break
            stats.steps += 1
            new_link_in: list = [None] * n
            for x in range(n):
                node = (x,)
                candidates = list(buffers[x])
                if link_in[x] is not None:
                    pkt = link_in[x]
                    pkt.location = node
                    pkt.hops += 1
                    candidates.append(pkt)
                injected_now = set()
                for r in arrivals.get(t, ()):  # local inputs at this node
                    if r.source == node:
                        candidates.append(
                            Packet(request=r, location=node, injected_at=t))
                        injected_now.add(r.rid)

                # deliveries are free in both models
                remaining = []
                for pkt in candidates:
                    if pkt.dest == node:
                        on_time = (pkt.request.deadline is None
                                   or t <= pkt.request.deadline)
                        status[pkt.rid] = (
                            DeliveryStatus.DELIVERED if on_time
                            else DeliveryStatus.LATE
                        )
                        stats.delivery_times[pkt.rid] = t
                        stats.delivered += on_time
                        stats.late += not on_time
                        trace.record(t, "deliver" if on_time else "late",
                                     pkt.rid, node)
                    else:
                        remaining.append(pkt)

                # phase 0: keep at most B packets in the buffer
                remaining.sort(key=key)
                kept, dropped = remaining[:B], remaining[B:]
                for pkt in dropped:
                    if pkt.rid in injected_now:
                        status[pkt.rid] = DeliveryStatus.REJECTED
                        stats.rejected += 1
                        trace.record(t, "reject", pkt.rid, node)
                    else:
                        status[pkt.rid] = DeliveryStatus.PREEMPTED
                        stats.preempted += 1
                        trace.record(t, "drop", pkt.rid, node)
                for pkt in kept:
                    if status[pkt.rid] == DeliveryStatus.PENDING:
                        status[pkt.rid] = DeliveryStatus.INJECTED
                        trace.record(t, "inject", pkt.rid, node)

                # phase 1: transmit at most one buffered packet
                if kept and x + 1 < n:
                    out = min(kept, key=key)
                    kept.remove(out)
                    new_link_in[x + 1] = out
                    stats.forwards += 1
                    trace.record(t, "forward", out.rid, node, "axis=0")
                for pkt in kept:
                    stats.stores += 1
                    trace.record(t, "store", pkt.rid, node)
                buffers[x] = kept
                stats.max_buffer_load = max(stats.max_buffer_load, len(kept))
            link_in = new_link_in

        for rid, st in status.items():
            if st == DeliveryStatus.PENDING:
                status[rid] = DeliveryStatus.REJECTED
                stats.rejected += 1
            elif st == DeliveryStatus.INJECTED:
                status[rid] = DeliveryStatus.PREEMPTED
                stats.preempted += 1
        return SimulationResult(stats=stats, status=status, trace=trace,
                                engine="reference")


class FastModel2Engine:
    """Vectorized Model 2: the two-phase loop on priority-key arrays.

    Bit-identical drop-in for :class:`Model2LineSimulator` (same
    ``status`` map, same :class:`~repro.network.stats.NetworkStats`
    counters, same delivery times) built on the fast engine's grouped
    ranking machinery: phase 0 keeps the ``B`` best-ranked packets per
    node, phase 1 transmits the rank-0 survivor.  Supports the named
    priority orders of :class:`Model2Policy`; construction raises
    :class:`~repro.util.errors.ValidationError` on unsupported policies,
    non-line networks or ``trace=True`` -- use
    :func:`~repro.network.engine.make_engine` for graceful fallback.
    """

    def __init__(self, network: LineNetwork, policy: Model2Policy | None = None,
                 trace: bool = False):
        if trace:
            raise ValidationError(
                "FastModel2Engine does not record traces; use the "
                "reference Model 2 engine"
            )
        _check_model2_network(network)
        policy = policy if policy is not None else Model2Policy()
        from repro.network.fast_engine import FastEngine

        if getattr(policy, "fast_priority", None) not in \
                FastEngine.SUPPORTED_PRIORITIES:
            raise ValidationError(
                f"policy {type(policy).__name__} is not supported by "
                f"FastModel2Engine (no fast_priority in "
                f"{sorted(FastEngine.SUPPORTED_PRIORITIES)})"
            )
        self.network = network
        self.policy = policy
        self.trace = TraceRecorder(enabled=False)

    @classmethod
    def supports(cls, policy, network) -> bool:
        """True when ``policy`` can run on the fast Model 2 engine."""
        from repro.network.fast_engine import FastEngine

        return (
            getattr(policy, "node_model", 1) == 2
            and getattr(policy, "fast_priority", None)
            in FastEngine.SUPPORTED_PRIORITIES
            and network.d == 1
            and not network.any_wrap
            and network.capacity == 1
            and network.min_capacity == 1
        )

    def run(self, requests, horizon: int) -> SimulationResult:
        import numpy as np

        from repro.network import kernel
        from repro.network.fast_engine import (
            _DELIVERED,
            _INJECTED,
            _LATE,
            _PREEMPTED,
            _REJECTED,
            _finalize_result,
            _priority_keys,
            _request_arrays,
        )

        network = self.network
        B = network.buffer_size
        n_nodes = network.length
        stats = NetworkStats()

        reqs = tuple(requests)
        n = len(reqs)
        src, dst, arrival, deadline, rid = _request_arrays(network, reqs)
        if n == 0:
            return SimulationResult(stats=stats, status={}, trace=self.trace,
                                    engine="fast")
        src, dst = src[:, 0], dst[:, 0]  # line: flat 1-d coordinates

        loc = src.copy()
        alive = np.zeros(n, dtype=bool)
        scode = np.zeros(n, dtype=np.int64)  # _PENDING
        delivered_t = np.full(n, -1, dtype=np.int64)

        inj_order = kernel.injection_order(arrival)
        ptr = 0
        n_alive = 0
        last_arrival = int(arrival.max())
        priority = self.policy.fast_priority

        for t in range(horizon + 1):
            if n_alive == 0 and t > last_arrival:
                break
            stats.steps += 1

            while ptr < n and arrival[inj_order[ptr]] == t:
                i = inj_order[ptr]
                alive[i] = True
                n_alive += 1
                ptr += 1

            act = np.flatnonzero(alive)
            if act.size == 0:
                continue

            # deliveries are free in both models
            at_dest = loc[act] == dst[act]
            done = act[at_dest]
            if done.size:
                on_time = t <= deadline[done]
                scode[done] = np.where(on_time, _DELIVERED, _LATE)
                delivered_t[done] = t
                n_on = int(on_time.sum())
                stats.delivered += n_on
                stats.late += done.size - n_on
                alive[done] = False
                n_alive -= done.size
            rem = act[~at_dest]
            if rem.size == 0:
                continue

            # phase 0: keep the B best-ranked packets per node
            keys = _priority_keys(priority, arrival[rem], rid[rem],
                                  dst[rem] - loc[rem])
            rank = kernel.grouped_rank(loc[rem], keys)
            keep = rank < B
            dropped = rem[~keep]
            if dropped.size:
                fresh = arrival[dropped] == t  # rejected at injection
                scode[dropped] = np.where(fresh, _REJECTED, _PREEMPTED)
                n_fresh = int(fresh.sum())
                stats.rejected += n_fresh
                stats.preempted += dropped.size - n_fresh
                alive[dropped] = False
                n_alive -= dropped.size
            kept = rem[keep]
            if kept.size == 0:
                continue
            scode[kept] = _INJECTED

            # phase 1: transmit the rank-0 survivor (unless at the line end)
            transmit = keep & (rank == 0) & (loc[rem] + 1 < n_nodes)
            stay = keep & ~transmit
            if stay.any():
                stats.stores += int(stay.sum())
                _, counts = np.unique(loc[rem[stay]], return_counts=True)
                stats.max_buffer_load = max(stats.max_buffer_load,
                                            int(counts.max()))
            tx = rem[transmit]
            if tx.size:
                loc[tx] += 1
                stats.forwards += tx.size

        return _finalize_result(stats, scode, rid, delivered_t, self.trace)


def separation_instance():
    """The Appendix F remark-1 instance separating the two models.

    Two requests on a 3-node line with ``B = c = 1``: one packet travelling
    ``0 -> 2`` injected at time 0, and one injected at node 1 at time 1 --
    exactly when the first packet arrives at node 1.  Model 1 keeps both
    (forward one, store the other); Model 2 must drop one.
    """
    from repro.network.packet import Request

    return LineNetwork(3, buffer_size=1, capacity=1), [
        Request.line(0, 2, 0, rid=0),
        Request.line(1, 2, 1, rid=1),
    ]
