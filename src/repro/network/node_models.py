"""The two node-functionality models of Appendix F.

**Model 1** ([ARSU02, RR09]) -- adopted by the paper and by
:class:`~repro.network.simulator.Simulator`: in one step a node receives
``c`` packets per incoming link plus its ``B`` buffered packets plus local
inputs, and emits ``c`` per outgoing link plus ``B`` back to the buffer.
A packet can therefore *cut through*: arrive and be forwarded in the same
step without touching the buffer.

**Model 2** ([AKK09, AZ05]) -- two-phase nodes: phase 0 merges the (single,
``c = 1``) link arrival, the buffer contents and local inputs and keeps at
most ``B`` of them *in the buffer*; phase 1 transmits at most one buffered
packet.  Everything passing through a node must occupy a buffer slot, so a
node moves at most ``B`` packets per step (vs ``B + c`` in Model 1).

Appendix F remark 1: with ``B = c = 1``, Model 1 is strictly stronger -- a
node receiving one packet from its neighbour and one local injection keeps
both (store one, forward the other), while Model 2 must drop one.  The
:class:`Model2LineSimulator` here exists to reproduce that separation
(experiment E14); everything else in the package uses Model 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.network.packet import DeliveryStatus, Packet
from repro.network.stats import NetworkStats
from repro.network.topology import LineNetwork
from repro.util.errors import ValidationError


def ntg_priority(pkt: Packet):
    """Nearest-to-go ordering key: fewest remaining hops first."""
    return (pkt.remaining_distance(), pkt.request.arrival, pkt.rid)


@dataclass
class Model2Result:
    stats: NetworkStats
    status: dict


class Model2LineSimulator:
    """Model 2 dynamics on a uni-directional line with ``c = 1``.

    ``priority`` orders packets when the node must choose which ``B`` to
    keep (phase 0) and which single packet to transmit (phase 1); the
    default is nearest-to-go.
    """

    def __init__(self, network: LineNetwork, priority=ntg_priority):
        if network.capacity != 1:
            raise ValidationError("Model 2 is defined for unit link capacity")
        self.network = network
        self.priority = priority

    def run(self, requests, horizon: int) -> Model2Result:
        network = self.network
        B = network.buffer_size
        n = network.length
        stats = NetworkStats()
        status = {r.rid: DeliveryStatus.PENDING for r in requests}
        arrivals: dict = {}
        for r in requests:
            network.check_request(r)
            arrivals.setdefault(r.arrival, []).append(r)

        buffers: list = [[] for _ in range(n)]
        link_in: list = [None] * n  # packet arriving at node i this step
        last_arrival = max(arrivals, default=-1)

        for t in range(horizon + 1):
            if (
                t > last_arrival
                and all(not b for b in buffers)
                and all(p is None for p in link_in)
            ):
                break
            stats.steps += 1
            new_link_in: list = [None] * n
            for x in range(n):
                node = (x,)
                candidates = list(buffers[x])
                if link_in[x] is not None:
                    pkt = link_in[x]
                    pkt.location = node
                    pkt.hops += 1
                    candidates.append(pkt)
                injected_now = set()
                for r in arrivals.get(t, ()):  # local inputs at this node
                    if r.source == node:
                        candidates.append(Packet(request=r, location=node, injected_at=t))
                        injected_now.add(r.rid)

                # deliveries are free in both models
                remaining = []
                for pkt in candidates:
                    if pkt.dest == node:
                        on_time = pkt.request.deadline is None or t <= pkt.request.deadline
                        status[pkt.rid] = (
                            DeliveryStatus.DELIVERED if on_time else DeliveryStatus.LATE
                        )
                        stats.delivery_times[pkt.rid] = t
                        stats.delivered += on_time
                        stats.late += not on_time
                    else:
                        remaining.append(pkt)

                # phase 0: keep at most B packets in the buffer
                remaining.sort(key=self.priority)
                kept, dropped = remaining[:B], remaining[B:]
                for pkt in dropped:
                    if pkt.rid in injected_now:
                        status[pkt.rid] = DeliveryStatus.REJECTED
                        stats.rejected += 1
                    else:
                        status[pkt.rid] = DeliveryStatus.PREEMPTED
                        stats.preempted += 1
                for pkt in kept:
                    if status[pkt.rid] == DeliveryStatus.PENDING:
                        status[pkt.rid] = DeliveryStatus.INJECTED

                # phase 1: transmit at most one buffered packet
                if kept and x + 1 < n:
                    out = min(kept, key=self.priority)
                    kept.remove(out)
                    new_link_in[x + 1] = out
                    stats.forwards += 1
                buffers[x] = kept
                stats.max_buffer_load = max(stats.max_buffer_load, len(kept))
            link_in = new_link_in

        for rid, st in status.items():
            if st == DeliveryStatus.PENDING:
                status[rid] = DeliveryStatus.REJECTED
                stats.rejected += 1
            elif st == DeliveryStatus.INJECTED:
                status[rid] = DeliveryStatus.PREEMPTED
                stats.preempted += 1
        return Model2Result(stats=stats, status=status)


def separation_instance():
    """The Appendix F remark-1 instance separating the two models.

    Two requests on a 3-node line with ``B = c = 1``: one packet travelling
    ``0 -> 2`` injected at time 0, and one injected at node 1 at time 1 --
    exactly when the first packet arrives at node 1.  Model 1 keeps both
    (forward one, store the other); Model 2 must drop one.
    """
    from repro.network.packet import Request

    return LineNetwork(3, buffer_size=1, capacity=1), [
        Request.line(0, 2, 0, rid=0),
        Request.line(1, 2, 1, rid=1),
    ]
